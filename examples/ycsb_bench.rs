//! Run the YCSB presets (plus the paper's mixes) against RusKey and the
//! fixed-policy baselines, printing tail latencies per preset.
//!
//! ```sh
//! cargo run --release --example ycsb_bench
//! ```

use ruskey_bench::ycsb_sweep;
use ruskey_repro::ruskey::runner::ExperimentScale;
use ruskey_repro::workload::ycsb::Preset;

fn main() {
    let scale = ExperimentScale {
        load_entries: 30_000,
        mission_size: 1000,
        missions: 120,
        ..ExperimentScale::small()
    };
    let presets = [
        Preset::YcsbA,
        Preset::YcsbB,
        Preset::YcsbC,
        Preset::ReadHeavy,
        Preset::WriteHeavy,
        Preset::RangeBalanced,
    ];
    println!(
        "YCSB sweep | load={} entries, {} missions x {} ops (tail mean over last 30%)\n",
        scale.load_entries, scale.missions, scale.mission_size
    );
    for (preset, rows) in ycsb_sweep(&scale, &presets) {
        println!("{preset}:");
        let best = rows.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        for (method, latency) in rows {
            let marker = if (latency - best).abs() < 1e-12 {
                "  <-- best"
            } else {
                ""
            };
            println!("  {method:<18} {latency:>9.4} ms/op{marker}");
        }
        println!();
    }
}
