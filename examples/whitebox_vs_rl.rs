//! White-box optimal policies (Eq. 5 / Lemma 5.1) vs Lerp's learned
//! policies, across workload mixes.
//!
//! The white-box model knows the device constants exactly (we feed it the
//! simulator's own cost model), so its `K*` is the analytic optimum; Lerp
//! must find a comparable policy from rewards alone.
//!
//! ```sh
//! cargo run --release --example whitebox_vs_rl
//! ```

use ruskey_repro::analysis::cost::{optimal_k_int, CostParams};
use ruskey_repro::analysis::propagation::propagate_rounded;
use ruskey_repro::lsm::bloom::fpr_for_bits;
use ruskey_repro::ruskey::db::{RusKey, RusKeyConfig};
use ruskey_repro::storage::{CostModel, SimulatedDisk};
use ruskey_repro::workload::{bulk_load_pairs, OpGenerator, OpMix, WorkloadSpec};

fn whitebox_k(gamma: f64, fpr: f64) -> u32 {
    let c = CostModel::NVME;
    let p = CostParams {
        size_ratio: 10.0,
        entry_bytes: 143.0, // 16 B key + 112 B value + 15 B header
        page_bytes: 4096.0,
        read_io_ns: c.read_page_ns as f64,
        write_io_ns: c.write_page_ns as f64,
        cpu_probe_ns: c.cpu_probe_ns as f64,
        cpu_merge_ns: c.cpu_merge_per_key_ns as f64,
        gamma,
    };
    optimal_k_int(&p, fpr, 10)
}

fn learned_k(gamma: f64) -> (u32, Vec<u32>) {
    let n = 50_000;
    let disk = SimulatedDisk::new(4096, CostModel::NVME);
    let mut db = RusKey::with_lerp(RusKeyConfig::scaled_default(), disk);
    db.bulk_load(bulk_load_pairs(n, 16, 112, 7));
    let spec = WorkloadSpec::scaled_default(n).with_mix(OpMix::reads(gamma));
    let mut gen = OpGenerator::new(spec, 5);
    for _ in 0..220 {
        let ops = gen.take_ops(1000);
        db.run_mission(&ops);
        if db.tuner_converged() {
            break;
        }
    }
    (
        db.tree().policies().first().copied().unwrap_or(1),
        db.tree().policies(),
    )
}

fn main() {
    let fpr = fpr_for_bits(8.0); // uniform scheme, 8 bits/key
    println!("White-box K* (Eq. 5, exact device constants) vs Lerp's learned K (rewards only)\n");
    println!(
        "{:>8} {:>14} {:>12}   Lerp all policies",
        "γ", "white-box K*", "Lerp K(L1)"
    );
    for gamma in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let wb = whitebox_k(gamma, fpr);
        let (k1, all) = learned_k(gamma);
        println!("{gamma:>8.1} {wb:>14} {k1:>12}   {all:?}");
    }

    println!("\nLemma 5.1 propagation from the paper's worked example (K1=9, K2=7, T=10):");
    println!(
        "  {:?}  (paper: [9, 7, 3, 1])",
        propagate_rounded(9, 7, 10, 4)
    );
}
