//! The paper's Fig. 2 running example: a dynamic workload shifting
//! write-heavy → balanced → read-heavy, with RusKey self-tuning its
//! compaction policy (K should drift high under writes, middle when
//! balanced, low under reads).
//!
//! ```sh
//! cargo run --release --example dynamic_tuning
//! ```

use ruskey_repro::ruskey::db::{RusKey, RusKeyConfig};
use ruskey_repro::storage::{CostModel, SimulatedDisk};
use ruskey_repro::workload::{
    bulk_load_pairs, DynamicWorkload, OpGenerator, OpMix, Session, WorkloadSpec,
};

fn main() {
    let n = 50_000u64;
    // Long enough for Lerp to converge, be knocked out by the shift, and
    // retune (retuning toward the *opposite* extreme — e.g. K=10 after a
    // write-heavy session back down to K=1 — needs the most exploration).
    let missions_per_session = 250;
    let mission_size = 1000;

    let disk = SimulatedDisk::new(4096, CostModel::NVME);
    let mut db = RusKey::with_lerp(RusKeyConfig::scaled_default(), disk);
    db.bulk_load(bulk_load_pairs(n, 16, 112, 7));

    let sessions = vec![
        Session {
            mix: OpMix::write_heavy(),
            missions: missions_per_session,
            label: "write-heavy",
        },
        Session {
            mix: OpMix::balanced(),
            missions: missions_per_session,
            label: "balanced",
        },
        Session {
            mix: OpMix::read_heavy(),
            missions: missions_per_session,
            label: "read-heavy",
        },
    ];
    let generator = OpGenerator::new(WorkloadSpec::scaled_default(n), 11);
    let mut workload = DynamicWorkload::new(generator, sessions, mission_size);

    println!("Fig. 2 running example: workload shifts and RusKey's policy trace\n");
    println!(
        "{:>8} {:>14} {:>7} {:>16} {:>10}",
        "mission", "session", "K(L1)", "latency(ms/op)", "converged"
    );
    let mut m = 0usize;
    let mut last_session = usize::MAX;
    while let Some((session, ops)) = workload.next_mission() {
        let report = db.run_mission(&ops);
        if session != last_session {
            println!("  ---- workload shift ----");
            last_session = session;
        }
        if m.is_multiple_of(15) {
            println!(
                "{m:>8} {:>14} {:>7} {:>16.4} {:>10}",
                workload.sessions()[session].label,
                report.policies_after.first().copied().unwrap_or(1),
                report.ns_per_op() / 1e6,
                db.tuner_converged()
            );
        }
        m += 1;
    }
    println!("\nfinal policies: {:?}", db.tree().policies());
    println!(
        "(expect K(L1) high in the write-heavy session, mid when balanced, low when read-heavy)"
    );
}
