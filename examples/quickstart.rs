//! Quickstart: open a RusKey store, use the KV API, then let the tuner
//! drive a short mission loop.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ruskey_repro::ruskey::db::{RusKey, RusKeyConfig};
use ruskey_repro::storage::{CostModel, SimulatedDisk};
use ruskey_repro::workload::{bulk_load_pairs, OpGenerator, OpMix, WorkloadSpec};

fn main() {
    // A simulated NVMe-like device: deterministic, exact I/O accounting.
    let disk = SimulatedDisk::new(4096, CostModel::NVME);
    let mut db = RusKey::with_lerp(RusKeyConfig::scaled_default(), disk);

    // --- Plain key-value usage -----------------------------------------
    db.put(&b"greeting"[..], &b"hello, LSM"[..]);
    db.put(&b"answer"[..], &b"42"[..]);
    println!("get(greeting) = {:?}", db.get(b"greeting"));
    db.delete(&b"greeting"[..]);
    println!("after delete   = {:?}", db.get(b"greeting"));
    for (k, v) in db.scan(b"a", b"z", 10) {
        println!(
            "scan: {:?} -> {} bytes",
            String::from_utf8_lossy(&k),
            v.len()
        );
    }

    // --- Mission-driven operation (the paper's workflow) ---------------
    // Load a working set, then stream missions; the Lerp tuner adjusts the
    // compaction policy between missions.
    let n = 20_000;
    db = RusKey::with_lerp(
        RusKeyConfig::scaled_default(),
        SimulatedDisk::new(4096, CostModel::NVME),
    );
    db.bulk_load(bulk_load_pairs(n, 16, 112, 7));
    println!(
        "\nbulk-loaded {n} entries into {} levels, policies {:?}",
        db.tree().level_count(),
        db.tree().policies()
    );

    let spec = WorkloadSpec::scaled_default(n).with_mix(OpMix::write_heavy());
    let mut gen = OpGenerator::new(spec, 1);
    println!("\nmission  K(L1)  latency(ms/op)  converged");
    for m in 0..60 {
        let ops = gen.take_ops(1000);
        let report = db.run_mission(&ops);
        if m % 5 == 0 {
            println!(
                "{m:>7}  {:>5}  {:>14.4}  {}",
                report.policies_after.first().copied().unwrap_or(1),
                report.ns_per_op() / 1e6,
                db.tuner_converged()
            );
        }
    }
    println!("\nfinal policies: {:?}", db.tree().policies());
}
