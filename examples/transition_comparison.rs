//! Greedy vs lazy vs flexible transitions, side by side (a miniature of the
//! paper's Fig. 10 plus the Table 2 analytics).
//!
//! ```sh
//! cargo run --release --example transition_comparison
//! ```

use ruskey_repro::analysis::TransitionScenario;
use ruskey_repro::lsm::{FlsmTree, LsmConfig, TransitionStrategy};
use ruskey_repro::storage::{CostModel, SimulatedDisk};
use ruskey_repro::workload::{bulk_load_pairs, encode_key};

fn main() {
    // ---- Analytic Table 2 (paper case study) --------------------------
    let s = TransitionScenario::paper_case_study();
    println!("Table 2 case study (T=10, B=4096, E=1024, C=1 024 000, f=0.01, K=5->4, x=γ=1/2):");
    println!(
        "  greedy   additional cost: {:>8.2} I/Os",
        s.additional_cost_greedy()
    );
    println!(
        "  lazy     additional cost: {:>8.2} I/Os",
        s.additional_cost_lazy()
    );
    println!(
        "  flexible additional cost: {:>8.2} I/Os",
        s.additional_cost_flexible()
    );
    println!(
        "  lazy delay: {:.2} s at {} updates/s\n",
        s.delay_secs(true),
        s.updates_per_sec
    );

    // ---- Live engine measurement --------------------------------------
    println!("Measured on the engine (K=1 -> K=4 on a loaded tree):");
    println!(
        "{:<10} {:>18} {:>18} {:>22}",
        "strategy", "pages read", "pages written", "policy visible now?"
    );
    for strategy in TransitionStrategy::ALL {
        let disk = SimulatedDisk::new(4096, CostModel::NVME);
        let cfg = LsmConfig {
            buffer_bytes: 32 * 1024,
            size_ratio: 5,
            transition: strategy,
            ..LsmConfig::scaled_default()
        };
        let mut tree = FlsmTree::new(cfg, disk);
        tree.bulk_load(bulk_load_pairs(30_000, 16, 112, 3).into_iter().collect());
        // Push some fresh writes so upper levels hold data.
        for i in 0..2_000u64 {
            tree.put(encode_key(i, 16), vec![7u8; 112]);
        }
        let before = tree.storage().metrics();
        let levels_before = tree.level_count();
        for lvl in 0..levels_before {
            tree.set_policy(lvl, 4);
        }
        let delta = tree.storage().metrics().delta(&before);
        // Greedy cascades may create a deeper level; judge visibility on
        // the levels the transition was applied to.
        let visible = tree.policies().iter().take(levels_before).all(|&k| k == 4);
        println!(
            "{:<10} {:>18} {:>18} {:>22}",
            strategy.name(),
            delta.pages_read,
            delta.pages_written,
            if visible {
                "yes (immediate)"
            } else {
                "no (deferred)"
            }
        );
    }
    println!("\n(greedy pays a large immediate rewrite; lazy defers the policy; flexible is free AND immediate)");
}
