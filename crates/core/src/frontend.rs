//! The concurrent serving frontend: many clients, one sharded engine.
//!
//! [`ServingFrontend`] turns a [`ShardedRusKey`](crate::sharded::ShardedRusKey)
//! into a `Send + Sync` service handle. While the store is serving, every
//! shard's tree lives on its persistent worker (the same pool thread that
//! executes mission lanes), which drains a **bounded per-shard MPSC
//! queue** in batches:
//!
//! 1. block for the first request, then greedily drain up to
//!    `batch_ops` more without blocking — whatever concurrent clients
//!    enqueued while the previous batch was executing or committing;
//! 2. execute the batch (reads reply immediately; FIFO order per shard
//!    makes read-your-writes per client structural, not probabilistic);
//! 3. interleave bounded background maintenance
//!    ([`FlsmTree::maintain`]) between batches, exactly as the mission
//!    path interleaves it at lane boundaries;
//! 4. if the batch contained writes, run **one** commit leg
//!    ([`FlsmTree::commit_wal_timed`]) covering all of them, then send
//!    the write acknowledgements — ack-after-commit, so an acknowledged
//!    write is always covered by an fsync (or superseded by a flush)
//!    before its client unblocks.
//!
//! Step 4 is the cross-client group commit: the ≤ 1-fsync-per-shard-
//! per-batch bound that mission barriers provide for one caller now
//! amortizes over every connected client — requests that arrive during a
//! commit form the next batch, so under concurrency the mean writes per
//! fsync exceeds one (the `repro serve` experiment pins this).
//!
//! ## Admission control and backpressure
//!
//! Two mechanisms keep an overloaded frontend honest instead of letting
//! queues grow without bound:
//!
//! * a **token bucket** ([`ServingConfig::rate_limit_per_sec`] /
//!   [`ServingConfig::burst`]) rejects requests once the bucket drains —
//!   [`ServingError::Rejected`] carries a `retry_after` hint, and a
//!   rejected operation was **not** executed (the proptest in
//!   `tests/serving.rs` pins that rejections never drop an acknowledged
//!   op);
//! * the bounded queue itself: when a shard's queue is at
//!   [`ServingConfig::queue_depth`], the submitting client blocks until
//!   the worker drains — the wait is surfaced as `stall_ns` (and a
//!   `stalls` count) in the metrics, and the per-write queue wait is
//!   attributed to the shard tree via [`FlsmTree::note_queue_stall_ns`]
//!   so it reaches the mission report's `queue_stall_ns`.
//!
//! ## Live metrics
//!
//! [`ServingMetrics`] is a registry of atomics — request counters by
//! kind, rejections, stalls, per-shard queue-depth gauges, power-of-two
//! histograms for writes-per-commit and commit latency, and per-client
//! counters (CAMAL's motivation: keep per-client workload composition
//! live so a tuner can eventually see it). [`ServingFrontend::metrics`]
//! snapshots it without stopping the world — readers never take a lock
//! the serving path holds — and
//! [`MetricsSnapshot::render_prometheus`] renders the classic
//! text exposition format.
//!
//! Serving sessions bracket missions: start with
//! [`ShardedRusKey::serve`](crate::sharded::ShardedRusKey::serve), hand
//! [`ServingClient`]s to threads, and call
//! [`ShardedRusKey::finish_serving`](crate::sharded::ShardedRusKey::finish_serving)
//! to stop, restore the trees, and fold the serving work out of the next
//! mission's statistics delta.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use ruskey_lsm::FlsmTree;
use ruskey_workload::routing::RoutingTable;

use crate::sharded::merge_sorted_scans;

/// Relaxed is enough everywhere here: every counter is a monotonic
/// statistic, never a synchronization edge.
const RLX: Ordering = Ordering::Relaxed;

/// Tuning knobs of a serving session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingConfig {
    /// Bounded per-shard request-queue capacity. A full queue blocks the
    /// submitting client (surfaced as `stall_ns`), which is the
    /// queue-depth watermark backpressure.
    pub queue_depth: usize,
    /// Maximum requests a shard worker drains into one batch (and so the
    /// most writes one commit leg can cover).
    pub batch_ops: usize,
    /// Background-maintenance steps granted between batches (only with
    /// `background_maintenance` enabled; mirrors the mission lanes).
    pub maintain_steps: u64,
    /// Token-bucket refill rate in requests per second across all
    /// clients; 0 disables admission control entirely.
    pub rate_limit_per_sec: u64,
    /// Token-bucket capacity: the burst admitted from a full bucket
    /// before the refill rate gates. Ignored when
    /// `rate_limit_per_sec == 0`.
    pub burst: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            queue_depth: 64,
            batch_ops: 64,
            maintain_steps: 4,
            rate_limit_per_sec: 0,
            burst: 64,
        }
    }
}

/// Why a serving request failed.
#[derive(Debug)]
pub enum ServingError {
    /// Admission control rejected the request before it was enqueued:
    /// the token bucket is empty. The operation did **not** execute;
    /// retry no sooner than `retry_after`.
    Rejected {
        /// Estimated wait until the bucket holds a token again.
        retry_after: Duration,
    },
    /// The serving session has stopped (the store is shutting the
    /// frontend down, or the shard's serve loop already exited); the
    /// request was not executed — or, for a write, was executed but
    /// never acknowledged.
    Stopped,
    /// The shard's log simulated a process crash mid-serve (fault
    /// injection): the write batch was executed but is **not**
    /// acknowledged — recovery decides what survives.
    Crashed,
    /// The shard's WAL failed with a real I/O error during the commit
    /// leg: the batch is not acknowledged.
    Wal,
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::Rejected { retry_after } => {
                write!(f, "admission rejected; retry after {retry_after:?}")
            }
            ServingError::Stopped => write!(f, "serving session stopped"),
            ServingError::Crashed => write!(f, "shard crashed mid-serve; write unacknowledged"),
            ServingError::Wal => write!(f, "WAL commit failed; write unacknowledged"),
        }
    }
}

impl std::error::Error for ServingError {}

/// A token bucket shared by every client of one serving session: `rate`
/// tokens per second refill up to `capacity`, one token per request.
#[derive(Debug)]
pub struct TokenBucket {
    rate_per_sec: f64,
    capacity: f64,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A bucket refilling `rate_per_sec` tokens up to `capacity`;
    /// `rate_per_sec == 0` admits everything.
    pub fn new(rate_per_sec: u64, capacity: u64) -> Self {
        Self {
            rate_per_sec: rate_per_sec as f64,
            capacity: (capacity.max(1)) as f64,
            state: Mutex::new(BucketState {
                tokens: (capacity.max(1)) as f64,
                last_refill: Instant::now(),
            }),
        }
    }

    /// Takes one token, or reports how long until one is available.
    pub fn try_take(&self) -> Result<(), Duration> {
        if self.rate_per_sec <= 0.0 {
            return Ok(());
        }
        let mut s = self.state.lock().expect("token bucket poisoned");
        let now = Instant::now();
        let refill = now.duration_since(s.last_refill).as_secs_f64() * self.rate_per_sec;
        s.tokens = (s.tokens + refill).min(self.capacity);
        s.last_refill = now;
        if s.tokens >= 1.0 {
            s.tokens -= 1.0;
            Ok(())
        } else {
            Err(Duration::from_secs_f64(
                (1.0 - s.tokens) / self.rate_per_sec,
            ))
        }
    }
}

/// Power-of-two histogram: bucket `i` counts observations in
/// `[2^(i-1), 2^i)` (bucket 0 counts zeros). Observation and snapshot
/// are lock-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 65],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, RLX);
        self.sum.fetch_add(value, RLX);
        self.count.fetch_add(1, RLX);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(RLX)).collect(),
            sum: self.sum.load(RLX),
            count: self.count.load(RLX),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i` covers `[2^(i-1), 2^i)`.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Upper bound of the bucket holding quantile `q` (0 when empty):
    /// a ≤ 2× overestimate, which is what a bucketed histogram can
    /// promise. Exact percentiles come from client-recorded latencies.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i covers [2^(i-1), 2^i): its upper bound.
                return match i {
                    0 => 0,
                    64.. => u64::MAX,
                    _ => 1u64 << i,
                };
            }
        }
        0
    }
}

/// Live per-client workload counters (one set per [`ServingClient`]).
#[derive(Debug, Default)]
pub struct ClientCounters {
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    scans: AtomicU64,
    rejections: AtomicU64,
}

/// A point-in-time copy of one client's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientSnapshot {
    /// Client id, in creation order.
    pub id: u64,
    /// Point lookups issued.
    pub gets: u64,
    /// Puts issued.
    pub puts: u64,
    /// Deletes issued.
    pub deletes: u64,
    /// Range scans issued.
    pub scans: u64,
    /// Requests the token bucket rejected.
    pub rejections: u64,
}

/// The live metrics registry of one serving session: plain atomics,
/// updated by clients and shard workers, snapshotted by anyone without
/// stopping the world.
#[derive(Debug)]
pub struct ServingMetrics {
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    scans: AtomicU64,
    rejections: AtomicU64,
    stalls: AtomicU64,
    stall_ns: AtomicU64,
    acked_writes: AtomicU64,
    batches: AtomicU64,
    queue_depth: Vec<AtomicU64>,
    shard_ops: Vec<AtomicU64>,
    batch_writes: Histogram,
    commit_ns: Histogram,
    next_client: AtomicU64,
    /// Locked only at client registration and snapshot time — never on
    /// the per-request path.
    clients: Mutex<Vec<(u64, Arc<ClientCounters>)>>,
}

impl ServingMetrics {
    fn new(shards: usize) -> Self {
        Self {
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            scans: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            stall_ns: AtomicU64::new(0),
            acked_writes: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            queue_depth: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_ops: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            batch_writes: Histogram::new(),
            commit_ns: Histogram::new(),
            next_client: AtomicU64::new(0),
            clients: Mutex::new(Vec::new()),
        }
    }

    fn register_client(&self) -> (u64, Arc<ClientCounters>) {
        let id = self.next_client.fetch_add(1, RLX);
        let counters = Arc::new(ClientCounters::default());
        self.clients
            .lock()
            .expect("client registry poisoned")
            .push((id, Arc::clone(&counters)));
        (id, counters)
    }

    /// Copies every counter at one instant (per counter; the registry is
    /// lock-free on the serving path, so this never blocks a request).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            gets: self.gets.load(RLX),
            puts: self.puts.load(RLX),
            deletes: self.deletes.load(RLX),
            scans: self.scans.load(RLX),
            rejections: self.rejections.load(RLX),
            stalls: self.stalls.load(RLX),
            stall_ns: self.stall_ns.load(RLX),
            acked_writes: self.acked_writes.load(RLX),
            batches: self.batches.load(RLX),
            queue_depth: self.queue_depth.iter().map(|d| d.load(RLX)).collect(),
            shard_ops: self.shard_ops.iter().map(|d| d.load(RLX)).collect(),
            batch_writes: self.batch_writes.snapshot(),
            commit_ns: self.commit_ns.snapshot(),
            clients: self
                .clients
                .lock()
                .expect("client registry poisoned")
                .iter()
                .map(|(id, c)| ClientSnapshot {
                    id: *id,
                    gets: c.gets.load(RLX),
                    puts: c.puts.load(RLX),
                    deletes: c.deletes.load(RLX),
                    scans: c.scans.load(RLX),
                    rejections: c.rejections.load(RLX),
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Point lookups served (admitted; includes unacknowledged failures).
    pub gets: u64,
    /// Puts admitted.
    pub puts: u64,
    /// Deletes admitted.
    pub deletes: u64,
    /// Range scans admitted.
    pub scans: u64,
    /// Requests the token bucket rejected (never executed).
    pub rejections: u64,
    /// Times a client blocked on a full shard queue (the queue-depth
    /// watermark).
    pub stalls: u64,
    /// Total real ns clients spent blocked on full shard queues.
    pub stall_ns: u64,
    /// Writes acknowledged after their batch's commit leg.
    pub acked_writes: u64,
    /// Write batches committed (one commit leg each).
    pub batches: u64,
    /// Per-shard queue depth at snapshot time.
    pub queue_depth: Vec<u64>,
    /// Requests executed per shard since the session started (scan legs
    /// count once per shard they touch) — the hot-shard skew signal.
    pub shard_ops: Vec<u64>,
    /// Writes covered per commit leg — the cross-client group-commit
    /// coalescing histogram; `mean()` > 1 means coalescing happened.
    pub batch_writes: HistogramSnapshot,
    /// Commit-leg latency histogram (virtual ns, fsyncs only).
    pub commit_ns: HistogramSnapshot,
    /// Per-client workload counters, in client-creation order.
    pub clients: Vec<ClientSnapshot>,
}

impl MetricsSnapshot {
    /// Total admitted requests.
    pub fn requests(&self) -> u64 {
        self.gets + self.puts + self.deletes + self.scans
    }

    /// Mean writes covered per commit leg (the group-commit batch size
    /// observed across clients; 0 when no batch committed).
    pub fn mean_batch_writes(&self) -> f64 {
        self.batch_writes.mean()
    }

    /// Hottest-shard load as a multiple of the mean shard load (1.0 is
    /// perfectly balanced; 0.0 before any request executed).
    pub fn shard_imbalance(&self) -> f64 {
        let total: u64 = self.shard_ops.iter().sum();
        if self.shard_ops.is_empty() || total == 0 {
            return 0.0;
        }
        let max = *self.shard_ops.iter().max().unwrap() as f64;
        max / (total as f64 / self.shard_ops.len() as f64)
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, labels: &str, v: u64| {
            out.push_str(&format!("ruskey_serving_{name}{labels} {v}\n"));
        };
        counter("requests_total", "{kind=\"get\"}", self.gets);
        counter("requests_total", "{kind=\"put\"}", self.puts);
        counter("requests_total", "{kind=\"delete\"}", self.deletes);
        counter("requests_total", "{kind=\"scan\"}", self.scans);
        counter("rejections_total", "", self.rejections);
        counter("queue_stalls_total", "", self.stalls);
        counter("queue_stall_ns_total", "", self.stall_ns);
        counter("acked_writes_total", "", self.acked_writes);
        counter("commit_batches_total", "", self.batches);
        for (i, d) in self.queue_depth.iter().enumerate() {
            counter("queue_depth", &format!("{{shard=\"{i}\"}}"), *d);
        }
        for (i, d) in self.shard_ops.iter().enumerate() {
            counter("shard_ops_total", &format!("{{shard=\"{i}\"}}"), *d);
        }
        counter("batch_writes_sum", "", self.batch_writes.sum);
        counter("batch_writes_count", "", self.batch_writes.count);
        counter("commit_ns_sum", "", self.commit_ns.sum);
        counter("commit_ns_count", "", self.commit_ns.count);
        out
    }
}

/// One request on a shard's serving queue.
pub(crate) enum ShardRequest {
    /// Point lookup; replies [`Reply::Value`] immediately.
    Get {
        key: Bytes,
        reply: mpsc::Sender<Reply>,
    },
    /// Insert/overwrite; acknowledged after the batch's commit leg.
    Put {
        key: Bytes,
        value: Bytes,
        reply: mpsc::Sender<Reply>,
        enqueued: Instant,
    },
    /// Tombstone write; acknowledged after the batch's commit leg.
    Delete {
        key: Bytes,
        reply: mpsc::Sender<Reply>,
        enqueued: Instant,
    },
    /// One shard's leg of a broadcast range scan.
    Scan {
        start: Bytes,
        end: Bytes,
        limit: usize,
        reply: mpsc::Sender<Reply>,
    },
    /// Stop serving after the current batch (sent once per shard by
    /// `finish_serving`).
    Shutdown,
}

/// A shard worker's reply to one request.
pub(crate) enum Reply {
    /// Lookup result.
    Value(Option<Bytes>),
    /// Write acknowledged: its batch's commit leg ran and the tree is
    /// alive — the record is fsync-covered (or flush-superseded).
    Ack,
    /// One shard's sorted scan leg.
    Scan(Vec<(Bytes, Bytes)>),
    /// The shard's log simulated a crash: the write is unacknowledged.
    Crashed,
    /// The shard's WAL hit a real I/O error: the write is unacknowledged.
    Wal,
}

/// State shared by every client and shard worker of one serving session.
pub(crate) struct ServeShared {
    pub(crate) cfg: ServingConfig,
    pub(crate) metrics: Arc<ServingMetrics>,
    pub(crate) bucket: Arc<TokenBucket>,
    /// Frozen copy of the store's key re-homing overrides: clients must
    /// route exactly like the mission path or re-homed keys would read
    /// from the wrong shard.
    pub(crate) routes: RoutingTable,
}

impl ServeShared {
    pub(crate) fn new(cfg: ServingConfig, shards: usize, routes: RoutingTable) -> Self {
        let bucket = Arc::new(TokenBucket::new(cfg.rate_limit_per_sec, cfg.burst));
        Self {
            cfg,
            metrics: Arc::new(ServingMetrics::new(shards)),
            bucket,
            routes,
        }
    }
}

/// The serve loop of one shard, run on the shard's persistent pool
/// worker while a serving session is active (see the module docs for the
/// batch/maintain/commit/ack cycle). Returns when the session shuts down,
/// every sender is gone, or the shard dies (crash or WAL error) —
/// the worker then ships the tree home.
pub(crate) fn serve_shard(
    shard: usize,
    tree: &mut FlsmTree,
    rx: &Receiver<ShardRequest>,
    shared: &ServeShared,
) {
    let m = &shared.metrics;
    let batch_max = shared.cfg.batch_ops.max(1);
    let mut acks: Vec<mpsc::Sender<Reply>> = Vec::new();
    loop {
        // Block for the first request; drain greedily after it. The
        // greedy drain is what forms cross-client batches: everything
        // enqueued while the previous batch executed or committed.
        let Ok(first) = rx.recv() else { break };
        let mut batch = Vec::with_capacity(batch_max);
        batch.push(first);
        while batch.len() < batch_max {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        let mut stop = false;
        let mut writes = 0u64;
        for req in batch {
            match req {
                ShardRequest::Get { key, reply } => {
                    m.queue_depth[shard].fetch_sub(1, RLX);
                    m.shard_ops[shard].fetch_add(1, RLX);
                    let _ = reply.send(Reply::Value(tree.get(&key)));
                }
                ShardRequest::Scan {
                    start,
                    end,
                    limit,
                    reply,
                } => {
                    m.queue_depth[shard].fetch_sub(1, RLX);
                    m.shard_ops[shard].fetch_add(1, RLX);
                    let _ = reply.send(Reply::Scan(tree.scan(&start, &end, limit)));
                }
                ShardRequest::Put {
                    key,
                    value,
                    reply,
                    enqueued,
                } => {
                    m.queue_depth[shard].fetch_sub(1, RLX);
                    m.shard_ops[shard].fetch_add(1, RLX);
                    tree.note_queue_stall_ns(enqueued.elapsed().as_nanos() as u64);
                    tree.put(key, value);
                    writes += 1;
                    acks.push(reply);
                }
                ShardRequest::Delete {
                    key,
                    reply,
                    enqueued,
                } => {
                    m.queue_depth[shard].fetch_sub(1, RLX);
                    m.shard_ops[shard].fetch_add(1, RLX);
                    tree.note_queue_stall_ns(enqueued.elapsed().as_nanos() as u64);
                    tree.delete(key);
                    writes += 1;
                    acks.push(reply);
                }
                ShardRequest::Shutdown => stop = true,
            }
        }
        // Deferred structural work runs between batches, off every
        // request's path — the serving twin of the mission lanes'
        // boundary maintenance.
        if tree.config().background_maintenance {
            tree.maintain(shared.cfg.maintain_steps);
        }
        if writes > 0 {
            // The cross-client group commit: one leg covers every write
            // of the batch; acks only go out after it.
            let commit = tree.commit_wal_timed();
            m.batches.fetch_add(1, RLX);
            m.batch_writes.observe(writes);
            match commit {
                Ok((synced, ns)) => {
                    if synced {
                        m.commit_ns.observe(ns);
                    }
                    if tree.crashed() {
                        // The log died mid-batch (fault injection): the
                        // batch is not acknowledged; recovery decides
                        // what survives. Stop serving a dead shard.
                        for a in acks.drain(..) {
                            let _ = a.send(Reply::Crashed);
                        }
                        stop = true;
                    } else {
                        m.acked_writes.fetch_add(writes, RLX);
                        for a in acks.drain(..) {
                            let _ = a.send(Reply::Ack);
                        }
                    }
                }
                Err(_) => {
                    for a in acks.drain(..) {
                        let _ = a.send(Reply::Wal);
                    }
                    stop = true;
                }
            }
        } else if tree.crashed() {
            stop = true;
        }
        if stop {
            break;
        }
    }
}

/// A `Send + Sync` handle over a store that is currently serving:
/// produces [`ServingClient`]s for worker threads and snapshots the live
/// metrics. Obtained from
/// [`ShardedRusKey::serve`](crate::sharded::ShardedRusKey::serve); must
/// be returned to
/// [`ShardedRusKey::finish_serving`](crate::sharded::ShardedRusKey::finish_serving)
/// — dropping it instead leaves the shard trees on the workers and the
/// engine permanently unavailable.
pub struct ServingFrontend {
    pub(crate) senders: Vec<SyncSender<ShardRequest>>,
    pub(crate) shared: Arc<ServeShared>,
    /// The workers' tree-return channel, collected by `finish_serving`.
    /// Wrapped in a mutex only to keep the handle `Sync`; it is read
    /// exactly once, at session end.
    pub(crate) done_rx: Mutex<Receiver<crate::sharded::Done>>,
    /// Shards actually dispatched (always the full shard count today;
    /// kept explicit so `finish_serving` never over-waits).
    pub(crate) dispatched: usize,
}

impl ServingFrontend {
    /// Creates a client handle for one connection/thread. Clients are
    /// `Send` (move one into each thread) and register a live counter
    /// set in the metrics registry.
    pub fn client(&self) -> ServingClient {
        let (id, counters) = self.shared.metrics.register_client();
        ServingClient {
            senders: self.senders.clone(),
            shared: Arc::clone(&self.shared),
            counters,
            id,
        }
    }

    /// Number of shards being served.
    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    /// Snapshots the live metrics registry without stopping the world.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }
}

/// One client's handle on a serving session: submits requests through
/// the per-shard queues, pays the token bucket, and blocks only on its
/// own replies (plus the queue-watermark stall when a shard is
/// saturated).
pub struct ServingClient {
    senders: Vec<SyncSender<ShardRequest>>,
    shared: Arc<ServeShared>,
    counters: Arc<ClientCounters>,
    id: u64,
}

impl ServingClient {
    /// This client's id in the metrics registry.
    pub fn id(&self) -> u64 {
        self.id
    }

    fn admit(&self) -> Result<(), ServingError> {
        match self.shared.bucket.try_take() {
            Ok(()) => Ok(()),
            Err(retry_after) => {
                self.shared.metrics.rejections.fetch_add(1, RLX);
                self.counters.rejections.fetch_add(1, RLX);
                Err(ServingError::Rejected { retry_after })
            }
        }
    }

    fn submit(&self, shard: usize, req: ShardRequest) -> Result<(), ServingError> {
        let m = &self.shared.metrics;
        match self.senders[shard].try_send(req) {
            Ok(()) => {}
            Err(TrySendError::Full(req)) => {
                // Queue-depth watermark: the shard is saturated. Block
                // until the worker drains, surfacing the wait as a stall.
                let t0 = Instant::now();
                let sent = self.senders[shard].send(req);
                m.stalls.fetch_add(1, RLX);
                m.stall_ns.fetch_add(t0.elapsed().as_nanos() as u64, RLX);
                if sent.is_err() {
                    return Err(ServingError::Stopped);
                }
            }
            Err(TrySendError::Disconnected(_)) => return Err(ServingError::Stopped),
        }
        m.queue_depth[shard].fetch_add(1, RLX);
        Ok(())
    }

    /// Point lookup, routed to the owning shard's queue.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>, ServingError> {
        self.admit()?;
        self.shared.metrics.gets.fetch_add(1, RLX);
        self.counters.gets.fetch_add(1, RLX);
        let shard = self.shared.routes.shard_for(key, self.senders.len());
        let (tx, rx) = mpsc::channel();
        self.submit(
            shard,
            ShardRequest::Get {
                key: Bytes::copy_from_slice(key),
                reply: tx,
            },
        )?;
        match rx.recv() {
            Ok(Reply::Value(v)) => Ok(v),
            Ok(Reply::Crashed) => Err(ServingError::Crashed),
            Ok(Reply::Wal) => Err(ServingError::Wal),
            _ => Err(ServingError::Stopped),
        }
    }

    /// Insert or overwrite. `Ok` means the write is **acknowledged**:
    /// its batch's commit leg ran before the reply (fsync-covered or
    /// flush-superseded), so it survives a crash.
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<(), ServingError> {
        self.admit()?;
        self.shared.metrics.puts.fetch_add(1, RLX);
        self.counters.puts.fetch_add(1, RLX);
        let key = key.into();
        let shard = self.shared.routes.shard_for(&key, self.senders.len());
        let (tx, rx) = mpsc::channel();
        self.submit(
            shard,
            ShardRequest::Put {
                key,
                value: value.into(),
                reply: tx,
                enqueued: Instant::now(),
            },
        )?;
        self.write_ack(rx)
    }

    /// Deletes a key, with the same acknowledgement contract as
    /// [`ServingClient::put`].
    pub fn delete(&self, key: impl Into<Bytes>) -> Result<(), ServingError> {
        self.admit()?;
        self.shared.metrics.deletes.fetch_add(1, RLX);
        self.counters.deletes.fetch_add(1, RLX);
        let key = key.into();
        let shard = self.shared.routes.shard_for(&key, self.senders.len());
        let (tx, rx) = mpsc::channel();
        self.submit(
            shard,
            ShardRequest::Delete {
                key,
                reply: tx,
                enqueued: Instant::now(),
            },
        )?;
        self.write_ack(rx)
    }

    fn write_ack(&self, rx: mpsc::Receiver<Reply>) -> Result<(), ServingError> {
        match rx.recv() {
            Ok(Reply::Ack) => Ok(()),
            Ok(Reply::Crashed) => Err(ServingError::Crashed),
            Ok(Reply::Wal) => Err(ServingError::Wal),
            _ => Err(ServingError::Stopped),
        }
    }

    /// Range scan over `[start, end)` with a result limit: broadcast to
    /// every shard's queue (each leg is atomic within its shard; there
    /// is no cross-shard point-in-time, exactly as on the mission path),
    /// k-way merged into one sorted result.
    pub fn scan(
        &self,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Bytes, Bytes)>, ServingError> {
        self.admit()?;
        self.shared.metrics.scans.fetch_add(1, RLX);
        self.counters.scans.fetch_add(1, RLX);
        let (s, e) = (Bytes::copy_from_slice(start), Bytes::copy_from_slice(end));
        let (tx, rx) = mpsc::channel();
        let n = self.senders.len();
        for shard in 0..n {
            self.submit(
                shard,
                ShardRequest::Scan {
                    start: s.clone(),
                    end: e.clone(),
                    limit,
                    reply: tx.clone(),
                },
            )?;
        }
        drop(tx);
        let mut per_shard = Vec::with_capacity(n);
        for _ in 0..n {
            match rx.recv() {
                Ok(Reply::Scan(rows)) => per_shard.push(rows),
                Ok(Reply::Crashed) => return Err(ServingError::Crashed),
                Ok(Reply::Wal) => return Err(ServingError::Wal),
                _ => return Err(ServingError::Stopped),
            }
        }
        Ok(merge_sorted_scans(per_shard, limit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_and_client_are_thread_safe() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<ServingFrontend>();
        assert_send::<ServingClient>();
    }

    #[test]
    fn token_bucket_rejects_then_refills() {
        let b = TokenBucket::new(1_000_000, 2);
        assert!(b.try_take().is_ok());
        assert!(b.try_take().is_ok());
        // The burst is spent; at 1M/s the next token is ~1µs away, so
        // either an immediate reject with a positive hint or (if the OS
        // slept us) a refilled success is acceptable.
        match b.try_take() {
            Ok(()) => {}
            Err(retry_after) => assert!(retry_after > Duration::ZERO),
        }
        // After a full refill interval the bucket admits again.
        std::thread::sleep(Duration::from_millis(1));
        assert!(b.try_take().is_ok());
    }

    #[test]
    fn zero_rate_bucket_admits_everything() {
        let b = TokenBucket::new(0, 1);
        for _ in 0..10_000 {
            assert!(b.try_take().is_ok());
        }
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 1, 2, 4, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1008);
        assert!((s.mean() - 201.6).abs() < 1e-9);
        // p50 is 2, in bucket [2, 4) -> upper bound 4.
        assert_eq!(s.quantile_upper(0.5), 4);
        // p100 is 1000, in bucket [512, 1024) -> upper bound 1024.
        assert_eq!(s.quantile_upper(1.0), 1024);
        assert_eq!(HistogramSnapshot::default().quantile_upper(0.99), 0);
        assert_eq!(HistogramSnapshot::default().mean(), 0.0);
    }

    #[test]
    fn histogram_zero_observation_is_bucket_zero() {
        let h = Histogram::new();
        h.observe(0);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.quantile_upper(1.0), 0);
    }

    #[test]
    fn metrics_snapshot_and_prometheus_render() {
        let m = ServingMetrics::new(2);
        m.gets.fetch_add(3, RLX);
        m.puts.fetch_add(2, RLX);
        m.queue_depth[1].fetch_add(7, RLX);
        m.shard_ops[0].fetch_add(1, RLX);
        m.shard_ops[1].fetch_add(5, RLX);
        m.batch_writes.observe(4);
        let (id, c) = m.register_client();
        c.puts.fetch_add(2, RLX);
        let s = m.snapshot();
        assert_eq!(s.requests(), 5);
        assert_eq!(s.queue_depth, vec![0, 7]);
        assert_eq!(s.shard_ops, vec![1, 5]);
        assert!((s.shard_imbalance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.mean_batch_writes(), 4.0);
        assert_eq!(s.clients.len(), 1);
        assert_eq!(s.clients[0].id, id);
        assert_eq!(s.clients[0].puts, 2);
        let text = s.render_prometheus();
        assert!(text.contains("ruskey_serving_requests_total{kind=\"get\"} 3"));
        assert!(text.contains("ruskey_serving_queue_depth{shard=\"1\"} 7"));
        assert!(text.contains("ruskey_serving_shard_ops_total{shard=\"0\"} 1"));
        assert!(text.contains("ruskey_serving_batch_writes_sum 4"));
    }

    #[test]
    fn empty_snapshot_has_zero_imbalance() {
        assert_eq!(MetricsSnapshot::default().shard_imbalance(), 0.0);
    }

    #[test]
    fn serving_config_defaults_are_sane() {
        let cfg = ServingConfig::default();
        assert!(cfg.queue_depth > 0);
        assert!(cfg.batch_ops > 1, "batching requires room to coalesce");
        assert_eq!(cfg.rate_limit_per_sec, 0, "admission off by default");
    }
}
