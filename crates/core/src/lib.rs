//! **RusKey** — an RL-tuned LSM-tree key-value store for dynamic workloads,
//! with a sharded engine core for multi-core scaling.
//!
//! Reproduction of *"Learning to Optimize LSM-trees: Towards A Reinforcement
//! Learning based Key-Value Store for Dynamic Workloads"* (Mo, Chen, Luo,
//! Shan; SIGMOD 2023, arXiv:2308.07013), grown toward a production-scale
//! store.
//!
//! # Architecture
//!
//! The engine core is **sharded**: [`sharded::ShardedRusKey`] hash-partitions
//! the key space onto `N` independent [FLSM-trees](ruskey_lsm::FlsmTree)
//! (each with its own memtable and levels) sharing one storage device.
//! Missions execute in parallel — one scoped OS thread per shard, operations
//! routed by the stable key hash of [`ruskey_workload::routing`]; cross-shard
//! range scans are k-way merged. Tuning stays global and works exactly as in
//! the paper:
//!
//! 1. per-shard statistics merge into one store-wide
//!    [`ruskey_lsm::TreeStatsSnapshot`], from which the [`stats`] collector
//!    builds the mission's [`MissionReport`];
//! 2. a single tuner observes the aggregated report and tree structure;
//! 3. its per-level policy changes fan out to every shard, applied via the
//!    configured flexible transition (§4).
//!
//! Accounting under parallelism is exact: every shard runs on its own
//! **time domain** (a [`ruskey_storage::ShardStorage`] view with a private
//! clock and metrics over the shared device), so per-level
//! `lookup_ns`/`compact_ns` never absorb a concurrent sibling's charges.
//! Domains compose at the store level as the mission's **wall time** (max
//! over shards, [`stats::MissionReport::end_to_end_ns`]) and the
//! **device-busy time** (sum over shards,
//! [`stats::MissionReport::device_busy_ns`]).
//!
//! [`db::RusKey`] is the single-tree engine — the `N = 1` case the paper
//! evaluates — and remains the harness used by all paper experiments. An
//! `N`-shard store is observationally equivalent to it for the same
//! operation sequence (same get/scan results; identical mission counters at
//! `N = 1`), which the integration suite asserts property-style.
//!
//! Two tuning models matter:
//!
//! * [`lerp::Lerp`] — the paper's level-based DDPG model with policy
//!   propagation (§5): it learns Level 1 (and Level 2 under the Monkey
//!   scheme), then extends the learned policy to all deeper levels
//!   analytically (Lemma 5.1);
//! * the baseline [`tuner::Tuner`]s — fixed policies (Aggressive/Moderate/
//!   Lazy), Dostoevsky's Lazy-Leveling, greedy threshold heuristics
//!   (Fig. 12), and brute-force RL variants (§7) for comparison.
//!
//! ```
//! use ruskey::db::{RusKey, RusKeyConfig};
//! use ruskey::sharded::ShardedRusKey;
//! use ruskey_storage::{CostModel, SimulatedDisk};
//!
//! // The paper's single-tree store…
//! let disk = SimulatedDisk::new(4096, CostModel::NVME);
//! let mut db = RusKey::with_lerp(RusKeyConfig::scaled_default(), disk);
//! db.put(&b"k"[..], &b"v"[..]);
//! assert_eq!(db.get(b"k").as_deref(), Some(&b"v"[..]));
//!
//! // …and the same engine hash-partitioned across four shards.
//! let disk = SimulatedDisk::new(4096, CostModel::NVME);
//! let mut db = ShardedRusKey::with_lerp(RusKeyConfig::scaled_default(), 4, disk);
//! db.put(&b"k"[..], &b"v"[..]);
//! assert_eq!(db.get(b"k").as_deref(), Some(&b"v"[..]));
//! ```

#![warn(missing_docs)]

pub mod db;
pub mod dqn_lerp;
pub mod frontend;
pub mod lerp;
pub mod runner;
pub mod sharded;
pub mod state;
pub mod stats;
pub mod tuner;

pub use db::{RusKey, RusKeyConfig};
pub use dqn_lerp::DqnLerp;
pub use frontend::{MetricsSnapshot, ServingClient, ServingConfig, ServingError, ServingFrontend};
pub use lerp::{Lerp, LerpConfig};
pub use sharded::{DurabilityConfig, OpenError, ShardedRusKey};
pub use stats::{LevelMissionStats, MissionReport, StatsCollector};
pub use tuner::{
    BruteForceLerp, FixedPolicy, GreedyHeuristic, LazyLeveling, NoOpTuner, PerLevelNoPropagation,
    TreeObservation, Tuner,
};
