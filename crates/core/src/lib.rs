//! **RusKey** — an RL-tuned LSM-tree key-value store for dynamic workloads.
//!
//! Reproduction of *"Learning to Optimize LSM-trees: Towards A Reinforcement
//! Learning based Key-Value Store for Dynamic Workloads"* (Mo, Chen, Luo,
//! Shan; SIGMOD 2023, arXiv:2308.07013).
//!
//! RusKey processes an application workload (lookups/updates/scans) in
//! *missions*; after each mission its tuning model adjusts the per-level
//! compaction policies of the underlying [FLSM-tree](ruskey_lsm::FlsmTree)
//! using the flexible transition of §4. Two tuning models matter:
//!
//! * [`lerp::Lerp`] — the paper's level-based DDPG model with policy
//!   propagation (§5): it learns Level 1 (and Level 2 under the Monkey
//!   scheme), then extends the learned policy to all deeper levels
//!   analytically (Lemma 5.1);
//! * the baseline [`tuner::Tuner`]s — fixed policies (Aggressive/Moderate/
//!   Lazy), Dostoevsky's Lazy-Leveling, greedy threshold heuristics
//!   (Fig. 12), and brute-force RL variants (§7) for comparison.
//!
//! ```
//! use ruskey::db::{RusKey, RusKeyConfig};
//! use ruskey_storage::{CostModel, SimulatedDisk};
//!
//! let disk = SimulatedDisk::new(4096, CostModel::NVME);
//! let mut db = RusKey::with_lerp(RusKeyConfig::scaled_default(), disk);
//! db.put(&b"k"[..], &b"v"[..]);
//! assert_eq!(db.get(b"k").as_deref(), Some(&b"v"[..]));
//! ```

#![warn(missing_docs)]

pub mod db;
pub mod dqn_lerp;
pub mod lerp;
pub mod runner;
pub mod state;
pub mod stats;
pub mod tuner;

pub use db::{RusKey, RusKeyConfig};
pub use dqn_lerp::DqnLerp;
pub use lerp::{Lerp, LerpConfig};
pub use stats::{LevelMissionStats, MissionReport, StatsCollector};
pub use tuner::{
    BruteForceLerp, FixedPolicy, GreedyHeuristic, LazyLeveling, NoOpTuner, PerLevelNoPropagation,
    TreeObservation, Tuner,
};
