//! A DQN-based variant of Lerp, for the DDPG-vs-DQN ablation.
//!
//! The paper picks DDPG because it "has been shown to be more effective
//! compared with the classic models such as DQN" (§5.1.4). This tuner swaps
//! Lerp's inner learner for a [`Dqn`] over the discrete `ΔK ∈ {-1, 0, +1}`
//! space while keeping the same state featurization, smoothed reward, and
//! level-based + propagation structure (uniform scheme, Level 1 only), so
//! the two learners can be compared like-for-like by the ablation
//! benchmark.

use std::time::Instant;

use ruskey_analysis::propagation::uniform_propagation;
use ruskey_rl::{Dqn, DqnConfig};

use crate::state::{level_state, LEVEL_STATE_DIM};
use crate::stats::MissionReport;
use crate::tuner::{RewardScale, TreeObservation, Tuner};

/// Lerp with a DQN learner (uniform scheme, tunes Level 1 only).
pub struct DqnLerp {
    agent: Dqn,
    /// `(state, action)` awaiting its reward.
    pending: Option<(Vec<f32>, usize)>,
    reward_scale: RewardScale,
    cost_ema: Option<f64>,
    alpha: f64,
    reward_smoothing: f64,
    stability_window: usize,
    min_tune_missions: usize,
    train_steps_per_mission: usize,
    greedy_targets: std::collections::VecDeque<u32>,
    missions_in_phase: usize,
    converged_k: Option<u32>,
    update_ns: u64,
}

impl DqnLerp {
    /// Creates the tuner with Lerp-equivalent hyperparameters.
    pub fn new(seed: u64) -> Self {
        let mut cfg = DqnConfig::paper_default(LEVEL_STATE_DIM, 3);
        cfg.seed = seed;
        Self {
            agent: Dqn::new(cfg),
            pending: None,
            reward_scale: RewardScale::default(),
            cost_ema: None,
            alpha: 0.85,
            reward_smoothing: 0.3,
            stability_window: 15,
            min_tune_missions: 60,
            train_steps_per_mission: 8,
            greedy_targets: std::collections::VecDeque::new(),
            missions_in_phase: 0,
            converged_k: None,
            update_ns: 0,
        }
    }

    /// The converged policy, if any.
    pub fn converged_policy(&self) -> Option<u32> {
        self.converged_k
    }
}

impl Tuner for DqnLerp {
    fn name(&self) -> String {
        "ruskey-lerp-dqn".into()
    }

    fn tune(&mut self, report: &MissionReport, obs: &TreeObservation) -> Vec<(usize, u32)> {
        let t0 = Instant::now();
        if obs.level_count == 0 {
            return Vec::new();
        }
        if let Some(k) = self.converged_k {
            // Maintain the propagated layout.
            let out = uniform_propagation(k, obs.size_ratio, obs.level_count)
                .into_iter()
                .enumerate()
                .filter(|&(l, want)| obs.policies.get(l) != Some(&want))
                .collect();
            self.update_ns += t0.elapsed().as_nanos() as u64;
            return out;
        }

        self.missions_in_phase += 1;
        let state = level_state(report, obs, 0);
        let raw_cost =
            self.alpha * report.level_ns_per_op(0) + (1.0 - self.alpha) * report.ns_per_op();
        let cost = match self.cost_ema {
            Some(prev) => {
                let c = (1.0 - self.reward_smoothing) * prev + self.reward_smoothing * raw_cost;
                self.cost_ema = Some(c);
                c
            }
            None => {
                self.cost_ema = Some(raw_cost);
                raw_cost
            }
        };
        let reward = self.reward_scale.reward(cost);

        if let Some((s, a)) = self.pending.take() {
            self.agent.observe(s, a, reward, state.clone());
            for _ in 0..self.train_steps_per_mission {
                self.agent.train_step();
            }
        }

        let current_k = obs.policies[0];
        let greedy_delta = self.agent.act(&state) as i64 - 1;
        let greedy_target =
            (current_k as i64 + greedy_delta).clamp(1, obs.size_ratio as i64) as u32;
        self.greedy_targets.push_back(greedy_target);
        while self.greedy_targets.len() > self.stability_window {
            self.greedy_targets.pop_front();
        }

        let action = self.agent.act_explore(&state);
        let delta = action as i64 - 1; // actions 0,1,2 -> ΔK -1,0,+1
        let new_k = (current_k as i64 + delta).clamp(1, obs.size_ratio as i64) as u32;
        self.pending = Some((state, action));

        let band_stable = self.greedy_targets.len() >= self.stability_window && {
            let min = *self.greedy_targets.iter().min().unwrap();
            let max = *self.greedy_targets.iter().max().unwrap();
            max - min <= 1
        };
        let out = if band_stable && self.missions_in_phase >= self.min_tune_missions {
            let mut sorted: Vec<u32> = self.greedy_targets.iter().copied().collect();
            sorted.sort_unstable();
            let k = sorted[sorted.len() / 2];
            self.converged_k = Some(k);
            uniform_propagation(k, obs.size_ratio, obs.level_count)
                .into_iter()
                .enumerate()
                .filter(|&(l, want)| obs.policies.get(l) != Some(&want))
                .collect()
        } else if new_k != current_k {
            vec![(0, new_k)]
        } else {
            Vec::new()
        };
        self.update_ns += t0.elapsed().as_nanos() as u64;
        out
    }

    fn model_update_ns(&self) -> u64 {
        self.update_ns
    }

    fn converged(&self) -> bool {
        self.converged_k.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::LevelMissionStats;

    fn obs(policies: Vec<u32>) -> TreeObservation {
        let n = policies.len();
        TreeObservation {
            policies,
            fills: vec![0.5; n],
            run_counts: vec![2; n],
            size_ratio: 10,
            level_count: n,
        }
    }

    fn report(cost: f64, levels: usize) -> MissionReport {
        MissionReport {
            ops: 1000,
            lookups: 500,
            updates: 500,
            end_to_end_ns: (cost * 1000.0) as u64,
            levels: vec![
                LevelMissionStats {
                    latency_ns: (cost * 500.0) as u64,
                    ..Default::default()
                };
                levels
            ],
            ..Default::default()
        }
    }

    #[test]
    fn converges_on_flat_cost_and_propagates() {
        let mut t = DqnLerp::new(7);
        let mut policies = vec![3u32, 3, 3];
        for _ in 0..400 {
            let r = report(1_000_000.0, policies.len());
            let changes = t.tune(&r, &obs(policies.clone()));
            for (l, k) in changes {
                policies[l] = k;
            }
            if t.converged() {
                break;
            }
        }
        assert!(t.converged(), "DQN Lerp failed to converge on a flat cost");
        let k = t.converged_policy().unwrap();
        assert!(policies.iter().all(|&p| p == k), "{policies:?} != {k}");
    }

    #[test]
    fn bounded_policies() {
        let mut t = DqnLerp::new(9);
        let mut policies = vec![1u32, 1];
        for _ in 0..50 {
            let r = report(1e6, 2);
            for (l, k) in t.tune(&r, &obs(policies.clone())) {
                assert!((1..=10).contains(&k));
                policies[l] = k;
            }
        }
    }

    #[test]
    fn handles_empty_tree() {
        let mut t = DqnLerp::new(1);
        let r = MissionReport::default();
        let o = TreeObservation {
            policies: vec![],
            fills: vec![],
            run_counts: vec![],
            size_ratio: 10,
            level_count: 0,
        };
        assert!(t.tune(&r, &o).is_empty());
    }
}
