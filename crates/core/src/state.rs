//! RL state featurization (paper §5.1.1).
//!
//! "The state captures the parameters related to the FLSM-tree and the
//! workload within a mission. Our model state consists of internal
//! statistics of the LSM-tree, such as the number of read and write I/Os,
//! the level capacities, and the current compaction policies at each level.
//! It also includes workload statistics such as the read/write ratio in the
//! previous mission."
//!
//! All features are normalized to roughly `[0, 1]` so one network
//! architecture works across levels and scales.

use crate::stats::MissionReport;
use crate::tuner::TreeObservation;

/// Number of features in a per-level state vector.
pub const LEVEL_STATE_DIM: usize = 6;

/// Builds the state vector for `level` from the last mission's report and
/// the current tree observation.
pub fn level_state(report: &MissionReport, obs: &TreeObservation, level: usize) -> Vec<f32> {
    let t = obs.size_ratio as f32;
    let policy = obs.policies.get(level).copied().unwrap_or(1) as f32;
    let fill = obs.fills.get(level).copied().unwrap_or(0.0) as f32;
    let runs = obs.run_counts.get(level).copied().unwrap_or(0) as f32;
    let gamma = report.gamma() as f32;
    let ops = report.ops.max(1) as f64;
    let (reads_per_op, writes_per_op) = report
        .levels
        .get(level)
        .map(|l| (l.pages_read as f64 / ops, l.pages_written as f64 / ops))
        .unwrap_or((0.0, 0.0));
    vec![
        policy / t,
        gamma,
        fill.clamp(0.0, 1.5),
        runs / t,
        squash(reads_per_op),
        squash(writes_per_op),
    ]
}

/// Builds the concatenated all-levels state used by the brute-force model
/// (the §7 "without a level-based model" comparison).
pub fn full_state(report: &MissionReport, obs: &TreeObservation, levels: usize) -> Vec<f32> {
    let mut s = Vec::with_capacity(levels * LEVEL_STATE_DIM);
    for lvl in 0..levels {
        s.extend(level_state(report, obs, lvl));
    }
    s
}

/// Smoothly maps `[0, ∞)` to `[0, 1)`: `x / (1 + x)`.
fn squash(x: f64) -> f32 {
    (x / (1.0 + x)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::LevelMissionStats;

    fn obs() -> TreeObservation {
        TreeObservation {
            policies: vec![2, 5],
            fills: vec![0.5, 0.9],
            run_counts: vec![2, 5],
            size_ratio: 10,
            level_count: 2,
        }
    }

    fn report() -> MissionReport {
        MissionReport {
            ops: 100,
            lookups: 50,
            updates: 50,
            levels: vec![
                LevelMissionStats {
                    pages_read: 100,
                    pages_written: 50,
                    ..Default::default()
                },
                LevelMissionStats {
                    pages_read: 300,
                    pages_written: 10,
                    ..Default::default()
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn features_are_normalized() {
        let s = level_state(&report(), &obs(), 0);
        assert_eq!(s.len(), LEVEL_STATE_DIM);
        for (i, v) in s.iter().enumerate() {
            assert!((0.0..=1.5).contains(v), "feature {i} = {v} out of range");
        }
        assert!((s[0] - 0.2).abs() < 1e-6); // policy 2 / T 10
        assert!((s[1] - 0.5).abs() < 1e-6); // gamma
    }

    #[test]
    fn missing_level_defaults() {
        let s = level_state(&report(), &obs(), 7);
        assert_eq!(s[0], 0.1); // default policy 1 / T 10
        assert_eq!(s[4], 0.0);
        assert_eq!(s[5], 0.0);
    }

    #[test]
    fn full_state_concatenates() {
        let s = full_state(&report(), &obs(), 2);
        assert_eq!(s.len(), 2 * LEVEL_STATE_DIM);
        assert_eq!(
            &s[..LEVEL_STATE_DIM],
            level_state(&report(), &obs(), 0).as_slice()
        );
    }

    #[test]
    fn squash_behaviour() {
        assert_eq!(squash(0.0), 0.0);
        assert!((squash(1.0) - 0.5).abs() < 1e-6);
        assert!(squash(1000.0) < 1.0);
    }
}
