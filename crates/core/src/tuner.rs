//! Compaction-policy tuners: the trait and every baseline the paper
//! compares against (§7).

use std::time::Instant;

use ruskey_rl::{Ddpg, DdpgConfig, Transition};

use crate::state::{full_state, LEVEL_STATE_DIM};
use crate::stats::MissionReport;

/// A read-only snapshot of the tree structure handed to tuners.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeObservation {
    /// Current policy per materialized level.
    pub policies: Vec<u32>,
    /// Fill ratio `D/C` per level.
    pub fills: Vec<f64>,
    /// Number of runs per level.
    pub run_counts: Vec<usize>,
    /// Capacity ratio `T`.
    pub size_ratio: u32,
    /// Number of materialized levels.
    pub level_count: usize,
}

/// A tuning model: observes each finished mission and proposes per-level
/// policy changes, applied by RusKey with the configured transition.
pub trait Tuner {
    /// Short name used in experiment output.
    fn name(&self) -> String;

    /// Observes the mission that just finished and returns `(level, K)`
    /// assignments to apply before the next mission.
    fn tune(&mut self, report: &MissionReport, obs: &TreeObservation) -> Vec<(usize, u32)>;

    /// Cumulative real time spent updating internal models (Fig. 13).
    fn model_update_ns(&self) -> u64 {
        0
    }

    /// Whether the tuner considers itself converged (used by ranking
    /// experiments that measure post-convergence performance).
    fn converged(&self) -> bool {
        true
    }
}

/// Keeps whatever policy the tree was built with.
#[derive(Debug, Default, Clone)]
pub struct NoOpTuner;

impl Tuner for NoOpTuner {
    fn name(&self) -> String {
        "noop".into()
    }

    fn tune(&mut self, _report: &MissionReport, _obs: &TreeObservation) -> Vec<(usize, u32)> {
        Vec::new()
    }
}

/// A fixed uniform policy: `K = 1` is the paper's *Aggressive*, `K = 5`
/// *Moderate*, `K = 10` (= `T`) *Lazy*.
#[derive(Debug, Clone)]
pub struct FixedPolicy {
    k: u32,
}

impl FixedPolicy {
    /// Fixed policy `k` at every level.
    pub fn new(k: u32) -> Self {
        Self { k }
    }

    /// The paper's Aggressive baseline (K = 1, leveling).
    pub fn aggressive() -> Self {
        Self::new(1)
    }

    /// The paper's Moderate baseline (K = 5).
    pub fn moderate() -> Self {
        Self::new(5)
    }

    /// The paper's Lazy baseline (K = 10, tiering at T = 10).
    pub fn lazy() -> Self {
        Self::new(10)
    }
}

impl Tuner for FixedPolicy {
    fn name(&self) -> String {
        format!("K={}", self.k)
    }

    fn tune(&mut self, _report: &MissionReport, obs: &TreeObservation) -> Vec<(usize, u32)> {
        (0..obs.level_count)
            .filter(|&l| obs.policies[l] != self.k)
            .map(|l| (l, self.k))
            .collect()
    }
}

/// Dostoevsky's Lazy-Leveling: tiering (`K = T`) everywhere except the
/// largest level, which uses leveling (`K = 1`). The state-of-the-art
/// hybrid baseline under the Monkey scheme (§7, Fig. 8).
#[derive(Debug, Default, Clone)]
pub struct LazyLeveling;

impl Tuner for LazyLeveling {
    fn name(&self) -> String {
        "lazy-leveling".into()
    }

    fn tune(&mut self, _report: &MissionReport, obs: &TreeObservation) -> Vec<(usize, u32)> {
        let last = obs.level_count.saturating_sub(1);
        (0..obs.level_count)
            .map(|l| (l, if l == last { 1 } else { obs.size_ratio }))
            .filter(|&(l, k)| obs.policies[l] != k)
            .collect()
    }
}

/// The greedy threshold heuristics of Fig. 12: a per-level detector compares
/// the level's lookup share against two thresholds and steps the policy by
/// ±1 accordingly.
#[derive(Debug, Clone)]
pub struct GreedyHeuristic {
    /// Below this lookup share the level is "write-heavy": increment K.
    pub h_bottom: f64,
    /// Above this lookup share the level is "read-heavy": decrement K.
    pub h_top: f64,
}

impl GreedyHeuristic {
    /// Creates a heuristic with thresholds `(h_bottom, h_top)` in percent
    /// (the paper labels settings like "Greedy, 33%, 67%").
    pub fn new(h_bottom_pct: f64, h_top_pct: f64) -> Self {
        assert!(h_bottom_pct <= h_top_pct);
        Self {
            h_bottom: h_bottom_pct / 100.0,
            h_top: h_top_pct / 100.0,
        }
    }

    /// All threshold settings evaluated in Fig. 12.
    pub fn paper_settings() -> Vec<GreedyHeuristic> {
        vec![
            GreedyHeuristic::new(50.0, 50.0),
            GreedyHeuristic::new(33.0, 67.0),
            GreedyHeuristic::new(25.0, 75.0),
            GreedyHeuristic::new(10.0, 90.0),
            GreedyHeuristic::new(25.0, 50.0),
            GreedyHeuristic::new(50.0, 75.0),
        ]
    }

    /// Lookup share observed at a level during the mission: probes versus
    /// compaction key participations.
    fn level_lookup_share(report: &MissionReport, level: usize) -> Option<f64> {
        let l = report.levels.get(level)?;
        let total = l.probes + l.compact_keys;
        if total == 0 {
            return None;
        }
        Some(l.probes as f64 / total as f64)
    }
}

impl Tuner for GreedyHeuristic {
    fn name(&self) -> String {
        format!(
            "greedy-{:.0}%-{:.0}%",
            self.h_bottom * 100.0,
            self.h_top * 100.0
        )
    }

    fn tune(&mut self, report: &MissionReport, obs: &TreeObservation) -> Vec<(usize, u32)> {
        let mut out = Vec::new();
        for lvl in 0..obs.level_count {
            let Some(share) = Self::level_lookup_share(report, lvl) else {
                continue;
            };
            let k = obs.policies[lvl];
            if share < self.h_bottom && k < obs.size_ratio {
                out.push((lvl, k + 1));
            } else if share > self.h_top && k > 1 {
                out.push((lvl, k - 1));
            }
        }
        out
    }
}

/// The brute-force RL model of the §7 impracticality study: one DDPG agent
/// whose action vector adjusts *every* level at once (no level-based
/// decomposition, no propagation). Action space `O(T^L)` instead of `O(L)`.
pub struct BruteForceLerp {
    agent: Ddpg,
    levels: usize,
    prev: Option<(Vec<f32>, Vec<f32>)>,
    reward_scale: RewardScale,
    update_ns: u64,
}

impl BruteForceLerp {
    /// Creates a brute-force tuner over a fixed number of levels.
    pub fn new(levels: usize, seed: u64) -> Self {
        let cfg = DdpgConfig {
            seed,
            ..DdpgConfig::paper_default(levels * LEVEL_STATE_DIM, levels)
        };
        Self {
            agent: Ddpg::new(cfg),
            levels,
            prev: None,
            reward_scale: RewardScale::default(),
            update_ns: 0,
        }
    }
}

impl Tuner for BruteForceLerp {
    fn name(&self) -> String {
        "brute-force-rl".into()
    }

    fn tune(&mut self, report: &MissionReport, obs: &TreeObservation) -> Vec<(usize, u32)> {
        let t0 = Instant::now();
        let state = full_state(report, obs, self.levels);
        let cost = report.ns_per_op();
        let reward = self.reward_scale.reward(cost);
        if let Some((s, a)) = self.prev.take() {
            self.agent.observe(Transition {
                state: s,
                action: a,
                reward,
                next_state: state.clone(),
                done: false,
            });
            self.agent.train_step();
        }
        let action = self.agent.act_explore(&state);
        let mut out = Vec::new();
        for (lvl, &a) in action
            .iter()
            .enumerate()
            .take(self.levels.min(obs.level_count))
        {
            let delta = action_to_delta(a);
            if delta != 0 {
                let k = (obs.policies[lvl] as i64 + delta as i64).clamp(1, obs.size_ratio as i64)
                    as u32;
                if k != obs.policies[lvl] {
                    out.push((lvl, k));
                }
            }
        }
        self.prev = Some((state, action));
        self.update_ns += t0.elapsed().as_nanos() as u64;
        out
    }

    fn model_update_ns(&self) -> u64 {
        self.update_ns
    }

    fn converged(&self) -> bool {
        false // brute force never reliably converges — that is the point
    }
}

/// The second §7 impracticality variant: per-level DDPG agents for *every*
/// level, trained simultaneously from their own level rewards, with **no
/// policy propagation**. Shallow levels receive plenty of feedback, but
/// deep levels compact exponentially less often, so their agents starve for
/// samples and fail to reach good policies (the paper observes failures
/// from Level 3 down).
pub struct PerLevelNoPropagation {
    agents: Vec<Ddpg>,
    pending: Vec<Option<(Vec<f32>, Vec<f32>)>>,
    reward_scales: Vec<RewardScale>,
    alpha: f64,
    update_ns: u64,
}

impl PerLevelNoPropagation {
    /// Creates agents for up to `max_levels` levels.
    pub fn new(max_levels: usize, seed: u64) -> Self {
        let agents: Vec<Ddpg> = (0..max_levels)
            .map(|i| {
                let mut cfg = DdpgConfig::paper_default(LEVEL_STATE_DIM, 1);
                cfg.seed = seed.wrapping_add(i as u64 * 104_729);
                cfg.warmup = 16;
                Ddpg::new(cfg)
            })
            .collect();
        Self {
            pending: vec![None; agents.len()],
            reward_scales: vec![RewardScale::default(); agents.len()],
            agents,
            alpha: 0.85,
            update_ns: 0,
        }
    }
}

impl Tuner for PerLevelNoPropagation {
    fn name(&self) -> String {
        "per-level-rl-no-propagation".into()
    }

    fn tune(&mut self, report: &MissionReport, obs: &TreeObservation) -> Vec<(usize, u32)> {
        let t0 = Instant::now();
        let mut out = Vec::new();
        let e2e = report.ns_per_op();
        for lvl in 0..self.agents.len().min(obs.level_count) {
            let state = crate::state::level_state(report, obs, lvl);
            let t_i = report.level_ns_per_op(lvl);
            let cost = self.alpha * t_i + (1.0 - self.alpha) * e2e;
            let reward = self.reward_scales[lvl].reward(cost);
            let agent = &mut self.agents[lvl];
            if let Some((s, a)) = self.pending[lvl].take() {
                agent.observe(Transition {
                    state: s,
                    action: a,
                    reward,
                    next_state: state.clone(),
                    done: false,
                });
                agent.train_step();
            }
            let action = agent.act_explore(&state);
            let delta = action_to_delta(action[0]);
            self.pending[lvl] = Some((state, action));
            if delta != 0 {
                let k = (obs.policies[lvl] as i64 + delta as i64).clamp(1, obs.size_ratio as i64)
                    as u32;
                if k != obs.policies[lvl] {
                    out.push((lvl, k));
                }
            }
        }
        self.update_ns += t0.elapsed().as_nanos() as u64;
        out
    }

    fn model_update_ns(&self) -> u64 {
        self.update_ns
    }

    fn converged(&self) -> bool {
        false
    }
}

/// Maps a continuous action in `[-1, 1]` to `ΔK ∈ {-1, 0, +1}` (§5.1.2:
/// only continuous policy changes are allowed).
pub fn action_to_delta(a: f32) -> i32 {
    if a < -1.0 / 3.0 {
        -1
    } else if a > 1.0 / 3.0 {
        1
    } else {
        0
    }
}

/// Normalizes raw mission costs into rewards of magnitude ~O(1).
///
/// The reward is `-(cost / scale)` where the scale is an exponential moving
/// average of observed costs — this keeps the reward meaningful both on
/// NVMe-fast and HDD-slow cost models without per-experiment tuning.
#[derive(Debug, Clone)]
pub struct RewardScale {
    ema: f64,
    alpha: f64,
}

impl Default for RewardScale {
    fn default() -> Self {
        Self {
            ema: 0.0,
            alpha: 0.05,
        }
    }
}

impl RewardScale {
    /// Converts a cost (ns/op) into a negative reward, updating the scale.
    ///
    /// Degenerate observations are skipped entirely: a zero-op mission
    /// slice reports a `0.0` ns/op cost (and a malformed one could report
    /// `NaN`/`inf`), which would otherwise drag the EMA toward zero — and
    /// with it every later reward toward the `-10` clamp. Idle shards are
    /// the *common* case under skewed per-shard tuning, so such costs
    /// return a neutral reward and leave the scale untouched.
    pub fn reward(&mut self, cost: f64) -> f32 {
        if !cost.is_finite() || cost <= 0.0 {
            return 0.0;
        }
        if self.ema == 0.0 {
            self.ema = cost.max(1e-9);
        } else {
            self.ema = (1.0 - self.alpha) * self.ema + self.alpha * cost;
        }
        (-(cost / self.ema.max(1e-9))).clamp(-10.0, 0.0) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::LevelMissionStats;

    fn obs(policies: Vec<u32>) -> TreeObservation {
        let n = policies.len();
        TreeObservation {
            policies,
            fills: vec![0.5; n],
            run_counts: vec![1; n],
            size_ratio: 10,
            level_count: n,
        }
    }

    fn report(gamma: f64) -> MissionReport {
        MissionReport {
            ops: 1000,
            lookups: (1000.0 * gamma) as u64,
            updates: (1000.0 * (1.0 - gamma)) as u64,
            end_to_end_ns: 1_000_000,
            levels: vec![LevelMissionStats::default(); 3],
            ..Default::default()
        }
    }

    #[test]
    fn fixed_policy_sets_all_levels_once() {
        let mut t = FixedPolicy::moderate();
        let changes = t.tune(&report(0.5), &obs(vec![1, 1, 1]));
        assert_eq!(changes, vec![(0, 5), (1, 5), (2, 5)]);
        // Already in force: no redundant changes.
        let changes = t.tune(&report(0.5), &obs(vec![5, 5, 5]));
        assert!(changes.is_empty());
    }

    #[test]
    fn lazy_leveling_shape() {
        let mut t = LazyLeveling;
        // Largest level already at K = 1: only the upper levels change.
        let changes = t.tune(&report(0.5), &obs(vec![1, 1, 1]));
        assert_eq!(changes, vec![(0, 10), (1, 10)]);
        // From a uniform K = 5 layout all three levels change.
        let changes = t.tune(&report(0.5), &obs(vec![5, 5, 5]));
        assert_eq!(changes, vec![(0, 10), (1, 10), (2, 1)]);
    }

    #[test]
    fn greedy_heuristic_steps_by_one() {
        let mut t = GreedyHeuristic::new(33.0, 67.0);
        let mut r = report(0.5);
        // Level 0: all probes (read-heavy) -> K down; level 1: all
        // compaction keys (write-heavy) -> K up; level 2: balanced -> hold.
        r.levels = vec![
            LevelMissionStats {
                probes: 100,
                compact_keys: 0,
                ..Default::default()
            },
            LevelMissionStats {
                probes: 0,
                compact_keys: 100,
                ..Default::default()
            },
            LevelMissionStats {
                probes: 50,
                compact_keys: 50,
                ..Default::default()
            },
        ];
        let changes = t.tune(&r, &obs(vec![5, 5, 5]));
        assert_eq!(changes, vec![(0, 4), (1, 6)]);
    }

    #[test]
    fn greedy_heuristic_respects_bounds() {
        let mut t = GreedyHeuristic::new(33.0, 67.0);
        let mut r = report(0.5);
        r.levels = vec![
            LevelMissionStats {
                probes: 100,
                ..Default::default()
            },
            LevelMissionStats {
                compact_keys: 100,
                ..Default::default()
            },
        ];
        let changes = t.tune(&r, &obs(vec![1, 10]));
        assert!(
            changes.is_empty(),
            "must not go below 1 or above T: {changes:?}"
        );
    }

    #[test]
    fn action_delta_thresholds() {
        assert_eq!(action_to_delta(-1.0), -1);
        assert_eq!(action_to_delta(-0.2), 0);
        assert_eq!(action_to_delta(0.0), 0);
        assert_eq!(action_to_delta(0.2), 0);
        assert_eq!(action_to_delta(0.9), 1);
    }

    #[test]
    fn reward_scale_normalizes() {
        let mut rs = RewardScale::default();
        let r1 = rs.reward(1e6);
        assert!((r1 + 1.0).abs() < 1e-6, "first reward ≈ -1, got {r1}");
        // A cost 10x the EMA gives a strongly negative (but clamped) reward.
        let r2 = rs.reward(1e7);
        assert!((-10.0..-5.0).contains(&r2));
    }

    /// Degenerate costs (zero-op slices, NaN, inf) must neither poison
    /// the EMA nor produce a non-neutral reward — an idle shard's slice
    /// is the common case under per-shard tuning with skew.
    #[test]
    fn reward_scale_skips_degenerate_costs() {
        let mut rs = RewardScale::default();
        assert_eq!(rs.reward(0.0), 0.0, "zero cost is neutral");
        assert_eq!(rs.reward(-5.0), 0.0, "negative cost is neutral");
        assert_eq!(rs.reward(f64::NAN), 0.0, "NaN cost is neutral");
        assert_eq!(rs.reward(f64::INFINITY), 0.0, "inf cost is neutral");
        // The scale is still unseeded: the first real cost normalizes to
        // ≈ -1 exactly as if the degenerate ones never happened.
        let r = rs.reward(1e6);
        assert!((r + 1.0).abs() < 1e-6, "EMA was poisoned: {r}");
        // And interleaved zero-op slices don't drag the EMA afterwards.
        rs.reward(0.0);
        let r2 = rs.reward(1e6);
        assert!((-1.2..=0.0).contains(&r2), "EMA drifted: {r2}");
        assert!(r2.is_finite());
    }

    #[test]
    fn per_level_no_propagation_bounded_and_never_converged() {
        let mut t = PerLevelNoPropagation::new(3, 9);
        for _ in 0..5 {
            let changes = t.tune(&report(0.5), &obs(vec![5, 5, 5]));
            for (lvl, k) in changes {
                assert!(lvl < 3);
                assert!((1..=10).contains(&k));
            }
        }
        assert!(!t.converged());
        assert!(t.model_update_ns() > 0);
        assert_eq!(t.name(), "per-level-rl-no-propagation");
    }

    #[test]
    fn brute_force_emits_bounded_changes() {
        let mut t = BruteForceLerp::new(3, 1);
        for i in 0..5 {
            let changes = t.tune(&report(0.5), &obs(vec![5, 5, 5]));
            for (lvl, k) in changes {
                assert!(lvl < 3);
                assert!((1..=10).contains(&k));
            }
            assert!(t.model_update_ns() > 0 || i == 0);
        }
        assert!(!t.converged());
    }

    #[test]
    fn noop_does_nothing() {
        let mut t = NoOpTuner;
        assert!(t.tune(&report(0.5), &obs(vec![1])).is_empty());
        assert_eq!(t.model_update_ns(), 0);
    }
}
