//! Experiment runner: the shared harness behind every figure and table.
//!
//! Runs a store (RusKey or a baseline) over a mission schedule, recording a
//! per-mission time series of latency, policy, and model cost — exactly the
//! series the paper plots.

use std::sync::Arc;

use ruskey_storage::{CostModel, SimulatedDisk, Storage};
use ruskey_workload::{bulk_load_pairs, DynamicWorkload, MissionStream, OpGenerator, WorkloadSpec};

use crate::db::{RusKey, RusKeyConfig};
use crate::stats::MissionReport;
use crate::tuner::Tuner;

/// One point of an experiment time series.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionRecord {
    /// Mission ordinal.
    pub mission: usize,
    /// Session index (0 for static workloads).
    pub session: usize,
    /// Mean latency per operation (virtual ms, as the paper plots).
    pub latency_ms_per_op: f64,
    /// Mission write latency total (virtual seconds) — Fig. 10(a).
    pub write_latency_s: f64,
    /// Mission read latency total (virtual seconds) — Fig. 10(b).
    pub read_latency_s: f64,
    /// Policy of Level 1 after tuning (the paper's policy trace subplots).
    pub policy_l1: u32,
    /// All per-level policies after tuning.
    pub policies: Vec<u32>,
    /// Model update time in real ns (Fig. 13).
    pub model_update_ns: u64,
    /// Real processing time of the mission in ns (Fig. 13).
    pub real_process_ns: u64,
    /// Whether the tuner reported convergence after this mission.
    pub converged: bool,
}

impl MissionRecord {
    fn from_report(report: &MissionReport, session: usize, converged: bool) -> Self {
        // Split the mission's virtual time into read- and write-attributed
        // shares using per-level accounting (lookups vs compactions); the
        // memtable/cpu remainder goes to writes.
        let lookup_ns: u64 = report.levels.iter().map(|l| l.lookup_ns).sum();
        let write_ns = report.end_to_end_ns.saturating_sub(lookup_ns);
        Self {
            mission: report.mission_idx as usize,
            session,
            latency_ms_per_op: report.ns_per_op() / 1e6,
            write_latency_s: write_ns as f64 / 1e9,
            read_latency_s: lookup_ns as f64 / 1e9,
            policy_l1: report.policies_after.first().copied().unwrap_or(1),
            policies: report.policies_after.clone(),
            model_update_ns: report.model_update_ns,
            real_process_ns: report.real_process_ns,
            converged,
        }
    }
}

/// Shared experiment scale parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// Entries bulk-loaded before the workload (paper: 100 M; scaled).
    pub load_entries: u64,
    /// Operations per mission (paper: 50 000; scaled).
    pub mission_size: usize,
    /// Missions per static experiment / per session.
    pub missions: usize,
    /// Key length in bytes.
    pub key_len: usize,
    /// Value length in bytes.
    pub value_len: usize,
    /// Storage page size.
    pub page_size: usize,
    /// Device cost model.
    pub cost: CostModel,
    /// Workload RNG seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// The default scaled-down experiment: ~20 k keys, 1 000-op missions.
    pub fn small() -> Self {
        Self {
            load_entries: 20_000,
            mission_size: 1000,
            missions: 120,
            key_len: 16,
            value_len: 112,
            page_size: 4096,
            cost: CostModel::NVME,
            seed: 42,
        }
    }

    /// A tiny scale for tests.
    pub fn tiny() -> Self {
        Self {
            load_entries: 2_000,
            mission_size: 200,
            missions: 20,
            ..Self::small()
        }
    }

    /// The workload spec implied by this scale.
    pub fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            key_space: self.load_entries,
            key_len: self.key_len,
            value_len: self.value_len,
            ..WorkloadSpec::scaled_default(self.load_entries)
        }
    }

    /// Creates a fresh simulated disk for one run.
    pub fn disk(&self) -> Arc<dyn Storage> {
        SimulatedDisk::new(self.page_size, self.cost)
    }
}

/// Builds a bulk-loaded store with the given tuner.
pub fn prepared_store(cfg: RusKeyConfig, scale: &ExperimentScale, tuner: Box<dyn Tuner>) -> RusKey {
    let mut db = RusKey::with_tuner(cfg, scale.disk(), tuner);
    db.bulk_load(bulk_load_pairs(
        scale.load_entries,
        scale.key_len,
        scale.value_len,
        scale.seed,
    ));
    db
}

/// Runs a static-mix experiment and returns the mission series.
pub fn run_static(
    cfg: RusKeyConfig,
    scale: &ExperimentScale,
    tuner: Box<dyn Tuner>,
    spec: WorkloadSpec,
) -> Vec<MissionRecord> {
    let mut db = prepared_store(cfg, scale, tuner);
    let generator = OpGenerator::new(spec, scale.seed.wrapping_add(1));
    let mut missions = MissionStream::new(generator, scale.mission_size);
    let mut out = Vec::with_capacity(scale.missions);
    for _ in 0..scale.missions {
        let ops = missions.next_mission();
        let report = db.run_mission(&ops);
        out.push(MissionRecord::from_report(&report, 0, db.tuner_converged()));
    }
    out
}

/// Runs a dynamic multi-session experiment (Fig. 7 style).
pub fn run_dynamic(
    cfg: RusKeyConfig,
    scale: &ExperimentScale,
    tuner: Box<dyn Tuner>,
    mut workload: DynamicWorkload,
) -> Vec<MissionRecord> {
    let mut db = prepared_store(cfg, scale, tuner);
    let mut out = Vec::with_capacity(workload.total_missions());
    while let Some((session, ops)) = workload.next_mission() {
        let report = db.run_mission(&ops);
        out.push(MissionRecord::from_report(
            &report,
            session,
            db.tuner_converged(),
        ));
    }
    out
}

/// Mean latency per op (ms) over the converged tail of a series — the
/// paper's ranking metric ("average time cost per operation after the RL
/// model is converged in each session").
pub fn converged_mean_latency(records: &[MissionRecord], tail_fraction: f64) -> f64 {
    assert!(!records.is_empty());
    let tail = ((records.len() as f64 * tail_fraction).ceil() as usize).clamp(1, records.len());
    let slice = &records[records.len() - tail..];
    slice.iter().map(|r| r.latency_ms_per_op).sum::<f64>() / slice.len() as f64
}

/// Ranks methods by a metric (1 = best/lowest). Ties share the better rank.
pub fn rank(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
    let mut ranks = vec![0usize; values.len()];
    for (pos, &i) in idx.iter().enumerate() {
        // Share rank with equal-valued predecessors.
        if pos > 0 && (values[i] - values[idx[pos - 1]]).abs() < 1e-12 {
            ranks[i] = ranks[idx[pos - 1]];
        } else {
            ranks[i] = pos + 1;
        }
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::{FixedPolicy, NoOpTuner};
    use ruskey_workload::OpMix;

    fn quick_cfg() -> RusKeyConfig {
        let mut cfg = RusKeyConfig::scaled_default();
        cfg.lsm.buffer_bytes = 8192;
        cfg.lsm.size_ratio = 5;
        cfg
    }

    #[test]
    fn static_run_produces_series() {
        let scale = ExperimentScale::tiny();
        let spec = scale.spec().with_mix(OpMix::balanced());
        let records = run_static(quick_cfg(), &scale, Box::new(NoOpTuner), spec);
        assert_eq!(records.len(), scale.missions);
        assert!(records.iter().all(|r| r.latency_ms_per_op > 0.0));
        assert!(records.iter().all(|r| r.session == 0));
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.mission, i);
        }
    }

    #[test]
    fn aggressive_beats_lazy_on_reads() {
        // The core trade-off the whole paper rests on: K=1 must out-read
        // K=T, and K=T must out-write K=1.
        let scale = ExperimentScale {
            load_entries: 4000,
            mission_size: 400,
            missions: 12,
            ..ExperimentScale::tiny()
        };
        let read_spec = scale.spec().with_mix(OpMix::reads(0.95));
        let r_aggr = run_static(
            quick_cfg(),
            &scale,
            Box::new(FixedPolicy::new(1)),
            read_spec.clone(),
        );
        let r_lazy = run_static(
            quick_cfg(),
            &scale,
            Box::new(FixedPolicy::new(5)),
            read_spec,
        );
        let a = converged_mean_latency(&r_aggr, 0.5);
        let l = converged_mean_latency(&r_lazy, 0.5);
        assert!(a < l, "aggressive {a} should beat lazy {l} on reads");

        let write_spec = scale.spec().with_mix(OpMix::reads(0.05));
        let w_aggr = run_static(
            quick_cfg(),
            &scale,
            Box::new(FixedPolicy::new(1)),
            write_spec.clone(),
        );
        let w_lazy = run_static(
            quick_cfg(),
            &scale,
            Box::new(FixedPolicy::new(5)),
            write_spec,
        );
        let a = converged_mean_latency(&w_aggr, 0.5);
        let l = converged_mean_latency(&w_lazy, 0.5);
        assert!(l < a, "lazy {l} should beat aggressive {a} on writes");
    }

    #[test]
    fn rank_handles_ties() {
        assert_eq!(rank(&[3.0, 1.0, 2.0]), vec![3, 1, 2]);
        assert_eq!(rank(&[1.0, 1.0, 2.0]), vec![1, 1, 3]);
    }

    #[test]
    fn converged_tail_mean() {
        let mk = |l: f64| MissionRecord {
            mission: 0,
            session: 0,
            latency_ms_per_op: l,
            write_latency_s: 0.0,
            read_latency_s: 0.0,
            policy_l1: 1,
            policies: vec![],
            model_update_ns: 0,
            real_process_ns: 0,
            converged: true,
        };
        let records = vec![mk(10.0), mk(2.0), mk(4.0)];
        assert!((converged_mean_latency(&records, 0.5) - 3.0).abs() < 1e-9);
        assert!((converged_mean_latency(&records, 1.0) - 16.0 / 3.0).abs() < 1e-9);
    }
}
