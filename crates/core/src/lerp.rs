//! **Lerp** — the Level-based Reinforcement-learning model with policy
//! Propagation (paper §5).
//!
//! Lerp trains one small DDPG agent per *tuned* level; actions are
//! restricted to `ΔK ∈ {-1, 0, +1}` (shrinking the action space from
//! `O(T^L)` to `O(L)`, §5.1.2); the reward mixes the level-based latency
//! `t_i` with the end-to-end latency `t'` as `-(α·t_i + (1−α)·t')`
//! (§5.1.3). Training data comes only from the shallow levels, where
//! feedback is frequent; deep levels are *propagated*:
//!
//! * **Uniform bits-per-key** (Case 1): tune Level 1, then copy its policy
//!   to every level;
//! * **Monkey** (Case 2): tune Level 1, then Level 2, then infer all deeper
//!   levels with Lemma 5.1.
//!
//! Once converged, Lerp watches the workload composition; a shift (§3.1)
//! knocks it out of convergence and it retunes.

use std::time::Instant;

use ruskey_analysis::propagation::{propagate_rounded, uniform_propagation};
use ruskey_rl::{Ddpg, DdpgConfig, Transition};

use crate::state::{level_state, LEVEL_STATE_DIM};
use crate::stats::MissionReport;
use crate::tuner::{action_to_delta, RewardScale, TreeObservation, Tuner};

/// Which Bloom-filter scheme governs propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationScheme {
    /// Case 1: uniform bits-per-key — copy Level 1's policy everywhere.
    Uniform,
    /// Case 2: Monkey — tune Levels 1–2, infer the rest via Lemma 5.1.
    Monkey,
}

/// Lerp hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LerpConfig {
    /// Reward mix weight `α` between level latency and end-to-end latency
    /// (paper §7 sets 1/2).
    pub alpha: f64,
    /// Propagation scheme, matching the tree's Bloom configuration.
    pub scheme: PropagationScheme,
    /// Missions with an unchanged policy before a level counts as
    /// converged.
    pub stability_window: usize,
    /// Minimum missions a level must be tuned before it may converge
    /// (prevents locking in a policy before the agent has trained).
    pub min_tune_missions: usize,
    /// DDPG gradient steps per mission (experience is replayed, so several
    /// steps per environment sample accelerate convergence).
    pub train_steps_per_mission: usize,
    /// Workload-shift detection threshold on the lookup-ratio EMA.
    pub shift_threshold: f64,
    /// EMA coefficient for the lookup-ratio tracker.
    pub gamma_ema_alpha: f64,
    /// Initial exploration noise σ.
    pub initial_noise: f32,
    /// Per-mission multiplicative noise decay.
    pub noise_decay: f32,
    /// Noise floor.
    pub min_noise: f32,
    /// Initial ε for ε-greedy exploration (a uniformly random `ΔK` with
    /// probability ε). Additive noise alone cannot escape a saturated
    /// actor; ε-greedy guarantees coverage of the policy ladder.
    pub epsilon_initial: f32,
    /// Per-mission multiplicative ε decay.
    pub epsilon_decay: f32,
    /// ε floor.
    pub epsilon_min: f32,
    /// Drop replayed experience when the workload shifts.
    pub clear_replay_on_shift: bool,
    /// EMA coefficient for reward smoothing: per-mission costs are spiky
    /// (a deep compaction can cost 10× a normal mission), so the reward is
    /// computed on a short EMA of the mission cost.
    pub reward_smoothing: f64,
    /// DDPG discount factor; policy tuning is close to a contextual bandit,
    /// so a modest discount keeps TD targets low-variance.
    pub rl_gamma: f32,
    /// DDPG seed (agents derive per-level seeds from it).
    pub seed: u64,
}

impl LerpConfig {
    /// Paper-style defaults (α = 1/2, 3×128 ReLU networks inside DDPG).
    pub fn paper_default(scheme: PropagationScheme) -> Self {
        Self {
            // The paper uses α = 1/2. At our scaled-down mission size the
            // end-to-end term is dominated by deep-compaction bursts whose
            // period spans many missions, so the level-local term gets a
            // higher weight to keep the per-mission reward informative
            // (see EXPERIMENTS.md, "Reward weighting at reduced scale").
            alpha: 0.85,
            scheme,
            stability_window: 15,
            min_tune_missions: 60,
            train_steps_per_mission: 8,
            shift_threshold: 0.12,
            gamma_ema_alpha: 0.25,
            initial_noise: 0.4,
            noise_decay: 0.985,
            min_noise: 0.02,
            epsilon_initial: 0.4,
            epsilon_decay: 0.99,
            epsilon_min: 0.03,
            clear_replay_on_shift: true,
            reward_smoothing: 0.3,
            rl_gamma: 0.6,
            seed: 42,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Tuning agent `agent_idx` (0 tunes Level 1, 1 tunes Level 2).
    Tune { agent_idx: usize },
    /// All tuned levels stable; propagation applied and maintained.
    Converged,
}

/// The Lerp tuning model.
pub struct Lerp {
    cfg: LerpConfig,
    agents: Vec<Ddpg>,
    reward_scales: Vec<RewardScale>,
    phase: Phase,
    /// `(state, action)` awaiting its reward, per agent.
    pending: Option<(Vec<f32>, Vec<f32>)>,
    /// Missions spent tuning the current level.
    missions_in_phase: usize,
    /// Recent *greedy* policy targets (exploration-free preference of the
    /// actor), used for convergence detection.
    greedy_targets: std::collections::VecDeque<u32>,
    /// EMA-smoothed mission cost per agent.
    cost_ema: Vec<Option<f64>>,
    /// Current ε for ε-greedy exploration.
    epsilon: f32,
    /// RNG for ε-greedy draws.
    rng: rand::rngs::StdRng,
    /// Learned policies of tuned levels (filled as levels converge).
    learned: Vec<u32>,
    gamma_ema: Option<f64>,
    gamma_ref: Option<f64>,
    update_ns: u64,
    restarts: u64,
    missions_seen: u64,
}

impl Lerp {
    /// Creates a Lerp model.
    pub fn new(cfg: LerpConfig) -> Self {
        let n_agents = match cfg.scheme {
            PropagationScheme::Uniform => 1,
            PropagationScheme::Monkey => 2,
        };
        let agents = (0..n_agents)
            .map(|i| {
                let mut dc = DdpgConfig::paper_default(LEVEL_STATE_DIM, 1);
                dc.seed = cfg.seed.wrapping_add(i as u64 * 7919);
                dc.noise_sigma = cfg.initial_noise;
                dc.warmup = 16;
                dc.gamma = cfg.rl_gamma;
                Ddpg::new(dc)
            })
            .collect();
        let reward_scales = vec![RewardScale::default(); n_agents];
        use rand::SeedableRng;
        Self {
            cost_ema: vec![None; n_agents],
            epsilon: cfg.epsilon_initial,
            rng: rand::rngs::StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9)),
            cfg,
            agents,
            reward_scales,
            phase: Phase::Tune { agent_idx: 0 },
            pending: None,
            missions_in_phase: 0,
            greedy_targets: std::collections::VecDeque::new(),
            learned: Vec::new(),
            gamma_ema: None,
            gamma_ref: None,
            update_ns: 0,
            restarts: 0,
            missions_seen: 0,
        }
    }

    /// Number of times a workload shift forced retuning.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Number of missions observed.
    pub fn missions_seen(&self) -> u64 {
        self.missions_seen
    }

    /// The policies learned for the tuned shallow levels so far.
    pub fn learned_policies(&self) -> &[u32] {
        &self.learned
    }

    /// The level currently being tuned, or `None` once converged.
    pub fn tuning_level(&self) -> Option<usize> {
        match self.phase {
            Phase::Tune { agent_idx } => Some(agent_idx),
            Phase::Converged => None,
        }
    }

    fn restart(&mut self) {
        self.phase = Phase::Tune { agent_idx: 0 };
        self.pending = None;
        self.missions_in_phase = 0;
        self.greedy_targets.clear();
        self.learned.clear();
        self.gamma_ref = None;
        self.cost_ema.iter_mut().for_each(|c| *c = None);
        self.epsilon = self.cfg.epsilon_initial;
        self.restarts += 1;
        for agent in &mut self.agents {
            agent.set_noise_sigma(self.cfg.initial_noise);
            if self.cfg.clear_replay_on_shift {
                agent.clear_replay();
            }
        }
    }

    /// Desired policy for every materialized level given the learned
    /// shallow policies.
    fn propagated_policies(&self, obs: &TreeObservation) -> Vec<u32> {
        let t = obs.size_ratio;
        let n = obs.level_count;
        match self.cfg.scheme {
            PropagationScheme::Uniform => {
                let k1 = self.learned.first().copied().unwrap_or(1);
                uniform_propagation(k1, t, n)
            }
            PropagationScheme::Monkey => {
                let k1 = self.learned.first().copied().unwrap_or(1);
                let k2 = self.learned.get(1).copied().unwrap_or(k1);
                propagate_rounded(k1, k2, t, n.max(2))[..n].to_vec()
            }
        }
    }

    fn mission_cost(&self, report: &MissionReport, level: usize) -> f64 {
        let t_i = report.level_ns_per_op(level);
        let t_e2e = report.ns_per_op();
        self.cfg.alpha * t_i + (1.0 - self.cfg.alpha) * t_e2e
    }
}

impl Tuner for Lerp {
    fn name(&self) -> String {
        match self.cfg.scheme {
            PropagationScheme::Uniform => "ruskey-lerp".into(),
            PropagationScheme::Monkey => "ruskey-lerp-monkey".into(),
        }
    }

    fn tune(&mut self, report: &MissionReport, obs: &TreeObservation) -> Vec<(usize, u32)> {
        let t0 = Instant::now();
        self.missions_seen += 1;

        // ---- Workload tracking and shift detection (§3.1).
        let g = report.gamma();
        let ema = match self.gamma_ema {
            Some(prev) => {
                let e = (1.0 - self.cfg.gamma_ema_alpha) * prev + self.cfg.gamma_ema_alpha * g;
                self.gamma_ema = Some(e);
                e
            }
            None => {
                self.gamma_ema = Some(g);
                g
            }
        };
        if self.phase == Phase::Converged {
            if let Some(reference) = self.gamma_ref {
                if (ema - reference).abs() > self.cfg.shift_threshold {
                    self.restart();
                }
            }
        }

        let changes = match self.phase {
            Phase::Tune { agent_idx } => {
                let level = agent_idx; // agent i tunes level i
                if level >= obs.level_count {
                    self.update_ns += t0.elapsed().as_nanos() as u64;
                    return Vec::new();
                }
                let state = level_state(report, obs, level);
                let raw_cost = self.mission_cost(report, level);
                // Smooth out compaction bursts before shaping the reward.
                let a = self.cfg.reward_smoothing.clamp(0.01, 1.0);
                let cost = match self.cost_ema[agent_idx] {
                    Some(prev) => {
                        let c = (1.0 - a) * prev + a * raw_cost;
                        self.cost_ema[agent_idx] = Some(c);
                        c
                    }
                    None => {
                        self.cost_ema[agent_idx] = Some(raw_cost);
                        raw_cost
                    }
                };
                let reward = self.reward_scales[agent_idx].reward(cost);

                self.missions_in_phase += 1;
                let agent = &mut self.agents[agent_idx];
                if let Some((s, a)) = self.pending.take() {
                    agent.observe(Transition {
                        state: s,
                        action: a,
                        reward,
                        next_state: state.clone(),
                        done: false,
                    });
                    for _ in 0..self.cfg.train_steps_per_mission.max(1) {
                        agent.train_step();
                    }
                }
                // Convergence is judged on the actor's *greedy* preference
                // (its exploration-free policy target), so ε-greedy and OU
                // noise do not mask a converged policy.
                let current_k = obs.policies[level];
                let greedy_delta = action_to_delta(agent.act(&state)[0]);
                let greedy_target =
                    (current_k as i64 + greedy_delta as i64).clamp(1, obs.size_ratio as i64) as u32;
                self.greedy_targets.push_back(greedy_target);
                while self.greedy_targets.len() > self.cfg.stability_window {
                    self.greedy_targets.pop_front();
                }

                let action = if rand::Rng::gen::<f32>(&mut self.rng) < self.epsilon {
                    // ε-greedy: a uniformly random ΔK, encoded as a
                    // representative continuous action for the replay.
                    let delta: i32 = rand::Rng::gen_range(&mut self.rng, -1..=1);
                    vec![delta as f32 * 0.8]
                } else {
                    agent.act_explore(&state)
                };
                let sigma = (agent.noise_sigma() * self.cfg.noise_decay).max(self.cfg.min_noise);
                agent.set_noise_sigma(sigma);
                self.epsilon = (self.epsilon * self.cfg.epsilon_decay).max(self.cfg.epsilon_min);

                let delta = action_to_delta(action[0]);
                let new_k =
                    (current_k as i64 + delta as i64).clamp(1, obs.size_ratio as i64) as u32;
                self.pending = Some((state, action));

                let mut out: Vec<(usize, u32)> = if new_k != current_k {
                    vec![(level, new_k)]
                } else {
                    Vec::new()
                };

                // Converged when the greedy targets have stayed within a
                // two-policy band for a full window (the actor's preference
                // stopped moving), after the minimum tuning period.
                let band_stable = self.greedy_targets.len() >= self.cfg.stability_window && {
                    let min = *self.greedy_targets.iter().min().unwrap();
                    let max = *self.greedy_targets.iter().max().unwrap();
                    max - min <= 1
                };
                if band_stable && self.missions_in_phase >= self.cfg.min_tune_missions {
                    // This level converged: adopt the window's median target.
                    let mut sorted: Vec<u32> = self.greedy_targets.iter().copied().collect();
                    sorted.sort_unstable();
                    let learned_k = sorted[sorted.len() / 2];
                    self.learned.push(learned_k);
                    out = vec![(level, learned_k)];
                    self.pending = None;
                    self.missions_in_phase = 0;
                    self.greedy_targets.clear();
                    if self.learned.len() < self.agents.len() {
                        self.phase = Phase::Tune {
                            agent_idx: agent_idx + 1,
                        };
                    } else {
                        self.phase = Phase::Converged;
                        self.gamma_ref = Some(ema);
                        // Transfer the learned policies everywhere.
                        let want = self.propagated_policies(obs);
                        out = want
                            .into_iter()
                            .enumerate()
                            .filter(|&(l, k)| obs.policies.get(l) != Some(&k))
                            .collect();
                    }
                }
                out
            }
            Phase::Converged => {
                // Maintain the propagated layout (covers levels created
                // after convergence).
                self.propagated_policies(obs)
                    .into_iter()
                    .enumerate()
                    .filter(|&(l, k)| obs.policies.get(l) != Some(&k))
                    .collect()
            }
        };

        self.update_ns += t0.elapsed().as_nanos() as u64;
        changes
    }

    fn model_update_ns(&self) -> u64 {
        self.update_ns
    }

    fn converged(&self) -> bool {
        self.phase == Phase::Converged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::LevelMissionStats;

    fn obs(policies: Vec<u32>) -> TreeObservation {
        let n = policies.len();
        TreeObservation {
            policies,
            fills: vec![0.5; n],
            run_counts: vec![2; n],
            size_ratio: 10,
            level_count: n,
        }
    }

    /// A synthetic environment: per-op cost is minimized at `k_opt`.
    fn synthetic_report(gamma: f64, policies: &[u32], k_opt: u32) -> MissionReport {
        let k = policies[0] as f64;
        let cost = 1000.0 + 300.0 * (k - k_opt as f64).abs();
        MissionReport {
            ops: 1000,
            lookups: (1000.0 * gamma) as u64,
            updates: (1000.0 * (1.0 - gamma)) as u64,
            end_to_end_ns: (cost * 1000.0) as u64,
            levels: vec![
                LevelMissionStats {
                    latency_ns: (cost * 500.0) as u64,
                    ..Default::default()
                };
                policies.len()
            ],
            ..Default::default()
        }
    }

    fn drive(lerp: &mut Lerp, policies: &mut [u32], gamma: f64, k_opt: u32, missions: usize) {
        for _ in 0..missions {
            let report = synthetic_report(gamma, policies, k_opt);
            let changes = lerp.tune(&report, &obs(policies.to_vec()));
            for (l, k) in changes {
                if l < policies.len() {
                    policies[l] = k;
                }
            }
            if lerp.converged() {
                break;
            }
        }
    }

    #[test]
    fn starts_tuning_level_one() {
        let lerp = Lerp::new(LerpConfig::paper_default(PropagationScheme::Uniform));
        assert_eq!(lerp.tuning_level(), Some(0));
        assert!(!lerp.converged());
    }

    #[test]
    fn uniform_converges_and_propagates() {
        let mut lerp = Lerp::new(LerpConfig::paper_default(PropagationScheme::Uniform));
        let mut policies = vec![1u32, 1, 1];
        drive(&mut lerp, &mut policies, 0.5, 1, 400);
        assert!(lerp.converged(), "did not converge in 400 missions");
        // Propagation makes all levels share Level 1's learned policy.
        assert!(policies.iter().all(|&k| k == policies[0]), "{policies:?}");
    }

    #[test]
    fn monkey_tunes_two_levels_then_propagates() {
        let mut lerp = Lerp::new(LerpConfig::paper_default(PropagationScheme::Monkey));
        let mut policies = vec![5u32, 5, 5, 5];
        drive(&mut lerp, &mut policies, 0.5, 5, 800);
        assert!(lerp.converged(), "did not converge");
        assert_eq!(lerp.learned_policies().len(), 2);
        // Whatever the RL settled on, the deep levels must follow Lemma 5.1
        // exactly from the two learned policies.
        let k1 = lerp.learned_policies()[0];
        let k2 = lerp.learned_policies()[1];
        let want = ruskey_analysis::propagation::propagate_rounded(k1, k2, 10, 4);
        assert_eq!(
            policies, want,
            "propagated layout mismatch (k1={k1}, k2={k2})"
        );
    }

    #[test]
    fn workload_shift_triggers_restart() {
        let mut lerp = Lerp::new(LerpConfig::paper_default(PropagationScheme::Uniform));
        let mut policies = vec![3u32, 3];
        drive(&mut lerp, &mut policies, 0.9, 3, 400);
        assert!(lerp.converged());
        assert_eq!(lerp.restarts(), 0);
        // Shift read-heavy -> write-heavy; the EMA crosses the threshold
        // within a few missions and Lerp restarts tuning.
        for _ in 0..20 {
            let report = synthetic_report(0.1, &policies, 3);
            let _ = lerp.tune(&report, &obs(policies.clone()));
            if !lerp.converged() {
                break;
            }
        }
        assert!(!lerp.converged(), "shift not detected");
        assert_eq!(lerp.restarts(), 1);
    }

    #[test]
    fn stable_workload_stays_converged() {
        let mut lerp = Lerp::new(LerpConfig::paper_default(PropagationScheme::Uniform));
        let mut policies = vec![2u32, 2];
        drive(&mut lerp, &mut policies, 0.5, 2, 400);
        assert!(lerp.converged());
        for _ in 0..50 {
            let report = synthetic_report(0.5, &policies, 2);
            let changes = lerp.tune(&report, &obs(policies.to_vec()));
            for (l, k) in changes {
                policies[l] = k;
            }
        }
        assert!(lerp.converged());
        assert_eq!(lerp.restarts(), 0);
    }

    #[test]
    fn model_update_time_is_recorded() {
        let mut lerp = Lerp::new(LerpConfig::paper_default(PropagationScheme::Uniform));
        let policies = vec![1u32, 1];
        let report = synthetic_report(0.5, &policies, 1);
        let _ = lerp.tune(&report, &obs(policies));
        assert!(lerp.model_update_ns() > 0);
    }

    #[test]
    fn handles_empty_tree() {
        let mut lerp = Lerp::new(LerpConfig::paper_default(PropagationScheme::Uniform));
        let report = MissionReport::default();
        let o = TreeObservation {
            policies: vec![],
            fills: vec![],
            run_counts: vec![],
            size_ratio: 10,
            level_count: 0,
        };
        assert!(lerp.tune(&report, &o).is_empty());
    }
}
