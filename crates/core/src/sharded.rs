//! The sharded engine core: hash-partitioned FLSM shards behind one store.
//!
//! [`ShardedRusKey`] scales the single-tree [`RusKey`](crate::db::RusKey)
//! across cores: keys are hash-partitioned onto `N` independent
//! [`FlsmTree`] shards (each with its own memtable and levels) that share
//! one storage device, and missions execute in parallel with
//! [`std::thread::scope`] — one worker per shard, operations routed by the
//! stable key hash of [`ruskey_workload::routing`]. Cross-shard range
//! scans are k-way merged back into one sorted result.
//!
//! Tuning stays *global*, exactly as in the paper: per-shard
//! [`TreeStatsSnapshot`]s are merged into one store-wide view, a single
//! [`Tuner`] (Lerp or a baseline) observes the aggregated
//! [`MissionReport`]/[`TreeObservation`], and its policy changes fan out
//! to every shard. A one-shard store is behaviourally identical to
//! [`RusKey`](crate::db::RusKey) — all paper experiments remain valid.
//!
//! ## Time domains: exact accounting under parallelism
//!
//! Each shard owns a private **time domain**: its tree runs on a
//! [`ShardStorage`](ruskey_storage::ShardStorage) view whose
//! [`VirtualClock`](ruskey_storage::VirtualClock) and metrics receive only
//! that shard's charges, while the shared device underneath aggregates
//! everything (device-busy time). Per-level `lookup_ns`/`compact_ns`
//! windows therefore observe exactly one shard's work at any `N` —
//! concurrent siblings can no longer pollute the attribution the RL
//! reward depends on. At the store level the domains compose two ways:
//!
//! * **mission wall time** ([`MissionReport::end_to_end_ns`]) — the max
//!   over the participating shards' per-domain deltas (the mission is as
//!   slow as its busiest shard);
//! * **device-busy time** ([`MissionReport::device_busy_ns`]) — the sum
//!   over the domains (total virtual work placed on the shared device).
//!
//! The [`StatsCollector`] deltas every shard against its *own* baseline
//! before composing, which is what makes both readings exact. Ad-hoc
//! point/scan calls between missions fold into the next mission's delta
//! (as they always have); broadcast scans among them are tracked so the
//! report still counts every scan logically once.
//!
//! ## Durability: per-shard WALs + cross-shard group commit
//!
//! A store opened with [`ShardedRusKey::try_with_tuner_durable`] gives
//! every shard its own WAL file ([`DurabilityConfig::shard_wal_path`]):
//! shard workers append each put/delete to their log *before* the
//! memtable insert, without syncing per record. Every mission then ends
//! with a **group-commit barrier** ([`ShardedRusKey::group_commit`]) that
//! fsyncs each shard's log at most once — the batch's records become
//! acknowledged together, paying one sync per shard per mission instead
//! of one per record. The barrier's cost and counters surface through
//! [`MissionReport::{wal_appends, wal_syncs, wal_synced, commit_ns}`] and
//! `TreeStatsSnapshot`, so the tuner and the `repro durability`
//! experiment see exactly what durability costs. After a crash,
//! [`ShardedRusKey::recover`] replays every shard's log (valid prefix
//! only, order pinned by record sequence numbers) into fresh trees;
//! `tests/crash_recovery.rs` pins the recovery contract at every
//! [`ruskey_lsm::CrashPoint`] for `N ∈ {1, 2, 4}`.

use std::collections::BinaryHeap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bytes::Bytes;
use ruskey_lsm::{ConfigError, FlsmTree, TreeStatsSnapshot, Wal};
use ruskey_storage::{ShardStorage, Storage};
use ruskey_workload::routing::{partition_ops, shard_for_key};
use ruskey_workload::Operation;

use crate::db::{execute_op, RusKeyConfig};
use crate::lerp::Lerp;
use crate::stats::{MissionReport, StatsCollector};
use crate::tuner::{NoOpTuner, TreeObservation, Tuner};

/// Durability settings of a sharded store: where the per-shard WAL files
/// live and how eagerly each shard fsyncs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Directory holding one WAL file per shard (`shard-<i>.wal`);
    /// created if absent.
    pub dir: PathBuf,
    /// Per-shard auto-fsync cadence (records); 0 relies solely on the
    /// cross-shard group-commit barrier at mission boundaries — the
    /// default, and the cheapest policy: one sync per shard per batch.
    pub sync_every: u64,
}

impl DurabilityConfig {
    /// Group-commit-only durability (no per-record auto-sync) with WALs
    /// under `dir`.
    pub fn group_commit(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            sync_every: 0,
        }
    }

    /// The WAL file path of one shard.
    pub fn shard_wal_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.wal"))
    }
}

/// Why a durable store could not be opened or recovered.
#[derive(Debug)]
pub enum OpenError {
    /// The LSM configuration was rejected.
    Config(ConfigError),
    /// A WAL file could not be created, read, or truncated.
    Io(std::io::Error),
    /// Recovery found shard logs beyond the requested shard count —
    /// proceeding would silently drop their acknowledged writes.
    ShardCountMismatch {
        /// Number of shard logs the directory describes (highest
        /// `shard-<i>.wal` index + 1).
        logs: usize,
        /// The shard count recovery was asked for.
        shards: usize,
    },
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Config(e) => write!(f, "invalid configuration: {e}"),
            OpenError::Io(e) => write!(f, "WAL I/O failed: {e}"),
            OpenError::ShardCountMismatch { logs, shards } => write!(
                f,
                "log directory describes {logs} shards but recovery was asked \
                 for {shards}; recovering would drop acknowledged writes"
            ),
        }
    }
}

impl std::error::Error for OpenError {}

impl From<ConfigError> for OpenError {
    fn from(e: ConfigError) -> Self {
        OpenError::Config(e)
    }
}

impl From<std::io::Error> for OpenError {
    fn from(e: std::io::Error) -> Self {
        OpenError::Io(e)
    }
}

/// An RL-tuned key-value store over `N` hash-partitioned FLSM shards.
pub struct ShardedRusKey {
    shards: Vec<FlsmTree>,
    tuner: Box<dyn Tuner>,
    collector: StatsCollector,
    last_report: Option<MissionReport>,
    last_parallelism: usize,
    /// Ad-hoc [`ShardedRusKey::scan`] calls since the last mission report
    /// (or baseline). Each one broadcast to every shard, so the next
    /// mission's physical scan delta includes them `N` times; tracking
    /// them keeps the broadcast invariant exact.
    adhoc_scans: u64,
}

impl ShardedRusKey {
    /// Creates a sharded store driven by an arbitrary tuner, rejecting
    /// invalid configurations instead of panicking.
    ///
    /// All shards share `storage` for data and device-level accounting,
    /// but each runs on its own [`ShardStorage`] view — a private time
    /// domain — so per-shard time and I/O attribution stays exact under
    /// parallel missions.
    ///
    /// # Panics
    /// Panics if `shards` is zero — a shard count is a structural choice
    /// made in code, not runtime input.
    pub fn try_with_tuner(
        cfg: RusKeyConfig,
        shards: usize,
        storage: Arc<dyn Storage>,
        tuner: Box<dyn Tuner>,
    ) -> Result<Self, ConfigError> {
        assert!(shards >= 1, "a store needs at least one shard");
        let shards = (0..shards)
            .map(|_| {
                let view: Arc<dyn Storage> = ShardStorage::new(Arc::clone(&storage));
                FlsmTree::try_new(cfg.lsm.clone(), view)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            shards,
            tuner,
            collector: StatsCollector::new(),
            last_report: None,
            last_parallelism: 0,
            adhoc_scans: 0,
        })
    }

    /// Creates a *durable* sharded store: every shard gets its own WAL
    /// file under `durability.dir` (appended before each memtable insert,
    /// truncated on flush), and missions end with a cross-shard
    /// group-commit barrier — at most one fsync per shard per mission.
    pub fn try_with_tuner_durable(
        cfg: RusKeyConfig,
        shards: usize,
        storage: Arc<dyn Storage>,
        tuner: Box<dyn Tuner>,
        durability: &DurabilityConfig,
    ) -> Result<Self, OpenError> {
        std::fs::create_dir_all(&durability.dir)?;
        let mut store = Self::try_with_tuner(cfg, shards, storage, tuner)?;
        for (i, tree) in store.shards.iter_mut().enumerate() {
            let path = durability.shard_wal_path(i);
            // A fresh store starts from empty logs: leftovers from a
            // previous incarnation would otherwise merge into a later
            // recovery with colliding sequence numbers (this store's seq
            // restarts at 1). [`ShardedRusKey::recover`] is the explicit
            // path for continuing from existing logs.
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
            tree.attach_wal(Wal::open_with_sync_every(path, durability.sync_every)?);
        }
        Ok(store)
    }

    /// Recovers a durable sharded store after a crash: each shard's WAL
    /// is replayed (valid prefix only, order pinned by record sequence
    /// numbers, torn tails truncated away) into a fresh tree, and the
    /// statistics baseline is reset so the first mission's report
    /// excludes recovery work.
    ///
    /// Per-shard WALs recover independently, which is exactly why the
    /// routing hash must stay stable: the same `shards` count must be
    /// passed that produced the logs.
    pub fn recover(
        cfg: RusKeyConfig,
        shards: usize,
        storage: Arc<dyn Storage>,
        tuner: Box<dyn Tuner>,
        durability: &DurabilityConfig,
    ) -> Result<Self, OpenError> {
        assert!(shards >= 1, "a store needs at least one shard");
        cfg.lsm.validate()?;
        std::fs::create_dir_all(&durability.dir)?;
        // Refuse to recover fewer shards than the directory describes:
        // the extra logs hold acknowledged writes that would otherwise
        // vanish silently (the routing hash keys on the shard count).
        let mut logs = 0usize;
        for entry in std::fs::read_dir(&durability.dir)? {
            let name = entry?.file_name();
            let idx = name
                .to_string_lossy()
                .strip_prefix("shard-")
                .and_then(|s| s.strip_suffix(".wal"))
                .and_then(|s| s.parse::<usize>().ok());
            if let Some(idx) = idx {
                logs = logs.max(idx + 1);
            }
        }
        if logs > shards {
            return Err(OpenError::ShardCountMismatch { logs, shards });
        }
        let trees = (0..shards)
            .map(|i| {
                let view: Arc<dyn Storage> = ShardStorage::new(Arc::clone(&storage));
                FlsmTree::recover(
                    cfg.lsm.clone(),
                    view,
                    durability.shard_wal_path(i),
                    durability.sync_every,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut store = Self {
            shards: trees,
            tuner,
            collector: StatsCollector::new(),
            last_report: None,
            last_parallelism: 0,
            adhoc_scans: 0,
        };
        store.collector.baseline_shards(store.shard_snapshots());
        Ok(store)
    }

    /// Creates a sharded store tuned by Lerp, rejecting invalid
    /// configurations instead of panicking.
    pub fn try_with_lerp(
        cfg: RusKeyConfig,
        shards: usize,
        storage: Arc<dyn Storage>,
    ) -> Result<Self, ConfigError> {
        let lerp = Lerp::new(cfg.lerp.clone());
        Self::try_with_tuner(cfg, shards, storage, Box::new(lerp))
    }

    /// Creates a sharded store driven by an arbitrary tuner.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `shards` is zero.
    pub fn with_tuner(
        cfg: RusKeyConfig,
        shards: usize,
        storage: Arc<dyn Storage>,
        tuner: Box<dyn Tuner>,
    ) -> Self {
        Self::try_with_tuner(cfg, shards, storage, tuner)
            .unwrap_or_else(|e| panic!("invalid RusKeyConfig: {e}"))
    }

    /// Creates a sharded store tuned by Lerp (the RusKey system of the
    /// paper, scaled across shards).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `shards` is zero.
    pub fn with_lerp(cfg: RusKeyConfig, shards: usize, storage: Arc<dyn Storage>) -> Self {
        Self::try_with_lerp(cfg, shards, storage)
            .unwrap_or_else(|e| panic!("invalid RusKeyConfig: {e}"))
    }

    /// Creates an untuned sharded store.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `shards` is zero.
    pub fn untuned(cfg: RusKeyConfig, shards: usize, storage: Arc<dyn Storage>) -> Self {
        Self::with_tuner(cfg, shards, storage, Box::new(NoOpTuner))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's tree (experiments and introspection).
    pub fn shard(&self, idx: usize) -> &FlsmTree {
        &self.shards[idx]
    }

    /// Mutable access to one shard's tree (test harnesses arm WAL crash
    /// points through this).
    pub fn shard_mut(&mut self, idx: usize) -> &mut FlsmTree {
        &mut self.shards[idx]
    }

    /// True if any shard's WAL simulated a process crash (fault
    /// injection): the store's write path is dead and the harness should
    /// recover from the logs.
    pub fn crashed(&self) -> bool {
        self.shards.iter().any(FlsmTree::wal_crashed)
    }

    /// The cross-shard group-commit barrier: syncs each shard's WAL at
    /// most once, acknowledging every record logged since the previous
    /// barrier — `sync()` once per shard per batch instead of once per
    /// record. Shards with nothing unacknowledged skip their fsync.
    /// Returns the virtual ns the barrier added across the shard time
    /// domains (the batch's durability latency).
    ///
    /// The barrier walks shards in order and stops at the first crashed
    /// WAL (a dead process commits nothing further) — which is what lets
    /// the crash harness pin exactly which shards' batches became
    /// durable.
    pub fn group_commit(&mut self) -> u64 {
        let mut commit_ns = 0u64;
        for tree in &mut self.shards {
            let before = tree.storage().clock().now_ns();
            tree.commit_wal().expect("WAL group commit failed");
            commit_ns += tree.storage().clock().now_ns() - before;
            if tree.wal_crashed() {
                break;
            }
        }
        commit_ns
    }

    /// The tuner's display name.
    pub fn tuner_name(&self) -> String {
        self.tuner.name()
    }

    /// Whether the tuner reports convergence.
    pub fn tuner_converged(&self) -> bool {
        self.tuner.converged()
    }

    /// Cumulative model-update time (Fig. 13).
    pub fn model_update_ns(&self) -> u64 {
        self.tuner.model_update_ns()
    }

    /// The report of the last processed mission.
    pub fn last_report(&self) -> Option<&MissionReport> {
        self.last_report.as_ref()
    }

    /// Distinct OS worker threads used by the last mission (1 when the
    /// store has a single shard and executes inline).
    pub fn last_parallelism(&self) -> usize {
        self.last_parallelism
    }

    /// Store-wide statistics: every shard's snapshot merged
    /// ([`TreeStatsSnapshot::merge`]) — `clock_ns` is the wall
    /// composition (max over shard domains), `busy_ns` the device-busy
    /// composition (sum over shard domains).
    pub fn stats(&self) -> TreeStatsSnapshot {
        TreeStatsSnapshot::merge_all(&self.shard_snapshots())
    }

    /// One statistics snapshot per shard, in shard order — each covering
    /// exactly that shard's time domain.
    pub fn shard_snapshots(&self) -> Vec<TreeStatsSnapshot> {
        self.shards.iter().map(FlsmTree::stats).collect()
    }

    // ------------------------------------------------------------------
    // Plain KV interface (outside missions)
    // ------------------------------------------------------------------

    fn owner(&self, key: &[u8]) -> usize {
        shard_for_key(key, self.shards.len())
    }

    /// Point lookup, routed to the owning shard.
    pub fn get(&mut self, key: &[u8]) -> Option<Bytes> {
        let s = self.owner(key);
        self.shards[s].get(key)
    }

    /// Insert or overwrite, routed to the owning shard.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        let key = key.into();
        let s = self.owner(&key);
        self.shards[s].put(key, value);
    }

    /// Delete, routed to the owning shard.
    pub fn delete(&mut self, key: impl Into<Bytes>) {
        let key = key.into();
        let s = self.owner(&key);
        self.shards[s].delete(key);
    }

    /// Range scan over `[start, end)` with a result limit: every shard
    /// scans its partition, and the per-shard results (sorted, disjoint)
    /// are k-way merged into one globally sorted result.
    pub fn scan(&mut self, start: &[u8], end: &[u8], limit: usize) -> Vec<(Bytes, Bytes)> {
        self.adhoc_scans += 1;
        let per_shard: Vec<Vec<(Bytes, Bytes)>> = self
            .shards
            .iter_mut()
            .map(|t| t.scan(start, end, limit))
            .collect();
        merge_sorted_scans(per_shard, limit)
    }

    // ------------------------------------------------------------------
    // Mission-driven operation
    // ------------------------------------------------------------------

    /// Bulk-loads the store (pairs hash-partitioned onto their owning
    /// shards) and resets the statistics baseline so mission reports
    /// exclude the load.
    pub fn bulk_load(&mut self, pairs: Vec<(Bytes, Bytes)>) {
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<(Bytes, Bytes)>> = vec![Vec::new(); n];
        for (k, v) in pairs {
            per_shard[shard_for_key(&k, n)].push((k, v));
        }
        for (tree, shard_pairs) in self.shards.iter_mut().zip(per_shard) {
            if !shard_pairs.is_empty() {
                tree.bulk_load(shard_pairs);
            }
        }
        self.collector.baseline_shards(self.shard_snapshots());
        self.adhoc_scans = 0;
    }

    /// Store-wide structure snapshot for tuners: per-level fill ratios
    /// and run counts *average* over the shards that have materialized
    /// the level — a lookup probes exactly one shard, so the mean run
    /// count is what the RL state's normalized `runs / T` feature
    /// expects (summing would scale it by `N` and push the tuner out of
    /// distribution). For a one-shard store this equals
    /// [`RusKey::observe`](crate::db::RusKey::observe).
    pub fn observe(&self) -> TreeObservation {
        let level_count = self
            .shards
            .iter()
            .map(FlsmTree::level_count)
            .max()
            .unwrap_or(0);
        let mut policies = Vec::with_capacity(level_count);
        let mut fills = Vec::with_capacity(level_count);
        let mut run_counts = Vec::with_capacity(level_count);
        for i in 0..level_count {
            let holders: Vec<&FlsmTree> =
                self.shards.iter().filter(|t| t.level_count() > i).collect();
            policies.push(holders[0].policy(i));
            fills.push(holders.iter().map(|t| t.level_fill(i)).sum::<f64>() / holders.len() as f64);
            let mean_runs = holders.iter().map(|t| t.level_run_count(i)).sum::<usize>() as f64
                / holders.len() as f64;
            run_counts.push(mean_runs.round() as usize);
        }
        TreeObservation {
            policies,
            fills,
            run_counts,
            size_ratio: self.shards[0].config().size_ratio,
            level_count,
        }
    }

    /// Store-wide per-level policies (each level reported by the first
    /// shard that has materialized it).
    pub fn policies(&self) -> Vec<u32> {
        let level_count = self
            .shards
            .iter()
            .map(FlsmTree::level_count)
            .max()
            .unwrap_or(0);
        (0..level_count)
            .map(|i| {
                self.shards
                    .iter()
                    .find(|t| t.level_count() > i)
                    .map(|t| t.policy(i))
                    .unwrap_or(1)
            })
            .collect()
    }

    /// Processes one mission: routes the operations onto the shards,
    /// executes them in parallel (one scoped OS thread per shard when
    /// `N > 1`), builds the aggregated mission report, lets the global
    /// tuner act, and fans its policy changes out to every shard.
    pub fn run_mission(&mut self, ops: &[Operation]) -> MissionReport {
        let t0 = Instant::now();
        let n = self.shards.len();
        // Logical scan count, taken at routing time: a range scan
        // broadcasts to every shard, so the shards' counters will see it
        // `N` times while the mission contains it once.
        let logical_scans = ops
            .iter()
            .filter(|op| matches!(op, Operation::Scan { .. }))
            .count() as u64;
        if n == 1 {
            for op in ops {
                execute_op(&mut self.shards[0], op);
            }
            self.last_parallelism = 1;
        } else {
            let lanes = partition_ops(ops, n);
            // Measured (not assumed from the spawn structure) so the
            // equivalence suite can assert real OS-thread parallelism.
            let worker_ids = Mutex::new(std::collections::HashSet::new());
            std::thread::scope(|scope| {
                for (tree, lane) in self.shards.iter_mut().zip(&lanes) {
                    let worker_ids = &worker_ids;
                    scope.spawn(move || {
                        worker_ids
                            .lock()
                            .expect("worker id set poisoned")
                            .insert(std::thread::current().id());
                        for op in lane {
                            execute_op(tree, op);
                        }
                    });
                }
            });
            self.last_parallelism = worker_ids
                .into_inner()
                .expect("worker id set poisoned")
                .len();
        }
        // Mission-level commit barrier *before* the snapshots: the batch's
        // sync cost and acknowledgement counters belong to this mission's
        // report, and one fsync per shard covers the whole mission batch.
        let commit_ns = self.group_commit();
        let process_ns = t0.elapsed().as_nanos() as u64;
        let mut report = self
            .collector
            .report_mission_shards(self.shard_snapshots(), process_ns);
        report.commit_ns = commit_ns;
        // Report the *logical* scan composition (one scan per mission
        // operation, counted at routing time above, plus any ad-hoc
        // `scan()` calls since the last report) so `gamma` is comparable
        // across shard counts. The I/O and latency of the N sub-scans
        // stay in the report — that work really happened. The broadcast
        // invariant pins the physical count exactly; the old
        // `report.scans / n` recovery drifted whenever the physical count
        // was not a multiple of `n`.
        let logical_scans = logical_scans + self.adhoc_scans;
        self.adhoc_scans = 0;
        debug_assert_eq!(
            report.scans,
            logical_scans * n as u64,
            "scan broadcast invariant violated: {} physical scans across {n} shards \
             for {logical_scans} logical scans",
            report.scans,
        );
        if n > 1 {
            report.ops = report.ops - report.scans + logical_scans;
            report.scans = logical_scans;
        }

        let obs = self.observe();
        crate::db::tune_mission(self.tuner.as_mut(), &mut report, &obs, |level, k| {
            for tree in &mut self.shards {
                tree.set_policy(level, k);
            }
        });
        report.policies_after = self.policies();
        self.last_report = Some(report.clone());
        report
    }
}

/// One head of the k-way scan merge; ordered so the smallest key wins.
struct MergeHead {
    key: Bytes,
    shard: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for MergeHead {}

impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest key.
        other.key.cmp(&self.key)
    }
}

/// K-way merges per-shard scan results (each sorted, keys disjoint across
/// shards) into one sorted result of at most `limit` entries.
fn merge_sorted_scans(per_shard: Vec<Vec<(Bytes, Bytes)>>, limit: usize) -> Vec<(Bytes, Bytes)> {
    let mut iters: Vec<std::vec::IntoIter<(Bytes, Bytes)>> =
        per_shard.into_iter().map(Vec::into_iter).collect();
    let mut heap = BinaryHeap::with_capacity(iters.len());
    let mut values: Vec<Option<Bytes>> = vec![None; iters.len()];
    for (i, it) in iters.iter_mut().enumerate() {
        if let Some((k, v)) = it.next() {
            heap.push(MergeHead { key: k, shard: i });
            values[i] = Some(v);
        }
    }
    let mut out = Vec::new();
    while out.len() < limit {
        let Some(MergeHead { key, shard }) = heap.pop() else {
            break;
        };
        let value = values[shard].take().expect("merge head without value");
        out.push((key, value));
        if let Some((k, v)) = iters[shard].next() {
            heap.push(MergeHead { key: k, shard });
            values[shard] = Some(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::FixedPolicy;
    use ruskey_storage::{CostModel, SimulatedDisk};
    use ruskey_workload::{bulk_load_pairs, OpGenerator, OpMix, WorkloadSpec};

    fn small_cfg() -> RusKeyConfig {
        let mut cfg = RusKeyConfig::scaled_default();
        cfg.lsm.buffer_bytes = 4096;
        cfg.lsm.size_ratio = 4;
        cfg
    }

    fn disk() -> Arc<SimulatedDisk> {
        SimulatedDisk::new(512, CostModel::NVME)
    }

    #[test]
    fn kv_roundtrip_across_shards() {
        let mut db = ShardedRusKey::untuned(small_cfg(), 4, disk());
        for i in 0..200u64 {
            db.put(ruskey_workload::encode_key(i, 16), vec![i as u8; 8]);
        }
        for i in 0..200u64 {
            let got = db.get(&ruskey_workload::encode_key(i, 16));
            assert_eq!(got.as_deref(), Some(vec![i as u8; 8].as_slice()), "key {i}");
        }
        db.delete(ruskey_workload::encode_key(7, 16));
        assert_eq!(db.get(&ruskey_workload::encode_key(7, 16)), None);
    }

    #[test]
    fn cross_shard_scan_is_globally_sorted_and_limited() {
        let mut db = ShardedRusKey::untuned(small_cfg(), 4, disk());
        for i in 0..300u64 {
            db.put(ruskey_workload::encode_key(i, 16), vec![1u8; 8]);
        }
        let all = db.scan(
            &ruskey_workload::encode_key(50, 16),
            &ruskey_workload::encode_key(150, 16),
            1000,
        );
        assert_eq!(all.len(), 100);
        for (w, pair) in all.windows(2).zip(all.iter().skip(1)) {
            assert!(w[0].0 < pair.0, "scan out of order");
        }
        let limited = db.scan(
            &ruskey_workload::encode_key(50, 16),
            &ruskey_workload::encode_key(150, 16),
            7,
        );
        assert_eq!(limited.len(), 7);
        assert_eq!(limited[..], all[..7]);
    }

    #[test]
    fn mission_reports_aggregate_all_shards() {
        let mut db =
            ShardedRusKey::with_tuner(small_cfg(), 4, disk(), Box::new(FixedPolicy::moderate()));
        db.bulk_load(bulk_load_pairs(1000, 16, 48, 1));
        let spec = WorkloadSpec {
            key_space: 1000,
            value_len: 48,
            ..WorkloadSpec::scaled_default(1000)
        }
        .with_mix(OpMix::read_heavy());
        let mut g = OpGenerator::new(spec, 2);
        let r = db.run_mission(&g.take_ops(400));
        assert_eq!(r.ops, 400, "aggregated op count covers every shard");
        assert!((r.gamma() - 0.9).abs() < 0.08);
        assert!(r.end_to_end_ns > 0);
        assert!(!r.policies_after.is_empty());
        assert_eq!(db.last_parallelism(), 4, "one worker thread per shard");
    }

    #[test]
    fn policy_fanout_reaches_every_shard() {
        let mut db =
            ShardedRusKey::with_tuner(small_cfg(), 3, disk(), Box::new(FixedPolicy::new(4)));
        db.bulk_load(bulk_load_pairs(900, 16, 48, 3));
        let spec = WorkloadSpec {
            key_space: 900,
            value_len: 48,
            ..WorkloadSpec::scaled_default(900)
        };
        let mut g = OpGenerator::new(spec, 5);
        db.run_mission(&g.take_ops(300));
        for s in 0..db.shard_count() {
            let tree = db.shard(s);
            for lvl in 0..tree.level_count() {
                assert_eq!(
                    tree.policy(lvl),
                    4,
                    "shard {s} level {lvl} missed the fan-out"
                );
            }
        }
    }

    /// Ad-hoc scans between missions broadcast to every shard; the next
    /// mission's report must still count each of them logically once and
    /// keep the broadcast invariant (no debug panic, no drift).
    #[test]
    fn adhoc_scans_between_missions_stay_logically_counted() {
        for shards in [1usize, 3] {
            let mut db = ShardedRusKey::untuned(small_cfg(), shards, disk());
            db.bulk_load(bulk_load_pairs(600, 16, 48, 9));
            let spec = WorkloadSpec {
                key_space: 600,
                value_len: 48,
                ..WorkloadSpec::scaled_default(600)
            }
            .with_mix(OpMix {
                lookup: 0.5,
                update: 0.35,
                delete: 0.05,
                scan: 0.1,
            });
            let mut g = OpGenerator::new(spec, 4);
            db.run_mission(&g.take_ops(200));
            // Two ad-hoc scans outside any mission.
            let lo = ruskey_workload::encode_key(0, 16);
            let hi = ruskey_workload::encode_key(600, 16);
            db.scan(&lo, &hi, 10);
            db.scan(&lo, &hi, 10);
            let ops = g.take_ops(200);
            let mission_scans = ops
                .iter()
                .filter(|o| matches!(o, ruskey_workload::Operation::Scan { .. }))
                .count() as u64;
            let r = db.run_mission(&ops);
            assert_eq!(
                r.scans,
                mission_scans + 2,
                "{shards} shards: ad-hoc scans count logically once each"
            );
            assert_eq!(r.ops, 200 + 2);
        }
    }

    #[test]
    fn try_with_tuner_rejects_bad_config() {
        let mut cfg = small_cfg();
        cfg.lsm.size_ratio = 1;
        let err = ShardedRusKey::try_with_tuner(cfg, 2, disk(), Box::new(NoOpTuner));
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardedRusKey::untuned(small_cfg(), 0, disk());
    }

    #[test]
    fn merge_handles_empty_and_interleaved_inputs() {
        let k = |i: u64| Bytes::copy_from_slice(&i.to_be_bytes());
        let v = Bytes::from_static(b"v");
        let merged = merge_sorted_scans(
            vec![
                vec![(k(1), v.clone()), (k(5), v.clone())],
                vec![],
                vec![(k(2), v.clone()), (k(3), v.clone()), (k(9), v.clone())],
            ],
            10,
        );
        let keys: Vec<u64> = merged
            .iter()
            .map(|(k, _)| u64::from_be_bytes(k.as_ref().try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![1, 2, 3, 5, 9]);
        assert!(merge_sorted_scans(vec![], 5).is_empty());
    }
}
