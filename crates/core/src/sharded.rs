//! The sharded engine core: hash-partitioned FLSM shards behind one store.
//!
//! [`ShardedRusKey`] scales the single-tree [`RusKey`](crate::db::RusKey)
//! across cores: keys are hash-partitioned onto `N` independent
//! [`FlsmTree`] shards (each with its own memtable and levels) that share
//! one storage device, and missions execute in parallel on a **persistent
//! worker pool** — one long-lived OS thread per shard, spawned once at
//! construction and reused for every mission, with operations routed by
//! the stable key hash of [`ruskey_workload::routing`]. Cross-shard range
//! scans are k-way merged back into one sorted result.
//!
//! Tuning runs under a [`TunerStrategy`]. **Global** (the default, the
//! paper's single-tree loop): per-shard [`TreeStatsSnapshot`]s merge
//! into one store-wide view, a single [`Tuner`] (Lerp or a baseline)
//! observes the aggregated [`MissionReport`]/[`TreeObservation`], and
//! its policy changes fan out to every shard. **Per-shard**
//! ([`ShardedRusKey::try_with_per_shard_lerp`]): every shard owns its
//! own tuner, fed by that shard's *own* reward slice (its time-domain
//! delta, not an ops-weighted average that lets idle siblings mask a
//! saturated shard) and its own observation, with policy changes
//! applied only to the owning shard — so under skew each shard's tree
//! converges to *its* workload. At `N = 1` the two strategies are
//! bit-identical (`tests/tuning_equivalence.rs` pins it), and a
//! one-shard store is behaviourally identical to
//! [`RusKey`](crate::db::RusKey) — all paper experiments remain valid.
//!
//! Orthogonally, [`ShardedRusKey::enable_balancing`] arms **hot-shard
//! mitigation**: a decayed [`LoadSketch`] (per-shard op counters + a
//! Misra–Gries heavy-hitter summary) watches the point-op stream, and
//! when one shard's load exceeds the configured imbalance threshold the
//! store *re-homes* its heaviest keys to the coldest shard through a
//! [`RoutingTable`] consulted by every point-op path (missions, ad-hoc
//! ops, the serving frontend). Migration is crash-safe on a durable
//! store: the routes file is written atomically *before* any data
//! moves, each key is copied to its new home and group-committed before
//! the original is tombstoned, and recovery settles half-finished moves
//! from the routes file (all three crash states are idempotent).
//!
//! ## The worker pool: lifecycle, shutdown, panic policy
//!
//! Each shard owns one worker thread (named `ruskey-shard-<i>`) with a
//! private job queue, spawned when the store is constructed and alive
//! until it drops — thread spawn cost is paid once, not once per mission,
//! and `tests/pool_stress.rs` pins that the same OS threads serve
//! consecutive missions. Trees move, they are not shared: between
//! missions every [`FlsmTree`] lives on the store (so the plain KV
//! interface, introspection, and test harnesses keep direct access);
//! dispatching a job sends the tree into the shard's worker, and the
//! reply returns it. Exactly one side owns a tree at any instant, so no
//! locks guard the hot path. `N = 1` runs through the same pool code
//! path as any other shard count — there is no inline special case to
//! drift from the parallel one.
//!
//! **Shutdown**: dropping the store closes every job queue; each worker's
//! receive loop ends and the threads are joined (a drop never leaves
//! detached threads behind).
//!
//! **Panics**: a panicking worker (an engine bug — or the
//! `inject_worker_panic` test hook) unwinds through its run loop: the
//! in-flight tree and the shard's queue die with the thread, the dropped
//! reply channel surfaces as [`MissionError::WorkerPanicked`] on the
//! mission thread (never a hang), and every later dispatch fails fast
//! with [`MissionError::WorkerUnavailable`] *before* enqueuing anything —
//! the engine is permanently dead, it does not limp on with a missing
//! shard. One caveat is inherent to fan-out dispatch: the single dispatch
//! that *discovers* the death may already have enqueued sibling shards'
//! jobs, so those lanes execute (and, on a durable store, commit) — a
//! partially applied batch, which is why a failed store must be rebuilt
//! via [`ShardedRusKey::recover`] rather than retried in place.
//! [`ShardedRusKey::run_mission`] converts these errors into a panic with
//! the shard named; [`ShardedRusKey::try_run_mission`] returns them.
//!
//! ## Time domains: exact accounting under parallelism
//!
//! Each shard owns a private **time domain**: its tree runs on a
//! [`ShardStorage`](ruskey_storage::ShardStorage) view whose
//! [`VirtualClock`](ruskey_storage::VirtualClock) and metrics receive only
//! that shard's charges, while the shared device underneath aggregates
//! everything (device-busy time). The domain belongs to the view, not to
//! a thread, so charges are exact no matter which pool thread currently
//! owns the tree. At the store level the domains compose two ways:
//!
//! * **mission wall time** ([`MissionReport::end_to_end_ns`]) — the max
//!   over the participating shards' per-domain deltas (the mission is as
//!   slow as its busiest shard);
//! * **device-busy time** ([`MissionReport::device_busy_ns`]) — the sum
//!   over the domains (total virtual work placed on the shared device).
//!
//! The [`StatsCollector`] deltas every shard against its *own* baseline
//! before composing, which is what makes both readings exact. Ad-hoc
//! point/scan calls between missions fold into the next mission's delta
//! (as they always have); broadcast scans among them are tracked so the
//! report still counts every scan logically once.
//!
//! ## Durability: per-shard WALs + an overlapped group-commit barrier
//!
//! A store opened with [`ShardedRusKey::try_with_tuner_durable`] gives
//! every shard its own WAL file ([`DurabilityConfig::shard_wal_path`]):
//! shard workers append each put/delete to their log *before* the
//! memtable insert, without syncing per record. Every mission ends with a
//! **group-commit barrier**: each worker runs its shard's commit leg
//! ([`FlsmTree::commit_wal_timed`] — at most one fsync) as soon as its
//! lane finishes, so the per-shard fsyncs run *concurrently* instead of
//! sequentially on the mission thread. The batch's records become
//! acknowledged together at one sync per shard per mission, and the
//! barrier costs the max over the shards' legs, not their sum:
//! [`MissionReport::commit_ns`] is that max (the batch's durability
//! latency), [`MissionReport::commit_busy_ns`] the sum (the total sync
//! work, what a sequential barrier would have paid). A shard that crashes
//! mid-leg does not stop its siblings' fsyncs — their batches commit, and
//! the crash harness pins exactly which shards' records became durable.
//! Outside missions, [`ShardedRusKey::group_commit`] runs the same
//! overlapped barrier on demand. After a crash,
//! [`ShardedRusKey::recover`] replays every shard's log (valid prefix
//! only, order pinned by record sequence numbers) into fresh trees;
//! `tests/crash_recovery.rs` pins the recovery contract at every
//! [`ruskey_lsm::CrashPoint`] for `N ∈ {1, 2, 4}`.
//!
//! ## Full-store persistence: per-shard `FileDisk` + manifest
//!
//! The WAL protects only the write buffer; a store opened with
//! [`ShardedRusKey::try_with_tuner_persistent`] is durable **below** the
//! buffer too. Every shard gets its own directory
//! ([`PersistenceConfig`]): an independent
//! [`FileDisk`](ruskey_storage::FileDisk) for its data pages (private
//! file handles — the sharded real-file path carries no shared device
//! lock, and each disk's clock is the shard's time domain), a
//! [`Manifest`] that records the shard's run/level structure as atomic
//! per-mutation edit batches (with checkpoint compaction of the log
//! itself), and the shard's WAL. The ordering contract — data pages,
//! then manifest commit, then WAL truncation, with obsolete pages freed
//! only after the commit — means [`ShardedRusKey::recover_persistent`]
//! always rebuilds a consistent store: each manifest's longest
//! consistent prefix is folded back into levels, every recorded run is
//! rebuilt from its pages (fences and Bloom filters re-derived
//! identically), and the WAL tail replays on top, so the recovered
//! store is get/scan-identical to the one that was dropped.
//! `tests/persistence_restart.rs` pins restart equivalence at
//! `N ∈ {1, 2, 4}`; the manifest crash matrix in
//! `tests/crash_recovery.rs` pins every
//! [`ruskey_lsm::ManifestCrashPoint`].
//!
//! ## Ad-hoc operations and serving
//!
//! The plain KV interface (`get`/`put`/`delete`/`scan` between missions)
//! routes through the same shard workers as mission lanes: each call
//! ships the owning shard's tree to its worker, executes there, and ad-hoc
//! *writes* earn periodic boundary maintenance on the worker (every
//! [`ADHOC_BOUNDARY_OPS`] writes per shard, the same bounded
//! [`FlsmTree::maintain`] grant a mission lane gets) — so a put-heavy
//! ad-hoc caller sees the exact backpressure and `stall_ns` attribution
//! a mission would, and an ad-hoc scan's per-shard charges land in the
//! shards' own time domains, in parallel, exactly as on the mission
//! path. For *many concurrent callers*, [`ShardedRusKey::serve`] parks
//! every shard in a serving loop behind bounded MPSC queues — see
//! [`crate::frontend`] for the scheduler, admission control, and live
//! metrics.

use std::collections::{BinaryHeap, HashSet};
use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle, ThreadId};
use std::time::Instant;

use bytes::Bytes;
use ruskey_lsm::{ConfigError, FlsmTree, Manifest, TreeStatsSnapshot, Wal};
use ruskey_storage::{BlockCache, CostModel, FileDisk, ShardStorage, Storage};
use ruskey_workload::routing::{shard_for_key, BalanceConfig, LoadSketch, RoutingTable};
use ruskey_workload::Operation;

use crate::db::{execute_op, RusKeyConfig};
use crate::frontend::{
    self, MetricsSnapshot, ServeShared, ServingConfig, ServingFrontend, ShardRequest,
};
use crate::lerp::Lerp;
use crate::stats::{MissionReport, StatsCollector};
use crate::tuner::{NoOpTuner, TreeObservation, Tuner};

/// Durability settings of a sharded store: where the per-shard WAL files
/// live and how eagerly each shard fsyncs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Directory holding one WAL file per shard (`shard-<i>.wal`);
    /// created if absent.
    pub dir: PathBuf,
    /// Per-shard auto-fsync cadence (records); 0 relies solely on the
    /// cross-shard group-commit barrier at mission boundaries — the
    /// default, and the cheapest policy: one sync per shard per batch.
    pub sync_every: u64,
}

impl DurabilityConfig {
    /// Group-commit-only durability (no per-record auto-sync) with WALs
    /// under `dir`.
    pub fn group_commit(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            sync_every: 0,
        }
    }

    /// The WAL file path of one shard.
    pub fn shard_wal_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.wal"))
    }
}

/// Full-store persistence settings: where each shard's on-disk state
/// lives and how the two logs behave.
///
/// A persistent store gives every shard its **own directory** under
/// `root`, holding an independent [`FileDisk`] (its own file handles —
/// shards never serialize against each other on the real-file path), a
/// [`Manifest`] recording the shard's run/level structure, and a WAL for
/// its write buffer:
///
/// ```text
/// root/
///   shard-0/ data/extent-*.run  MANIFEST  wal
///   shard-1/ data/extent-*.run  MANIFEST  wal
///   ...
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PersistenceConfig {
    /// Root directory of the store; one subdirectory per shard.
    pub root: PathBuf,
    /// Page size of the per-shard file disks.
    pub page_size: usize,
    /// Cost model charged for the (real) page I/O, keeping virtual-time
    /// accounting comparable with the simulated backend.
    pub cost: CostModel,
    /// Per-shard WAL auto-fsync cadence (records); 0 relies solely on
    /// the cross-shard group-commit barrier.
    pub sync_every: u64,
    /// Auto-compact each shard's manifest once this many structural
    /// edits accumulate since the last checkpoint (0 = never).
    pub checkpoint_every: u64,
    /// Per-shard block-cache capacity in pages; each shard's
    /// [`FileDisk`] serves reads through its own sharded LRU
    /// [`BlockCache`] of this size. 0 disables caching entirely (reads
    /// always reach the file).
    pub cache_pages: usize,
}

impl PersistenceConfig {
    /// Defaults: 4 KiB pages, the NVMe cost model, group-commit-only WAL
    /// syncs, a manifest checkpoint every 1024 edits, and a 4096-page
    /// (16 MiB) block cache per shard.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            page_size: ruskey_storage::DEFAULT_PAGE_SIZE,
            cost: CostModel::NVME,
            sync_every: 0,
            checkpoint_every: 1024,
            cache_pages: 4096,
        }
    }

    /// Builds one shard's storage stack: a [`FileDisk`] over `data`,
    /// served through a [`BlockCache`] when `cache_pages > 0`.
    fn open_disk(&self, data: &std::path::Path) -> std::io::Result<Arc<dyn Storage>> {
        let disk = FileDisk::new(data, self.page_size, self.cost)?;
        Ok(if self.cache_pages > 0 {
            BlockCache::new(disk, self.cache_pages)
        } else {
            disk
        })
    }

    /// One shard's directory.
    pub fn shard_dir(&self, shard: usize) -> PathBuf {
        self.root.join(format!("shard-{shard}"))
    }

    /// One shard's data-page directory (its `FileDisk` root).
    pub fn data_dir(&self, shard: usize) -> PathBuf {
        self.shard_dir(shard).join("data")
    }

    /// One shard's manifest path.
    pub fn manifest_path(&self, shard: usize) -> PathBuf {
        self.shard_dir(shard).join("MANIFEST")
    }

    /// One shard's WAL path.
    pub fn wal_path(&self, shard: usize) -> PathBuf {
        self.shard_dir(shard).join("wal")
    }

    /// Number of shards the on-disk layout describes (highest `shard-<i>`
    /// directory index + 1), or 0 for a fresh root.
    pub fn shards_described(&self) -> std::io::Result<usize> {
        let mut described = 0usize;
        let entries = match std::fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let name = entry?.file_name();
            if let Some(idx) = name
                .to_string_lossy()
                .strip_prefix("shard-")
                .and_then(|s| s.parse::<usize>().ok())
            {
                described = described.max(idx + 1);
            }
        }
        Ok(described)
    }
}

/// Why a durable store could not be opened or recovered.
#[derive(Debug)]
pub enum OpenError {
    /// The LSM configuration was rejected.
    Config(ConfigError),
    /// A WAL file could not be created, read, or truncated.
    Io(std::io::Error),
    /// Recovery found shard logs beyond the requested shard count —
    /// proceeding would silently drop their acknowledged writes.
    ShardCountMismatch {
        /// Number of shard logs the directory describes (highest
        /// `shard-<i>.wal` index + 1).
        logs: usize,
        /// The shard count recovery was asked for.
        shards: usize,
    },
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Config(e) => write!(f, "invalid configuration: {e}"),
            OpenError::Io(e) => write!(f, "WAL I/O failed: {e}"),
            OpenError::ShardCountMismatch { logs, shards } => write!(
                f,
                "log directory describes {logs} shards but recovery was asked \
                 for {shards}; the routing hash keys on the shard count, so a \
                 mismatch would drop or misroute acknowledged writes"
            ),
        }
    }
}

impl std::error::Error for OpenError {}

impl From<ConfigError> for OpenError {
    fn from(e: ConfigError) -> Self {
        OpenError::Config(e)
    }
}

impl From<std::io::Error> for OpenError {
    fn from(e: std::io::Error) -> Self {
        OpenError::Io(e)
    }
}

/// Why the worker pool could not execute a mission or commit barrier.
///
/// Worker failures are terminal: the engine reports the failure cleanly
/// (instead of hanging or limping on with a missing shard) and refuses
/// all further pool work. On the *first* failing dispatch — the one that
/// discovers the death — sibling shards whose jobs were already enqueued
/// still execute (and, on a durable store, commit) their lanes: a
/// partially applied batch. Callers must treat the store as failed and,
/// if durable, rebuild it with [`ShardedRusKey::recover`]; every later
/// dispatch fails fast before enqueuing anything.
#[derive(Debug)]
pub enum MissionError {
    /// A shard's worker panicked while executing its job — the shard's
    /// tree died with the thread, and the engine is permanently
    /// unavailable.
    WorkerPanicked {
        /// The shard whose worker died.
        shard: usize,
    },
    /// A shard's worker was dead when its job was dispatched (an earlier
    /// panic). The dead shard executed nothing — its tree is untouched
    /// and back on the store — but siblings dispatched before the death
    /// was observed may have executed their lanes (first failure only;
    /// the engine fails fast afterwards).
    WorkerUnavailable {
        /// The shard whose worker is gone.
        shard: usize,
    },
    /// A shard's WAL failed with a real I/O error during its commit leg
    /// (the first failing shard, if several failed in one barrier). The
    /// engine itself stays alive: every tree is back on the store and the
    /// batch's lanes were applied, but the failing shard's records are
    /// not acknowledged.
    Wal {
        /// The shard whose log failed.
        shard: usize,
        /// The underlying I/O error.
        error: std::io::Error,
    },
}

impl std::fmt::Display for MissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MissionError::WorkerPanicked { shard } => {
                write!(f, "shard {shard}'s worker panicked; the engine is dead")
            }
            MissionError::WorkerUnavailable { shard } => write!(
                f,
                "shard {shard}'s worker is gone (earlier panic); the engine is dead"
            ),
            MissionError::Wal { shard, error } => {
                write!(f, "shard {shard}'s WAL commit failed: {error}")
            }
        }
    }
}

impl std::error::Error for MissionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MissionError::Wal { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Latency/work composition of one overlapped group-commit barrier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Barrier latency (virtual ns): the max over the shards' commit
    /// legs — the fsyncs run concurrently, so the batch waits only for
    /// the slowest shard.
    pub barrier_ns: u64,
    /// Total sync work (virtual ns): the sum over the shards' commit
    /// legs — what a sequential barrier would have cost.
    pub busy_ns: u64,
    /// Shards that actually issued an fsync (shards with nothing
    /// unacknowledged skip theirs).
    pub syncs: u64,
}

/// How a sharded store's learned tuning is organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TunerStrategy {
    /// One tuner observes the shard-merged statistics and fans its
    /// policy changes out to every shard — the paper's single-tree
    /// tuning loop, unchanged.
    #[default]
    Global,
    /// Every shard owns its own tuner, fed by that shard's own reward
    /// slice and observation; policy changes apply only to the owning
    /// shard, so per-shard policies may diverge under skew.
    PerShard,
}

/// The store's tuner(s), shaped by its [`TunerStrategy`].
enum Tuning {
    Global(Box<dyn Tuner>),
    /// One tuner per shard, in shard order.
    PerShard(Vec<Box<dyn Tuner>>),
}

/// Hot-shard mitigation state: the detection sketch plus its knobs.
struct Balancer {
    cfg: BalanceConfig,
    sketch: LoadSketch,
}

/// Ad-hoc writes per shard between boundary maintenance grants on the
/// worker — the serving/ad-hoc twin of a mission lane's boundary (the
/// compaction bench pins lane boundaries at the same order of magnitude).
pub(crate) const ADHOC_BOUNDARY_OPS: u64 = 32;

/// Bounded maintenance steps per boundary grant, identical to the grant a
/// mission lane gets between its operations and its commit leg.
const BOUNDARY_MAINTAIN_STEPS: u64 = 4;

/// One ad-hoc operation executed on the owning shard's worker.
enum AdhocOp {
    Get(Bytes),
    Put(Bytes, Bytes),
    Delete(Bytes),
    Scan {
        start: Bytes,
        end: Bytes,
        limit: usize,
    },
}

/// The payload an ad-hoc job sends home with its tree.
enum AdhocOut {
    Value(Option<Bytes>),
    Written,
    Scan(Vec<(Bytes, Bytes)>),
}

/// One unit of work for a shard worker. Every variant that executes
/// carries the shard's tree in and returns it with the reply — trees are
/// owned by exactly one side at any instant.
enum Job {
    /// Execute a mission lane, then run the shard's group-commit leg
    /// (fsync overlapped with the sibling shards' legs).
    Lane {
        tree: FlsmTree,
        ops: Vec<Operation>,
        reply: Sender<Done>,
    },
    /// A standalone commit-barrier leg ([`ShardedRusKey::group_commit`]
    /// outside a mission).
    Commit { tree: FlsmTree, reply: Sender<Done> },
    /// One ad-hoc op from the plain KV interface, executed on the shard's
    /// worker so its charges land in the shard's own time domain and
    /// (for writes) boundary maintenance interleaves exactly as on the
    /// mission path. No commit leg: durability still comes from the
    /// group-commit barrier.
    Adhoc {
        tree: FlsmTree,
        op: AdhocOp,
        /// Grant boundary maintenance after the op (every
        /// [`ADHOC_BOUNDARY_OPS`]th write per shard).
        maintain: bool,
        reply: Sender<Done>,
    },
    /// Park the shard in the serving loop ([`crate::frontend`]): the
    /// worker drains the session's bounded request queue in batches until
    /// shutdown, then ships the tree home.
    Serve {
        tree: FlsmTree,
        requests: Receiver<ShardRequest>,
        shared: Arc<ServeShared>,
        reply: Sender<Done>,
    },
    /// Test hook: panic on the worker thread (`tests/pool_stress.rs`
    /// asserts the panic surfaces as a clean [`MissionError`]).
    Panic,
}

impl Job {
    /// Recovers the tree from a job that could not be dispatched (the
    /// worker's queue is gone).
    fn into_tree(self) -> Option<FlsmTree> {
        match self {
            Job::Lane { tree, .. }
            | Job::Commit { tree, .. }
            | Job::Adhoc { tree, .. }
            | Job::Serve { tree, .. } => Some(tree),
            Job::Panic => None,
        }
    }
}

/// Outcome of one shard's commit leg.
#[derive(Debug, Default)]
struct CommitLeg {
    /// Whether an fsync was issued (idle shards skip theirs).
    synced: bool,
    /// Virtual ns the leg added to the shard's time domain.
    ns: u64,
    /// A real I/O failure, surfaced as [`MissionError::Wal`].
    error: Option<std::io::Error>,
}

/// A worker's reply: the tree comes home together with what happened.
/// `pub(crate)` so [`crate::frontend::ServingFrontend`] can hold the
/// serving session's tree-return channel; the fields stay module-private.
pub(crate) struct Done {
    shard: usize,
    tree: FlsmTree,
    worker: ThreadId,
    commit: CommitLeg,
    /// An ad-hoc job's result payload ([`Job::Adhoc`] only).
    adhoc: Option<AdhocOut>,
}

/// A completed shard job after its tree has been restored to the store.
struct ShardDone {
    shard: usize,
    worker: ThreadId,
    commit: CommitLeg,
    adhoc: Option<AdhocOut>,
}

/// Runs one shard's commit leg, measured on the tree's own time domain.
fn commit_leg(tree: &mut FlsmTree) -> CommitLeg {
    match tree.commit_wal_timed() {
        Ok((synced, ns)) => CommitLeg {
            synced,
            ns,
            error: None,
        },
        Err(error) => CommitLeg {
            synced: false,
            ns: 0,
            error: Some(error),
        },
    }
}

/// The run loop of one shard worker: executes jobs until the store drops
/// the shard's queue (shutdown), returning every tree with its reply. A
/// panic unwinds through the loop — the in-flight tree and the queue die
/// with the thread, which is exactly the signal the mission thread turns
/// into [`MissionError::WorkerPanicked`].
fn worker_loop(shard: usize, jobs: Receiver<Job>) {
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Lane {
                mut tree,
                ops,
                reply,
            } => {
                for op in &ops {
                    execute_op(&mut tree, op);
                }
                // The shard's background maintenance lane: deferred
                // flushes and compactions run here, between the lane's
                // operations and its commit leg — off every op's path,
                // overlapped with the sibling shards' lanes.
                if tree.config().background_maintenance {
                    tree.maintain(BOUNDARY_MAINTAIN_STEPS);
                }
                // The commit leg runs as soon as this shard's lane is
                // done — overlapped with siblings still executing theirs.
                let commit = commit_leg(&mut tree);
                let _ = reply.send(Done {
                    shard,
                    tree,
                    worker: thread::current().id(),
                    commit,
                    adhoc: None,
                });
            }
            Job::Commit { mut tree, reply } => {
                let commit = commit_leg(&mut tree);
                let _ = reply.send(Done {
                    shard,
                    tree,
                    worker: thread::current().id(),
                    commit,
                    adhoc: None,
                });
            }
            Job::Adhoc {
                mut tree,
                op,
                maintain,
                reply,
            } => {
                let out = match op {
                    AdhocOp::Get(key) => AdhocOut::Value(tree.get(&key)),
                    AdhocOp::Put(key, value) => {
                        tree.put(key, value);
                        AdhocOut::Written
                    }
                    AdhocOp::Delete(key) => {
                        tree.delete(key);
                        AdhocOut::Written
                    }
                    AdhocOp::Scan { start, end, limit } => {
                        AdhocOut::Scan(tree.scan(&start, &end, limit))
                    }
                };
                // Every ADHOC_BOUNDARY_OPS-th write is a boundary: the
                // same bounded maintenance grant a mission lane gets, so
                // an ad-hoc write burst pays down its deferred work
                // instead of deferring it forever.
                if maintain && tree.config().background_maintenance {
                    tree.maintain(BOUNDARY_MAINTAIN_STEPS);
                }
                let _ = reply.send(Done {
                    shard,
                    tree,
                    worker: thread::current().id(),
                    commit: CommitLeg::default(),
                    adhoc: Some(out),
                });
            }
            Job::Serve {
                mut tree,
                requests,
                shared,
                reply,
            } => {
                frontend::serve_shard(shard, &mut tree, &requests, &shared);
                let _ = reply.send(Done {
                    shard,
                    tree,
                    worker: thread::current().id(),
                    commit: CommitLeg::default(),
                    adhoc: None,
                });
            }
            Job::Panic => panic!("injected shard-worker panic (test hook)"),
        }
    }
}

/// One shard's worker: its job queue and join handle. `tx` is dropped
/// first at shutdown so the worker's receive loop ends before the join.
struct PoolWorker {
    tx: Option<Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

/// The persistent worker pool: one long-lived thread per shard.
struct WorkerPool {
    workers: Vec<PoolWorker>,
}

impl WorkerPool {
    /// Spawns one named worker thread per shard.
    fn spawn(shards: usize) -> Self {
        let workers = (0..shards)
            .map(|i| {
                let (tx, rx) = mpsc::channel();
                let handle = thread::Builder::new()
                    .name(format!("ruskey-shard-{i}"))
                    .spawn(move || worker_loop(i, rx))
                    .expect("spawn shard worker thread");
                PoolWorker {
                    tx: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();
        Self { workers }
    }

    /// Enqueues a job on one shard's worker; returns the job (boxed, so
    /// its tree can be recovered) if the worker is gone.
    fn send(&self, shard: usize, job: Job) -> Result<(), Box<Job>> {
        match &self.workers[shard].tx {
            Some(tx) => tx.send(job).map_err(|mpsc::SendError(job)| Box::new(job)),
            None => Err(Box::new(job)),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close every queue first so all workers wind down concurrently,
        // then join. A worker that panicked reports its error through the
        // mission path; the join here must not double-panic during drop.
        for w in &mut self.workers {
            w.tx = None;
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// An RL-tuned key-value store over `N` hash-partitioned FLSM shards,
/// executed by a persistent per-shard worker pool.
pub struct ShardedRusKey {
    /// One tree per shard. `None` only while a job holding the tree is in
    /// flight on the shard's worker — or permanently, after that worker
    /// panicked and took the tree with it.
    shards: Vec<Option<FlsmTree>>,
    pool: WorkerPool,
    tuning: Tuning,
    collector: StatsCollector,
    last_report: Option<MissionReport>,
    /// The OS thread that served each shard in the last pool dispatch, in
    /// shard order. `tests/pool_stress.rs` pins these stable across
    /// missions (pool reuse, not respawn).
    last_workers: Vec<ThreadId>,
    /// Ad-hoc [`ShardedRusKey::scan`] calls since the last mission report
    /// (or baseline). Each one broadcast to every shard, so the next
    /// mission's physical scan delta includes them `N` times; tracking
    /// them keeps the broadcast invariant exact.
    adhoc_scans: u64,
    /// Lifetime ad-hoc writes per shard: every [`ADHOC_BOUNDARY_OPS`]-th
    /// one is a maintenance boundary on the shard's worker.
    adhoc_writes: Vec<u64>,
    /// Set once a dispatch observed a dead worker: every later dispatch
    /// fails fast with [`MissionError::WorkerUnavailable`] *before*
    /// enqueuing anything, so a dead engine applies at most one partial
    /// batch (the dispatch that discovered the death) and never more.
    dead_worker: Option<usize>,
    /// Per-key routing overrides (re-homed hot keys). Empty — pure hash
    /// routing — until the balancer moves something.
    routes: RoutingTable,
    /// For each override, the shard the key was last migrated *from*
    /// (its previous route). Persisted alongside the override so
    /// recovery knows where a half-copied value still lives even after
    /// a chain of migrations has moved the key far from its hash home.
    route_sources: std::collections::HashMap<Bytes, usize>,
    /// Hot-shard mitigation, armed by [`ShardedRusKey::enable_balancing`].
    balancer: Option<Balancer>,
    /// Balancing passes that actually migrated keys.
    rebalances: u64,
    /// Where the routing overrides persist (durable/persistent stores
    /// only); `None` keeps them in memory.
    routes_path: Option<PathBuf>,
}

impl ShardedRusKey {
    /// Creates a sharded store driven by an arbitrary tuner, rejecting
    /// invalid configurations instead of panicking. The per-shard worker
    /// pool is spawned here and lives until the store drops.
    ///
    /// All shards share `storage` for data and device-level accounting,
    /// but each runs on its own [`ShardStorage`] view — a private time
    /// domain — so per-shard time and I/O attribution stays exact under
    /// parallel missions.
    ///
    /// # Panics
    /// Panics if `shards` is zero — a shard count is a structural choice
    /// made in code, not runtime input.
    pub fn try_with_tuner(
        cfg: RusKeyConfig,
        shards: usize,
        storage: Arc<dyn Storage>,
        tuner: Box<dyn Tuner>,
    ) -> Result<Self, ConfigError> {
        assert!(shards >= 1, "a store needs at least one shard");
        let trees = (0..shards)
            .map(|_| {
                let view: Arc<dyn Storage> = ShardStorage::new(Arc::clone(&storage));
                FlsmTree::try_new(cfg.lsm.clone(), view).map(Some)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::assemble(trees, Tuning::Global(tuner)))
    }

    /// Creates a sharded store with **one tuner per shard** — one shard
    /// per element of `tuners`, in shard order. Each tuner sees only its
    /// own shard's reward slice and observation, and its policy changes
    /// apply only to that shard.
    ///
    /// # Panics
    /// Panics if `tuners` is empty.
    pub fn try_with_tuners(
        cfg: RusKeyConfig,
        storage: Arc<dyn Storage>,
        tuners: Vec<Box<dyn Tuner>>,
    ) -> Result<Self, ConfigError> {
        assert!(!tuners.is_empty(), "a store needs at least one shard");
        let trees = (0..tuners.len())
            .map(|_| {
                let view: Arc<dyn Storage> = ShardStorage::new(Arc::clone(&storage));
                FlsmTree::try_new(cfg.lsm.clone(), view).map(Some)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::assemble(trees, Tuning::PerShard(tuners)))
    }

    /// Creates a sharded store with an independent Lerp instance per
    /// shard. Shard 0 keeps `cfg.lerp.seed` unchanged — which is what
    /// makes a one-shard per-shard store bit-identical to the global
    /// [`ShardedRusKey::try_with_lerp`] path — and shard `i` derives its
    /// seed as `seed + i·104729` (the same prime-stride idiom as
    /// [`crate::tuner::PerLevelNoPropagation`]), so sibling agents
    /// explore independently.
    pub fn try_with_per_shard_lerp(
        cfg: RusKeyConfig,
        shards: usize,
        storage: Arc<dyn Storage>,
    ) -> Result<Self, ConfigError> {
        assert!(shards >= 1, "a store needs at least one shard");
        let tuners = (0..shards)
            .map(|i| {
                let mut lc = cfg.lerp.clone();
                lc.seed = lc.seed.wrapping_add(i as u64 * 104_729);
                Box::new(Lerp::new(lc)) as Box<dyn Tuner>
            })
            .collect();
        Self::try_with_tuners(cfg, storage, tuners)
    }

    /// Panicking form of [`ShardedRusKey::try_with_per_shard_lerp`].
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `shards` is zero.
    pub fn with_per_shard_lerp(
        cfg: RusKeyConfig,
        shards: usize,
        storage: Arc<dyn Storage>,
    ) -> Self {
        Self::try_with_per_shard_lerp(cfg, shards, storage)
            .unwrap_or_else(|e| panic!("invalid RusKeyConfig: {e}"))
    }

    /// Assembles the store around its trees and tuning, spawning the
    /// worker pool.
    fn assemble(trees: Vec<Option<FlsmTree>>, tuning: Tuning) -> Self {
        let shards = trees.len();
        Self {
            shards: trees,
            pool: WorkerPool::spawn(shards),
            tuning,
            collector: StatsCollector::new(),
            last_report: None,
            last_workers: Vec::new(),
            adhoc_scans: 0,
            adhoc_writes: vec![0; shards],
            dead_worker: None,
            routes: RoutingTable::new(),
            route_sources: std::collections::HashMap::new(),
            balancer: None,
            rebalances: 0,
            routes_path: None,
        }
    }

    /// Creates a *durable* sharded store: every shard gets its own WAL
    /// file under `durability.dir` (appended before each memtable insert,
    /// truncated on flush), and missions end with an overlapped
    /// cross-shard group-commit barrier — at most one fsync per shard per
    /// mission, run concurrently on the shard workers.
    pub fn try_with_tuner_durable(
        cfg: RusKeyConfig,
        shards: usize,
        storage: Arc<dyn Storage>,
        tuner: Box<dyn Tuner>,
        durability: &DurabilityConfig,
    ) -> Result<Self, OpenError> {
        std::fs::create_dir_all(&durability.dir)?;
        let mut store = Self::try_with_tuner(cfg, shards, storage, tuner)?;
        // Index by shard *slot*, not by position after a flatten: the WAL
        // file ↔ shard mapping must never shift past an empty slot.
        for (i, slot) in store.shards.iter_mut().enumerate() {
            let tree = slot.as_mut().expect("freshly constructed shard");
            let path = durability.shard_wal_path(i);
            // A fresh store starts from empty logs: leftovers from a
            // previous incarnation would otherwise merge into a later
            // recovery with colliding sequence numbers (this store's seq
            // restarts at 1). [`ShardedRusKey::recover`] is the explicit
            // path for continuing from existing logs.
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
            tree.attach_wal(Wal::open_with_sync_every(path, durability.sync_every)?);
        }
        // A fresh store starts from hash routing: a previous
        // incarnation's re-homed keys no longer exist.
        let routes = durability.dir.join(ROUTES_FILE);
        match std::fs::remove_file(&routes) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        store.routes_path = Some(routes);
        Ok(store)
    }

    /// Creates a **fully persistent** sharded store: every shard gets its
    /// own directory under `persistence.root` with an independent
    /// [`FileDisk`] for its data pages, a [`Manifest`] recording its
    /// run/level structure (committed atomically on every flush,
    /// compaction, and transition), and a WAL for its write buffer (one
    /// fsync per shard per mission via the group-commit barrier). Such a
    /// store survives a full restart — flushed runs included — through
    /// [`ShardedRusKey::recover_persistent`].
    ///
    /// Any previous incarnation under the same root is wiped first (a
    /// fresh store restarts sequence numbers at 1; `recover_persistent`
    /// is the explicit path for continuing).
    pub fn try_with_tuner_persistent(
        cfg: RusKeyConfig,
        shards: usize,
        tuner: Box<dyn Tuner>,
        persistence: &PersistenceConfig,
    ) -> Result<Self, OpenError> {
        assert!(shards >= 1, "a store needs at least one shard");
        cfg.lsm.validate()?;
        // Wipe the *whole* previous incarnation, including shard dirs
        // beyond the new count — a leftover higher-index directory would
        // make every later `recover_persistent` refuse the store as a
        // shard-count mismatch.
        for i in 0..shards.max(persistence.shards_described()?) {
            match std::fs::remove_dir_all(persistence.shard_dir(i)) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        let mut trees = Vec::with_capacity(shards);
        for i in 0..shards {
            let data = persistence.data_dir(i);
            std::fs::create_dir_all(&data)?;
            let disk = persistence.open_disk(&data)?;
            let mut tree = FlsmTree::try_new(cfg.lsm.clone(), disk)?;
            tree.attach_manifest(Manifest::create(
                persistence.manifest_path(i),
                persistence.checkpoint_every,
            )?);
            tree.attach_wal(Wal::open_with_sync_every(
                persistence.wal_path(i),
                persistence.sync_every,
            )?);
            trees.push(Some(tree));
        }
        let mut store = Self::assemble(trees, Tuning::Global(tuner));
        let routes = persistence.root.join(ROUTES_FILE);
        match std::fs::remove_file(&routes) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        store.routes_path = Some(routes);
        Ok(store)
    }

    /// Recovers a fully persistent sharded store after a restart: each
    /// shard reopens its [`FileDisk`] directory, folds its manifest's
    /// longest consistent prefix back into the run/level structure
    /// (rebuilding every run from its data pages, with fence pointers and
    /// Bloom filters re-derived identically), and replays its WAL tail on
    /// top — so the recovered store is get/scan-identical to the store
    /// that was dropped. The statistics baseline is reset so the first
    /// mission's report excludes recovery work; the lifetime recovery
    /// counters (`manifest_edits`, `runs_recovered`, `replayed_tail`)
    /// surface through [`TreeStatsSnapshot`] and [`MissionReport`].
    ///
    /// The same `shards` count that produced the layout must be passed
    /// (the routing hash keys on it); recovering fewer shards than the
    /// root describes is refused.
    pub fn recover_persistent(
        cfg: RusKeyConfig,
        shards: usize,
        tuner: Box<dyn Tuner>,
        persistence: &PersistenceConfig,
    ) -> Result<Self, OpenError> {
        assert!(shards >= 1, "a store needs at least one shard");
        cfg.lsm.validate()?;
        // A persistent store always creates every shard directory, so the
        // layout describes its exact creation count: recovery must match
        // it in *both* directions — fewer shards would drop acknowledged
        // writes, more would misroute them (the hash keys on the count)
        // and silently hide durable data behind empty shards.
        let described = persistence.shards_described()?;
        if described != 0 && described != shards {
            return Err(OpenError::ShardCountMismatch {
                logs: described,
                shards,
            });
        }
        let mut trees = Vec::with_capacity(shards);
        for i in 0..shards {
            let data = persistence.data_dir(i);
            std::fs::create_dir_all(&data)?;
            let disk = persistence.open_disk(&data)?;
            trees.push(Some(FlsmTree::recover_persistent(
                cfg.lsm.clone(),
                disk,
                persistence.manifest_path(i),
                persistence.wal_path(i),
                persistence.sync_every,
                persistence.checkpoint_every,
            )?));
        }
        let mut store = Self::assemble(trees, Tuning::Global(tuner));
        let routes = persistence.root.join(ROUTES_FILE);
        let entries = load_routes(&routes)?;
        store.routes_path = Some(routes);
        store.settle_routes(entries)?;
        store.collector.baseline_shards(store.shard_snapshots());
        Ok(store)
    }

    /// Recovers a durable sharded store after a crash: each shard's WAL
    /// is replayed (valid prefix only, order pinned by record sequence
    /// numbers, torn tails truncated away) into a fresh tree, and the
    /// statistics baseline is reset so the first mission's report
    /// excludes recovery work.
    ///
    /// Per-shard WALs recover independently, which is exactly why the
    /// routing hash must stay stable: the same `shards` count must be
    /// passed that produced the logs.
    pub fn recover(
        cfg: RusKeyConfig,
        shards: usize,
        storage: Arc<dyn Storage>,
        tuner: Box<dyn Tuner>,
        durability: &DurabilityConfig,
    ) -> Result<Self, OpenError> {
        assert!(shards >= 1, "a store needs at least one shard");
        cfg.lsm.validate()?;
        std::fs::create_dir_all(&durability.dir)?;
        // Refuse to recover fewer shards than the directory describes:
        // the extra logs hold acknowledged writes that would otherwise
        // vanish silently (the routing hash keys on the shard count).
        let mut logs = 0usize;
        for entry in std::fs::read_dir(&durability.dir)? {
            let name = entry?.file_name();
            let idx = name
                .to_string_lossy()
                .strip_prefix("shard-")
                .and_then(|s| s.strip_suffix(".wal"))
                .and_then(|s| s.parse::<usize>().ok());
            if let Some(idx) = idx {
                logs = logs.max(idx + 1);
            }
        }
        if logs > shards {
            return Err(OpenError::ShardCountMismatch { logs, shards });
        }
        let trees = (0..shards)
            .map(|i| {
                let view: Arc<dyn Storage> = ShardStorage::new(Arc::clone(&storage));
                FlsmTree::recover(
                    cfg.lsm.clone(),
                    view,
                    durability.shard_wal_path(i),
                    durability.sync_every,
                )
                .map(Some)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut store = Self::assemble(trees, Tuning::Global(tuner));
        let routes = durability.dir.join(ROUTES_FILE);
        let entries = load_routes(&routes)?;
        store.routes_path = Some(routes);
        store.settle_routes(entries)?;
        store.collector.baseline_shards(store.shard_snapshots());
        Ok(store)
    }

    /// Creates a sharded store tuned by Lerp, rejecting invalid
    /// configurations instead of panicking.
    pub fn try_with_lerp(
        cfg: RusKeyConfig,
        shards: usize,
        storage: Arc<dyn Storage>,
    ) -> Result<Self, ConfigError> {
        let lerp = Lerp::new(cfg.lerp.clone());
        Self::try_with_tuner(cfg, shards, storage, Box::new(lerp))
    }

    /// Creates a sharded store driven by an arbitrary tuner.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `shards` is zero.
    pub fn with_tuner(
        cfg: RusKeyConfig,
        shards: usize,
        storage: Arc<dyn Storage>,
        tuner: Box<dyn Tuner>,
    ) -> Self {
        Self::try_with_tuner(cfg, shards, storage, tuner)
            .unwrap_or_else(|e| panic!("invalid RusKeyConfig: {e}"))
    }

    /// Creates a sharded store tuned by Lerp (the RusKey system of the
    /// paper, scaled across shards).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `shards` is zero.
    pub fn with_lerp(cfg: RusKeyConfig, shards: usize, storage: Arc<dyn Storage>) -> Self {
        Self::try_with_lerp(cfg, shards, storage)
            .unwrap_or_else(|e| panic!("invalid RusKeyConfig: {e}"))
    }

    /// Creates an untuned sharded store.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `shards` is zero.
    pub fn untuned(cfg: RusKeyConfig, shards: usize, storage: Arc<dyn Storage>) -> Self {
        Self::with_tuner(cfg, shards, storage, Box::new(NoOpTuner))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's tree, which lives on the store between missions.
    ///
    /// # Panics
    /// Panics if the shard's worker panicked and took the tree with it
    /// (the engine is dead; see [`MissionError`]).
    fn tree(&self, idx: usize) -> &FlsmTree {
        self.shards[idx]
            .as_ref()
            .unwrap_or_else(|| panic!("shard {idx}'s worker died; the engine is unavailable"))
    }

    /// Mutable counterpart of [`ShardedRusKey::tree`].
    fn tree_mut(&mut self, idx: usize) -> &mut FlsmTree {
        self.shards[idx]
            .as_mut()
            .unwrap_or_else(|| panic!("shard {idx}'s worker died; the engine is unavailable"))
    }

    /// Read access to one shard's tree (experiments and introspection).
    pub fn shard(&self, idx: usize) -> &FlsmTree {
        self.tree(idx)
    }

    /// Mutable access to one shard's tree (test harnesses arm WAL crash
    /// points through this).
    pub fn shard_mut(&mut self, idx: usize) -> &mut FlsmTree {
        self.tree_mut(idx)
    }

    /// True if any shard's WAL *or manifest* simulated a process crash
    /// (fault injection): the store is dead and the harness should
    /// recover from the logs.
    pub fn crashed(&self) -> bool {
        self.shards.iter().flatten().any(FlsmTree::crashed)
    }

    /// Test hook (`tests/pool_stress.rs`): makes the given shard's worker
    /// panic on its next job, simulating an engine bug on a pool thread.
    /// The next dispatch observes the death as a clean [`MissionError`]
    /// instead of a hang. A production store never calls this.
    #[doc(hidden)]
    pub fn inject_worker_panic(&mut self, shard: usize) {
        // Best-effort: if the worker is already gone the send fails,
        // which is the state the hook wanted anyway.
        let _ = self.pool.send(shard, Job::Panic);
    }

    /// Dispatches one job per shard onto the worker pool and collects the
    /// replies, restoring every returned tree to its slot. This is the
    /// single synchronization point of the engine: worker death (queue
    /// gone or reply never sent) surfaces here as a [`MissionError`], and
    /// per-shard worker threads/commit legs are recorded from the
    /// replies.
    fn dispatch(
        &mut self,
        mut job_for: impl FnMut(usize, FlsmTree, Sender<Done>) -> Job,
    ) -> Result<Vec<ShardDone>, MissionError> {
        // Fail fast on a known-dead engine *before* enqueuing anything:
        // only the dispatch that discovers a death executes partially.
        if let Some(shard) = self.dead_worker {
            return Err(MissionError::WorkerUnavailable { shard });
        }
        if let Some(shard) = self.shards.iter().position(Option::is_none) {
            return Err(MissionError::WorkerUnavailable { shard });
        }
        let n = self.shards.len();
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut dispatched = 0usize;
        let mut dead_shard = None;
        for i in 0..n {
            let tree = self.shards[i].take().expect("all trees checked present");
            match self.pool.send(i, job_for(i, tree, reply_tx.clone())) {
                Ok(()) => dispatched += 1,
                Err(job) => {
                    // The worker's queue is gone (it panicked earlier):
                    // recover the tree from the unsent job and keep
                    // collecting the shards already dispatched.
                    self.shards[i] = job.into_tree();
                    dead_shard.get_or_insert(i);
                }
            }
        }
        drop(reply_tx);
        let mut dones = Vec::with_capacity(dispatched);
        for _ in 0..dispatched {
            // recv() cannot hang: every reply sender lives inside a job,
            // and a worker either sends it or drops it by panicking — in
            // which case the channel closes once the remaining workers
            // finish.
            let Ok(done) = reply_rx.recv() else { break };
            let Done {
                shard,
                tree,
                worker,
                commit,
                adhoc,
            } = done;
            self.shards[shard] = Some(tree);
            dones.push(ShardDone {
                shard,
                worker,
                commit,
                adhoc,
            });
        }
        if let Some(shard) = dead_shard {
            self.dead_worker = Some(shard);
            return Err(MissionError::WorkerUnavailable { shard });
        }
        if dones.len() < dispatched {
            let shard = self
                .shards
                .iter()
                .position(Option::is_none)
                .expect("a missing reply leaves its tree unreturned");
            self.dead_worker = Some(shard);
            return Err(MissionError::WorkerPanicked { shard });
        }
        // Every shard replied: the dispatch fully executed, so the worker
        // introspection is current even if a commit leg failed below.
        let mut workers = vec![None; n];
        for d in &dones {
            workers[d.shard] = Some(d.worker);
        }
        self.last_workers = workers
            .into_iter()
            .map(|w| w.expect("every shard replied exactly once"))
            .collect();
        if let Some(d) = dones.iter_mut().find(|d| d.commit.error.is_some()) {
            return Err(MissionError::Wal {
                shard: d.shard,
                error: d.commit.error.take().expect("checked present"),
            });
        }
        Ok(dones)
    }

    /// The overlapped cross-shard group-commit barrier: every shard's
    /// worker syncs its WAL at most once, concurrently with its siblings,
    /// acknowledging every record logged since the previous barrier —
    /// one fsync per shard per batch instead of one per record. Shards
    /// with nothing unacknowledged skip their fsync; a shard whose WAL
    /// already crashed no-ops without stopping its siblings' legs (a dead
    /// process commits nothing further, but the others' batches become
    /// durable — which is what lets the crash harness pin exactly which
    /// shards' records survived).
    ///
    /// # Panics
    /// Panics on [`MissionError`]; use [`ShardedRusKey::try_group_commit`]
    /// for fallible operation.
    pub fn group_commit(&mut self) -> CommitStats {
        self.try_group_commit()
            .unwrap_or_else(|e| panic!("group commit failed: {e}"))
    }

    /// Fallible form of [`ShardedRusKey::group_commit`].
    pub fn try_group_commit(&mut self) -> Result<CommitStats, MissionError> {
        let dones = self.dispatch(|_, tree, reply| Job::Commit { tree, reply })?;
        Ok(commit_stats(&dones))
    }

    /// The store's tuning strategy.
    pub fn tuner_strategy(&self) -> TunerStrategy {
        match &self.tuning {
            Tuning::Global(_) => TunerStrategy::Global,
            Tuning::PerShard(_) => TunerStrategy::PerShard,
        }
    }

    /// The tuner's display name (per-shard: the first tuner's name with
    /// the shard count, e.g. `per-shard(lerp ×4)`).
    pub fn tuner_name(&self) -> String {
        match &self.tuning {
            Tuning::Global(t) => t.name(),
            Tuning::PerShard(ts) => format!("per-shard({} ×{})", ts[0].name(), ts.len()),
        }
    }

    /// Whether the tuner reports convergence (per-shard: *every* shard's
    /// tuner has converged).
    pub fn tuner_converged(&self) -> bool {
        match &self.tuning {
            Tuning::Global(t) => t.converged(),
            Tuning::PerShard(ts) => ts.iter().all(|t| t.converged()),
        }
    }

    /// Cumulative model-update time (Fig. 13; per-shard: summed over the
    /// shard tuners).
    pub fn model_update_ns(&self) -> u64 {
        match &self.tuning {
            Tuning::Global(t) => t.model_update_ns(),
            Tuning::PerShard(ts) => ts.iter().map(|t| t.model_update_ns()).sum(),
        }
    }

    /// The report of the last processed mission.
    pub fn last_report(&self) -> Option<&MissionReport> {
        self.last_report.as_ref()
    }

    /// Distinct OS worker threads used by the last pool dispatch (one per
    /// shard: `N` for an `N`-shard store, 1 when it has a single shard).
    pub fn last_parallelism(&self) -> usize {
        self.last_workers.iter().collect::<HashSet<_>>().len()
    }

    /// The OS thread that served each shard in the last pool dispatch, in
    /// shard order (empty before the first mission). The pool is
    /// persistent, so consecutive missions report identical IDs —
    /// `tests/pool_stress.rs` pins this.
    pub fn last_worker_threads(&self) -> &[ThreadId] {
        &self.last_workers
    }

    /// Store-wide statistics: every shard's snapshot merged
    /// ([`TreeStatsSnapshot::merge`]) — `clock_ns` is the wall
    /// composition (max over shard domains), `busy_ns` the device-busy
    /// composition (sum over shard domains).
    pub fn stats(&self) -> TreeStatsSnapshot {
        TreeStatsSnapshot::merge_all(&self.shard_snapshots())
    }

    /// One statistics snapshot per shard, in shard order — each covering
    /// exactly that shard's time domain.
    pub fn shard_snapshots(&self) -> Vec<TreeStatsSnapshot> {
        (0..self.shards.len())
            .map(|i| self.tree(i).stats())
            .collect()
    }

    // ------------------------------------------------------------------
    // Plain KV interface (outside missions)
    // ------------------------------------------------------------------

    fn owner(&self, key: &[u8]) -> usize {
        self.routes.shard_for(key, self.shards.len())
    }

    /// Feeds one routed point op into the balancer's sketch (no-op while
    /// balancing is off).
    fn observe_point_op(&mut self, key: &[u8], shard: usize) {
        if let Some(bal) = &mut self.balancer {
            bal.sketch.record(key, shard);
        }
    }

    /// Ships one ad-hoc op to the owning shard's worker and waits for the
    /// tree (and result) to come home. Worker death keeps the exact
    /// semantics the inline path had: a panic with the shard named, and a
    /// permanently dead engine.
    fn adhoc_one(&mut self, shard: usize, op: AdhocOp) -> AdhocOut {
        if let Some(s) = self.dead_worker {
            panic!("shard {s}'s worker died; the engine is unavailable");
        }
        let maintain = matches!(op, AdhocOp::Put(..) | AdhocOp::Delete(..)) && {
            self.adhoc_writes[shard] += 1;
            self.adhoc_writes[shard].is_multiple_of(ADHOC_BOUNDARY_OPS)
        };
        let tree = self.shards[shard]
            .take()
            .unwrap_or_else(|| panic!("shard {shard}'s worker died; the engine is unavailable"));
        let (reply_tx, reply_rx) = mpsc::channel();
        if let Err(job) = self.pool.send(
            shard,
            Job::Adhoc {
                tree,
                op,
                maintain,
                reply: reply_tx,
            },
        ) {
            self.shards[shard] = job.into_tree();
            self.dead_worker = Some(shard);
            panic!("shard {shard}'s worker died; the engine is unavailable");
        }
        match reply_rx.recv() {
            Ok(done) => {
                self.shards[done.shard] = Some(done.tree);
                done.adhoc.expect("an ad-hoc job replies with its result")
            }
            Err(_) => {
                self.dead_worker = Some(shard);
                panic!("shard {shard}'s worker died; the engine is unavailable");
            }
        }
    }

    /// Point lookup, routed to the owning shard's worker.
    pub fn get(&mut self, key: &[u8]) -> Option<Bytes> {
        let s = self.owner(key);
        self.observe_point_op(key, s);
        match self.adhoc_one(s, AdhocOp::Get(Bytes::copy_from_slice(key))) {
            AdhocOut::Value(v) => v,
            _ => unreachable!("get replies with a value"),
        }
    }

    /// Insert or overwrite, routed to the owning shard's worker (which
    /// interleaves boundary maintenance exactly as mission lanes do —
    /// an ad-hoc write burst gets the same L0 backpressure and
    /// `stall_ns` attribution a mission would).
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        let key = key.into();
        let s = self.owner(&key);
        self.observe_point_op(&key, s);
        self.adhoc_one(s, AdhocOp::Put(key, value.into()));
    }

    /// Delete, routed to the owning shard's worker (same maintenance
    /// interleaving as [`ShardedRusKey::put`]).
    pub fn delete(&mut self, key: impl Into<Bytes>) {
        let key = key.into();
        let s = self.owner(&key);
        self.observe_point_op(&key, s);
        self.adhoc_one(s, AdhocOp::Delete(key));
    }

    /// Range scan over `[start, end)` with a result limit: every shard
    /// scans its partition *on its own worker* — in parallel, each leg
    /// charged to its shard's time domain exactly as on the mission
    /// path — and the per-shard results (sorted, disjoint) are k-way
    /// merged into one globally sorted result.
    pub fn scan(&mut self, start: &[u8], end: &[u8], limit: usize) -> Vec<(Bytes, Bytes)> {
        self.adhoc_scans += 1;
        let n = self.shards.len();
        let (s, e) = (Bytes::copy_from_slice(start), Bytes::copy_from_slice(end));
        let dones = self
            .dispatch(|_, tree, reply| Job::Adhoc {
                tree,
                op: AdhocOp::Scan {
                    start: s.clone(),
                    end: e.clone(),
                    limit,
                },
                maintain: false,
                reply,
            })
            .unwrap_or_else(|e| panic!("ad-hoc scan failed: {e}"));
        let mut per_shard: Vec<Vec<(Bytes, Bytes)>> = vec![Vec::new(); n];
        for d in dones {
            if let Some(AdhocOut::Scan(rows)) = d.adhoc {
                per_shard[d.shard] = rows;
            }
        }
        merge_sorted_scans(per_shard, limit)
    }

    // ------------------------------------------------------------------
    // Concurrent serving
    // ------------------------------------------------------------------

    /// Starts a serving session: every shard's tree ships to its worker,
    /// which parks in the serving loop behind a bounded request queue
    /// (capacity [`ServingConfig::queue_depth`]). The returned
    /// [`ServingFrontend`] is `Send + Sync`: hand out
    /// [`ServingClient`](crate::frontend::ServingClient)s to as many
    /// threads as you like — writes coalesce across clients into
    /// per-shard group-commit batches, the token bucket gates admission,
    /// and the live metrics registry tracks it all (see
    /// [`crate::frontend`]).
    ///
    /// While serving, the store itself has no trees: missions, ad-hoc
    /// ops, and introspection must wait until
    /// [`ShardedRusKey::finish_serving`] brings them home. Dropping the
    /// frontend without finishing leaves the engine permanently
    /// unavailable.
    pub fn serve(&mut self, cfg: ServingConfig) -> Result<ServingFrontend, MissionError> {
        if let Some(shard) = self.dead_worker {
            return Err(MissionError::WorkerUnavailable { shard });
        }
        if let Some(shard) = self.shards.iter().position(Option::is_none) {
            return Err(MissionError::WorkerUnavailable { shard });
        }
        let n = self.shards.len();
        let shared = Arc::new(ServeShared::new(cfg, n, self.routes.clone()));
        let (done_tx, done_rx) = mpsc::channel();
        let mut senders = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = mpsc::sync_channel(shared.cfg.queue_depth.max(1));
            let tree = self.shards[i].take().expect("all trees checked present");
            match self.pool.send(
                i,
                Job::Serve {
                    tree,
                    requests: rx,
                    shared: Arc::clone(&shared),
                    reply: done_tx.clone(),
                },
            ) {
                Ok(()) => senders.push(tx),
                Err(job) => {
                    // Worker i is gone: recover its tree from the unsent
                    // job, wind down the shards already serving (dropping
                    // their queue senders ends their loops), and fail.
                    self.shards[i] = job.into_tree();
                    self.dead_worker = Some(i);
                    drop(senders);
                    drop(done_tx);
                    while let Ok(done) = done_rx.recv() {
                        self.shards[done.shard] = Some(done.tree);
                    }
                    return Err(MissionError::WorkerUnavailable { shard: i });
                }
            }
        }
        drop(done_tx);
        Ok(ServingFrontend {
            senders,
            shared,
            done_rx: Mutex::new(done_rx),
            dispatched: n,
        })
    }

    /// Ends a serving session: sends each shard a shutdown request,
    /// collects the trees back onto the store, folds the served work out
    /// of the next mission's statistics delta (exactly like
    /// [`ShardedRusKey::bulk_load`] — the serving traffic is not a
    /// mission), and returns the session's final metrics snapshot.
    ///
    /// A shard whose serve loop already stopped (mid-serve crash
    /// injection, WAL failure) just returns its tree — the snapshot and
    /// [`ShardedRusKey::crashed`] tell the caller what happened. A shard
    /// whose *worker* died serving returns nothing, and the engine is
    /// dead: [`MissionError::WorkerPanicked`].
    pub fn finish_serving(
        &mut self,
        frontend: ServingFrontend,
    ) -> Result<MetricsSnapshot, MissionError> {
        let ServingFrontend {
            senders,
            shared,
            done_rx,
            dispatched,
        } = frontend;
        let done_rx = done_rx.into_inner().expect("serving done-channel poisoned");
        for tx in &senders {
            // A shard that already stopped serving has dropped its queue;
            // the failed send *is* the confirmation, not an error.
            let _ = tx.send(ShardRequest::Shutdown);
        }
        drop(senders);
        for _ in 0..dispatched {
            // Cannot hang: every worker either sends its Done (tree home)
            // or panicked — closing the channel once the rest finish.
            let Ok(done) = done_rx.recv() else { break };
            self.shards[done.shard] = Some(done.tree);
        }
        if let Some(shard) = self.shards.iter().position(Option::is_none) {
            self.dead_worker = Some(shard);
            return Err(MissionError::WorkerPanicked { shard });
        }
        // Snapshot after every loop stopped, so the final batches are in.
        let snapshot = shared.metrics.snapshot();
        self.collector.baseline_shards(self.shard_snapshots());
        self.adhoc_scans = 0;
        Ok(snapshot)
    }

    // ------------------------------------------------------------------
    // Mission-driven operation
    // ------------------------------------------------------------------

    /// Bulk-loads the store (pairs hash-partitioned onto their owning
    /// shards) and resets the statistics baseline so mission reports
    /// exclude the load.
    pub fn bulk_load(&mut self, pairs: Vec<(Bytes, Bytes)>) {
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<(Bytes, Bytes)>> = vec![Vec::new(); n];
        for (k, v) in pairs {
            per_shard[self.routes.shard_for(&k, n)].push((k, v));
        }
        for (i, shard_pairs) in per_shard.into_iter().enumerate() {
            if !shard_pairs.is_empty() {
                self.tree_mut(i).bulk_load(shard_pairs);
            }
        }
        self.collector.baseline_shards(self.shard_snapshots());
        self.adhoc_scans = 0;
    }

    /// Store-wide structure snapshot for tuners: per-level fill ratios
    /// and run counts *average* over the shards that have materialized
    /// the level — a lookup probes exactly one shard, so the mean run
    /// count is what the RL state's normalized `runs / T` feature
    /// expects (summing would scale it by `N` and push the tuner out of
    /// distribution) — and the per-level policy is the **modal** one
    /// across those shards (ties break toward the smaller K). Reporting
    /// `holders[0]`'s policy was silently wrong once per-shard tuning
    /// let policies diverge; the mode is exact whenever shards agree
    /// (the whole global-tuning regime) and representative otherwise.
    /// For a one-shard store this equals
    /// [`RusKey::observe`](crate::db::RusKey::observe).
    pub fn observe(&self) -> TreeObservation {
        let trees: Vec<&FlsmTree> = (0..self.shards.len()).map(|i| self.tree(i)).collect();
        let level_count = trees.iter().map(|t| t.level_count()).max().unwrap_or(0);
        let mut policies = Vec::with_capacity(level_count);
        let mut fills = Vec::with_capacity(level_count);
        let mut run_counts = Vec::with_capacity(level_count);
        for i in 0..level_count {
            let holders: Vec<&&FlsmTree> = trees.iter().filter(|t| t.level_count() > i).collect();
            let held: Vec<u32> = holders.iter().map(|t| t.policy(i)).collect();
            policies.push(modal_policy(&held));
            fills.push(holders.iter().map(|t| t.level_fill(i)).sum::<f64>() / holders.len() as f64);
            let mean_runs = holders.iter().map(|t| t.level_run_count(i)).sum::<usize>() as f64
                / holders.len() as f64;
            run_counts.push(mean_runs.round() as usize);
        }
        TreeObservation {
            policies,
            fills,
            run_counts,
            size_ratio: trees[0].config().size_ratio,
            level_count,
        }
    }

    /// One shard's structure snapshot, built from that shard's levels
    /// only — the observation a per-shard tuner acts on. Mirrors
    /// [`RusKey::observe`](crate::db::RusKey::observe) exactly.
    pub fn observe_shard(&self, idx: usize) -> TreeObservation {
        let tree = self.tree(idx);
        let n = tree.level_count();
        TreeObservation {
            policies: tree.policies(),
            fills: (0..n).map(|i| tree.level_fill(i)).collect(),
            run_counts: (0..n).map(|i| tree.level_run_count(i)).collect(),
            size_ratio: tree.config().size_ratio,
            level_count: n,
        }
    }

    /// Store-wide per-level policies: the modal policy across the shards
    /// holding each level (ties toward the smaller K) — exact whenever
    /// shards agree, which is always the case under global tuning. The
    /// per-shard truth is [`ShardedRusKey::shard_policies`].
    pub fn policies(&self) -> Vec<u32> {
        let trees: Vec<&FlsmTree> = (0..self.shards.len()).map(|i| self.tree(i)).collect();
        let level_count = trees.iter().map(|t| t.level_count()).max().unwrap_or(0);
        (0..level_count)
            .map(|i| {
                let held: Vec<u32> = trees
                    .iter()
                    .filter(|t| t.level_count() > i)
                    .map(|t| t.policy(i))
                    .collect();
                modal_policy(&held)
            })
            .collect()
    }

    /// Every shard's true per-level policies, in shard order — exact
    /// even when per-shard tuners have diverged.
    pub fn shard_policies(&self) -> Vec<Vec<u32>> {
        (0..self.shards.len())
            .map(|i| self.tree(i).policies())
            .collect()
    }

    /// Processes one mission: routes the operations into per-shard lanes,
    /// dispatches them onto the persistent worker pool (every shard
    /// count, `N = 1` included, runs the same code path), lets each
    /// worker run its shard's group-commit leg as soon as its lane
    /// finishes (overlapped fsyncs), builds the aggregated mission
    /// report, lets the global tuner act, and fans its policy changes out
    /// to every shard.
    ///
    /// # Panics
    /// Panics on [`MissionError`] (a dead worker or a WAL I/O failure);
    /// use [`ShardedRusKey::try_run_mission`] for fallible operation.
    pub fn run_mission(&mut self, ops: &[Operation]) -> MissionReport {
        self.try_run_mission(ops)
            .unwrap_or_else(|e| panic!("mission failed: {e}"))
    }

    /// Fallible form of [`ShardedRusKey::run_mission`]: worker panics and
    /// WAL I/O failures surface as [`MissionError`] instead of a panic
    /// (and never as a hang).
    pub fn try_run_mission(&mut self, ops: &[Operation]) -> Result<MissionReport, MissionError> {
        let t0 = Instant::now();
        let n = self.shards.len();
        // Logical scan count, taken at routing time: a range scan
        // broadcasts to every shard, so the shards' counters will see it
        // `N` times while the mission contains it once.
        let logical_scans = ops
            .iter()
            .filter(|op| matches!(op, Operation::Scan { .. }))
            .count() as u64;
        // Feed the balancer's sketch from the routed stream (off unless
        // balancing is armed): point ops nominate their key on their
        // routed shard, a broadcast scan weighs every shard once.
        if self.balancer.is_some() {
            for op in ops {
                match op {
                    Operation::Get { key }
                    | Operation::Put { key, .. }
                    | Operation::Delete { key } => {
                        let s = self.routes.shard_for(key, n);
                        self.observe_point_op(key, s);
                    }
                    Operation::Scan { .. } => {
                        if let Some(bal) = &mut self.balancer {
                            for s in 0..n {
                                bal.sketch.record_bulk(s, 1);
                            }
                        }
                    }
                }
            }
        }
        let mut lanes: Vec<Option<Vec<Operation>>> = self
            .routes
            .partition_ops_owned(ops, n)
            .into_iter()
            .map(Some)
            .collect();
        let dones = match self.dispatch(|i, tree, reply| Job::Lane {
            tree,
            ops: lanes[i].take().expect("one lane per shard"),
            reply,
        }) {
            Ok(dones) => dones,
            Err(e) => {
                // A WAL commit failure leaves the engine alive with every
                // lane already applied but no report cut for it: rebaseline
                // so a later mission's report does not double-count this
                // mission's work. (Worker deaths need no rebaseline — the
                // engine is marked dead and no further report can be
                // built.)
                if matches!(e, MissionError::Wal { .. }) {
                    self.collector.baseline_shards(self.shard_snapshots());
                    self.adhoc_scans = 0;
                }
                return Err(e);
            }
        };
        // The commit barrier ran inside the workers, overlapped: the
        // mission's durability latency is the slowest shard's leg, the
        // total sync work the sum of all legs.
        let commit = commit_stats(&dones);
        // Per-shard commit legs, kept for the per-shard reward slices: a
        // shard's tuner must price *its* fsync, not the barrier max.
        let mut legs = vec![0u64; n];
        for d in &dones {
            legs[d.shard] = d.commit.ns;
        }
        let process_ns = t0.elapsed().as_nanos() as u64;
        let (mut report, mut slices) = self
            .collector
            .report_mission_shards_split(self.shard_snapshots(), process_ns);
        report.commit_ns = commit.barrier_ns;
        report.commit_busy_ns = commit.busy_ns;
        // Report the *logical* scan composition (one scan per mission
        // operation, counted at routing time above, plus any ad-hoc
        // `scan()` calls since the last report) so `gamma` is comparable
        // across shard counts. The I/O and latency of the N sub-scans
        // stay in the report — that work really happened. The broadcast
        // invariant pins the physical count exactly; the old
        // `report.scans / n` recovery drifted whenever the physical count
        // was not a multiple of `n`.
        let logical_scans = logical_scans + self.adhoc_scans;
        self.adhoc_scans = 0;
        debug_assert_eq!(
            report.scans,
            logical_scans * n as u64,
            "scan broadcast invariant violated: {} physical scans across {n} shards \
             for {logical_scans} logical scans",
            report.scans,
        );
        if n > 1 {
            report.ops = report.ops - report.scans + logical_scans;
            report.scans = logical_scans;
        }

        match &self.tuning {
            Tuning::Global(_) => {
                let obs = self.observe();
                let Tuning::Global(tuner) = &mut self.tuning else {
                    unreachable!("strategy checked above")
                };
                crate::db::tune_mission(tuner.as_mut(), &mut report, &obs, |level, k| {
                    for tree in self.shards.iter_mut().flatten() {
                        tree.set_policy(level, k);
                    }
                });
            }
            Tuning::PerShard(_) => {
                // Each shard's tuner sees its own reward slice (that
                // shard's time-domain delta, with *its* commit leg — the
                // slice's physical scan count stays: the shard really ran
                // its broadcast leg) and its own observation, and its
                // policy changes land only on the owning shard. Idle
                // shards are skipped entirely: a zero-op slice carries no
                // signal (the common case under skew), and skipping keeps
                // the shard's agent replay clean instead of feeding it
                // degenerate rewards.
                let obs: Vec<TreeObservation> = (0..n).map(|i| self.observe_shard(i)).collect();
                let Tuning::PerShard(tuners) = &mut self.tuning else {
                    unreachable!("strategy checked above")
                };
                for (i, tuner) in tuners.iter_mut().enumerate() {
                    slices[i].commit_ns = legs[i];
                    slices[i].commit_busy_ns = legs[i];
                    if slices[i].ops == 0 {
                        continue;
                    }
                    let tree = self.shards[i]
                        .as_mut()
                        .expect("every tree is home after dispatch");
                    crate::db::tune_mission(tuner.as_mut(), &mut slices[i], &obs[i], |level, k| {
                        tree.set_policy(level, k);
                    });
                    report.model_update_ns += slices[i].model_update_ns;
                }
            }
        }
        report.policies_after = self.policies();
        report.shard_policies_after = self.shard_policies();
        self.last_report = Some(report.clone());
        self.maybe_rebalance()?;
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Hot-shard balancing
    // ------------------------------------------------------------------

    /// Arms hot-shard mitigation: from now on the point-op stream feeds
    /// a [`LoadSketch`], and a mission whose recent load is imbalanced
    /// beyond `cfg.imbalance_threshold` re-homes the hottest shard's
    /// heaviest keys to the coldest shard (at most `cfg.max_moves` per
    /// mission). Arming is cheap and reversible; the sketch starts
    /// empty, so mitigation reacts only to load observed *after* this
    /// call.
    pub fn enable_balancing(&mut self, cfg: BalanceConfig) {
        let n = self.shards.len();
        self.balancer = Some(Balancer {
            sketch: LoadSketch::new(n, cfg.capacity),
            cfg,
        });
    }

    /// Disarms hot-shard mitigation. Existing routing overrides remain
    /// in force — the re-homed keys really live on their new shards.
    pub fn disable_balancing(&mut self) {
        self.balancer = None;
    }

    /// Balancing passes that actually migrated keys.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Number of keys currently re-homed away from their hash shard.
    pub fn rehomed_keys(&self) -> usize {
        self.routes.len()
    }

    /// The balancer's current view of recent load imbalance (max shard
    /// ops over mean; 0.0 while balancing is off or nothing was
    /// observed).
    pub fn load_imbalance(&self) -> f64 {
        self.balancer.as_ref().map_or(0.0, |b| b.sketch.imbalance())
    }

    /// One balancing pass, run at each mission boundary while armed.
    ///
    /// Migration is ordered for crash safety on a durable store:
    ///
    /// 1. the routing overrides — including the new moves — are written
    ///    to the routes file *atomically* (tmp + fsync + rename) before
    ///    any data moves; a crash here leaves overrides whose data still
    ///    sits at the hash home, which recovery settles by redoing the
    ///    copy;
    /// 2. each key's value is read from the hot shard and put to its new
    ///    home;
    /// 3. one group-commit barrier makes the copies durable;
    /// 4. only then are the originals tombstoned — so "delete durable
    ///    but copy lost" is impossible even though per-shard WALs sync
    ///    independently.
    ///
    /// Every step is idempotent under re-execution, which is what lets
    /// [`ShardedRusKey::recover`]/[`recover_persistent`](ShardedRusKey::recover_persistent)
    /// settle any half-finished pass from the routes file alone.
    fn maybe_rebalance(&mut self) -> Result<(), MissionError> {
        let n = self.shards.len();
        let Some(bal) = &self.balancer else {
            return Ok(());
        };
        let (threshold, min_ops, max_moves, decay) = (
            bal.cfg.imbalance_threshold,
            bal.cfg.min_ops,
            bal.cfg.max_moves,
            bal.cfg.decay,
        );
        let acting = n >= 2
            && bal.sketch.total_ops() >= min_ops as f64
            && bal.sketch.imbalance() > threshold;
        if !acting {
            if let Some(bal) = &mut self.balancer {
                bal.sketch.decay(decay);
            }
            return Ok(());
        }
        let bal = self.balancer.as_ref().expect("checked above");
        let hot = bal.sketch.hottest_shard();
        let cold = bal.sketch.coldest_shard();
        let candidates = bal.sketch.heavy_hitters();
        let moves: Vec<Bytes> = candidates
            .into_iter()
            .map(|(k, _)| k)
            .filter(|k| self.routes.shard_for(k, n) == hot)
            .take(max_moves)
            .collect();
        if let Some(bal) = &mut self.balancer {
            bal.sketch.decay(decay);
        }
        if moves.is_empty() || hot == cold {
            return Ok(());
        }
        // 1. Route first, durably. The reverse order could orphan a
        // migrated key behind a stale route after a crash. Every move's
        // source is `hot` (the filter above pinned the current route),
        // recorded so recovery can find a half-copied value even after
        // a chain of migrations.
        let prior_sources: Vec<Option<usize>> = moves
            .iter()
            .map(|key| self.route_sources.insert(key.clone(), hot))
            .collect();
        for key in &moves {
            self.routes.set(key.clone(), cold);
        }
        let rollback = |this: &mut Self| {
            // Undo the overrides in memory. A chained key (already
            // re-homed before this pass) must fall back to its *previous
            // route* — `hot` — not to hash routing.
            for (key, prior) in moves.iter().zip(&prior_sources) {
                if shard_for_key(key, n) == hot {
                    this.routes.remove(key);
                } else {
                    this.routes.set(key.clone(), hot);
                }
                match prior {
                    Some(s) => {
                        this.route_sources.insert(key.clone(), *s);
                    }
                    None => {
                        this.route_sources.remove(key);
                    }
                }
            }
        };
        if self.persist_routes().is_err() {
            // Could not make the new routes durable: undo them in memory
            // (no data has moved) and skip this pass — mitigation is
            // best-effort, correctness is not at stake.
            rollback(self);
            return Ok(());
        }
        // 2. Copy each key to its new home (a key with no live value —
        // deleted or never written — moves by route alone).
        for key in &moves {
            let v = match self.adhoc_one(hot, AdhocOp::Get(key.clone())) {
                AdhocOut::Value(v) => v,
                _ => unreachable!("get replies with a value"),
            };
            if let Some(v) = v {
                self.adhoc_one(cold, AdhocOp::Put(key.clone(), v));
            }
        }
        // 3. Copies durable before the originals go away.
        if let Err(e) = self.try_group_commit() {
            // The barrier failed (WAL I/O): roll the pass back so reads
            // keep a single live copy — tombstone the copies, restore
            // the previous routes, re-persist. Recovery from the
            // *durable* routes file (which still names the moves)
            // re-runs the migration idempotently, converging on the
            // same state.
            for key in &moves {
                self.adhoc_one(cold, AdhocOp::Delete(key.clone()));
            }
            rollback(self);
            let _ = self.persist_routes();
            return Err(e);
        }
        // 4. Tombstone the originals; the re-homed copies are durable.
        for key in &moves {
            self.adhoc_one(hot, AdhocOp::Delete(key.clone()));
        }
        self.rebalances += 1;
        Ok(())
    }

    /// Writes the routing overrides to the routes file atomically (tmp +
    /// fsync + rename + directory fsync), one `<target> <source> <hex
    /// key>` line per override. No-op for a non-durable store.
    fn persist_routes(&self) -> std::io::Result<()> {
        use std::io::Write as _;
        let Some(path) = &self.routes_path else {
            return Ok(());
        };
        let n = self.shards.len();
        let mut buf = String::new();
        for (key, shard) in self.routes.iter() {
            let source = self
                .route_sources
                .get(key)
                .copied()
                .unwrap_or_else(|| shard_for_key(key, n));
            buf.push_str(&format!("{shard} {source} "));
            for b in key.iter() {
                buf.push_str(&format!("{b:02x}"));
            }
            buf.push('\n');
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(buf.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Settles recovered routing overrides: installs each entry, then
    /// repairs whatever state the crash left the migration in. The
    /// routes file is always written before data moves, so the newest
    /// durable copy is at the first live location in priority order
    /// **target → source → hash home** (once the routes flipped, new
    /// writes went to the target; before the copy landed, the source —
    /// the previous route — held the latest value; a chain whose first
    /// hop never copied still has it at home). The authoritative copy is
    /// moved to the target, then every *other* shard's stale copy —
    /// including intermediates of a migration chain whose tombstones
    /// were not yet durable — is scrubbed. Every step is idempotent.
    fn settle_routes(&mut self, entries: Vec<(Bytes, usize, usize)>) -> Result<(), OpenError> {
        let n = self.shards.len();
        let mut settled = 0u64;
        for (key, target, source) in entries {
            if target >= n || source >= n {
                // A table written by a wider incarnation: unreachable in
                // practice (recovery pins the shard count), but a stale
                // entry must not panic — hash routing stays correct.
                continue;
            }
            let home = shard_for_key(&key, n);
            if home != target {
                self.routes.set(key.clone(), target);
                self.route_sources.insert(key.clone(), source);
            }
            let get = |this: &mut Self, shard: usize| match this
                .adhoc_one(shard, AdhocOp::Get(key.clone()))
            {
                AdhocOut::Value(v) => v,
                _ => unreachable!("get replies with a value"),
            };
            let at_target = get(self, target);
            if at_target.is_none() {
                let rescued = match get(self, source) {
                    Some(v) => Some(v),
                    None if home != source => get(self, home),
                    None => None,
                };
                if let Some(v) = rescued {
                    self.adhoc_one(target, AdhocOp::Put(key.clone(), v));
                    settled += 1;
                }
            }
            // Scrub every non-target copy: the authoritative value now
            // lives at the target (or the key is simply dead).
            for shard in 0..n {
                if shard != target && get(self, shard).is_some() {
                    self.adhoc_one(shard, AdhocOp::Delete(key.clone()));
                    settled += 1;
                }
            }
        }
        if settled > 0 {
            // The repairs must be durable before the store reports
            // recovered — a crash right after recovery must not resurface
            // the half-finished state.
            self.try_group_commit().map_err(|e| match e {
                MissionError::Wal { error, .. } => OpenError::Io(error),
                other => OpenError::Io(std::io::Error::other(other.to_string())),
            })?;
        }
        Ok(())
    }
}

/// File name of the persisted routing-override table, under the
/// durability dir / persistence root. Must not match the `shard-`
/// prefixes the recovery scans parse.
const ROUTES_FILE: &str = "ROUTES";

/// The most common policy among the shards holding a level, ties broken
/// toward the smaller (more leveled, read-safer) K. Deterministic, and
/// the identity whenever all shards agree — i.e. always, under global
/// tuning.
fn modal_policy(held: &[u32]) -> u32 {
    let mut sorted = held.to_vec();
    sorted.sort_unstable();
    let mut best = (1u32, 0usize);
    let mut i = 0;
    while i < sorted.len() {
        let run = sorted[i..].iter().take_while(|&&v| v == sorted[i]).count();
        if run > best.1 {
            best = (sorted[i], run);
        }
        i += run;
    }
    best.0
}

/// Loads the persisted routing overrides (`<target> <source> <hex key>`
/// lines). A missing file is an empty table; the atomic-rename write
/// protocol means the file is never torn, so malformed lines are a
/// corruption signal surfaced as an error rather than skipped silently.
fn load_routes(path: &std::path::Path) -> Result<Vec<(Bytes, usize, usize)>, OpenError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let parse = || -> Option<(Bytes, usize, usize)> {
            let (target, rest) = line.split_once(' ')?;
            let (source, hex) = rest.split_once(' ')?;
            let target = target.parse::<usize>().ok()?;
            let source = source.parse::<usize>().ok()?;
            if !hex.len().is_multiple_of(2) {
                return None;
            }
            let mut key = Vec::with_capacity(hex.len() / 2);
            for i in (0..hex.len()).step_by(2) {
                key.push(u8::from_str_radix(&hex[i..i + 2], 16).ok()?);
            }
            Some((Bytes::from(key), target, source))
        };
        match parse() {
            Some(entry) => out.push(entry),
            None => {
                return Err(OpenError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("corrupt routes file {}: bad line {line:?}", path.display()),
                )))
            }
        }
    }
    Ok(out)
}

/// Folds per-shard commit legs into the barrier composition: latency is
/// the max (the legs ran concurrently), work the sum.
fn commit_stats(dones: &[ShardDone]) -> CommitStats {
    CommitStats {
        barrier_ns: dones.iter().map(|d| d.commit.ns).max().unwrap_or(0),
        busy_ns: dones.iter().map(|d| d.commit.ns).sum(),
        syncs: dones.iter().filter(|d| d.commit.synced).count() as u64,
    }
}

/// One head of the k-way scan merge; ordered so the smallest key wins.
struct MergeHead {
    key: Bytes,
    shard: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for MergeHead {}

impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest key.
        other.key.cmp(&self.key)
    }
}

/// K-way merges per-shard scan results (each sorted, keys disjoint across
/// shards) into one sorted result of at most `limit` entries.
/// `pub(crate)`: the serving frontend's broadcast scans merge through the
/// same code path.
pub(crate) fn merge_sorted_scans(
    per_shard: Vec<Vec<(Bytes, Bytes)>>,
    limit: usize,
) -> Vec<(Bytes, Bytes)> {
    let mut iters: Vec<std::vec::IntoIter<(Bytes, Bytes)>> =
        per_shard.into_iter().map(Vec::into_iter).collect();
    let mut heap = BinaryHeap::with_capacity(iters.len());
    let mut values: Vec<Option<Bytes>> = vec![None; iters.len()];
    for (i, it) in iters.iter_mut().enumerate() {
        if let Some((k, v)) = it.next() {
            heap.push(MergeHead { key: k, shard: i });
            values[i] = Some(v);
        }
    }
    let mut out = Vec::new();
    while out.len() < limit {
        let Some(MergeHead { key, shard }) = heap.pop() else {
            break;
        };
        let value = values[shard].take().expect("merge head without value");
        out.push((key, value));
        if let Some((k, v)) = iters[shard].next() {
            heap.push(MergeHead { key: k, shard });
            values[shard] = Some(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::FixedPolicy;
    use ruskey_storage::{CostModel, SimulatedDisk};
    use ruskey_workload::{bulk_load_pairs, OpGenerator, OpMix, WorkloadSpec};

    fn small_cfg() -> RusKeyConfig {
        let mut cfg = RusKeyConfig::scaled_default();
        cfg.lsm.buffer_bytes = 4096;
        cfg.lsm.size_ratio = 4;
        cfg
    }

    fn disk() -> Arc<SimulatedDisk> {
        SimulatedDisk::new(512, CostModel::NVME)
    }

    #[test]
    fn kv_roundtrip_across_shards() {
        let mut db = ShardedRusKey::untuned(small_cfg(), 4, disk());
        for i in 0..200u64 {
            db.put(ruskey_workload::encode_key(i, 16), vec![i as u8; 8]);
        }
        for i in 0..200u64 {
            let got = db.get(&ruskey_workload::encode_key(i, 16));
            assert_eq!(got.as_deref(), Some(vec![i as u8; 8].as_slice()), "key {i}");
        }
        db.delete(ruskey_workload::encode_key(7, 16));
        assert_eq!(db.get(&ruskey_workload::encode_key(7, 16)), None);
    }

    #[test]
    fn cross_shard_scan_is_globally_sorted_and_limited() {
        let mut db = ShardedRusKey::untuned(small_cfg(), 4, disk());
        for i in 0..300u64 {
            db.put(ruskey_workload::encode_key(i, 16), vec![1u8; 8]);
        }
        let all = db.scan(
            &ruskey_workload::encode_key(50, 16),
            &ruskey_workload::encode_key(150, 16),
            1000,
        );
        assert_eq!(all.len(), 100);
        for (w, pair) in all.windows(2).zip(all.iter().skip(1)) {
            assert!(w[0].0 < pair.0, "scan out of order");
        }
        let limited = db.scan(
            &ruskey_workload::encode_key(50, 16),
            &ruskey_workload::encode_key(150, 16),
            7,
        );
        assert_eq!(limited.len(), 7);
        assert_eq!(limited[..], all[..7]);
    }

    #[test]
    fn mission_reports_aggregate_all_shards() {
        let mut db =
            ShardedRusKey::with_tuner(small_cfg(), 4, disk(), Box::new(FixedPolicy::moderate()));
        db.bulk_load(bulk_load_pairs(1000, 16, 48, 1));
        let spec = WorkloadSpec {
            key_space: 1000,
            value_len: 48,
            ..WorkloadSpec::scaled_default(1000)
        }
        .with_mix(OpMix::read_heavy());
        let mut g = OpGenerator::new(spec, 2);
        let r = db.run_mission(&g.take_ops(400));
        assert_eq!(r.ops, 400, "aggregated op count covers every shard");
        assert!((r.gamma() - 0.9).abs() < 0.08);
        assert!(r.end_to_end_ns > 0);
        assert!(!r.policies_after.is_empty());
        assert_eq!(db.last_parallelism(), 4, "one worker thread per shard");
        assert_eq!(db.last_worker_threads().len(), 4);
    }

    #[test]
    fn policy_fanout_reaches_every_shard() {
        let mut db =
            ShardedRusKey::with_tuner(small_cfg(), 3, disk(), Box::new(FixedPolicy::new(4)));
        db.bulk_load(bulk_load_pairs(900, 16, 48, 3));
        let spec = WorkloadSpec {
            key_space: 900,
            value_len: 48,
            ..WorkloadSpec::scaled_default(900)
        };
        let mut g = OpGenerator::new(spec, 5);
        db.run_mission(&g.take_ops(300));
        for s in 0..db.shard_count() {
            let tree = db.shard(s);
            for lvl in 0..tree.level_count() {
                assert_eq!(
                    tree.policy(lvl),
                    4,
                    "shard {s} level {lvl} missed the fan-out"
                );
            }
        }
    }

    /// Ad-hoc scans between missions broadcast to every shard; the next
    /// mission's report must still count each of them logically once and
    /// keep the broadcast invariant (no debug panic, no drift).
    #[test]
    fn adhoc_scans_between_missions_stay_logically_counted() {
        for shards in [1usize, 3] {
            let mut db = ShardedRusKey::untuned(small_cfg(), shards, disk());
            db.bulk_load(bulk_load_pairs(600, 16, 48, 9));
            let spec = WorkloadSpec {
                key_space: 600,
                value_len: 48,
                ..WorkloadSpec::scaled_default(600)
            }
            .with_mix(OpMix {
                lookup: 0.5,
                update: 0.35,
                delete: 0.05,
                scan: 0.1,
            });
            let mut g = OpGenerator::new(spec, 4);
            db.run_mission(&g.take_ops(200));
            // Two ad-hoc scans outside any mission.
            let lo = ruskey_workload::encode_key(0, 16);
            let hi = ruskey_workload::encode_key(600, 16);
            db.scan(&lo, &hi, 10);
            db.scan(&lo, &hi, 10);
            let ops = g.take_ops(200);
            let mission_scans = ops
                .iter()
                .filter(|o| matches!(o, ruskey_workload::Operation::Scan { .. }))
                .count() as u64;
            let r = db.run_mission(&ops);
            assert_eq!(
                r.scans,
                mission_scans + 2,
                "{shards} shards: ad-hoc scans count logically once each"
            );
            assert_eq!(r.ops, 200 + 2);
        }
    }

    #[test]
    fn try_with_tuner_rejects_bad_config() {
        let mut cfg = small_cfg();
        cfg.lsm.size_ratio = 1;
        let err = ShardedRusKey::try_with_tuner(cfg, 2, disk(), Box::new(NoOpTuner));
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardedRusKey::untuned(small_cfg(), 0, disk());
    }

    /// An injected worker panic surfaces as a clean [`MissionError`] on
    /// the next dispatch — and the engine stays dead (no limping on with
    /// a missing shard), while dropping the store does not hang.
    #[test]
    fn worker_panic_is_a_clean_error_and_kills_the_engine() {
        let mut db = ShardedRusKey::untuned(small_cfg(), 3, disk());
        db.bulk_load(bulk_load_pairs(300, 16, 48, 5));
        let spec = WorkloadSpec {
            key_space: 300,
            value_len: 48,
            ..WorkloadSpec::scaled_default(300)
        };
        let mut g = OpGenerator::new(spec, 6);
        assert!(db.try_run_mission(&g.take_ops(100)).is_ok());
        db.inject_worker_panic(1);
        let err = db
            .try_run_mission(&g.take_ops(100))
            .expect_err("a dead worker must fail the mission");
        assert!(
            matches!(
                err,
                MissionError::WorkerPanicked { shard: 1 }
                    | MissionError::WorkerUnavailable { shard: 1 }
            ),
            "unexpected error: {err}"
        );
        // Every later dispatch reports the dead worker too.
        let err2 = db
            .try_run_mission(&g.take_ops(50))
            .expect_err("the engine must stay dead");
        assert!(err2.to_string().contains("shard 1"), "{err2}");
    }

    /// The full-store persistence path at the store level: flushed runs
    /// and the WAL tail survive a drop + recover, and recovery counters
    /// flow into the next mission's report.
    #[test]
    fn persistent_store_survives_restart() {
        let root = std::env::temp_dir().join(format!(
            "ruskey-sharded-persist-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let mut pcfg = PersistenceConfig::new(&root);
        pcfg.page_size = 512;
        pcfg.cost = CostModel::FREE;
        let mut cfg = small_cfg();
        cfg.lsm.buffer_bytes = 2048; // force flushes: runs must hit disk
        let mut db =
            ShardedRusKey::try_with_tuner_persistent(cfg.clone(), 2, Box::new(NoOpTuner), &pcfg)
                .expect("open persistent store");
        for i in 0..300u64 {
            db.put(ruskey_workload::encode_key(i, 16), vec![i as u8; 24]);
        }
        db.delete(ruskey_workload::encode_key(5, 16));
        db.group_commit();
        let flushes = db.stats().flushes;
        assert!(flushes > 0, "scenario must flush runs to disk");
        drop(db);

        let mut rec = ShardedRusKey::recover_persistent(cfg.clone(), 2, Box::new(NoOpTuner), &pcfg)
            .expect("recover persistent store");
        let s = rec.stats();
        assert!(s.runs_recovered > 0, "flushed runs must be rebuilt");
        assert!(s.manifest_edits > 0);
        for i in 0..300u64 {
            let got = rec.get(&ruskey_workload::encode_key(i, 16));
            if i == 5 {
                assert_eq!(got, None, "tombstone lost across restart");
            } else {
                assert_eq!(
                    got.as_deref(),
                    Some(vec![i as u8; 24].as_slice()),
                    "key {i}"
                );
            }
        }
        // Recovery counters surface through the next mission's report.
        let spec = WorkloadSpec {
            key_space: 300,
            value_len: 24,
            ..WorkloadSpec::scaled_default(300)
        };
        let mut g = OpGenerator::new(spec, 3);
        let r = rec.run_mission(&g.take_ops(100));
        assert_eq!(r.runs_recovered, s.runs_recovered);
        assert!(r.manifest_edits >= s.manifest_edits);
        // Wrong shard counts are refused in *both* directions: fewer
        // would drop acknowledged writes, more would misroute keys and
        // hide durable data behind empty shards.
        drop(rec);
        let err = ShardedRusKey::recover_persistent(cfg.clone(), 1, Box::new(NoOpTuner), &pcfg)
            .err()
            .expect("recovering fewer shards than described must fail");
        assert!(err.to_string().contains("2 shards"), "{err}");
        let err = ShardedRusKey::recover_persistent(cfg, 4, Box::new(NoOpTuner), &pcfg)
            .err()
            .expect("recovering more shards than described must fail");
        assert!(err.to_string().contains("2 shards"), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }

    /// A fresh persistent store wipes the *whole* previous incarnation:
    /// shard directories beyond the new count must not survive, or every
    /// later recovery would refuse the store as a shard-count mismatch.
    #[test]
    fn fresh_persistent_store_wipes_a_wider_previous_incarnation() {
        let root = std::env::temp_dir().join(format!(
            "ruskey-sharded-rewipe-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let mut pcfg = PersistenceConfig::new(&root);
        pcfg.page_size = 512;
        pcfg.cost = CostModel::FREE;
        {
            let mut wide = ShardedRusKey::try_with_tuner_persistent(
                small_cfg(),
                4,
                Box::new(NoOpTuner),
                &pcfg,
            )
            .expect("open 4-shard store");
            wide.put(ruskey_workload::encode_key(1, 16), vec![1u8; 8]);
            wide.group_commit();
        }
        {
            let mut narrow = ShardedRusKey::try_with_tuner_persistent(
                small_cfg(),
                2,
                Box::new(NoOpTuner),
                &pcfg,
            )
            .expect("open 2-shard store over the old root");
            narrow.put(ruskey_workload::encode_key(2, 16), vec![2u8; 8]);
            narrow.group_commit();
        }
        let mut rec = ShardedRusKey::recover_persistent(small_cfg(), 2, Box::new(NoOpTuner), &pcfg)
            .expect("a stale wider incarnation must not block recovery");
        assert_eq!(
            rec.get(&ruskey_workload::encode_key(2, 16)).as_deref(),
            Some(vec![2u8; 8].as_slice())
        );
        assert_eq!(
            rec.get(&ruskey_workload::encode_key(1, 16)),
            None,
            "the old incarnation's data must be gone"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn merge_handles_empty_and_interleaved_inputs() {
        let k = |i: u64| Bytes::copy_from_slice(&i.to_be_bytes());
        let v = Bytes::from_static(b"v");
        let merged = merge_sorted_scans(
            vec![
                vec![(k(1), v.clone()), (k(5), v.clone())],
                vec![],
                vec![(k(2), v.clone()), (k(3), v.clone()), (k(9), v.clone())],
            ],
            10,
        );
        let keys: Vec<u64> = merged
            .iter()
            .map(|(k, _)| u64::from_be_bytes(k.as_ref().try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![1, 2, 3, 5, 9]);
        assert!(merge_sorted_scans(vec![], 5).is_empty());
    }
}
