//! The statistics collector (paper §3.1).
//!
//! RusKey "maintains a statistics collector that keeps track of necessary
//! statistics of RusKey and application workload over time. Besides overall
//! statistics of the FLSM-tree, it tracks statistics separately for each
//! FLSM-tree level to support the level-based training scheme in Lerp. It
//! also collects the operation composition in each mission for detecting
//! changes in the application workload."

use ruskey_lsm::TreeStatsSnapshot;

/// Per-level statistics of one mission.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct LevelMissionStats {
    /// Level-based latency `t_i` during the mission (virtual ns).
    pub latency_ns: u64,
    /// Lookup time within `t_i`.
    pub lookup_ns: u64,
    /// Compaction time within `t_i`.
    pub compact_ns: u64,
    /// Pages read in the level (lookups + compactions).
    pub pages_read: u64,
    /// Pages written in the level (compactions).
    pub pages_written: u64,
    /// Run probes in the level.
    pub probes: u64,
    /// Bloom false positives in the level.
    pub false_positives: u64,
    /// Keys processed by compactions attributed to the level.
    pub compact_keys: u64,
}

/// Everything RusKey knows about one processed mission.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MissionReport {
    /// Mission ordinal (0-based).
    pub mission_idx: u64,
    /// Operations in the mission.
    pub ops: u64,
    /// Lookups (gets) in the mission.
    pub lookups: u64,
    /// Updates (puts + deletes) in the mission.
    pub updates: u64,
    /// Range scans in the mission.
    pub scans: u64,
    /// End-to-end latency `t'` of the mission (virtual ns). Under
    /// sharding this is the mission's **wall** time: the max over the
    /// participating shards' time-domain deltas.
    pub end_to_end_ns: u64,
    /// Total virtual work of the mission (ns): the **sum** over the
    /// shards' time-domain deltas (device-busy composition). Equals
    /// `end_to_end_ns` for a single-shard store.
    pub device_busy_ns: u64,
    /// Per-level statistics (index 0 = the paper's Level 1).
    pub levels: Vec<LevelMissionStats>,
    /// WAL records appended during the mission (0 for a non-durable
    /// store): the write-path durability traffic.
    pub wal_appends: u64,
    /// WAL fsyncs issued during the mission. Under cross-shard group
    /// commit this is at most one per participating shard per mission —
    /// the invariant the crash-recovery harness asserts.
    pub wal_syncs: u64,
    /// WAL records acknowledged durable during the mission (covered by a
    /// fsync, or superseded by a memtable flush). With group commit every
    /// logged record is acknowledged by its mission's commit barrier at
    /// the latest, so this equals the mission's update count for a
    /// durable store.
    pub wal_synced: u64,
    /// Barrier latency of the mission's group commit (virtual ns): the
    /// **max** over the shards' commit legs. The legs run concurrently on
    /// the persistent shard workers, so the batch waits only for the
    /// slowest shard's fsync.
    pub commit_ns: u64,
    /// Total sync work of the group commit (virtual ns): the **sum** over
    /// the shards' commit legs — what a sequential barrier would have
    /// cost, and the share of `device_busy_ns` durability is responsible
    /// for. Equals `commit_ns` for a single-shard store; the pool-rewrite
    /// proptest pins `commit_ns <= commit_busy_ns` for any op mix.
    pub commit_busy_ns: u64,
    /// Lifetime structural edits through the shards' manifests (replayed
    /// at recovery plus committed since; summed over shards). Unlike the
    /// counters above this is **not** a per-mission delta: recovery
    /// counters describe the store, so the report carries the current
    /// lifetime reading for the `repro persistence` experiment. 0 for a
    /// non-persistent store.
    pub manifest_edits: u64,
    /// Runs rebuilt from manifest + data pages by the last recovery
    /// (lifetime, summed over shards).
    pub runs_recovered: u64,
    /// WAL records replayed on top of the recovered structure by the
    /// last recovery (lifetime, summed over shards).
    pub replayed_tail: u64,
    /// Extent files orphaned by a pre-commit power cut and removed by the
    /// last recovery's orphan sweep (lifetime, summed over shards).
    pub orphans_collected: u64,
    /// Block-cache hits during the mission (summed over shards; 0 when
    /// the serving path has no cache, e.g. the simulated backend).
    pub cache_hits: u64,
    /// Block-cache misses during the mission (reads that reached the
    /// device; summed over shards).
    pub cache_misses: u64,
    /// Block-cache evictions during the mission (summed over shards).
    pub cache_evictions: u64,
    /// Virtual ns the mission's writes spent blocked on structural work
    /// (inline flushes/cascades, background-mode backpressure stalls;
    /// summed over shards).
    pub stall_ns: u64,
    /// Real wall-clock ns acknowledged writes spent waiting in a serving
    /// frontend's per-shard admission queue before a shard executed them
    /// (summed over shards; 0 outside serving).
    pub queue_stall_ns: u64,
    /// Background maintenance steps (applied merges and trivial moves)
    /// completed during the mission (summed over shards; 0 for an
    /// inline-compaction store).
    pub bg_compactions: u64,
    /// Bytes sitting in levels that score at or above the compaction
    /// threshold at mission end — a gauge of outstanding structural
    /// debt, summed over shards, not a per-mission delta.
    pub pending_compaction_bytes: u64,
    /// Real wall-clock time spent processing the mission (ns) — used by the
    /// Fig. 13 model-cost comparison.
    pub real_process_ns: u64,
    /// Real wall-clock time the tuner spent updating its model (ns).
    pub model_update_ns: u64,
    /// Policies in force *after* the tuner acted. For a sharded store
    /// this is the per-level **modal** policy across shards; the
    /// per-shard truth is `shard_policies_after`.
    pub policies_after: Vec<u32>,
    /// *Physical* operations executed per shard during the mission, in
    /// shard order (a broadcast scan counts once on every shard it
    /// touched). Empty for reports built outside the sharded collector
    /// path. The hot-shard balancer's detection signal.
    pub shard_ops: Vec<u64>,
    /// Per-shard policies in force after the tuner acted, in shard
    /// order — exact even when per-shard tuners have diverged (the
    /// merged `policies_after` cannot represent divergence).
    pub shard_policies_after: Vec<Vec<u32>>,
}

impl MissionReport {
    /// Lookup fraction `γ` of the mission (scans count as lookups).
    pub fn gamma(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        (self.lookups + self.scans) as f64 / self.ops as f64
    }

    /// Mean end-to-end (wall) latency per operation (virtual ns).
    pub fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.end_to_end_ns as f64 / self.ops as f64
    }

    /// Mean device-busy time per operation (virtual ns): total virtual
    /// work across all shard domains divided by the logical op count.
    pub fn busy_ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.device_busy_ns as f64 / self.ops as f64
    }

    /// Mean group-commit batch size: WAL records appended per fsync
    /// during the mission (0 when no sync was issued). Group commit's
    /// whole point is making this large — one fsync amortized over the
    /// batch.
    pub fn wal_batch_size(&self) -> f64 {
        if self.wal_syncs == 0 {
            return 0.0;
        }
        self.wal_appends as f64 / self.wal_syncs as f64
    }

    /// Block-cache hit ratio of the mission's reads (0.0 when the
    /// serving path saw no cache traffic at all).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Mean level latency per operation for level `idx` (virtual ns).
    pub fn level_ns_per_op(&self, idx: usize) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.levels.get(idx).map_or(0.0, |l| l.latency_ns as f64) / self.ops as f64
    }

    /// Hot-shard imbalance of the mission: max over `shard_ops` divided
    /// by the mean. 1.0 means perfectly balanced; `n` means a single
    /// shard absorbed all traffic. 0.0 when `shard_ops` is empty or no
    /// shard did any work (a report from a non-sharded path).
    pub fn shard_imbalance(&self) -> f64 {
        let total: u64 = self.shard_ops.iter().sum();
        if self.shard_ops.is_empty() || total == 0 {
            return 0.0;
        }
        let max = *self.shard_ops.iter().max().unwrap() as f64;
        let mean = total as f64 / self.shard_ops.len() as f64;
        max / mean
    }
}

/// Builds [`MissionReport`]s from tree-statistics snapshots.
///
/// The collector keeps one baseline snapshot *per shard time domain*
/// (a single `RusKey` is the one-domain case). Each mission, every
/// shard's snapshot is deltaed against its own baseline and the deltas
/// are merged — wall time as the max over domains, device-busy time as
/// the sum — which is exact under parallel shard execution. Deltaing a
/// pre-merged snapshot would not be: the delta of per-shard maxima is
/// not the maximum of per-shard deltas.
#[derive(Debug, Default)]
pub struct StatsCollector {
    missions: u64,
    last_snapshots: Vec<TreeStatsSnapshot>,
}

impl StatsCollector {
    /// Creates a collector; call [`StatsCollector::baseline`] (or
    /// [`StatsCollector::baseline_shards`]) once before the first mission.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of missions reported so far.
    pub fn missions(&self) -> u64 {
        self.missions
    }

    /// Records the pre-experiment statistics baseline of a single-tree
    /// store (e.g. after bulk load) so the first mission's delta excludes
    /// setup work.
    pub fn baseline(&mut self, snapshot: TreeStatsSnapshot) {
        self.baseline_shards(vec![snapshot]);
    }

    /// Records the per-shard baselines of a sharded store, one snapshot
    /// per shard time domain, in shard order.
    pub fn baseline_shards(&mut self, snapshots: Vec<TreeStatsSnapshot>) {
        self.last_snapshots = snapshots;
    }

    /// Builds the report for the mission that just finished, given the
    /// single tree's snapshot at its end.
    pub fn report_mission(
        &mut self,
        end_snapshot: TreeStatsSnapshot,
        real_process_ns: u64,
    ) -> MissionReport {
        self.report_mission_shards(vec![end_snapshot], real_process_ns)
    }

    /// Builds the report for the mission that just finished from every
    /// shard's end snapshot (in the same shard order as the baseline).
    /// Each domain is deltaed against its own baseline; the deltas merge
    /// into wall (max) and device-busy (sum) mission times.
    pub fn report_mission_shards(
        &mut self,
        end_snapshots: Vec<TreeStatsSnapshot>,
        real_process_ns: u64,
    ) -> MissionReport {
        self.report_mission_shards_split(end_snapshots, real_process_ns)
            .0
    }

    /// Like [`StatsCollector::report_mission_shards`] but also returns
    /// one *slice* report per shard, each built from that shard's own
    /// domain delta only — the per-shard reward signal for per-shard
    /// tuners. A slice's `ops`/`scans` are the shard's **physical**
    /// counts (a broadcast scan appears on every shard it ran on —
    /// that is the work the shard's tuner must price). Both the merged
    /// report and all slices carry the same `mission_idx`; the mission
    /// counter advances once.
    pub fn report_mission_shards_split(
        &mut self,
        end_snapshots: Vec<TreeStatsSnapshot>,
        real_process_ns: u64,
    ) -> (MissionReport, Vec<MissionReport>) {
        let zero = TreeStatsSnapshot::default();
        let deltas: Vec<TreeStatsSnapshot> = end_snapshots
            .iter()
            .enumerate()
            .map(|(i, s)| s.delta(self.last_snapshots.get(i).unwrap_or(&zero)))
            .collect();
        let merged = Self::build_report(&deltas, &end_snapshots, self.missions, real_process_ns);
        let slices = (0..deltas.len())
            .map(|i| {
                Self::build_report(
                    std::slice::from_ref(&deltas[i]),
                    std::slice::from_ref(&end_snapshots[i]),
                    self.missions,
                    real_process_ns,
                )
            })
            .collect();
        self.missions += 1;
        self.last_snapshots = end_snapshots;
        (merged, slices)
    }

    /// Builds one report from a set of domain deltas (merged wall = max,
    /// busy = sum) and the matching end snapshots (source of the
    /// lifetime counters and gauges).
    fn build_report(
        deltas: &[TreeStatsSnapshot],
        end_snapshots: &[TreeStatsSnapshot],
        mission_idx: u64,
        real_process_ns: u64,
    ) -> MissionReport {
        let d = TreeStatsSnapshot::merge_all(deltas);
        let levels = d
            .levels
            .iter()
            .map(|l| LevelMissionStats {
                latency_ns: l.total_ns(),
                lookup_ns: l.lookup_ns,
                compact_ns: l.compact_ns,
                pages_read: l.lookup_pages + l.compact_pages_read,
                pages_written: l.compact_pages_written,
                probes: l.probes,
                false_positives: l.false_positives,
                compact_keys: l.compact_keys,
            })
            .collect();
        MissionReport {
            mission_idx,
            ops: d.lookups + d.updates + d.scans,
            lookups: d.lookups,
            updates: d.updates,
            scans: d.scans,
            end_to_end_ns: d.clock_ns,
            device_busy_ns: d.busy_ns,
            wal_appends: d.wal_appends,
            wal_syncs: d.wal_syncs,
            wal_synced: d.wal_synced,
            // Recovery/manifest counters are lifetime store facts, not
            // mission deltas: report the current reading.
            manifest_edits: end_snapshots.iter().map(|s| s.manifest_edits).sum(),
            runs_recovered: end_snapshots.iter().map(|s| s.runs_recovered).sum(),
            replayed_tail: end_snapshots.iter().map(|s| s.replayed_tail).sum(),
            orphans_collected: end_snapshots.iter().map(|s| s.orphans_collected).sum(),
            cache_hits: d.cache_hits,
            cache_misses: d.cache_misses,
            cache_evictions: d.cache_evictions,
            stall_ns: d.stall_ns,
            queue_stall_ns: d.queue_stall_ns,
            bg_compactions: d.bg_compactions,
            // A gauge, not a counter: report the end-of-mission reading.
            pending_compaction_bytes: end_snapshots
                .iter()
                .map(|s| s.pending_compaction_bytes)
                .sum(),
            commit_ns: 0,
            commit_busy_ns: 0,
            levels,
            real_process_ns,
            model_update_ns: 0,
            policies_after: Vec::new(),
            shard_ops: deltas
                .iter()
                .map(|x| x.lookups + x.updates + x.scans)
                .collect(),
            shard_policies_after: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruskey_lsm::LevelStatsSnapshot;

    fn snap(lookups: u64, updates: u64, clock: u64, lvl_ns: u64) -> TreeStatsSnapshot {
        TreeStatsSnapshot {
            lookups,
            updates,
            clock_ns: clock,
            busy_ns: clock,
            levels: vec![LevelStatsSnapshot {
                lookup_ns: lvl_ns,
                ..Default::default()
            }],
            ..Default::default()
        }
    }

    #[test]
    fn reports_are_deltas() {
        let mut c = StatsCollector::new();
        c.baseline(snap(10, 10, 1000, 100));
        let r = c.report_mission(snap(15, 25, 4000, 400), 7);
        assert_eq!(r.ops, 20);
        assert_eq!(r.lookups, 5);
        assert_eq!(r.updates, 15);
        assert_eq!(r.end_to_end_ns, 3000);
        assert_eq!(r.device_busy_ns, 3000, "one domain: busy == wall");
        assert_eq!(r.levels[0].latency_ns, 300);
        assert_eq!(r.real_process_ns, 7);
        assert_eq!(r.mission_idx, 0);
        // Second mission starts from the last snapshot.
        let r2 = c.report_mission(snap(16, 26, 4100, 410), 3);
        assert_eq!(r2.ops, 2);
        assert_eq!(r2.mission_idx, 1);
    }

    #[test]
    fn sharded_reports_delta_each_domain_then_compose() {
        let mut c = StatsCollector::new();
        // Two shards whose domains sit at different absolute times.
        c.baseline_shards(vec![snap(10, 0, 1000, 0), snap(0, 0, 200, 0)]);
        // Shard 0 advances 500 ns, shard 1 advances 2000 ns.
        let r = c.report_mission_shards(vec![snap(12, 0, 1500, 0), snap(3, 0, 2200, 0)], 1);
        assert_eq!(r.ops, 5);
        assert_eq!(r.lookups, 5);
        assert_eq!(r.end_to_end_ns, 2000, "wall = max(500, 2000)");
        assert_eq!(r.device_busy_ns, 2500, "busy = 500 + 2000");
        assert!((r.busy_ns_per_op() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn wal_counters_flow_through_mission_deltas() {
        let mut c = StatsCollector::new();
        let mut before = snap(0, 10, 100, 0);
        before.wal_appends = 10;
        before.wal_syncs = 1;
        before.wal_synced = 10;
        c.baseline(before);
        let mut after = snap(0, 35, 400, 0);
        after.wal_appends = 35;
        after.wal_syncs = 2;
        after.wal_synced = 35;
        let r = c.report_mission(after, 1);
        assert_eq!(r.wal_appends, 25);
        assert_eq!(r.wal_syncs, 1);
        assert_eq!(r.wal_synced, 25);
        assert!((r.wal_batch_size() - 25.0).abs() < 1e-12);
        // No syncs: batch size is defined as 0, not a division by zero.
        assert_eq!(MissionReport::default().wal_batch_size(), 0.0);
    }

    #[test]
    fn maintenance_counters_flow_through_mission_reports() {
        let mut c = StatsCollector::new();
        let mut before = snap(0, 10, 100, 0);
        before.stall_ns = 40;
        before.bg_compactions = 3;
        before.pending_compaction_bytes = 9999;
        c.baseline(before);
        let mut after = snap(0, 35, 400, 0);
        after.stall_ns = 100;
        after.bg_compactions = 7;
        after.pending_compaction_bytes = 4096;
        let r = c.report_mission(after, 1);
        assert_eq!(r.stall_ns, 60);
        assert_eq!(r.bg_compactions, 4);
        assert_eq!(
            r.pending_compaction_bytes, 4096,
            "a gauge reports the end-of-mission reading, not a delta"
        );
    }

    #[test]
    fn split_reports_slice_per_shard() {
        let mut c = StatsCollector::new();
        c.baseline_shards(vec![snap(10, 0, 1000, 0), snap(0, 0, 200, 0)]);
        let (merged, slices) =
            c.report_mission_shards_split(vec![snap(12, 4, 1500, 0), snap(3, 0, 2200, 0)], 1);
        assert_eq!(slices.len(), 2);
        // The merged view is unchanged from report_mission_shards.
        assert_eq!(merged.ops, 9);
        assert_eq!(merged.end_to_end_ns, 2000);
        assert_eq!(merged.device_busy_ns, 2500);
        assert_eq!(merged.shard_ops, vec![6, 3]);
        // Slices carry each shard's own delta, same mission ordinal.
        assert_eq!(slices[0].ops, 6);
        assert_eq!(slices[0].lookups, 2);
        assert_eq!(slices[0].updates, 4);
        assert_eq!(slices[0].end_to_end_ns, 500);
        assert_eq!(slices[0].device_busy_ns, 500);
        assert_eq!(slices[1].ops, 3);
        assert_eq!(slices[1].end_to_end_ns, 2000);
        assert_eq!(slices[0].mission_idx, merged.mission_idx);
        assert_eq!(slices[1].mission_idx, merged.mission_idx);
        // The mission counter advanced exactly once.
        assert_eq!(c.missions(), 1);
    }

    #[test]
    fn shard_imbalance_is_max_over_mean() {
        let mut r = MissionReport::default();
        assert_eq!(r.shard_imbalance(), 0.0, "no shard data");
        r.shard_ops = vec![0, 0];
        assert_eq!(r.shard_imbalance(), 0.0, "no work");
        r.shard_ops = vec![5, 5, 5, 5];
        assert!((r.shard_imbalance() - 1.0).abs() < 1e-12, "balanced");
        r.shard_ops = vec![12, 0, 0, 0];
        assert!((r.shard_imbalance() - 4.0).abs() < 1e-12, "one hot shard");
    }

    #[test]
    fn gamma_and_per_op() {
        let r = MissionReport {
            ops: 100,
            lookups: 90,
            updates: 10,
            end_to_end_ns: 5000,
            levels: vec![LevelMissionStats {
                latency_ns: 1000,
                ..Default::default()
            }],
            ..Default::default()
        };
        assert!((r.gamma() - 0.9).abs() < 1e-12);
        assert!((r.ns_per_op() - 50.0).abs() < 1e-12);
        assert!((r.level_ns_per_op(0) - 10.0).abs() < 1e-12);
        assert_eq!(r.level_ns_per_op(5), 0.0);
    }

    #[test]
    fn empty_mission_is_safe() {
        let r = MissionReport::default();
        assert_eq!(r.gamma(), 0.0);
        assert_eq!(r.ns_per_op(), 0.0);
    }
}
