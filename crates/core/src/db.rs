//! The RusKey store: FLSM-tree + tuner + statistics collector (paper §3).

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use ruskey_lsm::{BloomScheme, ConfigError, FlsmTree, LsmConfig, TransitionStrategy};
use ruskey_storage::Storage;
use ruskey_workload::Operation;

use crate::lerp::{Lerp, LerpConfig, PropagationScheme};
use crate::stats::{MissionReport, StatsCollector};
use crate::tuner::{NoOpTuner, TreeObservation, Tuner};

/// Configuration of a [`RusKey`] instance.
#[derive(Debug, Clone, PartialEq)]
pub struct RusKeyConfig {
    /// The underlying FLSM-tree configuration.
    pub lsm: LsmConfig,
    /// Lerp configuration (used by [`RusKey::with_lerp`]).
    pub lerp: LerpConfig,
}

impl RusKeyConfig {
    /// Scaled-down defaults matching the experiment setup (DESIGN.md §2);
    /// uniform Bloom scheme.
    pub fn scaled_default() -> Self {
        Self {
            lsm: LsmConfig::scaled_default(),
            lerp: LerpConfig::paper_default(PropagationScheme::Uniform),
        }
    }

    /// Scaled defaults under the Monkey scheme (Fig. 8/9 experiments). The
    /// level-1 FPR is chosen so Monkey's total filter memory roughly matches
    /// the uniform scheme's 8 bits/key over a 4-level tree, mirroring the
    /// paper's bits-per-key adjustment (§7 "Implementation").
    pub fn scaled_monkey() -> Self {
        let mut cfg = Self::scaled_default();
        cfg.lsm.bloom = BloomScheme::Monkey { level1_fpr: 1e-4 };
        cfg.lerp = LerpConfig::paper_default(PropagationScheme::Monkey);
        cfg
    }

    /// Sets the transition strategy.
    pub fn with_transition(mut self, t: TransitionStrategy) -> Self {
        self.lsm.transition = t;
        self
    }
}

/// An RL-tuned LSM-tree key-value store.
pub struct RusKey {
    tree: FlsmTree,
    tuner: Box<dyn Tuner>,
    collector: StatsCollector,
    last_report: Option<MissionReport>,
}

/// Executes one workload operation against a tree, discarding read
/// results (mission semantics: reads are performed for their cost, the
/// caller does not consume their output). Shared by [`RusKey`] and the
/// per-shard workers of [`crate::sharded::ShardedRusKey`].
pub(crate) fn execute_op(tree: &mut FlsmTree, op: &Operation) {
    match op {
        Operation::Get { key } => {
            tree.get(key);
        }
        Operation::Put { key, value } => {
            tree.put(key.clone(), value.clone());
        }
        Operation::Delete { key } => {
            tree.delete(key.clone());
        }
        Operation::Scan { start, end, limit } => {
            tree.scan(start, end, *limit);
        }
    }
}

/// Lets a tuner act on a finished mission: runs it on the aggregated
/// report and observation, applies its `(level, K)` changes through
/// `apply`, and records the model-update time on the report. Shared by
/// [`RusKey`] (applying to its one tree) and
/// [`crate::sharded::ShardedRusKey`] (fanning out to every shard) so
/// tuning bookkeeping cannot diverge between the two.
pub(crate) fn tune_mission(
    tuner: &mut dyn Tuner,
    report: &mut MissionReport,
    obs: &TreeObservation,
    mut apply: impl FnMut(usize, u32),
) {
    let model_before = tuner.model_update_ns();
    let changes = tuner.tune(report, obs);
    for (level, k) in changes {
        apply(level, k);
    }
    report.model_update_ns = tuner.model_update_ns().saturating_sub(model_before);
}

impl RusKey {
    /// Creates a store driven by an arbitrary tuner, rejecting invalid
    /// configurations instead of panicking.
    pub fn try_with_tuner(
        cfg: RusKeyConfig,
        storage: Arc<dyn Storage>,
        tuner: Box<dyn Tuner>,
    ) -> Result<Self, ConfigError> {
        Ok(Self {
            tree: FlsmTree::try_new(cfg.lsm, storage)?,
            tuner,
            collector: StatsCollector::new(),
            last_report: None,
        })
    }

    /// Creates a store tuned by Lerp, rejecting invalid configurations
    /// instead of panicking.
    pub fn try_with_lerp(
        cfg: RusKeyConfig,
        storage: Arc<dyn Storage>,
    ) -> Result<Self, ConfigError> {
        let lerp = Lerp::new(cfg.lerp.clone());
        Self::try_with_tuner(cfg, storage, Box::new(lerp))
    }

    /// Creates a store driven by an arbitrary tuner (fixed baselines,
    /// greedy heuristics, …).
    ///
    /// # Panics
    /// Panics if the configuration is invalid; use
    /// [`RusKey::try_with_tuner`] for fallible construction.
    pub fn with_tuner(cfg: RusKeyConfig, storage: Arc<dyn Storage>, tuner: Box<dyn Tuner>) -> Self {
        Self::try_with_tuner(cfg, storage, tuner)
            .unwrap_or_else(|e| panic!("invalid RusKeyConfig: {e}"))
    }

    /// Creates a store tuned by Lerp (the RusKey system of the paper).
    ///
    /// # Panics
    /// Panics if the configuration is invalid; use
    /// [`RusKey::try_with_lerp`] for fallible construction.
    pub fn with_lerp(cfg: RusKeyConfig, storage: Arc<dyn Storage>) -> Self {
        Self::try_with_lerp(cfg, storage).unwrap_or_else(|e| panic!("invalid RusKeyConfig: {e}"))
    }

    /// Creates an untuned store (whatever policies the tree starts with).
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn untuned(cfg: RusKeyConfig, storage: Arc<dyn Storage>) -> Self {
        Self::with_tuner(cfg, storage, Box::new(NoOpTuner))
    }

    /// The tuner's display name.
    pub fn tuner_name(&self) -> String {
        self.tuner.name()
    }

    /// Whether the tuner reports convergence.
    pub fn tuner_converged(&self) -> bool {
        self.tuner.converged()
    }

    /// Cumulative model-update time (Fig. 13).
    pub fn model_update_ns(&self) -> u64 {
        self.tuner.model_update_ns()
    }

    /// Direct access to the underlying tree.
    pub fn tree(&self) -> &FlsmTree {
        &self.tree
    }

    /// Mutable access to the underlying tree (experiments toggling
    /// transition strategies etc.).
    pub fn tree_mut(&mut self) -> &mut FlsmTree {
        &mut self.tree
    }

    /// The report of the last processed mission.
    pub fn last_report(&self) -> Option<&MissionReport> {
        self.last_report.as_ref()
    }

    // ------------------------------------------------------------------
    // Plain KV interface (outside missions)
    // ------------------------------------------------------------------

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> Option<Bytes> {
        self.tree.get(key)
    }

    /// Insert or overwrite.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.tree.put(key, value);
    }

    /// Delete.
    pub fn delete(&mut self, key: impl Into<Bytes>) {
        self.tree.delete(key);
    }

    /// Range scan over `[start, end)` with a result limit.
    pub fn scan(&mut self, start: &[u8], end: &[u8], limit: usize) -> Vec<(Bytes, Bytes)> {
        self.tree.scan(start, end, limit)
    }

    // ------------------------------------------------------------------
    // Mission-driven operation (the paper's workflow, Fig. 1)
    // ------------------------------------------------------------------

    /// Bulk-loads the store and resets the statistics baseline so mission
    /// reports exclude the load.
    pub fn bulk_load(&mut self, pairs: Vec<(Bytes, Bytes)>) {
        self.tree.bulk_load(pairs);
        self.collector.baseline(self.tree.stats());
    }

    /// Snapshot of the tree structure for tuners.
    pub fn observe(&self) -> TreeObservation {
        let n = self.tree.level_count();
        TreeObservation {
            policies: self.tree.policies(),
            fills: (0..n).map(|i| self.tree.level_fill(i)).collect(),
            run_counts: (0..n).map(|i| self.tree.level_run_count(i)).collect(),
            size_ratio: self.tree.config().size_ratio,
            level_count: n,
        }
    }

    /// Processes one mission: executes the operations, builds the mission
    /// report, lets the tuner act, and applies its policy changes via the
    /// configured transition.
    pub fn run_mission(&mut self, ops: &[Operation]) -> MissionReport {
        let t0 = Instant::now();
        for op in ops {
            execute_op(&mut self.tree, op);
        }
        // Mission boundary is where deferred structural work runs: a few
        // bounded maintenance steps per batch keep flushes and
        // compactions off the operations above.
        if self.tree.config().background_maintenance {
            self.tree.maintain(4);
        }
        // Mission-boundary commit: with a WAL attached (via
        // [`FlsmTree::attach_wal`]) the batch is acknowledged with a
        // single fsync, mirroring the sharded store's group-commit
        // barrier at N = 1 (one shard: barrier latency == total sync
        // work, so both compositions carry the same value).
        let (_, commit_ns) = self.tree.commit_wal_timed().expect("WAL commit failed");
        let process_ns = t0.elapsed().as_nanos() as u64;
        let mut report = self.collector.report_mission(self.tree.stats(), process_ns);
        report.commit_ns = commit_ns;
        report.commit_busy_ns = commit_ns;

        let obs = self.observe();
        tune_mission(self.tuner.as_mut(), &mut report, &obs, |level, k| {
            self.tree.set_policy(level, k)
        });
        report.policies_after = self.tree.policies();
        report.shard_policies_after = vec![self.tree.policies()];
        self.last_report = Some(report.clone());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::FixedPolicy;
    use ruskey_storage::{CostModel, SimulatedDisk};
    use ruskey_workload::{bulk_load_pairs, OpGenerator, OpMix, WorkloadSpec};

    fn small_cfg() -> RusKeyConfig {
        let mut cfg = RusKeyConfig::scaled_default();
        cfg.lsm.buffer_bytes = 4096;
        cfg.lsm.size_ratio = 4;
        cfg
    }

    fn disk() -> Arc<SimulatedDisk> {
        SimulatedDisk::new(512, CostModel::NVME)
    }

    #[test]
    fn try_constructors_reject_invalid_configs() {
        let mut cfg = small_cfg();
        cfg.lsm.size_ratio = 1;
        assert!(RusKey::try_with_lerp(cfg.clone(), disk()).is_err());
        let err = RusKey::try_with_tuner(cfg, disk(), Box::new(FixedPolicy::moderate()))
            .err()
            .expect("must reject T < 2");
        assert!(err.to_string().contains("size_ratio"));
        // Valid configs still construct.
        assert!(RusKey::try_with_lerp(small_cfg(), disk()).is_ok());
    }

    #[test]
    fn kv_roundtrip() {
        let mut db = RusKey::with_lerp(small_cfg(), disk());
        db.put(&b"alpha"[..], &b"1"[..]);
        db.put(&b"beta"[..], &b"2"[..]);
        assert_eq!(db.get(b"alpha").as_deref(), Some(&b"1"[..]));
        db.delete(&b"alpha"[..]);
        assert_eq!(db.get(b"alpha"), None);
        assert_eq!(db.scan(b"a", b"z", 10).len(), 1);
    }

    #[test]
    fn missions_report_composition_and_latency() {
        let mut db = RusKey::with_tuner(small_cfg(), disk(), Box::new(FixedPolicy::moderate()));
        db.bulk_load(bulk_load_pairs(500, 16, 48, 1));
        let spec = WorkloadSpec {
            key_space: 500,
            value_len: 48,
            ..WorkloadSpec::scaled_default(500)
        }
        .with_mix(OpMix::read_heavy());
        let mut g = OpGenerator::new(spec, 2);
        for i in 0..3 {
            let ops = g.take_ops(200);
            let r = db.run_mission(&ops);
            assert_eq!(r.ops, 200, "mission {i}");
            assert!((r.gamma() - 0.9).abs() < 0.08, "gamma {}", r.gamma());
            assert!(r.end_to_end_ns > 0);
            assert!(!r.policies_after.is_empty());
        }
    }

    #[test]
    fn fixed_tuner_applies_policy_in_first_mission() {
        let mut db = RusKey::with_tuner(small_cfg(), disk(), Box::new(FixedPolicy::new(4)));
        db.bulk_load(bulk_load_pairs(500, 16, 48, 1));
        let spec = WorkloadSpec {
            key_space: 500,
            value_len: 48,
            ..WorkloadSpec::scaled_default(500)
        };
        let mut g = OpGenerator::new(spec, 2);
        let r = db.run_mission(&g.take_ops(100));
        assert!(
            r.policies_after.iter().all(|&k| k == 4),
            "{:?}",
            r.policies_after
        );
    }

    #[test]
    fn bulk_load_excluded_from_first_mission() {
        let mut db = RusKey::untuned(small_cfg(), disk());
        db.bulk_load(bulk_load_pairs(2000, 16, 48, 1));
        let spec = WorkloadSpec {
            key_space: 2000,
            value_len: 48,
            ..WorkloadSpec::scaled_default(2000)
        }
        .with_mix(OpMix::reads(1.0));
        let mut g = OpGenerator::new(spec, 2);
        let r = db.run_mission(&g.take_ops(50));
        // 50 pure lookups: a tiny latency compared to loading 2000 entries.
        assert_eq!(r.ops, 50);
        assert_eq!(r.updates, 0);
        assert!(
            r.end_to_end_ns < 50 * 1_000_000,
            "bulk load leaked into mission"
        );
    }

    #[test]
    fn lerp_store_tracks_model_time() {
        let mut db = RusKey::with_lerp(small_cfg(), disk());
        db.bulk_load(bulk_load_pairs(500, 16, 48, 1));
        let spec = WorkloadSpec {
            key_space: 500,
            value_len: 48,
            ..WorkloadSpec::scaled_default(500)
        };
        let mut g = OpGenerator::new(spec, 2);
        let mut total_model = 0;
        for _ in 0..3 {
            let r = db.run_mission(&g.take_ops(100));
            total_model += r.model_update_ns;
        }
        assert!(total_model > 0);
        assert!(db.model_update_ns() > 0);
        assert_eq!(db.tuner_name(), "ruskey-lerp");
    }
}
