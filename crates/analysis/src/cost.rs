//! The per-level white-box cost model (paper §5.2, Eq. 5).
//!
//! Expected time overhead per operation in level *i* with policy `K`:
//!
//! ```text
//!   f_i·I_r·K·γ            (query I/O: false positives read one page each)
//! + c_r·K·γ                (query CPU: probing K runs' metadata)
//! + (T·E)/(B·K)·(I_r+I_w)·(1−γ)   (update I/O: T/K compactions ·E/B pages)
//! + (T/K)·c_w·(1−γ)        (update CPU: merge work per participation)
//! ```
//!
//! Minimizing over `K` gives `K*² = X / (Y·T^{i−1} + Z)` with
//! `X = T·E·(I_r+I_w)·(1−γ) + T·B·c_w·(1−γ)`, `Y = B·f_1·I_r·γ`,
//! `Z = B·c_r·γ` — the basis of Lemma 5.1.

/// Parameters of the white-box model (notation of Table 1 / §5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Capacity ratio `T` between adjacent levels.
    pub size_ratio: f64,
    /// Entry size `E` in bytes.
    pub entry_bytes: f64,
    /// Page size `B` in bytes.
    pub page_bytes: f64,
    /// Average read-I/O time `I_r` (ns per page).
    pub read_io_ns: f64,
    /// Average write-I/O time `I_w` (ns per page).
    pub write_io_ns: f64,
    /// CPU cost `c_r` of probing one run's metadata (ns).
    pub cpu_probe_ns: f64,
    /// CPU cost `c_w` per key during compaction (ns).
    pub cpu_merge_ns: f64,
    /// Lookup fraction `γ` of the workload.
    pub gamma: f64,
}

impl CostParams {
    /// The paper's case-study constants with an NVMe-like device.
    pub fn paper_case_study(gamma: f64) -> Self {
        Self {
            size_ratio: 10.0,
            entry_bytes: 1024.0,
            page_bytes: 4096.0,
            read_io_ns: 25_000.0,
            write_io_ns: 20_000.0,
            cpu_probe_ns: 500.0,
            cpu_merge_ns: 200.0,
            gamma,
        }
    }
}

/// Expected cost (ns) per operation contributed by one level with
/// false-positive rate `fpr` and policy `k` (Eq. 5).
pub fn level_cost_ns(p: &CostParams, fpr: f64, k: f64) -> f64 {
    assert!(k >= 1.0, "policy must be >= 1");
    let query_io = fpr * p.read_io_ns * k * p.gamma;
    let query_cpu = p.cpu_probe_ns * k * p.gamma;
    let upd = 1.0 - p.gamma;
    let update_io =
        (p.size_ratio * p.entry_bytes) / (p.page_bytes * k) * (p.read_io_ns + p.write_io_ns) * upd;
    let update_cpu = (p.size_ratio / k) * p.cpu_merge_ns * upd;
    query_io + query_cpu + update_io + update_cpu
}

/// The continuous optimal policy `K*` for a level with FPR `fpr`:
/// `K*² = [T·E·(I_r+I_w)·(1−γ) + T·B·c_w·(1−γ)] / [B·f·I_r·γ + B·c_r·γ]`.
///
/// Returns `f64::INFINITY` for a write-only workload (γ = 0): compaction
/// should be maximally lazy and the caller clamps to `T`.
pub fn optimal_k(p: &CostParams, fpr: f64) -> f64 {
    let upd = 1.0 - p.gamma;
    let x = p.size_ratio * p.entry_bytes * (p.read_io_ns + p.write_io_ns) * upd
        + p.size_ratio * p.page_bytes * p.cpu_merge_ns * upd;
    let denom =
        p.page_bytes * fpr * p.read_io_ns * p.gamma + p.page_bytes * p.cpu_probe_ns * p.gamma;
    if denom <= 0.0 {
        return f64::INFINITY;
    }
    (x / denom).sqrt()
}

/// The optimal integer policy clamped to `[1, T]`.
pub fn optimal_k_int(p: &CostParams, fpr: f64, t_max: u32) -> u32 {
    let k = optimal_k(p, fpr);
    if !k.is_finite() {
        return t_max;
    }
    (k.round() as i64).clamp(1, t_max as i64) as u32
}

/// Total expected cost per operation across levels with the given FPRs and
/// policies (one entry per level).
pub fn tree_cost_ns(p: &CostParams, fprs: &[f64], policies: &[f64]) -> f64 {
    assert_eq!(fprs.len(), policies.len());
    fprs.iter()
        .zip(policies)
        .map(|(&f, &k)| level_cost_ns(p, f, k))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_prefers_k_equals_one() {
        let p = CostParams::paper_case_study(0.999);
        let c1 = level_cost_ns(&p, 0.01, 1.0);
        let c10 = level_cost_ns(&p, 0.01, 10.0);
        assert!(c1 < c10, "read-heavy should prefer aggressive compaction");
        assert!(optimal_k(&p, 0.01) < 2.0);
    }

    #[test]
    fn write_only_prefers_k_equals_t() {
        let p = CostParams::paper_case_study(0.001);
        let c1 = level_cost_ns(&p, 0.01, 1.0);
        let c10 = level_cost_ns(&p, 0.01, 10.0);
        assert!(c10 < c1, "write-heavy should prefer lazy compaction");
        assert!(optimal_k(&p, 0.01) > 10.0);
        assert_eq!(optimal_k_int(&p, 0.01, 10), 10);
    }

    #[test]
    fn gamma_zero_is_infinite() {
        let p = CostParams::paper_case_study(0.0);
        assert!(!optimal_k(&p, 0.01).is_finite());
        assert_eq!(optimal_k_int(&p, 0.01, 10), 10);
    }

    #[test]
    fn optimum_minimizes_the_curve() {
        let p = CostParams::paper_case_study(0.5);
        let fpr = 0.01;
        let kstar = optimal_k(&p, fpr);
        let c_star = level_cost_ns(&p, fpr, kstar.max(1.0));
        for k in [1.0, 2.0, 3.0, 5.0, 8.0, 10.0] {
            assert!(
                c_star <= level_cost_ns(&p, fpr, k) + 1e-9,
                "K*={kstar} not optimal vs K={k}"
            );
        }
    }

    #[test]
    fn higher_fpr_pushes_k_down() {
        // A level with worse filters pays more per run probed, so the
        // optimal policy is more aggressive (smaller K).
        let p = CostParams::paper_case_study(0.5);
        assert!(optimal_k(&p, 0.1) < optimal_k(&p, 0.001));
    }

    #[test]
    fn tree_cost_sums_levels() {
        let p = CostParams::paper_case_study(0.5);
        let a = tree_cost_ns(&p, &[0.01, 0.1], &[2.0, 1.0]);
        let b = level_cost_ns(&p, 0.01, 2.0) + level_cost_ns(&p, 0.1, 1.0);
        assert!((a - b).abs() < 1e-9);
    }
}
