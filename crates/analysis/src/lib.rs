//! White-box cost analysis for the RusKey reproduction.
//!
//! RusKey does not replace classic white-box models — it *embeds* one:
//! policy propagation (§5.2) extends the policies the RL model learns for
//! the first one or two levels to all deeper levels through a closed-form
//! analysis, and the FLSM-tree design is justified by the transition-cost
//! model of §4.3 (Table 2). This crate implements those formulas:
//!
//! * [`cost`] — the per-level expected operation cost (Eq. 5) and its
//!   closed-form optimum `K*_i`;
//! * [`propagation`] — Lemma 5.1: inferring `K*_{i+1}` from `K*_i`
//!   and `K*_{i−1}` under the Monkey scheme, plus the uniform-scheme
//!   copy rule (Case 1);
//! * [`transition_cost`] — the transition cost / delay / additional-cost
//!   formulas of Table 2 for greedy, lazy, and flexible transitions.

#![warn(missing_docs)]

pub mod cost;
pub mod propagation;
pub mod transition_cost;

pub use cost::{level_cost_ns, optimal_k, optimal_k_int, CostParams};
pub use propagation::{propagate_continuous, propagate_rounded, uniform_propagation};
pub use transition_cost::TransitionScenario;
