//! Policy propagation across levels (paper §5.2, Lemma 5.1).
//!
//! Under the Monkey scheme the optimal policies of three consecutive levels
//! satisfy
//!
//! ```text
//! 1/K*_{i+1} = sqrt( 1/K*_i² + T · (1/K*_i² − 1/K*_{i−1}²) )
//! ```
//!
//! so tuning only Levels 1 and 2 determines every deeper level — without
//! knowing the system constants X, Y, Z. Under the uniform scheme every
//! level shares the same read/write cost trade-off, so Level 1's learned
//! policy is simply copied (Case 1).

/// Continuous propagation from `k1`, `k2` to `levels` total levels.
///
/// Returns one (unrounded) policy per level. Values are clamped to
/// `[1, t]`; if the monotonicity premise `K_i ≤ K_{i−1}` is violated the
/// policy is carried forward unchanged (the lemma's precondition fails).
pub fn propagate_continuous(k1: f64, k2: f64, t: f64, levels: usize) -> Vec<f64> {
    assert!(levels >= 1);
    assert!(k1 >= 1.0 && k2 >= 1.0 && t >= 2.0);
    let mut ks = Vec::with_capacity(levels);
    ks.push(k1.min(t));
    if levels == 1 {
        return ks;
    }
    ks.push(k2.min(t));
    for i in 2..levels {
        let prev = ks[i - 1];
        let prev2 = ks[i - 2];
        let inv2 = 1.0 / (prev * prev);
        let diff = inv2 - 1.0 / (prev2 * prev2);
        let next = if diff <= 0.0 {
            // Premise K_i ≤ K_{i−1} violated (or equal): keep the policy.
            prev
        } else {
            let inv_next_sq = inv2 + t * diff;
            1.0 / inv_next_sq.sqrt()
        };
        ks.push(next.clamp(1.0, t));
    }
    ks
}

/// Integer propagation, rounding to the closest valid policy at each level
/// (as the paper's worked example does: K1=9, K2=7 ⇒ K3≈3 ⇒ K4≈1).
pub fn propagate_rounded(k1: u32, k2: u32, t: u32, levels: usize) -> Vec<u32> {
    assert!(levels >= 1);
    let mut ks: Vec<u32> = Vec::with_capacity(levels);
    ks.push(k1.clamp(1, t));
    if levels == 1 {
        return ks;
    }
    ks.push(k2.clamp(1, t));
    for i in 2..levels {
        let prev = ks[i - 1] as f64;
        let prev2 = ks[i - 2] as f64;
        let inv2 = 1.0 / (prev * prev);
        let diff = inv2 - 1.0 / (prev2 * prev2);
        let next = if diff <= 0.0 {
            prev
        } else {
            1.0 / (inv2 + t as f64 * diff).sqrt()
        };
        ks.push((next.round() as i64).clamp(1, t as i64) as u32);
    }
    ks
}

/// Case 1 (uniform bits-per-key): every level adopts Level 1's policy.
pub fn uniform_propagation(k1: u32, t: u32, levels: usize) -> Vec<u32> {
    vec![k1.clamp(1, t); levels]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // §5.2: "tuning result of Level 1 and Level 2 are 9 and 7" with
        // T = 10 gives K3 ≈ 3 and K4 ≈ 1.
        let ks = propagate_rounded(9, 7, 10, 4);
        assert_eq!(ks, vec![9, 7, 3, 1]);
    }

    #[test]
    fn continuous_matches_paper_numbers() {
        let ks = propagate_continuous(9.0, 7.0, 10.0, 3);
        // 1/K3² = 1/49 + 10·(1/49 − 1/81) ⇒ K3 ≈ 3.146.
        assert!((ks[2] - 3.146).abs() < 0.01, "K3 = {}", ks[2]);
    }

    #[test]
    fn policies_never_increase_with_depth() {
        for (k1, k2) in [(10, 9), (10, 7), (8, 5), (6, 6), (4, 2)] {
            let ks = propagate_rounded(k1, k2, 10, 6);
            for w in ks.windows(2) {
                assert!(w[1] <= w[0], "{ks:?} not non-increasing");
            }
        }
    }

    #[test]
    fn equal_policies_propagate_unchanged() {
        let ks = propagate_rounded(5, 5, 10, 5);
        assert_eq!(ks, vec![5; 5]);
    }

    #[test]
    fn violated_premise_is_carried_forward() {
        // K2 > K1 breaks the lemma's precondition; carry K2 onward.
        let ks = propagate_rounded(3, 7, 10, 4);
        assert_eq!(ks, vec![3, 7, 7, 7]);
    }

    #[test]
    fn uniform_copies_level_one() {
        assert_eq!(uniform_propagation(4, 10, 3), vec![4, 4, 4]);
        assert_eq!(uniform_propagation(99, 10, 2), vec![10, 10]);
    }

    #[test]
    fn bottoms_out_at_one() {
        // Aggressive decline reaches K = 1 and stays there.
        let ks = propagate_rounded(4, 2, 10, 8);
        assert_eq!(*ks.last().unwrap(), 1);
        let pos = ks.iter().position(|&k| k == 1).unwrap();
        assert!(ks[pos..].iter().all(|&k| k == 1));
    }

    #[test]
    fn clamped_to_t() {
        let ks = propagate_rounded(30, 20, 10, 3);
        assert!(ks.iter().all(|&k| (1..=10).contains(&k)));
    }
}
