//! Transition cost, delay, and additional cost (paper §4.3, Table 2).
//!
//! | Transition | Cost | Delay (s) | Additional cost (I/Os) |
//! |---|---|---|---|
//! | Greedy | `C/2B` | 0 | `TC(1−x)/(2BK)` (either direction) |
//! | Lazy | 0 | `C/(2·N_u·E)` | `K<K'`: `TC(1−x)(K'−K)/(2BKK')`; `K>K'`: `fC(1−x²)(K−K')γ/(2E(1−γ))` |
//! | Flexible | 0 | 0 | `K<K'`: 0; `K>K'`: `fC(x−x²)(K−K')γ/(E(1−γ))` |
//!
//! The case study in §4.3 (T=10, B=4096, E=1024, C=1 024 000, f=0.01,
//! K=5→K'=4, x=γ=1/2) yields 125, 3.75 and 2.5 I/Os respectively.

/// A policy-transition scenario at one level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionScenario {
    /// Level capacity `C` (bytes).
    pub level_capacity: f64,
    /// Page size `B` (bytes).
    pub page_bytes: f64,
    /// Entry size `E` (bytes).
    pub entry_bytes: f64,
    /// Level Bloom-filter false-positive rate `f`.
    pub fpr: f64,
    /// Capacity ratio `T`.
    pub size_ratio: f64,
    /// Old policy `K`.
    pub k_old: f64,
    /// New policy `K'`.
    pub k_new: f64,
    /// Fill fraction `x = D/C` of the level when the transition arrives.
    pub fill: f64,
    /// Lookup fraction `γ` of the workload.
    pub gamma: f64,
    /// Updates arriving per second `N_u` (for the lazy delay).
    pub updates_per_sec: f64,
}

impl TransitionScenario {
    /// The paper's §4.3 case-study scenario.
    pub fn paper_case_study() -> Self {
        Self {
            level_capacity: 1_024_000.0,
            page_bytes: 4096.0,
            entry_bytes: 1024.0,
            fpr: 0.01,
            size_ratio: 10.0,
            k_old: 5.0,
            k_new: 4.0,
            fill: 0.5,
            gamma: 0.5,
            updates_per_sec: 1000.0,
        }
    }

    /// Immediate transition cost in page I/Os (Table 2 row 1).
    /// Greedy pays the amortized level flush `C/2B`; lazy and flexible are 0.
    pub fn immediate_cost_ios(&self, greedy: bool) -> f64 {
        if greedy {
            self.level_capacity / (2.0 * self.page_bytes)
        } else {
            0.0
        }
    }

    /// Delay in seconds before the new policy takes effect (Table 2 row 2).
    /// Only lazy waits (`C/(2·N_u·E)`); greedy and flexible act immediately.
    pub fn delay_secs(&self, lazy: bool) -> f64 {
        if lazy {
            self.level_capacity / (2.0 * self.updates_per_sec * self.entry_bytes)
        } else {
            0.0
        }
    }

    /// Additional I/O cost of a greedy transition (Eq. 1):
    /// `TC(1−x)/(2BK)` — extra write amplification from merging a
    /// partially-filled level.
    pub fn additional_cost_greedy(&self) -> f64 {
        self.size_ratio * self.level_capacity * (1.0 - self.fill)
            / (2.0 * self.page_bytes * self.k_old)
    }

    /// Additional I/O cost of a lazy transition (Eq. 2 / §4.3):
    /// extra reads when `K > K'`, extra write amplification when `K < K'`.
    pub fn additional_cost_lazy(&self) -> f64 {
        if self.k_old > self.k_new {
            self.fpr
                * self.level_capacity
                * (1.0 - self.fill * self.fill)
                * (self.k_old - self.k_new)
                * self.gamma
                / (2.0 * self.entry_bytes * (1.0 - self.gamma))
        } else if self.k_old < self.k_new {
            self.size_ratio * self.level_capacity * (1.0 - self.fill) * (self.k_new - self.k_old)
                / (2.0 * self.page_bytes * self.k_old * self.k_new)
        } else {
            0.0
        }
    }

    /// Additional I/O cost of a flexible transition (Eq. 3):
    /// `fC(x−x²)(K−K')γ/(E(1−γ))` when `K > K'`, zero otherwise.
    pub fn additional_cost_flexible(&self) -> f64 {
        if self.k_old > self.k_new {
            self.fpr
                * self.level_capacity
                * (self.fill - self.fill * self.fill)
                * (self.k_old - self.k_new)
                * self.gamma
                / (self.entry_bytes * (1.0 - self.gamma))
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_case_study_numbers() {
        let s = TransitionScenario::paper_case_study();
        assert!((s.additional_cost_greedy() - 125.0).abs() < 1e-9);
        assert!((s.additional_cost_lazy() - 3.75).abs() < 1e-9);
        assert!((s.additional_cost_flexible() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn immediate_costs_and_delays() {
        let s = TransitionScenario::paper_case_study();
        assert!((s.immediate_cost_ios(true) - 125.0).abs() < 1e-9); // C/2B
        assert_eq!(s.immediate_cost_ios(false), 0.0);
        // C/(2·N_u·E) = 1_024_000 / (2·1000·1024) = 0.5 s.
        assert!((s.delay_secs(true) - 0.5).abs() < 1e-9);
        assert_eq!(s.delay_secs(false), 0.0);
    }

    #[test]
    fn flexible_never_worse_than_lazy() {
        // Sweep the parameter space: flexible ≤ lazy for K > K'.
        for k_old in 2..=10 {
            for k_new in 1..k_old {
                for fill10 in 1..10 {
                    for gamma10 in 1..10 {
                        let s = TransitionScenario {
                            k_old: k_old as f64,
                            k_new: k_new as f64,
                            fill: fill10 as f64 / 10.0,
                            gamma: gamma10 as f64 / 10.0,
                            ..TransitionScenario::paper_case_study()
                        };
                        assert!(
                            s.additional_cost_flexible() <= s.additional_cost_lazy() + 1e-12,
                            "flexible > lazy at K={k_old}->{k_new}, x={}, γ={}",
                            s.fill,
                            s.gamma
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn flexible_free_when_k_increases() {
        let s = TransitionScenario {
            k_old: 2.0,
            k_new: 8.0,
            ..TransitionScenario::paper_case_study()
        };
        assert_eq!(s.additional_cost_flexible(), 0.0);
        assert!(s.additional_cost_lazy() > 0.0);
        assert!(s.additional_cost_greedy() > 0.0);
    }

    #[test]
    fn greedy_cost_shrinks_with_fill() {
        // A fuller level wastes less write amplification when flushed early.
        let mut nearly_empty = TransitionScenario::paper_case_study();
        nearly_empty.fill = 0.05;
        let mut nearly_full = TransitionScenario::paper_case_study();
        nearly_full.fill = 0.95;
        assert!(nearly_empty.additional_cost_greedy() > nearly_full.additional_cost_greedy());
    }

    #[test]
    fn no_change_no_cost() {
        let s = TransitionScenario {
            k_old: 5.0,
            k_new: 5.0,
            ..TransitionScenario::paper_case_study()
        };
        assert_eq!(s.additional_cost_lazy(), 0.0);
        assert_eq!(s.additional_cost_flexible(), 0.0);
    }
}
