//! Real-file storage backend.
//!
//! Implements [`Storage`] on top of a directory of per-extent files so the
//! engine can be exercised against an actual filesystem (the persistent
//! sharded store gives every shard its own `FileDisk` directory, and the
//! integration tests drive it directly). I/O is still *counted* and charged
//! to the virtual clock with the same cost model, so results remain
//! comparable with the simulated device.
//!
//! Opening a directory that already holds extent files *continues* it:
//! existing extents stay readable (the manifest records their ids) and new
//! allocations resume past the highest id on disk — this is what makes the
//! backend restartable. There is no cross-call lock: extent files have
//! unique ids, so creation, removal, and page I/O on different extents are
//! independent, and each shard owning its own `FileDisk` means shards never
//! serialize against each other on the real-file path.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::VirtualClock;
use crate::cost::CostModel;
use crate::disk::{Extent, IoCharge, Storage};
use crate::metrics::{AtomicMetrics, StorageMetrics};

/// A [`Storage`] backend keeping each extent in one file under a directory.
pub struct FileDisk {
    dir: PathBuf,
    page_size: usize,
    cost: CostModel,
    clock: VirtualClock,
    next_id: AtomicU64,
    live_pages: AtomicU64,
    metrics: AtomicMetrics,
}

impl FileDisk {
    /// Opens a file-backed disk rooted at `dir` (created if missing). A
    /// directory with existing extent files is continued: their pages
    /// count as live and new allocations start past the highest id found.
    pub fn new(
        dir: impl Into<PathBuf>,
        page_size: usize,
        cost: CostModel,
    ) -> std::io::Result<Arc<Self>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut max_id = 0u64;
        let mut live_pages = 0u64;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(id) = name
                .to_string_lossy()
                .strip_prefix("extent-")
                .and_then(|s| s.strip_suffix(".run"))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            max_id = max_id.max(id);
            live_pages += entry.metadata()?.len() / page_size as u64;
        }
        Ok(Arc::new(Self {
            dir,
            page_size,
            cost,
            clock: VirtualClock::new(),
            next_id: AtomicU64::new(max_id + 1),
            live_pages: AtomicU64::new(live_pages),
            metrics: AtomicMetrics::default(),
        }))
    }

    fn path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("extent-{id:08}.run"))
    }

    fn open(&self, id: u64) -> File {
        OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.path(id))
            .unwrap_or_else(|e| panic!("open extent {id}: {e}"))
    }
}

impl Storage for FileDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&self, pages: u32) -> Extent {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let f = File::create(self.path(id)).expect("create extent file");
        f.set_len(pages as u64 * self.page_size as u64)
            .expect("preallocate extent");
        self.live_pages.fetch_add(pages as u64, Ordering::Relaxed);
        Extent { id, pages }
    }

    fn write_page(&self, ext: Extent, idx: u32, data: &[u8]) -> IoCharge {
        assert!(data.len() <= self.page_size, "page overflow");
        assert!(idx < ext.pages, "page index out of bounds");
        let mut f = self.open(ext.id);
        f.seek(SeekFrom::Start(idx as u64 * self.page_size as u64))
            .expect("seek");
        // Pages are fixed-size on disk: pad with zeros, prefix with length.
        let mut page = vec![0u8; self.page_size];
        page[..4].copy_from_slice(&(data.len() as u32).to_le_bytes());
        page[4..4 + data.len()].copy_from_slice(data);
        f.write_all(&page).expect("write page");
        let charge = IoCharge {
            ns: self.cost.write_page_ns,
            io: StorageMetrics {
                pages_written: 1,
                bytes_written: data.len() as u64,
                write_ns: self.cost.write_page_ns,
                ..StorageMetrics::default()
            },
        };
        self.metrics.add(&charge.io);
        self.clock.advance(charge.ns);
        charge
    }

    fn read_page(&self, ext: Extent, idx: u32, buf: &mut Vec<u8>) -> IoCharge {
        let mut f = self.open(ext.id);
        f.seek(SeekFrom::Start(idx as u64 * self.page_size as u64))
            .expect("seek");
        let mut page = vec![0u8; self.page_size];
        f.read_exact(&mut page).expect("read page");
        let len = u32::from_le_bytes(page[..4].try_into().unwrap()) as usize;
        assert!(len <= self.page_size - 4, "corrupt page header");
        buf.clear();
        buf.extend_from_slice(&page[4..4 + len]);
        let charge = IoCharge {
            ns: self.cost.read_page_ns,
            io: StorageMetrics {
                pages_read: 1,
                bytes_read: len as u64,
                read_ns: self.cost.read_page_ns,
                ..StorageMetrics::default()
            },
        };
        self.metrics.add(&charge.io);
        self.clock.advance(charge.ns);
        charge
    }

    fn free(&self, ext: Extent) {
        if std::fs::remove_file(self.path(ext.id)).is_ok() {
            self.live_pages
                .fetch_sub(ext.pages as u64, Ordering::Relaxed);
        }
    }

    fn metrics(&self) -> StorageMetrics {
        self.metrics.snapshot()
    }

    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn live_pages(&self) -> u64 {
        self.live_pages.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ruskey-filedisk-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_metrics() {
        let dir = tmpdir("roundtrip");
        let d = FileDisk::new(&dir, 256, CostModel::FREE).unwrap();
        let ext = d.allocate(2);
        d.write_page(ext, 0, b"alpha");
        d.write_page(ext, 1, b"beta");
        let mut buf = Vec::new();
        d.read_page(ext, 1, &mut buf);
        assert_eq!(&buf, b"beta");
        d.read_page(ext, 0, &mut buf);
        assert_eq!(&buf, b"alpha");
        let m = d.metrics();
        assert_eq!(m.pages_written, 2);
        assert_eq!(m.pages_read, 2);
        d.free(ext);
        assert_eq!(d.live_pages(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Reopening a directory continues it: existing extents stay
    /// readable, their pages count as live, and new allocations never
    /// collide with ids from the previous incarnation.
    #[test]
    fn reopen_continues_extent_ids_and_live_pages() {
        let dir = tmpdir("reopen");
        let (ext_a, pages_before) = {
            let d = FileDisk::new(&dir, 256, CostModel::FREE).unwrap();
            let a = d.allocate(3);
            d.write_page(a, 0, b"persisted");
            let b = d.allocate(2);
            d.free(b);
            (a, d.live_pages())
        };
        let d = FileDisk::new(&dir, 256, CostModel::FREE).unwrap();
        assert_eq!(d.live_pages(), pages_before, "live pages survive reopen");
        let mut buf = Vec::new();
        d.read_page(ext_a, 0, &mut buf);
        assert_eq!(&buf, b"persisted");
        let fresh = d.allocate(1);
        assert!(
            fresh.id > ext_a.id,
            "new ids must not collide with surviving extents"
        );
        d.write_page(fresh, 0, b"new");
        d.read_page(ext_a, 0, &mut buf);
        assert_eq!(&buf, b"persisted", "old extent untouched by new writes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Independent `FileDisk` instances (one per shard) share no locks:
    /// concurrent allocate/write/read/free across instances in disjoint
    /// directories must be safe and exact.
    #[test]
    fn per_shard_instances_run_concurrently() {
        const PAGES: u64 = 50;
        let dirs: Vec<_> = (0..4).map(|i| tmpdir(&format!("conc-{i}"))).collect();
        let disks: Vec<_> = dirs
            .iter()
            .map(|d| FileDisk::new(d, 256, CostModel::FREE).unwrap())
            .collect();
        std::thread::scope(|s| {
            for d in &disks {
                let d = Arc::clone(d);
                s.spawn(move || {
                    let ext = d.allocate(PAGES as u32);
                    let mut buf = Vec::new();
                    for i in 0..PAGES as u32 {
                        d.write_page(ext, i, &[9u8; 64]);
                        d.read_page(ext, i, &mut buf);
                    }
                });
            }
        });
        for d in &disks {
            assert_eq!(d.metrics().pages_written, PAGES);
            assert_eq!(d.metrics().pages_read, PAGES);
            assert_eq!(d.live_pages(), PAGES);
        }
        for dir in &dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn partial_page_preserves_length() {
        let dir = tmpdir("partial");
        let d = FileDisk::new(&dir, 256, CostModel::FREE).unwrap();
        let ext = d.allocate(1);
        d.write_page(ext, 0, &[7u8; 100]);
        let mut buf = Vec::new();
        d.read_page(ext, 0, &mut buf);
        assert_eq!(buf.len(), 100);
        assert!(buf.iter().all(|&b| b == 7));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
