//! Real-file storage backend.
//!
//! Implements [`Storage`] on top of a directory of per-extent files so the
//! engine can be exercised against an actual filesystem (the persistent
//! sharded store gives every shard its own `FileDisk` directory, and the
//! integration tests drive it directly). I/O is still *counted* and charged
//! to the virtual clock with the same cost model, so results remain
//! comparable with the simulated device.
//!
//! The hot path is built for serving, not just correctness:
//!
//! * **fd cache** — each extent file is opened once and its handle kept in
//!   a map until [`Storage::free`] drops it, so a page read costs one
//!   `pread`, not an `open` + `seek` + `read` + `close` round trip. The
//!   map's lock is held only for the handle lookup; the I/O itself runs
//!   on a cloned [`Arc<File>`] outside the lock, so reads on different
//!   extents (and even the same extent) proceed concurrently.
//! * **positional I/O** — reads and writes go through
//!   [`FileExt::read_exact_at`] / [`FileExt::write_all_at`]: no seek
//!   state, no `&mut File`, no serialization point per extent.
//! * **zero-alloc steady state** — the page-sized scratch buffer is
//!   thread-local and reused across calls; after the first call on a
//!   thread no read or write allocates. [`FileDisk::fds_opened`] and
//!   [`FileDisk::buffer_grows`] expose counters so benchmarks can assert
//!   both properties instead of trusting them.
//!
//! Opening a directory that already holds extent files *continues* it:
//! existing extents stay readable (the manifest records their ids) and new
//! allocations resume past the highest id on disk — this is what makes the
//! backend restartable. Extent files have unique ids, so creation, removal,
//! and page I/O on different extents are independent, and each shard owning
//! its own `FileDisk` means shards never serialize against each other on
//! the real-file path.
//!
//! **Power-failure semantics.** Writing pages only puts bytes in the OS
//! page cache; the backend therefore exposes the two barriers a
//! power-failure-grade commit protocol needs: [`Storage::sync_extent`]
//! (`fsync(2)` of one extent file — the data) and [`Storage::sync_dir`]
//! (fsync of the directory handle — the extent files' *names*). Reads are
//! fallible at the [`Storage::try_read_page`] layer: an extent file a
//! power cut erased surfaces as [`std::io::ErrorKind::NotFound`], a torn
//! page as [`std::io::ErrorKind::UnexpectedEof`], and a corrupt slot
//! header as [`std::io::ErrorKind::InvalidData`] — never a panic, so
//! recovery decides. An extent id this incarnation never handed out and
//! no previous incarnation could have written still panics: that is a
//! logic bug, not a durability artifact. [`PowerCutPoint`] fault hooks
//! tear either barrier on demand so tests can simulate the cut.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::VirtualClock;
use crate::cost::CostModel;
use crate::disk::{Extent, IoCharge, PowerCutPoint, Storage};
use crate::metrics::{AtomicMetrics, StorageMetrics};

thread_local! {
    /// Reusable page-sized scratch buffer: one allocation per thread (per
    /// page-size high-water mark), not one per read or write.
    static PAGE_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Per-page on-disk prefix: the little-endian payload length. The slot a
/// page occupies is `page_size + SLOT_HEADER` bytes, so the full logical
/// `page_size` stays usable — identical to the simulated device's contract.
const SLOT_HEADER: usize = 4;

/// A [`Storage`] backend keeping each extent in one file under a directory.
pub struct FileDisk {
    dir: PathBuf,
    page_size: usize,
    cost: CostModel,
    clock: VirtualClock,
    next_id: AtomicU64,
    live_pages: AtomicU64,
    metrics: AtomicMetrics,
    /// Open handle per live extent; populated at allocation (or first
    /// access after a reopen) and dropped in [`Storage::free`].
    handles: Mutex<HashMap<u64, Arc<File>>>,
    fds_opened: AtomicU64,
    buffer_grows: AtomicU64,
    /// Open handle on the directory itself, for [`Storage::sync_dir`].
    dir_handle: File,
    /// Extent ids created since the last directory fsync — the files a
    /// power cut at the [`PowerCutPoint::DirUnsynced`] barrier would
    /// erase from the directory.
    pending_dir: Mutex<Vec<u64>>,
    /// Armed simulated power cut: the point plus a fire countdown.
    power_cut: Mutex<Option<(PowerCutPoint, u64)>>,
    /// Set once a power cut fired: the device is dead, mutations no-op.
    halted: AtomicBool,
}

impl FileDisk {
    /// Opens a file-backed disk rooted at `dir` (created if missing). A
    /// directory with existing extent files is continued: their pages
    /// count as live and new allocations start past the highest id found.
    pub fn new(
        dir: impl Into<PathBuf>,
        page_size: usize,
        cost: CostModel,
    ) -> std::io::Result<Arc<Self>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut max_id = 0u64;
        let mut live_pages = 0u64;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(id) = name
                .to_string_lossy()
                .strip_prefix("extent-")
                .and_then(|s| s.strip_suffix(".run"))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            max_id = max_id.max(id);
            live_pages += entry.metadata()?.len() / (page_size + SLOT_HEADER) as u64;
        }
        let dir_handle = File::open(&dir)?;
        Ok(Arc::new(Self {
            dir,
            page_size,
            cost,
            clock: VirtualClock::new(),
            next_id: AtomicU64::new(max_id + 1),
            live_pages: AtomicU64::new(live_pages),
            metrics: AtomicMetrics::default(),
            handles: Mutex::new(HashMap::new()),
            fds_opened: AtomicU64::new(0),
            buffer_grows: AtomicU64::new(0),
            dir_handle,
            pending_dir: Mutex::new(Vec::new()),
            power_cut: Mutex::new(None),
            halted: AtomicBool::new(false),
        }))
    }

    fn path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("extent-{id:08}.run"))
    }

    /// Bytes one page occupies on disk: the payload plus its length prefix.
    fn slot(&self) -> usize {
        self.page_size + SLOT_HEADER
    }

    /// The cached handle for an extent, opening (and caching) it on first
    /// access — e.g. for extents inherited from a previous incarnation.
    ///
    /// A missing file surfaces as a typed [`std::io::ErrorKind::NotFound`]
    /// error for recovery to decide, never a panic: after a power cut the
    /// file-derived allocation watermark cannot distinguish an id that was
    /// never allocated from one whose un-fsynced directory entry the cut
    /// erased — both present as "no such file", and only the caller (who
    /// holds the manifest) knows which ids it acknowledged.
    fn try_handle(&self, id: u64) -> std::io::Result<Arc<File>> {
        let mut handles = self.handles.lock();
        if let Some(f) = handles.get(&id) {
            return Ok(Arc::clone(f));
        }
        let f = Arc::new(
            OpenOptions::new()
                .read(true)
                .write(true)
                .open(self.path(id))
                .map_err(|e| {
                    std::io::Error::new(e.kind(), format!("extent file {id} missing: {e}"))
                })?,
        );
        self.fds_opened.fetch_add(1, Ordering::Relaxed);
        handles.insert(id, Arc::clone(&f));
        Ok(f)
    }

    /// [`FileDisk::try_handle`] for the write path, where a missing file
    /// is just as much a logic bug as an unknown id (writes only target
    /// extents the caller just allocated and still owns).
    fn handle(&self, id: u64) -> Arc<File> {
        self.try_handle(id)
            .unwrap_or_else(|e| panic!("open extent {id}: {e}"))
    }

    /// True once a simulated power cut fired: the device is dead.
    fn is_halted(&self) -> bool {
        self.halted.load(Ordering::Relaxed)
    }

    /// Decrements the armed countdown at a barrier; true = fire now.
    fn power_cut_fires(&self, at: PowerCutPoint) -> bool {
        let mut armed = self.power_cut.lock();
        match *armed {
            Some((point, 0)) if point == at => {
                *armed = None;
                true
            }
            Some((point, ref mut n)) if point == at => {
                *n -= 1;
                false
            }
            _ => false,
        }
    }

    /// The halted-device error every post-cut barrier call returns.
    fn halted_err() -> std::io::Error {
        std::io::Error::other("simulated power cut: device halted")
    }

    /// Lifetime count of `open(2)` calls issued — one per extent per
    /// incarnation, never one per read (the fd cache's contract).
    pub fn fds_opened(&self) -> u64 {
        self.fds_opened.load(Ordering::Relaxed)
    }

    /// Lifetime count of scratch-buffer (re)allocations across all
    /// threads — bounded by threads × page-size growth steps, never by
    /// the number of reads or writes (the zero-alloc contract).
    pub fn buffer_grows(&self) -> u64 {
        self.buffer_grows.load(Ordering::Relaxed)
    }

    /// Runs `f` over the thread-local page buffer sized (and zeroed) to
    /// one on-disk slot, counting any capacity growth.
    fn with_page_buf<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        PAGE_BUF.with(|b| {
            let mut page = b.borrow_mut();
            if page.capacity() < self.slot() {
                self.buffer_grows.fetch_add(1, Ordering::Relaxed);
            }
            page.clear();
            page.resize(self.slot(), 0);
            f(&mut page)
        })
    }
}

impl Storage for FileDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&self, pages: u32) -> Extent {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if self.is_halted() {
            // Power is gone: hand out the id so the (doomed) caller can
            // finish its motions, but touch nothing on disk.
            return Extent { id, pages };
        }
        let f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.path(id))
            .expect("create extent file");
        f.set_len(pages as u64 * self.slot() as u64)
            .expect("preallocate extent");
        self.fds_opened.fetch_add(1, Ordering::Relaxed);
        self.handles.lock().insert(id, Arc::new(f));
        self.live_pages.fetch_add(pages as u64, Ordering::Relaxed);
        // The new directory entry is not durable until the next sync_dir.
        self.pending_dir.lock().push(id);
        Extent { id, pages }
    }

    fn write_page(&self, ext: Extent, idx: u32, data: &[u8]) -> IoCharge {
        assert!(data.len() <= self.page_size, "page overflow");
        assert!(idx < ext.pages, "page index out of bounds");
        if self.is_halted() {
            return IoCharge::default();
        }
        let f = self.handle(ext.id);
        // Slots are fixed-size on disk: pad with zeros, prefix with length.
        self.with_page_buf(|page| {
            page[..SLOT_HEADER].copy_from_slice(&(data.len() as u32).to_le_bytes());
            page[SLOT_HEADER..SLOT_HEADER + data.len()].copy_from_slice(data);
            f.write_all_at(page, idx as u64 * self.slot() as u64)
                .expect("write page");
        });
        let charge = IoCharge {
            ns: self.cost.write_page_ns,
            io: StorageMetrics {
                pages_written: 1,
                bytes_written: data.len() as u64,
                write_ns: self.cost.write_page_ns,
                ..StorageMetrics::default()
            },
        };
        self.metrics.add(&charge.io);
        self.clock.advance(charge.ns);
        charge
    }

    fn try_read_page(&self, ext: Extent, idx: u32, buf: &mut Vec<u8>) -> std::io::Result<IoCharge> {
        let f = self.try_handle(ext.id)?;
        let len = self.with_page_buf(|page| {
            // A short read = the file ends before this page: a torn
            // extent (power cut between write and fsync), typed as
            // UnexpectedEof by read_exact_at.
            f.read_exact_at(page, idx as u64 * self.slot() as u64)
                .map_err(|e| {
                    std::io::Error::new(e.kind(), format!("read page {}:{idx}: {e}", ext.id))
                })?;
            let len = u32::from_le_bytes(page[..SLOT_HEADER].try_into().unwrap()) as usize;
            // A slot length prefix beyond the page payload would slice out
            // of bounds below: surface the corruption, never panic.
            if len > self.page_size {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "corrupt page header {}:{idx}: slot length {len} > page size {}",
                        ext.id, self.page_size
                    ),
                ));
            }
            buf.clear();
            buf.extend_from_slice(&page[SLOT_HEADER..SLOT_HEADER + len]);
            Ok(len)
        })?;
        let charge = IoCharge {
            ns: self.cost.read_page_ns,
            io: StorageMetrics {
                pages_read: 1,
                bytes_read: len as u64,
                read_ns: self.cost.read_page_ns,
                ..StorageMetrics::default()
            },
        };
        self.metrics.add(&charge.io);
        self.clock.advance(charge.ns);
        Ok(charge)
    }

    fn sync_extent(&self, ext: Extent) -> std::io::Result<IoCharge> {
        if self.is_halted() {
            return Err(Self::halted_err());
        }
        if self.power_cut_fires(PowerCutPoint::ExtentUnsynced) {
            // Power died with this extent's writes still in the page
            // cache: tear the file (a torn tail, not clean truncation to
            // zero, is what real filesystems leave) and halt the device.
            if let Ok(f) = self.try_handle(ext.id) {
                let torn = (ext.pages as u64 / 2) * self.slot() as u64 + SLOT_HEADER as u64 / 2;
                let _ = f.set_len(torn);
            }
            self.halted.store(true, Ordering::Relaxed);
            return Err(std::io::Error::other(
                "simulated power cut: extent writes lost before fsync",
            ));
        }
        self.try_handle(ext.id)?.sync_data()?;
        let charge = IoCharge {
            ns: self.cost.wal_sync_ns,
            io: StorageMetrics {
                extent_syncs: 1,
                ..StorageMetrics::default()
            },
        };
        self.metrics.add(&charge.io);
        self.clock.advance(charge.ns);
        Ok(charge)
    }

    fn sync_dir(&self) -> std::io::Result<IoCharge> {
        if self.is_halted() {
            return Err(Self::halted_err());
        }
        if self.power_cut_fires(PowerCutPoint::DirUnsynced) {
            // Power died before the directory entries became durable: the
            // files created since the last sync_dir vanish wholesale.
            let pending: Vec<u64> = std::mem::take(&mut *self.pending_dir.lock());
            for id in pending {
                self.handles.lock().remove(&id);
                if let Ok(meta) = std::fs::metadata(self.path(id)) {
                    if std::fs::remove_file(self.path(id)).is_ok() {
                        self.live_pages
                            .fetch_sub(meta.len() / self.slot() as u64, Ordering::Relaxed);
                    }
                }
            }
            self.halted.store(true, Ordering::Relaxed);
            return Err(std::io::Error::other(
                "simulated power cut: directory entries lost before fsync",
            ));
        }
        self.dir_handle.sync_all()?;
        self.pending_dir.lock().clear();
        let charge = IoCharge {
            ns: self.cost.wal_sync_ns,
            io: StorageMetrics {
                dir_syncs: 1,
                ..StorageMetrics::default()
            },
        };
        self.metrics.add(&charge.io);
        self.clock.advance(charge.ns);
        Ok(charge)
    }

    fn collect_orphans(&self, live: &[u64]) -> std::io::Result<Vec<u64>> {
        let mut collected = Vec::new();
        let mut max_retained = 0u64;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(id) = name
                .to_string_lossy()
                .strip_prefix("extent-")
                .and_then(|s| s.strip_suffix(".run"))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            if live.contains(&id) {
                max_retained = max_retained.max(id);
                continue;
            }
            let pages = entry.metadata()?.len() / self.slot() as u64;
            self.handles.lock().remove(&id);
            std::fs::remove_file(entry.path())?;
            self.live_pages.fetch_sub(pages, Ordering::Relaxed);
            collected.push(id);
        }
        if !collected.is_empty() {
            // Make the unlinks durable, then let allocation reuse the
            // collected ids: with the stale files gone, reuse is safe.
            self.dir_handle.sync_all()?;
            self.next_id.store(max_retained + 1, Ordering::Relaxed);
            collected.sort_unstable();
        }
        Ok(collected)
    }

    fn arm_power_cut(&self, point: PowerCutPoint, after: u64) {
        *self.power_cut.lock() = Some((point, after));
    }

    fn free(&self, ext: Extent) {
        if self.is_halted() {
            return;
        }
        // Drop the cached handle first so the fd goes with the file.
        self.handles.lock().remove(&ext.id);
        if std::fs::remove_file(self.path(ext.id)).is_ok() {
            self.live_pages
                .fetch_sub(ext.pages as u64, Ordering::Relaxed);
        }
    }

    fn metrics(&self) -> StorageMetrics {
        self.metrics.snapshot()
    }

    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn live_pages(&self) -> u64 {
        self.live_pages.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ruskey-filedisk-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_metrics() {
        let dir = tmpdir("roundtrip");
        let d = FileDisk::new(&dir, 256, CostModel::FREE).unwrap();
        let ext = d.allocate(2);
        d.write_page(ext, 0, b"alpha");
        d.write_page(ext, 1, b"beta");
        let mut buf = Vec::new();
        d.read_page(ext, 1, &mut buf);
        assert_eq!(&buf, b"beta");
        d.read_page(ext, 0, &mut buf);
        assert_eq!(&buf, b"alpha");
        let m = d.metrics();
        assert_eq!(m.pages_written, 2);
        assert_eq!(m.pages_read, 2);
        d.free(ext);
        assert_eq!(d.live_pages(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The fd cache's contract: any number of page reads and writes on an
    /// extent cost exactly one `open` (at allocation), and freeing the
    /// extent drops the handle.
    #[test]
    fn fd_cache_opens_each_extent_once() {
        let dir = tmpdir("fdcache");
        let d = FileDisk::new(&dir, 256, CostModel::FREE).unwrap();
        let ext = d.allocate(4);
        assert_eq!(d.fds_opened(), 1);
        let mut buf = Vec::new();
        for round in 0..50 {
            for i in 0..4 {
                d.write_page(ext, i, &[round as u8; 32]);
                d.read_page(ext, i, &mut buf);
            }
        }
        assert_eq!(d.fds_opened(), 1, "per-read opens must be gone");
        d.free(ext);
        assert!(d.handles.lock().is_empty(), "free must drop the handle");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The zero-alloc contract: the scratch buffer grows at most once per
    /// thread (to the page size), regardless of call count.
    #[test]
    fn page_buffer_is_reused_across_calls() {
        let dir = tmpdir("zeroalloc");
        let d = FileDisk::new(&dir, 256, CostModel::FREE).unwrap();
        let ext = d.allocate(2);
        let mut buf = Vec::new();
        d.write_page(ext, 0, b"warm");
        d.read_page(ext, 0, &mut buf);
        let grows_after_warmup = d.buffer_grows();
        for _ in 0..200 {
            d.write_page(ext, 1, b"steady");
            d.read_page(ext, 1, &mut buf);
        }
        assert_eq!(
            d.buffer_grows(),
            grows_after_warmup,
            "steady-state reads and writes must not allocate"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Reopening a directory continues it: existing extents stay
    /// readable (their handles re-cached lazily on first access), their
    /// pages count as live, and new allocations never collide with ids
    /// from the previous incarnation.
    #[test]
    fn reopen_continues_extent_ids_and_live_pages() {
        let dir = tmpdir("reopen");
        let (ext_a, pages_before) = {
            let d = FileDisk::new(&dir, 256, CostModel::FREE).unwrap();
            let a = d.allocate(3);
            d.write_page(a, 0, b"persisted");
            let b = d.allocate(2);
            d.free(b);
            (a, d.live_pages())
        };
        let d = FileDisk::new(&dir, 256, CostModel::FREE).unwrap();
        assert_eq!(d.live_pages(), pages_before, "live pages survive reopen");
        let mut buf = Vec::new();
        d.read_page(ext_a, 0, &mut buf);
        assert_eq!(&buf, b"persisted");
        assert_eq!(d.fds_opened(), 1, "lazy reopen of the surviving extent");
        let fresh = d.allocate(1);
        assert!(
            fresh.id > ext_a.id,
            "new ids must not collide with surviving extents"
        );
        d.write_page(fresh, 0, b"new");
        d.read_page(ext_a, 0, &mut buf);
        assert_eq!(&buf, b"persisted", "old extent untouched by new writes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Independent `FileDisk` instances (one per shard) share no locks:
    /// concurrent allocate/write/read/free across instances in disjoint
    /// directories must be safe and exact.
    #[test]
    fn per_shard_instances_run_concurrently() {
        const PAGES: u64 = 50;
        let dirs: Vec<_> = (0..4).map(|i| tmpdir(&format!("conc-{i}"))).collect();
        let disks: Vec<_> = dirs
            .iter()
            .map(|d| FileDisk::new(d, 256, CostModel::FREE).unwrap())
            .collect();
        std::thread::scope(|s| {
            for d in &disks {
                let d = Arc::clone(d);
                s.spawn(move || {
                    let ext = d.allocate(PAGES as u32);
                    let mut buf = Vec::new();
                    for i in 0..PAGES as u32 {
                        d.write_page(ext, i, &[9u8; 64]);
                        d.read_page(ext, i, &mut buf);
                    }
                });
            }
        });
        for d in &disks {
            assert_eq!(d.metrics().pages_written, PAGES);
            assert_eq!(d.metrics().pages_read, PAGES);
            assert_eq!(d.live_pages(), PAGES);
        }
        for dir in &dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    /// Concurrent readers on one shared instance: the fd cache hands out
    /// clones of the same handle and positional I/O keeps them
    /// independent — no interleaving corruption, no extra opens.
    #[test]
    fn shared_instance_serves_concurrent_readers() {
        let dir = tmpdir("shared");
        let d = FileDisk::new(&dir, 256, CostModel::FREE).unwrap();
        let ext = d.allocate(8);
        for i in 0..8 {
            d.write_page(ext, i, &[i as u8; 100]);
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let d = Arc::clone(&d);
                s.spawn(move || {
                    let mut buf = Vec::new();
                    for round in 0..100 {
                        let i = round % 8;
                        d.read_page(ext, i, &mut buf);
                        assert_eq!(buf.len(), 100);
                        assert!(buf.iter().all(|&b| b == i as u8));
                    }
                });
            }
        });
        assert_eq!(d.fds_opened(), 1);
        assert_eq!(d.metrics().pages_read, 400);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_page_preserves_length() {
        let dir = tmpdir("partial");
        let d = FileDisk::new(&dir, 256, CostModel::FREE).unwrap();
        let ext = d.allocate(1);
        d.write_page(ext, 0, &[7u8; 100]);
        let mut buf = Vec::new();
        d.read_page(ext, 0, &mut buf);
        assert_eq!(buf.len(), 100);
        assert!(buf.iter().all(|&b| b == 7));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
