//! A simple LRU block cache over any [`Storage`] backend.
//!
//! The paper motivates black-box (RL) modeling partly because components such
//! as memory caches defeat white-box formulas (§1.2). We therefore provide a
//! cache layer so experiments can probe that effect; it is *disabled by
//! default* to match the paper's direct-I/O evaluation setup.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::VirtualClock;
use crate::cost::CostModel;
use crate::disk::{Extent, IoCharge, Storage};
use crate::metrics::StorageMetrics;

/// Key identifying a cached page.
type PageKey = (u64, u32);

struct LruInner {
    capacity: usize,
    /// Map from page key to (tick, data). `tick` orders recency.
    map: HashMap<PageKey, (u64, Arc<[u8]>)>,
    tick: u64,
}

impl LruInner {
    fn touch(&mut self, key: PageKey) -> Option<Arc<[u8]>> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((t, data)) = self.map.get_mut(&key) {
            *t = tick;
            Some(Arc::clone(data))
        } else {
            None
        }
    }

    fn insert(&mut self, key: PageKey, data: Arc<[u8]>) {
        self.tick += 1;
        self.map.insert(key, (self.tick, data));
        // Evict least-recently-used entries over capacity. A linear scan is
        // acceptable here: caches in the experiments hold at most a few
        // thousand pages and insertions are rare relative to hits.
        while self.map.len() > self.capacity {
            if let Some((&victim, _)) = self.map.iter().min_by_key(|(_, (t, _))| *t) {
                self.map.remove(&victim);
            } else {
                break;
            }
        }
    }

    fn invalidate_extent(&mut self, id: u64) {
        self.map.retain(|(eid, _), _| *eid != id);
    }
}

/// An LRU page cache wrapping an inner [`Storage`].
///
/// Hits cost only [`CostModel::cpu_probe_ns`]; misses go to the inner device.
pub struct BlockCache<S: Storage> {
    inner: Arc<S>,
    lru: Mutex<LruInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<S: Storage> BlockCache<S> {
    /// Wraps `inner` with a cache holding up to `capacity_pages` pages.
    pub fn new(inner: Arc<S>, capacity_pages: usize) -> Arc<Self> {
        assert!(
            capacity_pages > 0,
            "use the raw storage for a zero-size cache"
        );
        Arc::new(Self {
            inner,
            lru: Mutex::new(LruInner {
                capacity: capacity_pages,
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Number of cache hits served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (reads forwarded to the device).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit ratio in `[0, 1]`; zero when no reads have occurred.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

impl<S: Storage> Storage for BlockCache<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&self, pages: u32) -> Extent {
        self.inner.allocate(pages)
    }

    fn write_page(&self, ext: Extent, idx: u32, data: &[u8]) -> IoCharge {
        // Write-through: keep the cache coherent and always persist.
        self.lru
            .lock()
            .insert((ext.id, idx), Arc::from(data.to_vec().into_boxed_slice()));
        self.inner.write_page(ext, idx, data)
    }

    fn read_page(&self, ext: Extent, idx: u32, buf: &mut Vec<u8>) -> IoCharge {
        let cached = self.lru.lock().touch((ext.id, idx));
        if let Some(data) = cached {
            buf.clear();
            buf.extend_from_slice(&data);
            self.hits.fetch_add(1, Ordering::Relaxed);
            let probe_ns = self.inner.cost_model().cpu_probe_ns;
            self.inner.charge_cpu(probe_ns);
            // A hit performs no device I/O: only the CPU probe is charged.
            IoCharge {
                ns: probe_ns,
                io: StorageMetrics::default(),
            }
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let charge = self.inner.read_page(ext, idx, buf);
            self.lru
                .lock()
                .insert((ext.id, idx), Arc::from(buf.clone().into_boxed_slice()));
            charge
        }
    }

    fn free(&self, ext: Extent) {
        self.lru.lock().invalidate_extent(ext.id);
        self.inner.free(ext);
    }

    fn metrics(&self) -> StorageMetrics {
        self.inner.metrics()
    }

    fn clock(&self) -> &VirtualClock {
        self.inner.clock()
    }

    fn cost_model(&self) -> CostModel {
        self.inner.cost_model()
    }

    fn live_pages(&self) -> u64 {
        self.inner.live_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimulatedDisk;

    fn setup(cap: usize) -> (Arc<BlockCache<SimulatedDisk>>, Arc<SimulatedDisk>) {
        let disk = SimulatedDisk::new(128, CostModel::NVME);
        (BlockCache::new(Arc::clone(&disk), cap), disk)
    }

    #[test]
    fn hit_avoids_device_read() {
        let (cache, disk) = setup(4);
        let ext = cache.allocate(1);
        cache.write_page(ext, 0, b"abc");
        let mut buf = Vec::new();
        cache.read_page(ext, 0, &mut buf); // hit: write-through populated it
        assert_eq!(&buf, b"abc");
        assert_eq!(cache.hits(), 1);
        assert_eq!(disk.metrics().pages_read, 0);
    }

    #[test]
    fn miss_fills_cache() {
        let (cache, disk) = setup(1);
        let a = cache.allocate(1);
        let b = cache.allocate(1);
        cache.write_page(a, 0, b"a");
        cache.write_page(b, 0, b"b"); // evicts a (capacity 1)
        let mut buf = Vec::new();
        cache.read_page(a, 0, &mut buf); // miss
        assert_eq!(cache.misses(), 1);
        assert_eq!(disk.metrics().pages_read, 1);
        cache.read_page(a, 0, &mut buf); // now a hit
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let (cache, disk) = setup(2);
        let ext = cache.allocate(3);
        cache.write_page(ext, 0, b"0");
        cache.write_page(ext, 1, b"1");
        cache.write_page(ext, 2, b"2"); // page 0 evicted
        let mut buf = Vec::new();
        cache.read_page(ext, 1, &mut buf);
        cache.read_page(ext, 2, &mut buf);
        assert_eq!(disk.metrics().pages_read, 0);
        cache.read_page(ext, 0, &mut buf);
        assert_eq!(disk.metrics().pages_read, 1);
    }

    #[test]
    fn free_invalidates() {
        let (cache, _disk) = setup(4);
        let ext = cache.allocate(1);
        cache.write_page(ext, 0, b"x");
        cache.free(ext);
        // A fresh extent may reuse nothing; reading the freed extent panics
        // at the device level, proving the cache did not serve stale data.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut buf = Vec::new();
            cache.read_page(ext, 0, &mut buf);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn hit_ratio_math() {
        let (cache, _) = setup(4);
        assert_eq!(cache.hit_ratio(), 0.0);
        let ext = cache.allocate(1);
        cache.write_page(ext, 0, b"x");
        let mut buf = Vec::new();
        cache.read_page(ext, 0, &mut buf);
        cache.read_page(ext, 0, &mut buf);
        assert!((cache.hit_ratio() - 1.0).abs() < 1e-9);
    }
}
