//! A sharded, O(1)-eviction LRU block cache over any [`Storage`] backend.
//!
//! The paper motivates black-box (RL) modeling partly because components
//! such as memory caches defeat white-box formulas (§1.2). This cache is
//! built to *serve*, not just to exist for that experiment:
//!
//! * **Sharded locking** — the capacity is split across K independently
//!   locked LRU segments, keyed by a hash of `(extent, page)`, so
//!   concurrent readers on different pages contend on different locks
//!   instead of one global mutex.
//! * **O(1) eviction** — each segment keeps an intrusive doubly-linked
//!   recency list over a slab plus a `HashMap` from page key to slot:
//!   hit, insert, and evict are all constant-time (the seed cache's
//!   min-scan over every resident page is gone).
//! * **Exact counters** — hits, misses, and evictions surface three ways:
//!   per-call in the returned [`IoCharge`] (so stacked storage views
//!   mirror them into their domains), aggregated in
//!   [`Storage::metrics`], and directly via [`BlockCache::hits`] /
//!   [`BlockCache::misses`] / [`BlockCache::evictions`].
//! * **Invalidation on free** — [`Storage::free`] purges the extent's
//!   pages from every segment *before* forwarding, so an extent id whose
//!   pages were freed under the two-log contract (only after the manifest
//!   commit) can never serve stale data.
//!
//! Virtual-cost semantics are unchanged from the seed: a hit charges only
//! [`CostModel::cpu_probe_ns`] and performs no device I/O; a miss forwards
//! to the inner device and fills the cache (reads are write-allocated,
//! writes are write-through). The cache stays **disabled by default** on
//! the simulated backend, matching the paper's direct-I/O setup and
//! keeping that path's accounting bit-identical; the persistent store
//! wires it over each shard's `FileDisk` via
//! `PersistenceConfig::cache_pages`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::VirtualClock;
use crate::cost::CostModel;
use crate::disk::{Extent, IoCharge, Storage};
use crate::metrics::StorageMetrics;

/// Key identifying a cached page.
type PageKey = (u64, u32);

/// Default segment count; small capacities use fewer (≥ 1 page each).
const DEFAULT_SEGMENTS: usize = 8;

/// Sentinel slot index for list ends and free slots.
const NIL: usize = usize::MAX;

/// One resident page: slab slot carrying the intrusive recency links.
struct Slot {
    key: PageKey,
    data: Arc<[u8]>,
    prev: usize,
    next: usize,
}

/// One independently locked LRU segment: `map` finds the slot in O(1),
/// the intrusive list orders recency, `free` recycles slots — every
/// operation (hit, insert, evict, remove) is constant-time.
struct Segment {
    capacity: usize,
    map: HashMap<PageKey, usize>,
    slab: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot (the eviction victim).
    tail: usize,
}

impl Segment {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slab[h].prev = i,
        }
        self.head = i;
    }

    /// Looks a page up, promoting it to most-recently-used on a hit.
    fn get(&mut self, key: PageKey) -> Option<Arc<[u8]>> {
        let &i = self.map.get(&key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(Arc::clone(&self.slab[i].data))
    }

    /// Inserts (or refreshes) a page, returning how many pages were
    /// evicted to make room (0 or 1).
    fn insert(&mut self, key: PageKey, data: Arc<[u8]>) -> u64 {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].data = data;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return 0;
        }
        let mut evicted = 0;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "full segment must have a tail");
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
            evicted = 1;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Slot {
                    key,
                    data,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slab.push(Slot {
                    key,
                    data,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    /// Drops every resident page of an extent (O(pages resident)).
    fn remove_extent(&mut self, id: u64) {
        let victims: Vec<usize> = self
            .map
            .iter()
            .filter(|((eid, _), _)| *eid == id)
            .map(|(_, &i)| i)
            .collect();
        for i in victims {
            self.unlink(i);
            self.map.remove(&self.slab[i].key);
            self.free.push(i);
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A sharded LRU page cache wrapping an inner [`Storage`].
///
/// Hits cost only [`CostModel::cpu_probe_ns`]; misses go to the inner
/// device. See the module docs for the locking and eviction design.
pub struct BlockCache<S: Storage> {
    inner: Arc<S>,
    segments: Vec<Mutex<Segment>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<S: Storage> BlockCache<S> {
    /// Wraps `inner` with a cache holding up to `capacity_pages` pages,
    /// split over `min(8, capacity_pages)` segments.
    pub fn new(inner: Arc<S>, capacity_pages: usize) -> Arc<Self> {
        let segments = DEFAULT_SEGMENTS.min(capacity_pages.max(1));
        Self::with_segments(inner, capacity_pages, segments)
    }

    /// Wraps `inner` with an explicit segment count (tests pin strict
    /// global LRU order with one segment).
    pub fn with_segments(inner: Arc<S>, capacity_pages: usize, segments: usize) -> Arc<Self> {
        assert!(
            capacity_pages > 0,
            "use the raw storage for a zero-size cache"
        );
        assert!(
            (1..=capacity_pages).contains(&segments),
            "need 1..=capacity_pages segments so every segment holds a page"
        );
        // Distribute the capacity exactly: the first `capacity % segments`
        // segments take one extra page.
        let (base, rem) = (capacity_pages / segments, capacity_pages % segments);
        let segments = (0..segments)
            .map(|i| Mutex::new(Segment::new(base + usize::from(i < rem))))
            .collect();
        Arc::new(Self {
            inner,
            segments,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// The segment responsible for a page (FNV-1a over the key).
    fn segment(&self, key: PageKey) -> &Mutex<Segment> {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in key.0.to_le_bytes().into_iter().chain(key.1.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        &self.segments[(h % self.segments.len() as u64) as usize]
    }

    /// Number of cache hits served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (reads forwarded to the device).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of pages evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hit ratio in `[0, 1]`; zero when no reads have occurred.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Pages currently resident across all segments.
    pub fn cached_pages(&self) -> usize {
        self.segments.iter().map(|s| s.lock().len()).sum()
    }

    fn insert(&self, key: PageKey, data: Arc<[u8]>) -> u64 {
        let evicted = self.segment(key).lock().insert(key, data);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }
}

impl<S: Storage> Storage for BlockCache<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&self, pages: u32) -> Extent {
        self.inner.allocate(pages)
    }

    fn write_page(&self, ext: Extent, idx: u32, data: &[u8]) -> IoCharge {
        // Write-through: keep the cache coherent and always persist.
        let evicted = self.insert((ext.id, idx), Arc::from(data.to_vec().into_boxed_slice()));
        let mut charge = self.inner.write_page(ext, idx, data);
        charge.io.cache_evictions += evicted;
        charge
    }

    fn try_read_page(&self, ext: Extent, idx: u32, buf: &mut Vec<u8>) -> std::io::Result<IoCharge> {
        let cached = self.segment((ext.id, idx)).lock().get((ext.id, idx));
        if let Some(data) = cached {
            buf.clear();
            buf.extend_from_slice(&data);
            self.hits.fetch_add(1, Ordering::Relaxed);
            let probe_ns = self.inner.cost_model().cpu_probe_ns;
            self.inner.charge_cpu(probe_ns);
            // A hit performs no device I/O: only the CPU probe is charged.
            Ok(IoCharge {
                ns: probe_ns,
                io: StorageMetrics {
                    cache_hits: 1,
                    ..StorageMetrics::default()
                },
            })
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            // A failed device read fills nothing: the error propagates
            // typed, and the cache never holds a torn page.
            let mut charge = self.inner.try_read_page(ext, idx, buf)?;
            charge.io.cache_misses = 1;
            charge.io.cache_evictions +=
                self.insert((ext.id, idx), Arc::from(buf.clone().into_boxed_slice()));
            Ok(charge)
        }
    }

    fn sync_extent(&self, ext: Extent) -> std::io::Result<IoCharge> {
        self.inner.sync_extent(ext)
    }

    fn sync_dir(&self) -> std::io::Result<IoCharge> {
        self.inner.sync_dir()
    }

    fn collect_orphans(&self, live: &[u64]) -> std::io::Result<Vec<u64>> {
        // Purge collected extents' pages: an orphan's id becomes reusable
        // the moment its file is gone, and no stale page may outlive it.
        let collected = self.inner.collect_orphans(live)?;
        for id in &collected {
            for seg in &self.segments {
                seg.lock().remove_extent(*id);
            }
        }
        Ok(collected)
    }

    fn arm_power_cut(&self, point: crate::PowerCutPoint, after: u64) {
        self.inner.arm_power_cut(point, after);
    }

    fn free(&self, ext: Extent) {
        // Purge before forwarding: once the inner device reuses the id,
        // no stale page may survive here.
        for seg in &self.segments {
            seg.lock().remove_extent(ext.id);
        }
        self.inner.free(ext);
    }

    /// The inner device's counters plus this cache's hit/miss/eviction
    /// totals (hits never reach the device, so they only exist here).
    fn metrics(&self) -> StorageMetrics {
        let mut m = self.inner.metrics();
        m.cache_hits += self.hits();
        m.cache_misses += self.misses();
        m.cache_evictions += self.evictions();
        m
    }

    fn clock(&self) -> &VirtualClock {
        self.inner.clock()
    }

    fn cost_model(&self) -> CostModel {
        self.inner.cost_model()
    }

    fn charge_cpu(&self, ns: u64) {
        self.inner.charge_cpu(ns);
    }

    fn live_pages(&self) -> u64 {
        self.inner.live_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimulatedDisk;

    fn setup(cap: usize) -> (Arc<BlockCache<SimulatedDisk>>, Arc<SimulatedDisk>) {
        let disk = SimulatedDisk::new(128, CostModel::NVME);
        (BlockCache::new(Arc::clone(&disk), cap), disk)
    }

    /// One segment: strict global LRU order, for deterministic recency
    /// assertions.
    fn setup_lru(cap: usize) -> (Arc<BlockCache<SimulatedDisk>>, Arc<SimulatedDisk>) {
        let disk = SimulatedDisk::new(128, CostModel::NVME);
        (BlockCache::with_segments(Arc::clone(&disk), cap, 1), disk)
    }

    #[test]
    fn hit_avoids_device_read() {
        let (cache, disk) = setup(4);
        let ext = cache.allocate(1);
        cache.write_page(ext, 0, b"abc");
        let mut buf = Vec::new();
        let charge = cache.read_page(ext, 0, &mut buf); // hit: write-through populated it
        assert_eq!(&buf, b"abc");
        assert_eq!(cache.hits(), 1);
        assert_eq!(disk.metrics().pages_read, 0);
        assert_eq!(charge.io.cache_hits, 1, "hit flows through the IoCharge");
        assert_eq!(charge.io.pages_read, 0);
        assert_eq!(charge.ns, CostModel::NVME.cpu_probe_ns);
    }

    #[test]
    fn miss_fills_cache() {
        let (cache, disk) = setup_lru(1);
        let a = cache.allocate(1);
        let b = cache.allocate(1);
        cache.write_page(a, 0, b"a");
        cache.write_page(b, 0, b"b"); // evicts a (capacity 1)
        assert_eq!(cache.evictions(), 1);
        let mut buf = Vec::new();
        let charge = cache.read_page(a, 0, &mut buf); // miss
        assert_eq!(cache.misses(), 1);
        assert_eq!(charge.io.cache_misses, 1, "miss flows through the IoCharge");
        assert_eq!(disk.metrics().pages_read, 1);
        cache.read_page(a, 0, &mut buf); // now a hit
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let (cache, disk) = setup_lru(2);
        let ext = cache.allocate(3);
        cache.write_page(ext, 0, b"0");
        cache.write_page(ext, 1, b"1");
        cache.write_page(ext, 2, b"2"); // page 0 evicted
        let mut buf = Vec::new();
        cache.read_page(ext, 1, &mut buf);
        cache.read_page(ext, 2, &mut buf);
        assert_eq!(disk.metrics().pages_read, 0);
        cache.read_page(ext, 0, &mut buf);
        assert_eq!(disk.metrics().pages_read, 1);
    }

    /// A hit must *promote*: after touching the LRU page, the other
    /// resident page becomes the next victim.
    #[test]
    fn hit_promotes_to_mru() {
        let (cache, disk) = setup_lru(2);
        let ext = cache.allocate(3);
        cache.write_page(ext, 0, b"0");
        cache.write_page(ext, 1, b"1");
        let mut buf = Vec::new();
        cache.read_page(ext, 0, &mut buf); // promote page 0
        cache.write_page(ext, 2, b"2"); // must evict page 1, not 0
        cache.read_page(ext, 0, &mut buf);
        assert_eq!(disk.metrics().pages_read, 0, "promoted page stayed");
        cache.read_page(ext, 1, &mut buf);
        assert_eq!(disk.metrics().pages_read, 1, "LRU page was evicted");
    }

    #[test]
    fn free_invalidates() {
        let (cache, _disk) = setup(4);
        let ext = cache.allocate(1);
        cache.write_page(ext, 0, b"x");
        cache.free(ext);
        // A fresh extent may reuse nothing; reading the freed extent panics
        // at the device level, proving the cache did not serve stale data.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut buf = Vec::new();
            cache.read_page(ext, 0, &mut buf);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn hit_ratio_math() {
        let (cache, _) = setup(4);
        assert_eq!(cache.hit_ratio(), 0.0);
        let ext = cache.allocate(1);
        cache.write_page(ext, 0, b"x");
        let mut buf = Vec::new();
        cache.read_page(ext, 0, &mut buf);
        cache.read_page(ext, 0, &mut buf);
        assert!((cache.hit_ratio() - 1.0).abs() < 1e-9);
    }

    /// Sharded capacity is exact: residency never exceeds the configured
    /// page budget, whatever the access pattern.
    #[test]
    fn sharded_capacity_is_bounded() {
        let (cache, _) = setup(13);
        let ext = cache.allocate(200);
        for i in 0..200 {
            cache.write_page(ext, i, &[i as u8; 16]);
        }
        assert!(cache.cached_pages() <= 13, "capacity overrun");
        assert!(cache.evictions() > 0);
        let mut buf = Vec::new();
        for i in 0..200 {
            cache.read_page(ext, i, &mut buf);
            assert_eq!(buf[0], i as u8);
        }
        assert!(cache.cached_pages() <= 13, "capacity overrun after reads");
    }

    /// Invalidation reaches every segment, and metrics() reports the
    /// cache counters on top of the device's.
    #[test]
    fn invalidation_spans_segments_and_metrics_aggregate() {
        let (cache, _) = setup(64);
        let a = cache.allocate(32);
        let b = cache.allocate(4);
        for i in 0..32 {
            cache.write_page(a, i, b"a");
        }
        for i in 0..4 {
            cache.write_page(b, i, b"b");
        }
        cache.free(a);
        assert_eq!(cache.cached_pages(), 4, "only extent b remains resident");
        let mut buf = Vec::new();
        for i in 0..4 {
            cache.read_page(b, i, &mut buf);
        }
        let m = cache.metrics();
        assert_eq!(m.cache_hits, 4);
        assert_eq!(m.cache_misses, 0);
        assert_eq!(m.cache_evictions, 0);
    }

    /// Concurrent readers through the sharded segments: results stay
    /// exact and hits + misses account for every read.
    #[test]
    fn concurrent_reads_are_exact() {
        let disk = SimulatedDisk::new(128, CostModel::FREE);
        let cache = BlockCache::new(Arc::clone(&disk), 32);
        let ext = cache.allocate(64);
        for i in 0..64 {
            cache.write_page(ext, i, &[i as u8; 8]);
        }
        let (h0, m0) = (cache.hits(), cache.misses());
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    let mut buf = Vec::new();
                    for round in 0..200u32 {
                        let i = (round * 7 + t) % 64;
                        cache.read_page(ext, i, &mut buf);
                        assert_eq!(buf[0], i as u8, "stale or torn page");
                    }
                });
            }
        });
        assert_eq!(cache.hits() - h0 + (cache.misses() - m0), 800);
    }
}
