//! Per-shard storage views with private time domains.
//!
//! The shards of a sharded store share one physical device, but each shard
//! must account its *own* virtual time and I/O exactly: windowing shared
//! counters under parallel missions silently absorbs concurrent siblings'
//! charges. [`ShardStorage`] wraps a shared [`Storage`] and mirrors every
//! charge — page I/O via the [`IoCharge`] the device returns, CPU via
//! [`Storage::charge_cpu`] — into a clock and metrics owned by the view:
//!
//! * the view's [`Storage::clock`] is a fresh [`VirtualClock`] in its own
//!   time domain, advanced only by this view's operations, so an engine
//!   windowing it observes exactly its own work at any shard count;
//! * the view's [`Storage::metrics`] are the domain's exact I/O share;
//! * the shared device still receives every charge, so its clock remains
//!   the **device-busy** aggregate — the sum over all domains.
//!
//! Composition at the store level follows: *device-busy time* is the sum of
//! the domains' clocks, *wall time* of a parallel mission is the max over
//! the participating domains' deltas.
//!
//! A domain belongs to its view, not to any OS thread: the engine's
//! persistent shard workers charge the same domain from whichever pool
//! thread currently owns the shard's tree, and the accounting stays exact
//! because exactly one job holds that tree at a time (clock and metrics
//! are atomic, so even concurrent charging would only race, not corrupt).

use std::sync::Arc;

use crate::clock::VirtualClock;
use crate::cost::CostModel;
use crate::disk::{Extent, IoCharge, Storage};
use crate::metrics::{AtomicMetrics, StorageMetrics};

/// A view of a shared storage device that owns a private time domain.
///
/// All I/O is delegated to the shared device (allocation, data, and the
/// device's own accounting included); the view additionally mirrors every
/// charge into its own [`VirtualClock`] and metrics. With one view per
/// shard, per-shard time and I/O attribution is exact under parallelism.
pub struct ShardStorage {
    inner: Arc<dyn Storage>,
    clock: VirtualClock,
    metrics: AtomicMetrics,
}

impl ShardStorage {
    /// Creates a view over `inner` with a fresh time domain starting at 0.
    pub fn new(inner: Arc<dyn Storage>) -> Arc<Self> {
        Arc::new(Self {
            inner,
            clock: VirtualClock::new(),
            metrics: AtomicMetrics::default(),
        })
    }

    /// The shared device underneath this view.
    pub fn device(&self) -> &Arc<dyn Storage> {
        &self.inner
    }
}

impl Storage for ShardStorage {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&self, pages: u32) -> Extent {
        self.inner.allocate(pages)
    }

    fn write_page(&self, ext: Extent, idx: u32, data: &[u8]) -> IoCharge {
        let charge = self.inner.write_page(ext, idx, data);
        self.metrics.add(&charge.io);
        self.clock.advance(charge.ns);
        charge
    }

    fn try_read_page(&self, ext: Extent, idx: u32, buf: &mut Vec<u8>) -> std::io::Result<IoCharge> {
        let charge = self.inner.try_read_page(ext, idx, buf)?;
        self.metrics.add(&charge.io);
        self.clock.advance(charge.ns);
        Ok(charge)
    }

    fn sync_extent(&self, ext: Extent) -> std::io::Result<IoCharge> {
        let charge = self.inner.sync_extent(ext)?;
        self.metrics.add(&charge.io);
        self.clock.advance(charge.ns);
        Ok(charge)
    }

    fn sync_dir(&self) -> std::io::Result<IoCharge> {
        let charge = self.inner.sync_dir()?;
        self.metrics.add(&charge.io);
        self.clock.advance(charge.ns);
        Ok(charge)
    }

    fn collect_orphans(&self, live: &[u64]) -> std::io::Result<Vec<u64>> {
        self.inner.collect_orphans(live)
    }

    fn arm_power_cut(&self, point: crate::PowerCutPoint, after: u64) {
        self.inner.arm_power_cut(point, after);
    }

    fn free(&self, ext: Extent) {
        self.inner.free(ext);
    }

    /// This domain's exact I/O share (not the shared device totals).
    fn metrics(&self) -> StorageMetrics {
        self.metrics.snapshot()
    }

    /// This view's own time domain.
    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn cost_model(&self) -> CostModel {
        self.inner.cost_model()
    }

    /// CPU charges land on both timelines: the domain's clock and the
    /// shared device's busy aggregate.
    fn charge_cpu(&self, ns: u64) {
        self.inner.charge_cpu(ns);
        self.clock.advance(ns);
    }

    fn live_pages(&self) -> u64 {
        self.inner.live_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimulatedDisk;

    fn device() -> Arc<SimulatedDisk> {
        SimulatedDisk::new(128, CostModel::NVME)
    }

    #[test]
    fn view_gets_its_own_domain() {
        let d = device();
        let a = ShardStorage::new(d.clone());
        let b = ShardStorage::new(d);
        assert_ne!(a.clock().domain(), b.clock().domain());
        assert_ne!(a.clock().domain(), a.device().clock().domain());
    }

    #[test]
    fn charges_mirror_into_domain_and_device() {
        let d = device();
        let v = ShardStorage::new(d.clone());
        let ext = v.allocate(2);
        v.write_page(ext, 0, b"abc");
        let mut buf = Vec::new();
        v.read_page(ext, 0, &mut buf);
        v.charge_cpu(7);
        let expect = CostModel::NVME.write_page_ns + CostModel::NVME.read_page_ns + 7;
        assert_eq!(v.clock().now_ns(), expect, "domain clock");
        assert_eq!(d.clock().now_ns(), expect, "device-busy clock");
        let m = v.metrics();
        assert_eq!(m.pages_written, 1);
        assert_eq!(m.pages_read, 1);
        assert_eq!(m.bytes_written, 3);
        assert_eq!(m.bytes_read, 3);
    }

    /// The invariant the store-level composition relies on: the device
    /// clock equals the sum of the domains' clocks, and each domain saw
    /// only its own charges.
    #[test]
    fn device_busy_is_sum_of_domains() {
        let d = device();
        let a = ShardStorage::new(d.clone());
        let b = ShardStorage::new(d.clone());
        let ea = a.allocate(1);
        let eb = b.allocate(1);
        a.write_page(ea, 0, b"x");
        b.write_page(eb, 0, b"y");
        let mut buf = Vec::new();
        b.read_page(eb, 0, &mut buf);
        let w = CostModel::NVME.write_page_ns;
        let r = CostModel::NVME.read_page_ns;
        assert_eq!(a.clock().now_ns(), w);
        assert_eq!(b.clock().now_ns(), w + r);
        assert_eq!(d.clock().now_ns(), 2 * w + r);
        assert_eq!(a.metrics().pages_written, 1);
        assert_eq!(a.metrics().pages_read, 0, "sibling read must not leak");
        assert_eq!(b.metrics().pages_read, 1);
    }

    /// Parallel views over one device: every domain accounts exactly its
    /// own work; the device aggregates all of it.
    #[test]
    fn concurrent_views_attribute_exactly() {
        const PAGES: u64 = 200;
        let d = device();
        let views: Vec<Arc<ShardStorage>> = (0..4).map(|_| ShardStorage::new(d.clone())).collect();
        std::thread::scope(|s| {
            for v in &views {
                let v = Arc::clone(v);
                s.spawn(move || {
                    let ext = v.allocate(PAGES as u32);
                    let mut buf = Vec::new();
                    for i in 0..PAGES as u32 {
                        v.write_page(ext, i, &[7u8; 64]);
                        v.read_page(ext, i, &mut buf);
                    }
                });
            }
        });
        let per_domain = PAGES * (CostModel::NVME.write_page_ns + CostModel::NVME.read_page_ns);
        for v in &views {
            assert_eq!(v.clock().now_ns(), per_domain, "exact per-domain time");
            assert_eq!(v.metrics().pages_read, PAGES);
            assert_eq!(v.metrics().pages_written, PAGES);
        }
        assert_eq!(d.clock().now_ns(), 4 * per_domain, "device-busy sum");
    }

    #[test]
    fn views_stack_and_delegate_structure() {
        let d = device();
        let v = ShardStorage::new(d.clone());
        assert_eq!(v.page_size(), d.page_size());
        let ext = v.allocate(1);
        v.write_page(ext, 0, b"z");
        assert_eq!(v.live_pages(), 1);
        v.free(ext);
        assert_eq!(v.live_pages(), 0);
        assert_eq!(d.live_extents(), 0);
    }
}
