//! The simulation cost model.
//!
//! Mirrors the constants of the paper's white-box analysis (§5.2, Eq. 5):
//! `I_r`/`I_w` are the average read/write I/O times per disk page, `c_r` is
//! the CPU cost of probing the in-memory metadata (Bloom filter + fence
//! pointers) of one sorted run, and `c_w` is the CPU cost one key incurs
//! during compaction (merge-sorting and space allocation).

/// Per-operation virtual-time costs charged by the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// `I_r`: virtual nanoseconds per page read.
    pub read_page_ns: u64,
    /// `I_w`: virtual nanoseconds per page write.
    pub write_page_ns: u64,
    /// `c_r`: CPU nanoseconds for probing one run's in-memory metadata
    /// (Bloom filter hashing + fence-pointer binary search).
    pub cpu_probe_ns: u64,
    /// `c_w`: CPU nanoseconds per key processed during compaction.
    pub cpu_merge_per_key_ns: u64,
    /// CPU nanoseconds per entry inserted into the memtable.
    pub cpu_memtable_ns: u64,
    /// Virtual nanoseconds to append one record to the write-ahead log
    /// (user-space buffering + serialization).
    pub wal_append_ns: u64,
    /// Virtual nanoseconds for one WAL fsync — the group-commit unit cost,
    /// amortized over the batch by syncing once per shard per batch.
    pub wal_sync_ns: u64,
}

impl CostModel {
    /// An NVMe-like profile (the paper's testbed uses a 1 TB NVMe SSD with
    /// direct I/O). ~25 µs per random 4 KiB read, ~20 µs per 4 KiB write.
    pub const NVME: CostModel = CostModel {
        read_page_ns: 25_000,
        write_page_ns: 20_000,
        cpu_probe_ns: 500,
        cpu_merge_per_key_ns: 200,
        cpu_memtable_ns: 150,
        wal_append_ns: 250,
        wal_sync_ns: 30_000,
    };

    /// A SATA-SSD-like profile (slower pages, same CPU costs).
    pub const SATA_SSD: CostModel = CostModel {
        read_page_ns: 100_000,
        write_page_ns: 80_000,
        cpu_probe_ns: 500,
        cpu_merge_per_key_ns: 200,
        cpu_memtable_ns: 150,
        wal_append_ns: 250,
        wal_sync_ns: 120_000,
    };

    /// A profile where CPU dominates I/O, as reported by Zhu et al. for
    /// Bloom-filter hashing on very fast modern devices (§1.2 of the paper).
    pub const CPU_BOUND: CostModel = CostModel {
        read_page_ns: 3_000,
        write_page_ns: 2_000,
        cpu_probe_ns: 2_500,
        cpu_merge_per_key_ns: 800,
        cpu_memtable_ns: 400,
        wal_append_ns: 400,
        wal_sync_ns: 6_000,
    };

    /// A free cost model: no virtual time accrues (pure counting mode).
    pub const FREE: CostModel = CostModel {
        read_page_ns: 0,
        write_page_ns: 0,
        cpu_probe_ns: 0,
        cpu_merge_per_key_ns: 0,
        cpu_memtable_ns: 0,
        wal_append_ns: 0,
        wal_sync_ns: 0,
    };
}

impl Default for CostModel {
    fn default() -> Self {
        Self::NVME
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_nvme() {
        assert_eq!(CostModel::default(), CostModel::NVME);
    }

    #[test]
    fn profiles_are_ordered_sensibly() {
        let profiles = [
            CostModel::NVME,
            CostModel::SATA_SSD,
            CostModel::CPU_BOUND,
            CostModel::FREE,
        ];
        assert!(profiles[1].read_page_ns > profiles[0].read_page_ns);
        assert!(profiles[2].cpu_probe_ns > profiles[2].read_page_ns / 2);
        assert_eq!(profiles[3].read_page_ns, 0);
        // WAL costs: an fsync dwarfs a buffered append on every real
        // device (that gap is what group commit amortizes); FREE charges
        // nothing.
        for p in &profiles[..3] {
            assert!(p.wal_sync_ns > 10 * p.wal_append_ns);
        }
        assert_eq!(profiles[3].wal_append_ns, 0);
        assert_eq!(profiles[3].wal_sync_ns, 0);
    }
}
