//! The simulated disk and the [`Storage`] abstraction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::clock::VirtualClock;
use crate::cost::CostModel;
use crate::metrics::{AtomicMetrics, StorageMetrics};

/// A contiguous allocation of pages on a storage device.
///
/// Extents are handed out by [`Storage::allocate`] and identify the pages of
/// one sorted run. They are plain identifiers — freeing is explicit via
/// [`Storage::free`], mirroring how an LSM engine deletes obsolete run files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Extent {
    /// Unique identifier of the allocation.
    pub id: u64,
    /// Number of pages in the allocation.
    pub pages: u32,
}

/// The exact cost of one storage call: the virtual nanoseconds charged to
/// the caller's timeline plus the device I/O performed, as a metrics delta.
///
/// Returning the charge from [`Storage::write_page`]/[`Storage::read_page`]
/// lets wrapping views (a shard's `crate::ShardStorage`, a
/// [`crate::BlockCache`]) mirror the accounting into their own time domain
/// *exactly*, without windowing shared counters that concurrent siblings
/// also advance. A cache hit, for example, reports its CPU cost in `ns`
/// with a zero `io` delta — no device read happened.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoCharge {
    /// Total virtual ns charged to the storage clock by this call.
    pub ns: u64,
    /// Device I/O the call performed (zero on e.g. cache hits).
    pub io: StorageMetrics,
}

/// A simulated power-cut fault point on a durable backend.
///
/// Both points model the same physical event — power lost while data sat
/// in the OS page cache — at the two boundaries the power-failure contract
/// fsyncs: the extent file's pages and its directory entry. A fired point
/// halts the device (subsequent mutations become no-ops) exactly like a
/// [`crate::Wal`]-level crash kills its handle, so a test can drop the
/// store and recover it. Volatile backends ignore arming entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerCutPoint {
    /// Fires inside [`Storage::sync_extent`] *before* the fsync: the
    /// extent's un-synced page writes are torn away (the file is
    /// truncated) and the device halts — power was lost after `write(2)`
    /// reached the page cache but before `fsync(2)` made it durable.
    ExtentUnsynced,
    /// Fires inside [`Storage::sync_dir`] *before* the directory fsync:
    /// extent files created since the last directory sync lose their
    /// directory entries (they are unlinked) and the device halts —
    /// power was lost after `creat(2)` but before the parent-directory
    /// fsync made the new entries durable.
    DirUnsynced,
}

/// A page-granular storage device.
///
/// Both the [`SimulatedDisk`] and the real-file [`crate::FileDisk`] implement
/// this trait, so the LSM engine is oblivious to which backend it runs on.
///
/// # Fallible reads and power-failure durability
///
/// [`Storage::try_read_page`] is the primitive every backend implements:
/// a missing extent file, a torn (short) page, or a corrupt slot header
/// surfaces as an [`std::io::Error`] the caller can type-match — this is
/// what lets recovery turn a power-failure artifact into a typed error
/// instead of a panic. [`Storage::read_page`] is the serving-path wrapper
/// that panics on those errors (after a successful recovery every
/// recorded page is readable, so an error there is a logic bug).
/// [`Storage::sync_extent`] and [`Storage::sync_dir`] are the durability
/// barriers the LSM layer orders *before* its manifest commit; volatile
/// backends treat them as free no-ops.
pub trait Storage: Send + Sync {
    /// Size of one page in bytes (`B` in the paper, default 4096).
    fn page_size(&self) -> usize;

    /// Allocates `pages` pages and returns their extent.
    fn allocate(&self, pages: u32) -> Extent;

    /// Writes `data` (at most one page) to page `idx` of `ext`, returning
    /// the exact [`IoCharge`] so wrappers can mirror the accounting.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds or `data` exceeds the page size.
    fn write_page(&self, ext: Extent, idx: u32, data: &[u8]) -> IoCharge;

    /// Reads page `idx` of `ext` into `buf` (cleared first), returning the
    /// exact [`IoCharge`] so wrappers can mirror the accounting — or an
    /// error when the page cannot be served: a freed/unknown extent, an
    /// extent file a power failure erased ([`std::io::ErrorKind::NotFound`]),
    /// a torn page ([`std::io::ErrorKind::UnexpectedEof`]), or a corrupt
    /// slot header ([`std::io::ErrorKind::InvalidData`]). Recovery reads
    /// go through this method so those failures stay typed.
    fn try_read_page(&self, ext: Extent, idx: u32, buf: &mut Vec<u8>) -> std::io::Result<IoCharge>;

    /// Reads page `idx` of `ext` into `buf` (cleared first), returning the
    /// exact [`IoCharge`] so wrappers can mirror the accounting.
    ///
    /// # Panics
    /// Panics if the page cannot be served (see [`Storage::try_read_page`]
    /// for the failure taxonomy) — the serving path treats that as a
    /// logic bug, since recovery already proved every recorded page
    /// readable.
    fn read_page(&self, ext: Extent, idx: u32, buf: &mut Vec<u8>) -> IoCharge {
        self.try_read_page(ext, idx, buf)
            .unwrap_or_else(|e| panic!("read page {}:{idx}: {e}", ext.id))
    }

    /// Durably flushes an extent's written pages (`fsync(2)` of the extent
    /// file on a real-file backend; a free no-op on volatile backends).
    /// Counts one [`StorageMetrics::extent_syncs`] when real work happens.
    /// An error means the extent's data could not be made durable — on a
    /// power-cut fault injection the un-synced writes are already gone.
    fn sync_extent(&self, _ext: Extent) -> std::io::Result<IoCharge> {
        Ok(IoCharge::default())
    }

    /// Durably flushes the backend's directory entries (fsync of the
    /// directory handle on a real-file backend): what makes extent files
    /// created since the last call survive power loss. Counts one
    /// [`StorageMetrics::dir_syncs`] when real work happens.
    fn sync_dir(&self) -> std::io::Result<IoCharge> {
        Ok(IoCharge::default())
    }

    /// Removes extents present on the backend but absent from `live` —
    /// the garbage a pre-commit power cut leaves behind (data written,
    /// manifest never committed). Returns the collected ids. A no-op on
    /// volatile backends (a fresh process inherits nothing). Recovery
    /// calls this once, after folding the manifest and before anything
    /// can allocate.
    fn collect_orphans(&self, _live: &[u64]) -> std::io::Result<Vec<u64>> {
        Ok(Vec::new())
    }

    /// Arms a simulated power cut that fires after `after` more visits to
    /// the point's barrier (see [`PowerCutPoint`]). Ignored by volatile
    /// backends.
    fn arm_power_cut(&self, _point: PowerCutPoint, _after: u64) {}

    /// Releases an extent. Reading freed pages panics.
    fn free(&self, ext: Extent);

    /// Snapshot of the I/O counters *as seen through this handle*: the
    /// device totals for a raw device, the owning domain's share for a
    /// per-shard view.
    fn metrics(&self) -> StorageMetrics;

    /// The virtual clock this handle charges time to: the device clock for
    /// a raw device, the shard's own time domain for a per-shard view.
    fn clock(&self) -> &VirtualClock;

    /// The cost model used for virtual-time charging.
    fn cost_model(&self) -> CostModel;

    /// Charges pure CPU time to this handle's clock (used by the engine for
    /// `c_r`/`c_w` style costs so that everything lands on one timeline).
    fn charge_cpu(&self, ns: u64) {
        self.clock().advance(ns);
    }

    /// Number of live (allocated, unfreed) pages, for space accounting.
    fn live_pages(&self) -> u64;
}

/// Pages of one extent: each slot is `None` until written.
type ExtentSlots = Box<[Option<Box<[u8]>>]>;

/// In-memory page store with exact, deterministic I/O accounting.
pub struct SimulatedDisk {
    page_size: usize,
    cost: CostModel,
    clock: VirtualClock,
    next_id: AtomicU64,
    live_pages: AtomicU64,
    extents: RwLock<HashMap<u64, ExtentSlots>>,
    metrics: AtomicMetrics,
}

impl SimulatedDisk {
    /// Creates a disk with the given page size and cost model.
    pub fn new(page_size: usize, cost: CostModel) -> Arc<Self> {
        assert!(page_size >= 64, "page size unreasonably small");
        Arc::new(Self {
            page_size,
            cost,
            clock: VirtualClock::new(),
            next_id: AtomicU64::new(1),
            live_pages: AtomicU64::new(0),
            extents: RwLock::new(HashMap::new()),
            metrics: AtomicMetrics::default(),
        })
    }

    /// Creates a disk with the default page size (4096) and NVMe cost model.
    pub fn default_nvme() -> Arc<Self> {
        Self::new(crate::DEFAULT_PAGE_SIZE, CostModel::NVME)
    }

    /// Number of live extents (≈ live run files).
    pub fn live_extents(&self) -> usize {
        self.extents.read().len()
    }
}

impl Storage for SimulatedDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&self, pages: u32) -> Extent {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let slots: ExtentSlots = (0..pages).map(|_| None).collect();
        self.extents.write().insert(id, slots);
        self.live_pages.fetch_add(pages as u64, Ordering::Relaxed);
        Extent { id, pages }
    }

    fn write_page(&self, ext: Extent, idx: u32, data: &[u8]) -> IoCharge {
        assert!(
            data.len() <= self.page_size,
            "page overflow: {} > {}",
            data.len(),
            self.page_size
        );
        assert!(
            idx < ext.pages,
            "page index {idx} out of bounds ({})",
            ext.pages
        );
        {
            let mut extents = self.extents.write();
            let slots = extents
                .get_mut(&ext.id)
                .unwrap_or_else(|| panic!("write to freed/unknown extent {}", ext.id));
            slots[idx as usize] = Some(data.to_vec().into_boxed_slice());
        }
        let charge = IoCharge {
            ns: self.cost.write_page_ns,
            io: StorageMetrics {
                pages_written: 1,
                bytes_written: data.len() as u64,
                write_ns: self.cost.write_page_ns,
                ..StorageMetrics::default()
            },
        };
        self.metrics.add(&charge.io);
        self.clock.advance(charge.ns);
        charge
    }

    fn try_read_page(&self, ext: Extent, idx: u32, buf: &mut Vec<u8>) -> std::io::Result<IoCharge> {
        buf.clear();
        {
            let extents = self.extents.read();
            let slots = extents.get(&ext.id).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("read from freed/unknown extent {}", ext.id),
                )
            })?;
            let page = slots[idx as usize].as_ref().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("read of unwritten page {}:{idx}", ext.id),
                )
            })?;
            buf.extend_from_slice(page);
        }
        let charge = IoCharge {
            ns: self.cost.read_page_ns,
            io: StorageMetrics {
                pages_read: 1,
                bytes_read: buf.len() as u64,
                read_ns: self.cost.read_page_ns,
                ..StorageMetrics::default()
            },
        };
        self.metrics.add(&charge.io);
        self.clock.advance(charge.ns);
        Ok(charge)
    }

    fn free(&self, ext: Extent) {
        if self.extents.write().remove(&ext.id).is_some() {
            self.live_pages
                .fetch_sub(ext.pages as u64, Ordering::Relaxed);
        }
    }

    fn metrics(&self) -> StorageMetrics {
        self.metrics.snapshot()
    }

    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn live_pages(&self) -> u64 {
        self.live_pages.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Arc<SimulatedDisk> {
        SimulatedDisk::new(128, CostModel::NVME)
    }

    #[test]
    fn write_read_roundtrip() {
        let d = disk();
        let ext = d.allocate(2);
        d.write_page(ext, 0, b"hello");
        d.write_page(ext, 1, b"world");
        let mut buf = Vec::new();
        d.read_page(ext, 0, &mut buf);
        assert_eq!(&buf, b"hello");
        d.read_page(ext, 1, &mut buf);
        assert_eq!(&buf, b"world");
    }

    #[test]
    fn metrics_count_exactly() {
        let d = disk();
        let ext = d.allocate(1);
        d.write_page(ext, 0, &[0u8; 100]);
        let mut buf = Vec::new();
        d.read_page(ext, 0, &mut buf);
        d.read_page(ext, 0, &mut buf);
        let m = d.metrics();
        assert_eq!(m.pages_written, 1);
        assert_eq!(m.pages_read, 2);
        assert_eq!(m.bytes_written, 100);
        assert_eq!(m.bytes_read, 200);
        assert_eq!(m.write_ns, CostModel::NVME.write_page_ns);
        assert_eq!(m.read_ns, 2 * CostModel::NVME.read_page_ns);
    }

    #[test]
    fn clock_advances_with_io() {
        let d = disk();
        let ext = d.allocate(1);
        d.write_page(ext, 0, b"x");
        let mut buf = Vec::new();
        d.read_page(ext, 0, &mut buf);
        assert_eq!(
            d.clock().now_ns(),
            CostModel::NVME.write_page_ns + CostModel::NVME.read_page_ns
        );
    }

    #[test]
    fn free_releases_pages() {
        let d = disk();
        let a = d.allocate(3);
        let b = d.allocate(2);
        assert_eq!(d.live_pages(), 5);
        assert_eq!(d.live_extents(), 2);
        d.free(a);
        assert_eq!(d.live_pages(), 2);
        assert_eq!(d.live_extents(), 1);
        d.free(b);
        assert_eq!(d.live_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "freed/unknown extent")]
    fn read_after_free_panics() {
        let d = disk();
        let ext = d.allocate(1);
        d.write_page(ext, 0, b"x");
        d.free(ext);
        let mut buf = Vec::new();
        d.read_page(ext, 0, &mut buf);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn oversized_write_panics() {
        let d = disk();
        let ext = d.allocate(1);
        d.write_page(ext, 0, &[0u8; 4096]);
    }

    #[test]
    fn charge_cpu_hits_same_clock() {
        let d = disk();
        d.charge_cpu(42);
        assert_eq!(d.clock().now_ns(), 42);
    }

    /// Shards of a sharded store hand `Arc<dyn Storage>` clones to worker
    /// threads; the trait object must stay `Send + Sync`.
    #[test]
    fn storage_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Arc<dyn Storage>>();
        assert_send_sync::<SimulatedDisk>();
    }

    /// One device shared by parallel shard workers must account every page
    /// exactly: counters are atomic, so no I/O may be lost or double-counted.
    #[test]
    fn concurrent_shards_account_exactly() {
        const THREADS: u64 = 4;
        const PAGES_PER_THREAD: u64 = 200;
        let d: Arc<SimulatedDisk> = disk();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let d = Arc::clone(&d);
                s.spawn(move || {
                    let ext = d.allocate(PAGES_PER_THREAD as u32);
                    let mut buf = Vec::new();
                    for i in 0..PAGES_PER_THREAD as u32 {
                        d.write_page(ext, i, &[7u8; 64]);
                        d.read_page(ext, i, &mut buf);
                    }
                });
            }
        });
        let m = d.metrics();
        let total = THREADS * PAGES_PER_THREAD;
        assert_eq!(m.pages_written, total);
        assert_eq!(m.pages_read, total);
        assert_eq!(m.bytes_written, total * 64);
        assert_eq!(
            d.clock().now_ns(),
            total * (CostModel::NVME.write_page_ns + CostModel::NVME.read_page_ns)
        );
        assert_eq!(d.live_pages(), total);
        assert_eq!(d.live_extents(), THREADS as usize);
    }
}
