//! Deterministic virtual clocks with *time domains*.
//!
//! All storage and CPU costs in the simulation are expressed as virtual
//! nanoseconds accumulated on a [`VirtualClock`]. Experiments that compare
//! "latency" between compaction policies therefore produce exactly the same
//! numbers on every run, for every machine.
//!
//! Every clock belongs to a **time domain**, identified by a [`DomainId`]
//! minted at construction; clones share both the counter and the domain.
//! A sharded store gives each shard its own domain (see
//! `ShardStorage`), so a shard windowing its clock — [`VirtualClock::now`]
//! then [`VirtualClock::elapsed_since`] — only ever observes its *own*
//! charges, never a concurrent sibling's. Timestamps are domain-tagged:
//! asking a clock for the elapsed time since a timestamp taken from a
//! *different* domain is a bug (the old shared-clock accounting silently
//! returned 0 or absorbed foreign charges), and panics in debug builds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a time domain. Each [`VirtualClock::new`] mints a fresh
/// one; clones of a clock stay in its domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DomainId(u64);

/// Source of fresh domain ids, process-wide.
static NEXT_DOMAIN: AtomicU64 = AtomicU64::new(0);

/// A point on one domain's timeline, tagged with its [`DomainId`] so that
/// cross-domain elapsed queries are detected instead of silently wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timestamp {
    ns: u64,
    domain: DomainId,
}

impl Timestamp {
    /// The raw virtual time of the timestamp (nanoseconds).
    pub fn ns(&self) -> u64 {
        self.ns
    }

    /// The domain the timestamp was taken in.
    pub fn domain(&self) -> DomainId {
        self.domain
    }
}

/// A monotonically increasing virtual-time counter (nanoseconds) owning one
/// time domain.
///
/// Cloning the clock is cheap and shares the underlying counter *and*
/// domain, so a disk, an engine, and a stats collector can all observe the
/// same timeline. Constructing a new clock starts a new domain.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    ns: Arc<AtomicU64>,
    domain: DomainId,
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualClock {
    /// Creates a clock starting at time zero, in a fresh time domain.
    pub fn new() -> Self {
        Self {
            ns: Arc::new(AtomicU64::new(0)),
            domain: DomainId(NEXT_DOMAIN.fetch_add(1, Ordering::Relaxed)),
        }
    }

    /// The clock's time domain.
    pub fn domain(&self) -> DomainId {
        self.domain
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Current virtual time as a domain-tagged [`Timestamp`], for later
    /// [`VirtualClock::elapsed_since`] windows.
    pub fn now(&self) -> Timestamp {
        Timestamp {
            ns: self.now_ns(),
            domain: self.domain,
        }
    }

    /// Advances the clock by `ns` nanoseconds and returns the new time.
    pub fn advance(&self, ns: u64) -> u64 {
        self.ns.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Returns the virtual time elapsed since `start`.
    ///
    /// # Panics
    /// Panics in debug builds if `start` was taken from a different time
    /// domain — such a window would attribute another domain's charges (or
    /// silently clamp to 0), which is exactly the accounting bug domains
    /// exist to prevent. Release builds saturate to 0.
    pub fn elapsed_since(&self, start: Timestamp) -> u64 {
        debug_assert_eq!(
            start.domain, self.domain,
            "elapsed_since across time domains: timestamp from {:?} queried on {:?}",
            start.domain, self.domain
        );
        self.now_ns().saturating_sub(start.ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now().ns(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now_ns(), 15);
    }

    #[test]
    fn clones_share_time_and_domain() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        assert_eq!(c.domain(), c2.domain());
        c.advance(7);
        assert_eq!(c2.now_ns(), 7);
        c2.advance(3);
        assert_eq!(c.now_ns(), 10);
        // A cloned clock's timestamps are valid on the original.
        let t = c2.now();
        c.advance(5);
        assert_eq!(c.elapsed_since(t), 5);
    }

    #[test]
    fn fresh_clocks_get_fresh_domains() {
        let a = VirtualClock::new();
        let b = VirtualClock::new();
        assert_ne!(a.domain(), b.domain());
    }

    #[test]
    fn elapsed_within_domain() {
        let c = VirtualClock::new();
        c.advance(2);
        let t = c.now();
        c.advance(3);
        assert_eq!(c.elapsed_since(t), 3);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "domain check is debug-only")]
    fn cross_domain_elapsed_panics_in_debug() {
        let a = VirtualClock::new();
        let b = VirtualClock::new();
        a.advance(5);
        let foreign = b.now();
        let result = std::panic::catch_unwind(|| a.elapsed_since(foreign));
        assert!(result.is_err(), "cross-domain window must panic in debug");
    }

    /// Parallel shard workers may share one domain (e.g. the device-busy
    /// aggregate); concurrent advances must never lose ticks.
    #[test]
    fn concurrent_advances_are_lossless() {
        let c = VirtualClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.advance(3);
                    }
                });
            }
        });
        assert_eq!(c.now_ns(), 4 * 10_000 * 3);
    }
}
