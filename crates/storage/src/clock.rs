//! Deterministic virtual clock.
//!
//! All storage and CPU costs in the simulation are expressed as virtual
//! nanoseconds accumulated on a shared [`VirtualClock`]. Experiments that
//! compare "latency" between compaction policies therefore produce exactly
//! the same numbers on every run, for every machine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing virtual-time counter (nanoseconds).
///
/// Cloning the clock is cheap and shares the underlying counter, so a disk,
/// an engine, and a stats collector can all observe the same timeline.
#[derive(Debug, Default, Clone)]
pub struct VirtualClock {
    ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Advances the clock by `ns` nanoseconds and returns the new time.
    pub fn advance(&self, ns: u64) -> u64 {
        self.ns.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Returns the virtual time elapsed since `start_ns`.
    pub fn elapsed_since(&self, start_ns: u64) -> u64 {
        self.now_ns().saturating_sub(start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now_ns(), 15);
    }

    #[test]
    fn clones_share_time() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c.advance(7);
        assert_eq!(c2.now_ns(), 7);
        c2.advance(3);
        assert_eq!(c.now_ns(), 10);
    }

    #[test]
    fn elapsed_since_saturates() {
        let c = VirtualClock::new();
        c.advance(5);
        assert_eq!(c.elapsed_since(2), 3);
        assert_eq!(c.elapsed_since(100), 0);
    }

    /// Parallel shard workers all charge the same timeline; concurrent
    /// advances must never lose ticks.
    #[test]
    fn concurrent_advances_are_lossless() {
        let c = VirtualClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.advance(3);
                    }
                });
            }
        });
        assert_eq!(c.now_ns(), 4 * 10_000 * 3);
    }
}
