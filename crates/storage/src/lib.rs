//! Simulated storage substrate for the RusKey reproduction.
//!
//! The paper evaluates RusKey on RocksDB over a 1 TB NVMe SSD. This crate
//! replaces the physical device with a deterministic, in-memory *simulated
//! disk*: every page read and write is counted exactly and charged a
//! configurable amount of virtual time ([`CostModel`]). The LSM engine built
//! on top performs the same logical page I/O it would issue against a real
//! device, so read/write amplification — the quantity all of the paper's
//! experiments trade off — is measured exactly, while experiments stay
//! laptop-scale and perfectly reproducible.
//!
//! Components:
//! * [`VirtualClock`] — monotonically increasing virtual nanosecond counter
//!   belonging to one *time domain* ([`clock::DomainId`]); timestamps are
//!   domain-tagged so cross-domain windows are caught instead of silently
//!   mis-attributed.
//! * [`ShardStorage`] — a per-shard view of a shared device that owns its
//!   own time domain and exact metrics share, making per-shard accounting
//!   exact under parallel missions.
//! * [`CostModel`] — per-page I/O latencies plus the CPU cost constants
//!   (`c_r`, `c_w`) used by the paper's white-box model (§5.2, Eq. 5).
//! * [`SimulatedDisk`] — page store with exact I/O accounting.
//! * [`BlockCache`] — sharded, O(1)-eviction LRU page cache. Disabled by
//!   default on the simulated backend (matching the paper's direct-I/O
//!   setup, so virtual accounting stays bit-identical); the persistent
//!   store serves each shard's file disk through one.
//! * [`FileDisk`] — a real-file backend implementing the same [`Storage`]
//!   trait, for running the engine against an actual filesystem: cached
//!   fds (one `open` per extent, not per read), positional `pread`/
//!   `pwrite` I/O, and a thread-local reusable page buffer.
//!
//! # Fallible reads and power-failure durability
//!
//! Real devices fail in ways a simulation never does: an extent file can be
//! missing after a crash, a page can be torn mid-write, a slot header can be
//! corrupt. [`Storage::try_read_page`] is therefore the *required* read
//! primitive — it surfaces those states as typed [`std::io::Error`]s so
//! recovery can decide, while the provided [`Storage::read_page`] keeps the
//! infallible panic-on-corruption contract for steady-state paths that have
//! already validated their extents. Durability barriers follow the same
//! split: [`Storage::sync_extent`] (fsync a run's data before its manifest
//! commit) and [`Storage::sync_dir`] (fsync the directory so extent creation
//! and renames survive power loss) are real `fsync`s on [`FileDisk`] and
//! free no-ops on volatile backends. [`Storage::collect_orphans`] removes
//! extent files a pre-commit power cut left behind, and
//! [`Storage::arm_power_cut`] arms a simulated cut ([`PowerCutPoint`]) for
//! the torn-power crash matrix.

#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod cost;
pub mod disk;
pub mod domain;
pub mod file;
pub mod metrics;

pub use cache::BlockCache;
pub use clock::{DomainId, Timestamp, VirtualClock};
pub use cost::CostModel;
pub use disk::{Extent, IoCharge, PowerCutPoint, SimulatedDisk, Storage};
pub use domain::ShardStorage;
pub use file::FileDisk;
pub use metrics::StorageMetrics;

/// Default page size, matching the paper's setting `B = 4096` bytes.
pub const DEFAULT_PAGE_SIZE: usize = 4096;
