//! Exact storage-level accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters maintained by a storage backend.
#[derive(Debug, Default)]
pub(crate) struct AtomicMetrics {
    pub pages_read: AtomicU64,
    pub pages_written: AtomicU64,
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
    pub read_ns: AtomicU64,
    pub write_ns: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub cache_evictions: AtomicU64,
    pub extent_syncs: AtomicU64,
    pub dir_syncs: AtomicU64,
}

impl AtomicMetrics {
    /// Adds a per-call metrics delta (e.g. an [`crate::IoCharge`]'s I/O)
    /// into the counters — used by storage views mirroring a shared
    /// device's accounting into their own domain.
    pub fn add(&self, d: &StorageMetrics) {
        self.pages_read.fetch_add(d.pages_read, Ordering::Relaxed);
        self.pages_written
            .fetch_add(d.pages_written, Ordering::Relaxed);
        self.bytes_read.fetch_add(d.bytes_read, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(d.bytes_written, Ordering::Relaxed);
        self.read_ns.fetch_add(d.read_ns, Ordering::Relaxed);
        self.write_ns.fetch_add(d.write_ns, Ordering::Relaxed);
        self.cache_hits.fetch_add(d.cache_hits, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(d.cache_misses, Ordering::Relaxed);
        self.cache_evictions
            .fetch_add(d.cache_evictions, Ordering::Relaxed);
        self.extent_syncs
            .fetch_add(d.extent_syncs, Ordering::Relaxed);
        self.dir_syncs.fetch_add(d.dir_syncs, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StorageMetrics {
        StorageMetrics {
            pages_read: self.pages_read.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            read_ns: self.read_ns.load(Ordering::Relaxed),
            write_ns: self.write_ns.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            extent_syncs: self.extent_syncs.load(Ordering::Relaxed),
            dir_syncs: self.dir_syncs.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of storage counters.
///
/// Snapshots form a monoid: use [`StorageMetrics::delta`] to measure the I/O
/// performed by a specific operation (e.g. one mission, one compaction).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StorageMetrics {
    /// Number of page reads issued to the device.
    pub pages_read: u64,
    /// Number of page writes issued to the device.
    pub pages_written: u64,
    /// Bytes read from the device.
    pub bytes_read: u64,
    /// Bytes written to the device.
    pub bytes_written: u64,
    /// Virtual nanoseconds spent on reads.
    pub read_ns: u64,
    /// Virtual nanoseconds spent on writes.
    pub write_ns: u64,
    /// Page reads served from a block cache without touching the device
    /// (0 on backends without a cache in front).
    pub cache_hits: u64,
    /// Page reads that missed the block cache and went to the device.
    pub cache_misses: u64,
    /// Pages evicted from the block cache to make room.
    pub cache_evictions: u64,
    /// Extent-file fsyncs issued ([`crate::Storage::sync_extent`]): the
    /// power-failure contract's per-run data-durability cost.
    pub extent_syncs: u64,
    /// Directory-handle fsyncs issued ([`crate::Storage::sync_dir`]):
    /// what makes extent creation (and renames) survive power loss.
    pub dir_syncs: u64,
}

impl StorageMetrics {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn delta(&self, earlier: &StorageMetrics) -> StorageMetrics {
        StorageMetrics {
            pages_read: self.pages_read.saturating_sub(earlier.pages_read),
            pages_written: self.pages_written.saturating_sub(earlier.pages_written),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            read_ns: self.read_ns.saturating_sub(earlier.read_ns),
            write_ns: self.write_ns.saturating_sub(earlier.write_ns),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            extent_syncs: self.extent_syncs.saturating_sub(earlier.extent_syncs),
            dir_syncs: self.dir_syncs.saturating_sub(earlier.dir_syncs),
        }
    }

    /// Total virtual I/O time (read + write).
    pub fn io_ns(&self) -> u64 {
        self.read_ns + self.write_ns
    }

    /// Total page operations (reads + writes).
    pub fn page_ops(&self) -> u64 {
        self.pages_read + self.pages_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counterwise() {
        let a = StorageMetrics {
            pages_read: 10,
            pages_written: 4,
            bytes_read: 4096,
            bytes_written: 2048,
            read_ns: 100,
            write_ns: 50,
            cache_hits: 9,
            cache_misses: 6,
            cache_evictions: 3,
            extent_syncs: 8,
            dir_syncs: 5,
        };
        let b = StorageMetrics {
            pages_read: 3,
            pages_written: 1,
            bytes_read: 1024,
            bytes_written: 512,
            read_ns: 20,
            write_ns: 10,
            cache_hits: 4,
            cache_misses: 2,
            cache_evictions: 1,
            extent_syncs: 3,
            dir_syncs: 2,
        };
        let d = a.delta(&b);
        assert_eq!(d.pages_read, 7);
        assert_eq!(d.pages_written, 3);
        assert_eq!(d.bytes_read, 3072);
        assert_eq!(d.bytes_written, 1536);
        assert_eq!(d.io_ns(), 120);
        assert_eq!(d.page_ops(), 10);
        assert_eq!(d.cache_hits, 5);
        assert_eq!(d.cache_misses, 4);
        assert_eq!(d.cache_evictions, 2);
        assert_eq!(d.extent_syncs, 5);
        assert_eq!(d.dir_syncs, 3);
    }

    #[test]
    fn delta_saturates() {
        let small = StorageMetrics::default();
        let big = StorageMetrics {
            pages_read: 5,
            ..Default::default()
        };
        assert_eq!(small.delta(&big).pages_read, 0);
    }

    #[test]
    fn atomic_snapshot_roundtrip() {
        let m = AtomicMetrics::default();
        m.pages_read.store(7, Ordering::Relaxed);
        m.write_ns.store(99, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.pages_read, 7);
        assert_eq!(s.write_ns, 99);
    }
}
