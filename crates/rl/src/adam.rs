//! The Adam optimizer (Kingma & Ba, 2015).

use crate::nn::Mlp;

/// Adam state for one network.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Creates an optimizer for a network with `param_count` parameters.
    pub fn new(param_count: usize, lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; param_count],
            v: vec![0.0; param_count],
        }
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one Adam step using the gradients accumulated in `net`,
    /// scaled by `grad_scale` (e.g. `1 / batch_size`). Does not zero grads.
    pub fn step(&mut self, net: &mut Mlp, grad_scale: f32) {
        assert_eq!(
            net.param_count(),
            self.m.len(),
            "optimizer/network mismatch"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m, v) = (&mut self.m, &mut self.v);
        net.for_each_param(|i, p, g_raw| {
            let g = g_raw * grad_scale;
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mh = m[i] / b1t;
            let vh = v[i] / b2t;
            *p -= lr * mh / (vh.sqrt() + eps);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::Activation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn adam_fits_regression_faster_than_it_starts() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Mlp::new(
            &[1, 16, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let mut adam = Adam::new(net.param_count(), 1e-2);
        let f = |x: f32| 0.5 * x * x - x + 2.0;
        let loss_of = |net: &mut Mlp| {
            let mut l = 0.0;
            for i in 0..20 {
                let x = -2.0 + i as f32 / 5.0;
                let y = net.forward(&[x])[0];
                l += (y - f(x)).powi(2);
            }
            l / 20.0
        };
        let initial = loss_of(&mut net);
        for _ in 0..2000 {
            let batch: Vec<f32> = (0..16).map(|_| rng.gen::<f32>() * 4.0 - 2.0).collect();
            net.zero_grad();
            for &x in &batch {
                let y = net.forward(&[x])[0];
                net.backward(&[2.0 * (y - f(x))]);
            }
            adam.step(&mut net, 1.0 / 16.0);
        }
        let final_loss = loss_of(&mut net);
        assert!(
            final_loss < initial * 0.05 && final_loss < 0.1,
            "Adam failed: {initial} -> {final_loss}"
        );
    }

    #[test]
    fn lr_accessors() {
        let mut a = Adam::new(10, 1e-3);
        assert_eq!(a.lr(), 1e-3);
        a.set_lr(5e-4);
        assert_eq!(a.lr(), 5e-4);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn shape_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Mlp::new(&[2, 2], Activation::Relu, Activation::Identity, &mut rng);
        let mut adam = Adam::new(1, 1e-3);
        adam.step(&mut net, 1.0);
    }
}
