//! Reinforcement-learning substrate for the RusKey reproduction.
//!
//! The paper implements its tuning model Lerp with PyTorch DDPG (§7:
//! three-layer fully-connected networks, 128 neurons per layer, ReLU). The
//! Rust RL ecosystem is thin, so this crate implements the whole stack from
//! scratch, exactly at the scale the paper needs:
//!
//! * [`nn`] — dense layers and multilayer perceptrons with manual
//!   backpropagation, including input gradients (required by DDPG's actor
//!   update, which differentiates the critic with respect to the action);
//! * [`adam`] — the Adam optimizer;
//! * [`replay`] — a ring replay buffer with uniform sampling;
//! * [`noise`] — Ornstein–Uhlenbeck and Gaussian exploration noise;
//! * [`ddpg`] — Deep Deterministic Policy Gradient (Lillicrap et al., 2015):
//!   actor–critic with target networks and soft updates;
//! * [`dqn`] — Deep Q-Network over discrete actions, as the comparison
//!   learner the paper argues DDPG improves upon (§5.1.4).
//!
//! Everything is deterministic given a seed, so experiments reproduce
//! bit-for-bit.

#![warn(missing_docs)]

pub mod adam;
pub mod ddpg;
pub mod dqn;
pub mod nn;
pub mod noise;
pub mod replay;

pub use adam::Adam;
pub use ddpg::{Ddpg, DdpgConfig, TrainMetrics};
pub use dqn::{Dqn, DqnConfig};
pub use nn::{Activation, Mlp};
pub use noise::{GaussianNoise, OuNoise};
pub use replay::{ReplayBuffer, Transition};
