//! Deep Q-Network (Mnih et al., 2013) for small discrete action spaces.
//!
//! The paper selects DDPG for Lerp because it "has been shown to be more
//! effective compared with the classic models such as DQN" (§5.1.4). To
//! make that claim testable in this reproduction, we also provide a DQN
//! agent over the discrete `ΔK ∈ {-1, 0, +1}` action space; the ablation
//! benchmark compares the two as Lerp's inner learner.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::adam::Adam;
use crate::nn::{Activation, Mlp};
use crate::replay::{ReplayBuffer, Transition};

/// Hyperparameters of a DQN agent.
#[derive(Debug, Clone, PartialEq)]
pub struct DqnConfig {
    /// State vector dimension.
    pub state_dim: usize,
    /// Number of discrete actions.
    pub n_actions: usize,
    /// Hidden layer sizes (paper-style default 3×128).
    pub hidden: Vec<usize>,
    /// Learning rate.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Polyak coefficient for the target network.
    pub tau: f32,
    /// Training batch size.
    pub batch_size: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Minimum replay size before training.
    pub warmup: usize,
    /// Initial ε for ε-greedy action selection.
    pub epsilon: f32,
    /// Multiplicative ε decay applied per `act_explore`.
    pub epsilon_decay: f32,
    /// ε floor.
    pub epsilon_min: f32,
    /// RNG seed.
    pub seed: u64,
}

impl DqnConfig {
    /// Paper-style default architecture.
    pub fn paper_default(state_dim: usize, n_actions: usize) -> Self {
        Self {
            state_dim,
            n_actions,
            hidden: vec![128, 128, 128],
            lr: 1e-3,
            gamma: 0.6,
            tau: 0.01,
            batch_size: 32,
            replay_capacity: 4096,
            warmup: 32,
            epsilon: 0.4,
            epsilon_decay: 0.995,
            epsilon_min: 0.03,
            seed: 42,
        }
    }
}

/// A DQN agent with a target network and uniform replay.
pub struct Dqn {
    cfg: DqnConfig,
    q: Mlp,
    target: Mlp,
    adam: Adam,
    replay: ReplayBuffer,
    rng: StdRng,
    epsilon: f32,
    train_steps: u64,
}

impl Dqn {
    /// Creates an agent.
    pub fn new(cfg: DqnConfig) -> Self {
        assert!(cfg.state_dim > 0 && cfg.n_actions >= 2);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut dims = vec![cfg.state_dim];
        dims.extend(&cfg.hidden);
        dims.push(cfg.n_actions);
        let q = Mlp::new(&dims, Activation::Relu, Activation::Identity, &mut rng);
        let mut target = Mlp::new(&dims, Activation::Relu, Activation::Identity, &mut rng);
        target.copy_from(&q);
        let adam = Adam::new(q.param_count(), cfg.lr);
        let replay = ReplayBuffer::new(cfg.replay_capacity);
        let epsilon = cfg.epsilon;
        Self {
            cfg,
            q,
            target,
            adam,
            replay,
            rng,
            epsilon,
            train_steps: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.cfg
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Resets exploration (workload shift).
    pub fn reset_epsilon(&mut self) {
        self.epsilon = self.cfg.epsilon;
    }

    /// Number of gradient steps taken.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// Stored experience count.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Drops replayed experience.
    pub fn clear_replay(&mut self) {
        self.replay.clear();
    }

    /// Greedy action: `argmax_a Q(s, a)`.
    pub fn act(&mut self, state: &[f32]) -> usize {
        let qs = self.q.forward(state);
        argmax(&qs)
    }

    /// ε-greedy action.
    pub fn act_explore(&mut self, state: &[f32]) -> usize {
        let a = if self.rng.gen::<f32>() < self.epsilon {
            self.rng.gen_range(0..self.cfg.n_actions)
        } else {
            self.act(state)
        };
        self.epsilon = (self.epsilon * self.cfg.epsilon_decay).max(self.cfg.epsilon_min);
        a
    }

    /// Stores an experience sample. The action index is carried in
    /// `Transition::action[0]` (as a float).
    pub fn observe(&mut self, state: Vec<f32>, action: usize, reward: f32, next_state: Vec<f32>) {
        debug_assert!(action < self.cfg.n_actions);
        self.replay.push(Transition {
            state,
            action: vec![action as f32],
            reward,
            next_state,
            done: false,
        });
    }

    /// One TD(0) gradient step on a sampled batch; `None` before warmup.
    pub fn train_step(&mut self) -> Option<f32> {
        if self.replay.len() < self.cfg.warmup.max(1) {
            return None;
        }
        let batch: Vec<Transition> = self
            .replay
            .sample(&mut self.rng, self.cfg.batch_size)
            .into_iter()
            .cloned()
            .collect();
        let n = batch.len() as f32;
        self.q.zero_grad();
        let mut loss = 0.0f32;
        for t in &batch {
            let q_next = self.target.forward(&t.next_state);
            let max_next = q_next.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let y = t.reward + self.cfg.gamma * max_next;
            let qs = self.q.forward(&t.state);
            let a = t.action[0] as usize;
            let td = qs[a] - y;
            loss += td * td;
            // Gradient only flows through the taken action's Q-value.
            let mut g = vec![0.0f32; qs.len()];
            g[a] = 2.0 * td;
            self.q.backward(&g);
        }
        self.adam.step(&mut self.q, 1.0 / n);
        self.target.soft_update_from(&self.q, self.cfg.tau);
        self.train_steps += 1;
        Some(loss / n)
    }
}

fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> DqnConfig {
        DqnConfig {
            hidden: vec![32, 32],
            warmup: 64,
            gamma: 0.0,
            seed,
            ..DqnConfig::paper_default(1, 3)
        }
    }

    #[test]
    fn argmax_works() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    fn no_training_before_warmup() {
        let mut agent = Dqn::new(small_cfg(1));
        assert!(agent.train_step().is_none());
        for _ in 0..64 {
            agent.observe(vec![0.0], 0, 0.0, vec![0.0]);
        }
        assert!(agent.train_step().is_some());
        assert_eq!(agent.train_steps(), 1);
    }

    #[test]
    fn solves_contextual_bandit() {
        // Best action flips with the sign of the state.
        let mut agent = Dqn::new(small_cfg(5));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..3000 {
            let s = if rng.gen::<bool>() { 0.8f32 } else { -0.8 };
            let a = agent.act_explore(&[s]);
            let best = if s > 0.0 { 2 } else { 0 };
            let r = if a == best { 1.0 } else { -1.0 };
            agent.observe(vec![s], a, r, vec![s]);
            agent.train_step();
        }
        assert_eq!(agent.act(&[0.8]), 2);
        assert_eq!(agent.act(&[-0.8]), 0);
    }

    #[test]
    fn epsilon_decays_to_floor() {
        let mut agent = Dqn::new(small_cfg(1));
        for _ in 0..5000 {
            agent.act_explore(&[0.0]);
        }
        assert!((agent.epsilon() - agent.config().epsilon_min).abs() < 1e-6);
        agent.reset_epsilon();
        assert_eq!(agent.epsilon(), agent.config().epsilon);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut agent = Dqn::new(small_cfg(seed));
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..300 {
                let s = rng.gen::<f32>();
                let a = agent.act_explore(&[s]);
                agent.observe(vec![s], a, -(a as f32), vec![s]);
                agent.train_step();
            }
            agent.act(&[0.5])
        };
        assert_eq!(run(7), run(7));
    }
}
