//! Experience replay.
//!
//! RusKey stores "experience samples" — quadruples of (state before, action,
//! state after, reward) — in a replay buffer from which the actor-critic
//! network trains (paper §3.1). This is the standard DDPG ring buffer with
//! uniform sampling.

use rand::Rng;

/// One experience sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State before the action.
    pub state: Vec<f32>,
    /// Action taken.
    pub action: Vec<f32>,
    /// Observed reward.
    pub reward: f32,
    /// State after the action (and the subsequent mission).
    pub next_state: Vec<f32>,
    /// Whether the episode terminated (always `false` for continuing
    /// tuning, but supported for generality).
    pub done: bool,
}

/// Fixed-capacity ring buffer of transitions.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    buf: Vec<Transition>,
    next: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding up to `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            buf: Vec::with_capacity(capacity.min(4096)),
            next: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a transition, overwriting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.buf.len() < self.capacity {
            self.buf.push(t);
        } else {
            self.buf[self.next] = t;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Uniformly samples `k` transitions (with replacement).
    pub fn sample<'a>(&'a self, rng: &mut impl Rng, k: usize) -> Vec<&'a Transition> {
        assert!(!self.buf.is_empty(), "cannot sample an empty buffer");
        (0..k)
            .map(|_| &self.buf[rng.gen_range(0..self.buf.len())])
            .collect()
    }

    /// Drops all stored transitions (used when the workload shifts and old
    /// experience no longer reflects the environment).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(r: f32) -> Transition {
        Transition {
            state: vec![r],
            action: vec![0.0],
            reward: r,
            next_state: vec![r + 1.0],
            done: false,
        }
    }

    #[test]
    fn push_grows_then_wraps() {
        let mut rb = ReplayBuffer::new(3);
        for i in 0..3 {
            rb.push(t(i as f32));
        }
        assert_eq!(rb.len(), 3);
        rb.push(t(99.0)); // overwrites the oldest (reward 0)
        assert_eq!(rb.len(), 3);
        let rewards: Vec<f32> = rb.buf.iter().map(|x| x.reward).collect();
        assert!(rewards.contains(&99.0));
        assert!(!rewards.contains(&0.0));
    }

    #[test]
    fn sample_stays_in_bounds() {
        let mut rb = ReplayBuffer::new(10);
        for i in 0..5 {
            rb.push(t(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let s = rb.sample(&mut rng, 32);
        assert_eq!(s.len(), 32);
        for x in s {
            assert!(x.reward >= 0.0 && x.reward < 5.0);
        }
    }

    #[test]
    fn clear_resets() {
        let mut rb = ReplayBuffer::new(4);
        rb.push(t(1.0));
        rb.clear();
        assert!(rb.is_empty());
        rb.push(t(2.0));
        assert_eq!(rb.len(), 1);
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn sampling_empty_panics() {
        let rb = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rb.sample(&mut rng, 1);
    }
}
