//! Exploration noise processes for DDPG.

use rand::Rng;

/// Ornstein–Uhlenbeck process — temporally correlated noise, the classic
/// choice for DDPG exploration (Lillicrap et al., 2015).
#[derive(Debug, Clone)]
pub struct OuNoise {
    theta: f32,
    sigma: f32,
    mu: f32,
    state: Vec<f32>,
}

impl OuNoise {
    /// Creates an OU process over `dim` action dimensions.
    pub fn new(dim: usize, theta: f32, sigma: f32, mu: f32) -> Self {
        Self {
            theta,
            sigma,
            mu,
            state: vec![mu; dim],
        }
    }

    /// Standard DDPG settings: θ=0.15, σ=0.2, μ=0.
    pub fn standard(dim: usize) -> Self {
        Self::new(dim, 0.15, 0.2, 0.0)
    }

    /// Draws the next correlated noise vector.
    pub fn next(&mut self, rng: &mut impl Rng) -> Vec<f32> {
        for x in &mut self.state {
            // Box–Muller standard normal.
            let u1: f32 = rng.gen::<f32>().max(1e-9);
            let u2: f32 = rng.gen();
            let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            *x += self.theta * (self.mu - *x) + self.sigma * n;
        }
        self.state.clone()
    }

    /// Resets the state to the mean (start of a new episode).
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|x| *x = self.mu);
    }

    /// Scales the volatility (used for exploration decay).
    pub fn set_sigma(&mut self, sigma: f32) {
        self.sigma = sigma;
    }

    /// Current volatility.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }
}

/// Uncorrelated Gaussian noise (simpler alternative to OU).
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    sigma: f32,
    dim: usize,
}

impl GaussianNoise {
    /// Creates Gaussian noise with standard deviation `sigma`.
    pub fn new(dim: usize, sigma: f32) -> Self {
        Self { sigma, dim }
    }

    /// Draws one noise vector.
    pub fn next(&mut self, rng: &mut impl Rng) -> Vec<f32> {
        (0..self.dim)
            .map(|_| {
                let u1: f32 = rng.gen::<f32>().max(1e-9);
                let u2: f32 = rng.gen();
                self.sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect()
    }

    /// Scales the standard deviation.
    pub fn set_sigma(&mut self, sigma: f32) {
        self.sigma = sigma;
    }

    /// Current standard deviation.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ou_reverts_to_mean() {
        let mut noise = OuNoise::new(1, 0.5, 0.0, 2.0); // no volatility: pure mean reversion
        noise.state[0] = 10.0;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            noise.next(&mut rng);
        }
        assert!(
            (noise.state[0] - 2.0).abs() < 0.1,
            "state {}",
            noise.state[0]
        );
    }

    #[test]
    fn ou_has_spread_with_sigma() {
        let mut noise = OuNoise::standard(1);
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f32> = (0..500).map(|_| noise.next(&mut rng)[0]).collect();
        let var = samples.iter().map(|x| x * x).sum::<f32>() / samples.len() as f32;
        assert!(var > 0.01, "variance too small: {var}");
    }

    #[test]
    fn gaussian_moments() {
        let mut noise = GaussianNoise::new(1, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f32> = (0..20_000).map(|_| noise.next(&mut rng)[0]).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn reset_returns_to_mu() {
        let mut noise = OuNoise::new(3, 0.15, 0.3, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        noise.next(&mut rng);
        noise.reset();
        assert_eq!(noise.state, vec![0.0; 3]);
    }

    #[test]
    fn dims_match() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(OuNoise::standard(4).next(&mut rng).len(), 4);
        assert_eq!(GaussianNoise::new(7, 1.0).next(&mut rng).len(), 7);
    }
}
