//! Deep Deterministic Policy Gradient (Lillicrap et al., 2015).
//!
//! The paper selects DDPG for Lerp because it "has been shown to be more
//! effective compared with the classic models such as DQN" (§5.1.4). This
//! implementation follows the original algorithm: a deterministic actor
//! `μ(s)`, a critic `Q(s, a)`, target copies of both tracked by Polyak
//! averaging, uniform experience replay, and OU exploration noise.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adam::Adam;
use crate::nn::{Activation, Mlp};
use crate::noise::OuNoise;
use crate::replay::{ReplayBuffer, Transition};

/// Hyperparameters of a DDPG agent.
#[derive(Debug, Clone, PartialEq)]
pub struct DdpgConfig {
    /// State vector dimension.
    pub state_dim: usize,
    /// Action vector dimension (actions live in `[-1, 1]^d`).
    pub action_dim: usize,
    /// Hidden layer sizes; the paper uses three layers of 128 ReLU units.
    pub hidden: Vec<usize>,
    /// Actor learning rate.
    pub actor_lr: f32,
    /// Critic learning rate.
    pub critic_lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Polyak soft-update coefficient τ.
    pub tau: f32,
    /// Training batch size.
    pub batch_size: usize,
    /// Replay-buffer capacity.
    pub replay_capacity: usize,
    /// Minimum replay size before training starts.
    pub warmup: usize,
    /// RNG seed (sampling, init, exploration).
    pub seed: u64,
    /// Initial OU noise volatility.
    pub noise_sigma: f32,
}

impl DdpgConfig {
    /// The paper's architecture with sensible DDPG defaults for the rest.
    pub fn paper_default(state_dim: usize, action_dim: usize) -> Self {
        Self {
            state_dim,
            action_dim,
            hidden: vec![128, 128, 128],
            actor_lr: 1e-3,
            critic_lr: 1e-3,
            gamma: 0.9,
            tau: 0.01,
            batch_size: 32,
            replay_capacity: 4096,
            warmup: 32,
            seed: 42,
            noise_sigma: 0.2,
        }
    }
}

/// Diagnostics of one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainMetrics {
    /// Mean squared TD error of the critic batch.
    pub critic_loss: f32,
    /// Mean `-Q(s, μ(s))` over the actor batch (lower is better).
    pub actor_loss: f32,
}

/// A DDPG agent.
pub struct Ddpg {
    cfg: DdpgConfig,
    actor: Mlp,
    critic: Mlp,
    target_actor: Mlp,
    target_critic: Mlp,
    adam_actor: Adam,
    adam_critic: Adam,
    replay: ReplayBuffer,
    noise: OuNoise,
    rng: StdRng,
    train_steps: u64,
}

impl Ddpg {
    /// Creates an agent from a configuration.
    pub fn new(cfg: DdpgConfig) -> Self {
        assert!(cfg.state_dim > 0 && cfg.action_dim > 0);
        assert!((0.0..=1.0).contains(&cfg.gamma));
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut actor_dims = vec![cfg.state_dim];
        actor_dims.extend(&cfg.hidden);
        actor_dims.push(cfg.action_dim);
        let mut critic_dims = vec![cfg.state_dim + cfg.action_dim];
        critic_dims.extend(&cfg.hidden);
        critic_dims.push(1);

        let actor = Mlp::new(&actor_dims, Activation::Relu, Activation::Tanh, &mut rng);
        let critic = Mlp::new(
            &critic_dims,
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let mut target_actor = Mlp::new(&actor_dims, Activation::Relu, Activation::Tanh, &mut rng);
        let mut target_critic = Mlp::new(
            &critic_dims,
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        target_actor.copy_from(&actor);
        target_critic.copy_from(&critic);

        let adam_actor = Adam::new(actor.param_count(), cfg.actor_lr);
        let adam_critic = Adam::new(critic.param_count(), cfg.critic_lr);
        let replay = ReplayBuffer::new(cfg.replay_capacity);
        let mut noise = OuNoise::standard(cfg.action_dim);
        noise.set_sigma(cfg.noise_sigma);

        Self {
            cfg,
            actor,
            critic,
            target_actor,
            target_critic,
            adam_actor,
            adam_critic,
            replay,
            noise,
            rng,
            train_steps: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DdpgConfig {
        &self.cfg
    }

    /// Number of gradient steps taken.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// Number of stored experience samples.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Deterministic (greedy) action `μ(s) ∈ [-1,1]^d`.
    pub fn act(&mut self, state: &[f32]) -> Vec<f32> {
        self.actor.forward(state)
    }

    /// Exploratory action: `clip(μ(s) + OU noise, -1, 1)`.
    pub fn act_explore(&mut self, state: &[f32]) -> Vec<f32> {
        let mut a = self.actor.forward(state);
        for (ai, ni) in a.iter_mut().zip(self.noise.next(&mut self.rng)) {
            *ai = (*ai + ni).clamp(-1.0, 1.0);
        }
        a
    }

    /// Scales exploration noise (decay schedules, workload-shift restarts).
    pub fn set_noise_sigma(&mut self, sigma: f32) {
        self.noise.set_sigma(sigma);
    }

    /// Current exploration volatility.
    pub fn noise_sigma(&self) -> f32 {
        self.noise.sigma()
    }

    /// Stores an experience sample.
    pub fn observe(&mut self, t: Transition) {
        debug_assert_eq!(t.state.len(), self.cfg.state_dim);
        debug_assert_eq!(t.action.len(), self.cfg.action_dim);
        self.replay.push(t);
    }

    /// Drops replayed experience (called when the workload shifts so stale
    /// samples no longer describe the environment).
    pub fn clear_replay(&mut self) {
        self.replay.clear();
        self.noise.reset();
    }

    /// One DDPG gradient step on a sampled batch; `None` until the replay
    /// buffer reaches the warmup size.
    pub fn train_step(&mut self) -> Option<TrainMetrics> {
        if self.replay.len() < self.cfg.warmup.max(1) {
            return None;
        }
        let batch: Vec<Transition> = self
            .replay
            .sample(&mut self.rng, self.cfg.batch_size)
            .into_iter()
            .cloned()
            .collect();
        let n = batch.len() as f32;

        // ---- Critic update: minimize (Q(s,a) − y)², y = r + γ Q'(s',μ'(s')).
        self.critic.zero_grad();
        let mut critic_loss = 0.0f32;
        for t in &batch {
            let a_next = self.target_actor.forward(&t.next_state);
            let mut sa_next = t.next_state.clone();
            sa_next.extend_from_slice(&a_next);
            let q_next = self.target_critic.forward(&sa_next)[0];
            let y = t.reward + if t.done { 0.0 } else { self.cfg.gamma * q_next };

            let mut sa = t.state.clone();
            sa.extend_from_slice(&t.action);
            let q = self.critic.forward(&sa)[0];
            let td = q - y;
            critic_loss += td * td;
            self.critic.backward(&[2.0 * td]);
        }
        self.adam_critic.step(&mut self.critic, 1.0 / n);
        critic_loss /= n;

        // ---- Actor update: maximize Q(s, μ(s)) — gradient ascent through
        // the critic's input gradient w.r.t. the action.
        self.actor.zero_grad();
        self.critic.zero_grad(); // critic params must not drift here
        let mut actor_loss = 0.0f32;
        for t in &batch {
            let a = self.actor.forward(&t.state);
            let mut sa = t.state.clone();
            sa.extend_from_slice(&a);
            let q = self.critic.forward(&sa)[0];
            actor_loss += -q;
            // dL/dQ = -1 (ascent); critic input grad gives dQ/d[s,a].
            let g_in = self.critic.backward(&[-1.0]);
            let g_action = &g_in[self.cfg.state_dim..];
            self.actor.backward(g_action);
        }
        self.adam_actor.step(&mut self.actor, 1.0 / n);
        self.critic.zero_grad(); // discard pollution from the actor pass
        actor_loss /= n;

        // ---- Target tracking.
        self.target_actor
            .soft_update_from(&self.actor, self.cfg.tau);
        self.target_critic
            .soft_update_from(&self.critic, self.cfg.tau);

        self.train_steps += 1;
        Some(TrainMetrics {
            critic_loss,
            actor_loss,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn small_cfg(seed: u64) -> DdpgConfig {
        DdpgConfig {
            hidden: vec![32, 32],
            batch_size: 32,
            warmup: 64,
            seed,
            gamma: 0.0, // bandit problems: no bootstrapping needed
            ..DdpgConfig::paper_default(1, 1)
        }
    }

    #[test]
    fn actions_bounded() {
        let mut agent = Ddpg::new(small_cfg(1));
        for i in 0..50 {
            let s = [i as f32 / 25.0 - 1.0];
            for a in agent.act_explore(&s) {
                assert!((-1.0..=1.0).contains(&a));
            }
        }
    }

    #[test]
    fn no_training_before_warmup() {
        let mut agent = Ddpg::new(small_cfg(1));
        assert!(agent.train_step().is_none());
        for _ in 0..63 {
            agent.observe(Transition {
                state: vec![0.0],
                action: vec![0.0],
                reward: 0.0,
                next_state: vec![0.0],
                done: false,
            });
        }
        assert!(agent.train_step().is_none());
        agent.observe(Transition {
            state: vec![0.0],
            action: vec![0.0],
            reward: 0.0,
            next_state: vec![0.0],
            done: false,
        });
        assert!(agent.train_step().is_some());
        assert_eq!(agent.train_steps(), 1);
    }

    #[test]
    fn solves_stateless_bandit() {
        // Reward -(a - 0.5)²: the optimal deterministic action is 0.5.
        let mut agent = Ddpg::new(small_cfg(7));
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..1500 {
            let a = if rng.gen::<f32>() < 0.3 {
                vec![rng.gen::<f32>() * 2.0 - 1.0] // extra uniform exploration
            } else {
                agent.act_explore(&[0.0])
            };
            let r = -(a[0] - 0.5) * (a[0] - 0.5);
            agent.observe(Transition {
                state: vec![0.0],
                action: a,
                reward: r,
                next_state: vec![0.0],
                done: true,
            });
            agent.train_step();
        }
        let a = agent.act(&[0.0])[0];
        assert!((a - 0.5).abs() < 0.15, "learned action {a}, want ~0.5");
    }

    #[test]
    fn solves_state_conditional_bandit() {
        // Optimal action equals the (1-D) state: a*(s) = s.
        let mut agent = Ddpg::new(small_cfg(11));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..4000 {
            let s = rng.gen::<f32>() * 1.6 - 0.8;
            let a = if rng.gen::<f32>() < 0.3 {
                vec![rng.gen::<f32>() * 2.0 - 1.0]
            } else {
                agent.act_explore(&[s])
            };
            let r = -(a[0] - s) * (a[0] - s);
            agent.observe(Transition {
                state: vec![s],
                action: a,
                reward: r,
                next_state: vec![s],
                done: true,
            });
            agent.train_step();
        }
        let mut max_err = 0.0f32;
        for i in 0..9 {
            let s = -0.8 + 0.2 * i as f32;
            let a = agent.act(&[s])[0];
            max_err = max_err.max((a - s).abs());
        }
        assert!(max_err < 0.3, "policy tracking error {max_err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut agent = Ddpg::new(small_cfg(seed));
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..200 {
                let s = rng.gen::<f32>();
                let a = agent.act_explore(&[s]);
                agent.observe(Transition {
                    state: vec![s],
                    action: a.clone(),
                    reward: -a[0].abs(),
                    next_state: vec![s],
                    done: false,
                });
                agent.train_step();
            }
            agent.act(&[0.3])[0]
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn clear_replay_resets_experience() {
        let mut agent = Ddpg::new(small_cfg(1));
        for _ in 0..10 {
            agent.observe(Transition {
                state: vec![0.0],
                action: vec![0.0],
                reward: 0.0,
                next_state: vec![0.0],
                done: false,
            });
        }
        assert_eq!(agent.replay_len(), 10);
        agent.clear_replay();
        assert_eq!(agent.replay_len(), 0);
    }
}
