//! Dense layers and MLPs with manual backpropagation.
//!
//! The networks are small (3×128 hidden, as in the paper), so layers process
//! one sample at a time and training loops accumulate gradients over a
//! batch. `backward` must be called immediately after the matching
//! `forward` (layers cache the activations of the last forward pass).

use rand::Rng;

/// Activation function applied element-wise after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent (used by the DDPG actor's output, range [-1, 1]).
    Tanh,
    /// No activation (used by the critic's output).
    Identity,
}

impl Activation {
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed via the *output* value `y = f(x)` (sufficient
    /// for all three functions and avoids caching pre-activations).
    fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }
}

/// A fully-connected layer `y = f(Wx + b)` with gradient accumulators.
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim`.
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    act: Activation,
    // Caches from the last forward pass.
    last_input: Vec<f32>,
    last_output: Vec<f32>,
}

impl Dense {
    /// He/Xavier-initialized layer (He for ReLU, Xavier otherwise).
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, rng: &mut impl Rng) -> Self {
        let scale = match act {
            Activation::Relu => (2.0 / in_dim as f32).sqrt(),
            _ => (1.0 / in_dim as f32).sqrt(),
        };
        let w = (0..in_dim * out_dim)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            act,
            last_input: Vec::new(),
            last_output: Vec::new(),
        }
    }

    fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        debug_assert_eq!(x.len(), self.in_dim);
        let mut y = vec![0.0f32; self.out_dim];
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            *yo = self.act.apply(acc);
        }
        self.last_input = x.to_vec();
        self.last_output = y.clone();
        y
    }

    /// Accumulates parameter gradients for the last forward pass and
    /// returns the gradient with respect to the layer input.
    #[allow(clippy::needless_range_loop)] // o indexes four parallel arrays
    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        debug_assert_eq!(grad_out.len(), self.out_dim);
        let mut grad_in = vec![0.0f32; self.in_dim];
        for o in 0..self.out_dim {
            let dz = grad_out[o] * self.act.derivative_from_output(self.last_output[o]);
            self.gb[o] += dz;
            let row_g = &mut self.gw[o * self.in_dim..(o + 1) * self.in_dim];
            let row_w = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                row_g[i] += dz * self.last_input[i];
                grad_in[i] += dz * row_w[i];
            }
        }
        grad_in
    }

    fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// A sequential multilayer perceptron.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes; all hidden layers use
    /// `hidden_act`, the last layer uses `out_act`.
    ///
    /// `dims = [in, h1, ..., out]` needs at least two entries.
    pub fn new(
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i == dims.len() - 2 {
                out_act
            } else {
                hidden_act
            };
            layers.push(Dense::new(dims[i], dims[i + 1], act, rng));
        }
        Self { layers }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim
    }

    /// Forward pass (caches activations for a subsequent [`Mlp::backward`]).
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        let mut h = x.to_vec();
        for layer in &mut self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Backpropagates `grad_out`, accumulating parameter gradients, and
    /// returns the gradient with respect to the network input.
    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        let mut g = grad_out.to_vec();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Visits every `(parameter, gradient)` pair in a fixed order.
    pub fn for_each_param(&mut self, mut f: impl FnMut(usize, &mut f32, f32)) {
        let mut idx = 0;
        for layer in &mut self.layers {
            for (w, g) in layer.w.iter_mut().zip(layer.gw.iter()) {
                f(idx, w, *g);
                idx += 1;
            }
            for (b, g) in layer.b.iter_mut().zip(layer.gb.iter()) {
                f(idx, b, *g);
                idx += 1;
            }
        }
    }

    /// Hard-copies parameters from another identically-shaped network.
    pub fn copy_from(&mut self, other: &Mlp) {
        assert_eq!(self.param_count(), other.param_count(), "shape mismatch");
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            dst.w.copy_from_slice(&src.w);
            dst.b.copy_from_slice(&src.b);
        }
    }

    /// Polyak soft update: `θ ← τ·θ_src + (1−τ)·θ` (DDPG target tracking).
    pub fn soft_update_from(&mut self, other: &Mlp, tau: f32) {
        assert_eq!(self.param_count(), other.param_count(), "shape mismatch");
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            for (d, s) in dst.w.iter_mut().zip(&src.w) {
                *d = tau * s + (1.0 - tau) * *d;
            }
            for (d, s) in dst.b.iter_mut().zip(&src.b) {
                *d = tau * s + (1.0 - tau) * *d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn identity_single_layer_is_affine() {
        let mut net = Mlp::new(&[2, 1], Activation::Relu, Activation::Identity, &mut rng());
        // Overwrite weights for a hand-computed check: y = 2a - 3b + 0.5.
        net.layers[0].w = vec![2.0, -3.0];
        net.layers[0].b = vec![0.5];
        let y = net.forward(&[1.0, 1.0]);
        assert!((y[0] - (-0.5)).abs() < 1e-6);
        let y = net.forward(&[2.0, 0.0]);
        assert!((y[0] - 4.5).abs() < 1e-6);
    }

    #[test]
    fn gradient_check_tanh_network() {
        // Numerical vs analytic gradient on a small tanh net.
        let mut net = Mlp::new(
            &[3, 5, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng(),
        );
        let x = [0.3f32, -0.7, 0.9];
        // Loss = sum(y); dL/dy = 1.
        let _ = net.forward(&x);
        net.zero_grad();
        net.backward(&[1.0, 1.0]);
        let mut analytic: Vec<f32> = Vec::new();
        net.for_each_param(|_, _, g| analytic.push(g));

        let eps = 1e-3f32;
        let mut max_err = 0f32;
        // Numerically perturb each parameter.
        let n = net.param_count();
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let mut plus = 0.0;
            let mut minus = 0.0;
            net.for_each_param(|j, p, _| {
                if j == i {
                    *p += eps;
                }
            });
            for y in net.forward(&x) {
                plus += y;
            }
            net.for_each_param(|j, p, _| {
                if j == i {
                    *p -= 2.0 * eps;
                }
            });
            for y in net.forward(&x) {
                minus += y;
            }
            net.for_each_param(|j, p, _| {
                if j == i {
                    *p += eps;
                }
            });
            let numeric = (plus - minus) / (2.0 * eps);
            max_err = max_err.max((numeric - analytic[i]).abs());
        }
        assert!(max_err < 1e-2, "gradient check failed: max err {max_err}");
    }

    #[test]
    fn input_gradient_check() {
        let mut net = Mlp::new(
            &[2, 4, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut rng(),
        );
        let x = [0.5f32, -0.25];
        let _ = net.forward(&x);
        net.zero_grad();
        let gin = net.backward(&[1.0]);
        let eps = 1e-3f32;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += eps;
            let plus = net.forward(&xp)[0];
            xp[i] -= 2.0 * eps;
            let minus = net.forward(&xp)[0];
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (numeric - gin[i]).abs() < 1e-2,
                "input grad {i}: numeric {numeric} vs analytic {}",
                gin[i]
            );
        }
    }

    #[test]
    fn sgd_fits_linear_function() {
        // y = 2x - 1 learned by plain gradient steps (no Adam here).
        let mut net = Mlp::new(
            &[1, 8, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng(),
        );
        let mut r = rng();
        let lr = 0.01f32;
        for _ in 0..3000 {
            let x = r.gen::<f32>() * 2.0 - 1.0;
            let target = 2.0 * x - 1.0;
            let y = net.forward(&[x])[0];
            net.zero_grad();
            net.backward(&[2.0 * (y - target)]);
            net.for_each_param(|_, p, g| *p -= lr * g);
        }
        let mut mse = 0.0;
        for i in 0..20 {
            let x = -1.0 + i as f32 / 10.0;
            let y = net.forward(&[x])[0];
            mse += (y - (2.0 * x - 1.0)).powi(2);
        }
        mse /= 20.0;
        assert!(mse < 0.05, "failed to fit linear function: mse {mse}");
    }

    #[test]
    fn copy_and_soft_update() {
        let mut a = Mlp::new(
            &[2, 3, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng(),
        );
        let mut b = Mlp::new(
            &[2, 3, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng(),
        );
        b.copy_from(&a);
        let x = [0.3, 0.4];
        assert_eq!(a.forward(&x), b.forward(&x));
        // Perturb a, soft-update b toward a.
        a.for_each_param(|_, p, _| *p += 1.0);
        let before = b.forward(&x)[0];
        b.soft_update_from(&a, 0.5);
        let after = b.forward(&x)[0];
        assert_ne!(before, after);
        // τ = 1 is a hard copy.
        b.soft_update_from(&a, 1.0);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn param_count_matches_architecture() {
        let net = Mlp::new(
            &[4, 128, 128, 128, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng(),
        );
        let expect = (4 * 128 + 128) + (128 * 128 + 128) * 2 + (128 + 1);
        assert_eq!(net.param_count(), expect);
    }

    #[test]
    fn tanh_output_is_bounded() {
        let mut net = Mlp::new(&[3, 16, 2], Activation::Relu, Activation::Tanh, &mut rng());
        for i in 0..100 {
            let x = [i as f32, -(i as f32) * 3.0, 100.0];
            for y in net.forward(&x) {
                assert!((-1.0..=1.0).contains(&y));
            }
        }
    }
}
