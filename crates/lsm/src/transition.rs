//! Compaction-policy transition strategies (§4).
//!
//! When the tuner changes a level's policy `K → K'`, the engine must decide
//! how the level's existing data reacts:
//!
//! * [`TransitionStrategy::Greedy`] — flush the whole level into the next one
//!   immediately and rebuild under the new policy. Takes effect instantly but
//!   pays an amortized `C/2B` page I/Os and causes a write stall (§4.1).
//! * [`TransitionStrategy::Lazy`] — record the new policy but apply it only
//!   when the level next fills up and empties through a full-level
//!   compaction. Free, but delayed by `C/(2·N_u·E)` seconds on average, which
//!   starves the RL model of timely feedback (§4.1).
//! * [`TransitionStrategy::Flexible`] — the FLSM-tree transition (§4.2):
//!   resize only the level's *active run* capacity; sealed runs are never
//!   touched. Zero cost, zero delay.

/// How a level reacts to a compaction-policy change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransitionStrategy {
    /// Flush the level down immediately (Dayan & Idreos' extended discussion).
    Greedy,
    /// Defer the new policy until the level next empties.
    Lazy,
    /// FLSM-tree flexible transition: retarget the active run only.
    #[default]
    Flexible,
}

impl TransitionStrategy {
    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            TransitionStrategy::Greedy => "greedy",
            TransitionStrategy::Lazy => "lazy",
            TransitionStrategy::Flexible => "flexible",
        }
    }

    /// All strategies, for sweeps.
    pub const ALL: [TransitionStrategy; 3] = [
        TransitionStrategy::Greedy,
        TransitionStrategy::Lazy,
        TransitionStrategy::Flexible,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_flexible() {
        assert_eq!(TransitionStrategy::default(), TransitionStrategy::Flexible);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            TransitionStrategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 3);
    }
}
