//! Engine configuration.

use crate::transition::TransitionStrategy;

/// Bloom-filter memory scheme across levels (§5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BloomScheme {
    /// Every level gets the same bits-per-key (RocksDB default; Case 1).
    Uniform {
        /// Bits of filter memory per key.
        bits_per_key: f64,
    },
    /// Monkey allocation: `f_i = T^{i-1}·f_1` (Case 2).
    Monkey {
        /// False-positive rate of Level 1's filters.
        level1_fpr: f64,
    },
}

impl BloomScheme {
    /// Bits-per-key for a (zero-based) level under this scheme.
    pub fn bits_for_level(&self, level: usize, size_ratio: u32) -> f64 {
        match *self {
            BloomScheme::Uniform { bits_per_key } => bits_per_key,
            BloomScheme::Monkey { level1_fpr } => {
                crate::monkey::monkey_bits_per_key(level1_fpr, size_ratio, level)
            }
        }
    }

    /// Expected false-positive rate for a (zero-based) level.
    pub fn fpr_for_level(&self, level: usize, size_ratio: u32) -> f64 {
        match *self {
            BloomScheme::Uniform { bits_per_key } => crate::bloom::fpr_for_bits(bits_per_key),
            BloomScheme::Monkey { level1_fpr } => {
                crate::monkey::monkey_fpr(level1_fpr, size_ratio, level)
            }
        }
    }
}

/// Configuration of an [`crate::FlsmTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct LsmConfig {
    /// Memory-buffer (memtable) capacity in bytes. The paper uses 2 MiB;
    /// the scaled-down experiment default is 64 KiB.
    pub buffer_bytes: u64,
    /// Capacity ratio `T` between adjacent levels (paper default 10).
    pub size_ratio: u32,
    /// Initial compaction policy `K` for newly created levels
    /// (1 = leveling, the RocksDB default the paper starts from).
    pub initial_policy: u32,
    /// Bloom-filter scheme (uniform 8 bits/key by default, as in the paper).
    pub bloom: BloomScheme,
    /// How policy changes are applied (FLSM flexible transition by default).
    pub transition: TransitionStrategy,
}

impl LsmConfig {
    /// Scaled-down defaults used across the experiments (see DESIGN.md §2).
    pub fn scaled_default() -> Self {
        Self {
            buffer_bytes: 64 * 1024,
            size_ratio: 10,
            initial_policy: 1,
            bloom: BloomScheme::Uniform { bits_per_key: 8.0 },
            transition: TransitionStrategy::Flexible,
        }
    }

    /// The paper's full-scale settings (2 MiB buffer, T=10, bits=8).
    pub fn paper_default() -> Self {
        Self {
            buffer_bytes: 2 * 1024 * 1024,
            size_ratio: 10,
            initial_policy: 1,
            bloom: BloomScheme::Uniform { bits_per_key: 8.0 },
            transition: TransitionStrategy::Flexible,
        }
    }

    /// Capacity in bytes of a (zero-based) level: `C_i = buffer · T^{i+1}`.
    pub fn level_capacity(&self, level: usize) -> u64 {
        let t = self.size_ratio as u64;
        self.buffer_bytes.saturating_mul(t.saturating_pow(level as u32 + 1))
    }

    /// Clamps a policy into the valid range `[1, T]`.
    pub fn clamp_policy(&self, k: i64) -> u32 {
        k.clamp(1, self.size_ratio as i64) as u32
    }

    /// Validates invariants; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.buffer_bytes < 1024 {
            return Err("buffer_bytes must be at least 1 KiB".into());
        }
        if self.size_ratio < 2 {
            return Err("size_ratio (T) must be at least 2".into());
        }
        if self.initial_policy < 1 || self.initial_policy > self.size_ratio {
            return Err(format!(
                "initial_policy must be in [1, {}], got {}",
                self.size_ratio, self.initial_policy
            ));
        }
        if let BloomScheme::Uniform { bits_per_key } = self.bloom {
            if !(0.0..=64.0).contains(&bits_per_key) {
                return Err("bits_per_key must be in [0, 64]".into());
            }
        }
        if let BloomScheme::Monkey { level1_fpr } = self.bloom {
            if !(0.0..=1.0).contains(&level1_fpr) || level1_fpr == 0.0 {
                return Err("level1_fpr must be in (0, 1]".into());
            }
        }
        Ok(())
    }
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self::scaled_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_capacities_grow_by_t() {
        let cfg = LsmConfig::scaled_default();
        assert_eq!(cfg.level_capacity(0), 64 * 1024 * 10);
        assert_eq!(cfg.level_capacity(1), 64 * 1024 * 100);
        assert_eq!(cfg.level_capacity(2), 64 * 1024 * 1000);
    }

    #[test]
    fn clamp_policy_bounds() {
        let cfg = LsmConfig::scaled_default();
        assert_eq!(cfg.clamp_policy(0), 1);
        assert_eq!(cfg.clamp_policy(-5), 1);
        assert_eq!(cfg.clamp_policy(5), 5);
        assert_eq!(cfg.clamp_policy(99), 10);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = LsmConfig::scaled_default();
        assert!(cfg.validate().is_ok());
        cfg.size_ratio = 1;
        assert!(cfg.validate().is_err());
        cfg = LsmConfig::scaled_default();
        cfg.initial_policy = 11;
        assert!(cfg.validate().is_err());
        cfg = LsmConfig::scaled_default();
        cfg.buffer_bytes = 10;
        assert!(cfg.validate().is_err());
        cfg = LsmConfig::scaled_default();
        cfg.bloom = BloomScheme::Monkey { level1_fpr: 0.0 };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn monkey_scheme_bits_decrease() {
        let s = BloomScheme::Monkey { level1_fpr: 0.001 };
        assert!(s.bits_for_level(0, 10) > s.bits_for_level(1, 10));
        assert!(s.bits_for_level(1, 10) > s.bits_for_level(2, 10));
        assert_eq!(s.bits_for_level(5, 10), 0.0);
        let u = BloomScheme::Uniform { bits_per_key: 8.0 };
        assert_eq!(u.bits_for_level(0, 10), u.bits_for_level(4, 10));
    }
}
