//! Engine configuration.

use crate::transition::TransitionStrategy;

/// A structural problem with an [`LsmConfig`], reported by
/// [`LsmConfig::validate`] and [`crate::FlsmTree::try_new`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `buffer_bytes` below the 1 KiB minimum.
    BufferTooSmall {
        /// The rejected value.
        got: u64,
    },
    /// `size_ratio` (`T`) below 2.
    SizeRatioTooSmall {
        /// The rejected value.
        got: u32,
    },
    /// `initial_policy` outside `[1, T]`.
    InitialPolicyOutOfRange {
        /// The rejected value.
        got: u32,
        /// The configured size ratio `T`.
        size_ratio: u32,
    },
    /// Uniform Bloom bits-per-key outside `[0, 64]`.
    BloomBitsOutOfRange {
        /// The rejected value.
        got: f64,
    },
    /// Monkey level-1 FPR outside `(0, 1]`.
    BloomFprOutOfRange {
        /// The rejected value.
        got: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::BufferTooSmall { got } => {
                write!(f, "buffer_bytes must be at least 1 KiB, got {got}")
            }
            ConfigError::SizeRatioTooSmall { got } => {
                write!(f, "size_ratio (T) must be at least 2, got {got}")
            }
            ConfigError::InitialPolicyOutOfRange { got, size_ratio } => {
                write!(f, "initial_policy must be in [1, {size_ratio}], got {got}")
            }
            ConfigError::BloomBitsOutOfRange { got } => {
                write!(f, "bits_per_key must be in [0, 64], got {got}")
            }
            ConfigError::BloomFprOutOfRange { got } => {
                write!(f, "level1_fpr must be in (0, 1], got {got}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Bloom-filter memory scheme across levels (§5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BloomScheme {
    /// Every level gets the same bits-per-key (RocksDB default; Case 1).
    Uniform {
        /// Bits of filter memory per key.
        bits_per_key: f64,
    },
    /// Monkey allocation: `f_i = T^{i-1}·f_1` (Case 2).
    Monkey {
        /// False-positive rate of Level 1's filters.
        level1_fpr: f64,
    },
}

impl BloomScheme {
    /// Bits-per-key for a (zero-based) level under this scheme.
    pub fn bits_for_level(&self, level: usize, size_ratio: u32) -> f64 {
        match *self {
            BloomScheme::Uniform { bits_per_key } => bits_per_key,
            BloomScheme::Monkey { level1_fpr } => {
                crate::monkey::monkey_bits_per_key(level1_fpr, size_ratio, level)
            }
        }
    }

    /// Expected false-positive rate for a (zero-based) level.
    pub fn fpr_for_level(&self, level: usize, size_ratio: u32) -> f64 {
        match *self {
            BloomScheme::Uniform { bits_per_key } => crate::bloom::fpr_for_bits(bits_per_key),
            BloomScheme::Monkey { level1_fpr } => {
                crate::monkey::monkey_fpr(level1_fpr, size_ratio, level)
            }
        }
    }
}

/// Configuration of an [`crate::FlsmTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct LsmConfig {
    /// Memory-buffer (memtable) capacity in bytes. The paper uses 2 MiB;
    /// the scaled-down experiment default is 64 KiB.
    pub buffer_bytes: u64,
    /// Capacity ratio `T` between adjacent levels (paper default 10).
    pub size_ratio: u32,
    /// Initial compaction policy `K` for newly created levels
    /// (1 = leveling, the RocksDB default the paper starts from).
    pub initial_policy: u32,
    /// Bloom-filter scheme (uniform 8 bits/key by default, as in the paper).
    pub bloom: BloomScheme,
    /// How policy changes are applied (FLSM flexible transition by default).
    pub transition: TransitionStrategy,
    /// When `true`, structural work is deferred off the write path: a full
    /// level no longer cascades inline, and flushes are postponed until an
    /// explicit [`crate::FlsmTree::step_maintenance`] call (with a 2×
    /// memtable backstop). Defaults to `false`, which preserves the
    /// classic inline-cascade behavior.
    pub background_maintenance: bool,
    /// Backpressure threshold for background mode: a `put`/`delete` stalls
    /// (runs maintenance steps inline) while Level 1's run count exceeds
    /// this. Values below 1 are treated as 1. Ignored in inline mode.
    pub l0_stall_runs: u64,
}

impl LsmConfig {
    /// Scaled-down defaults used across the experiments (see DESIGN.md §2).
    pub fn scaled_default() -> Self {
        Self {
            buffer_bytes: 64 * 1024,
            size_ratio: 10,
            initial_policy: 1,
            bloom: BloomScheme::Uniform { bits_per_key: 8.0 },
            transition: TransitionStrategy::Flexible,
            background_maintenance: false,
            l0_stall_runs: 8,
        }
    }

    /// The paper's full-scale settings (2 MiB buffer, T=10, bits=8).
    pub fn paper_default() -> Self {
        Self {
            buffer_bytes: 2 * 1024 * 1024,
            size_ratio: 10,
            initial_policy: 1,
            bloom: BloomScheme::Uniform { bits_per_key: 8.0 },
            transition: TransitionStrategy::Flexible,
            background_maintenance: false,
            l0_stall_runs: 8,
        }
    }

    /// Capacity in bytes of a (zero-based) level: `C_i = buffer · T^{i+1}`.
    pub fn level_capacity(&self, level: usize) -> u64 {
        let t = self.size_ratio as u64;
        self.buffer_bytes
            .saturating_mul(t.saturating_pow(level as u32 + 1))
    }

    /// Clamps a policy into the valid range `[1, T]`.
    pub fn clamp_policy(&self, k: i64) -> u32 {
        k.clamp(1, self.size_ratio as i64) as u32
    }

    /// Validates invariants; returns the first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.buffer_bytes < 1024 {
            return Err(ConfigError::BufferTooSmall {
                got: self.buffer_bytes,
            });
        }
        if self.size_ratio < 2 {
            return Err(ConfigError::SizeRatioTooSmall {
                got: self.size_ratio,
            });
        }
        if self.initial_policy < 1 || self.initial_policy > self.size_ratio {
            return Err(ConfigError::InitialPolicyOutOfRange {
                got: self.initial_policy,
                size_ratio: self.size_ratio,
            });
        }
        if let BloomScheme::Uniform { bits_per_key } = self.bloom {
            if !(0.0..=64.0).contains(&bits_per_key) {
                return Err(ConfigError::BloomBitsOutOfRange { got: bits_per_key });
            }
        }
        if let BloomScheme::Monkey { level1_fpr } = self.bloom {
            if !(0.0..=1.0).contains(&level1_fpr) || level1_fpr == 0.0 {
                return Err(ConfigError::BloomFprOutOfRange { got: level1_fpr });
            }
        }
        Ok(())
    }
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self::scaled_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_capacities_grow_by_t() {
        let cfg = LsmConfig::scaled_default();
        assert_eq!(cfg.level_capacity(0), 64 * 1024 * 10);
        assert_eq!(cfg.level_capacity(1), 64 * 1024 * 100);
        assert_eq!(cfg.level_capacity(2), 64 * 1024 * 1000);
    }

    #[test]
    fn clamp_policy_bounds() {
        let cfg = LsmConfig::scaled_default();
        assert_eq!(cfg.clamp_policy(0), 1);
        assert_eq!(cfg.clamp_policy(-5), 1);
        assert_eq!(cfg.clamp_policy(5), 5);
        assert_eq!(cfg.clamp_policy(99), 10);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = LsmConfig::scaled_default();
        assert!(cfg.validate().is_ok());
        cfg.size_ratio = 1;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::SizeRatioTooSmall { got: 1 })
        );
        cfg = LsmConfig::scaled_default();
        cfg.initial_policy = 11;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::InitialPolicyOutOfRange {
                got: 11,
                size_ratio: 10
            })
        );
        cfg = LsmConfig::scaled_default();
        cfg.buffer_bytes = 10;
        assert_eq!(cfg.validate(), Err(ConfigError::BufferTooSmall { got: 10 }));
        cfg = LsmConfig::scaled_default();
        cfg.bloom = BloomScheme::Monkey { level1_fpr: 0.0 };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::BloomFprOutOfRange { got: 0.0 })
        );
    }

    #[test]
    fn config_errors_render_readable_messages() {
        let e = ConfigError::InitialPolicyOutOfRange {
            got: 11,
            size_ratio: 10,
        };
        assert_eq!(e.to_string(), "initial_policy must be in [1, 10], got 11");
        assert!(ConfigError::BufferTooSmall { got: 10 }
            .to_string()
            .contains("1 KiB"));
    }

    #[test]
    fn monkey_scheme_bits_decrease() {
        let s = BloomScheme::Monkey { level1_fpr: 0.001 };
        assert!(s.bits_for_level(0, 10) > s.bits_for_level(1, 10));
        assert!(s.bits_for_level(1, 10) > s.bits_for_level(2, 10));
        assert_eq!(s.bits_for_level(5, 10), 0.0);
        let u = BloomScheme::Uniform { bits_per_key: 8.0 };
        assert_eq!(u.bits_for_level(0, 10), u.bits_for_level(4, 10));
    }
}
