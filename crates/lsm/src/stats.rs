//! Per-level and tree-wide statistics.
//!
//! The RusKey stats collector (paper §3.1) feeds two signals into the RL
//! reward: the *end-to-end latency* `t'` and the *level-based latency* `t_i`.
//! This module accumulates both, along with the I/O and false-positive
//! counters used by the experiments.

/// Mutable accumulators for one level.
#[derive(Debug, Default, Clone)]
pub struct LevelStats {
    /// Virtual ns spent probing this level during lookups.
    pub lookup_ns: u64,
    /// Pages read by lookups in this level.
    pub lookup_pages: u64,
    /// Run probes performed in this level.
    pub probes: u64,
    /// Bloom false positives observed in this level.
    pub false_positives: u64,
    /// Virtual ns spent on compaction work attributed to this level.
    pub compact_ns: u64,
    /// Pages read by compactions attributed to this level.
    pub compact_pages_read: u64,
    /// Pages written by compactions attributed to this level.
    pub compact_pages_written: u64,
    /// Entries processed by compactions attributed to this level.
    pub compact_keys: u64,
    /// Number of full-level merges pushed down from this level.
    pub merges_down: u64,
    /// Number of policy transitions applied at this level.
    pub transitions: u64,
}

impl LevelStats {
    /// Total level-based latency `t_i` (lookup + compaction time).
    pub fn total_ns(&self) -> u64 {
        self.lookup_ns + self.compact_ns
    }

    /// Immutable snapshot.
    pub fn snapshot(&self) -> LevelStatsSnapshot {
        LevelStatsSnapshot {
            lookup_ns: self.lookup_ns,
            lookup_pages: self.lookup_pages,
            probes: self.probes,
            false_positives: self.false_positives,
            compact_ns: self.compact_ns,
            compact_pages_read: self.compact_pages_read,
            compact_pages_written: self.compact_pages_written,
            compact_keys: self.compact_keys,
            merges_down: self.merges_down,
            transitions: self.transitions,
        }
    }
}

/// Point-in-time copy of [`LevelStats`]; supports deltas.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LevelStatsSnapshot {
    /// Virtual ns spent probing this level during lookups.
    pub lookup_ns: u64,
    /// Pages read by lookups in this level.
    pub lookup_pages: u64,
    /// Run probes performed in this level.
    pub probes: u64,
    /// Bloom false positives observed in this level.
    pub false_positives: u64,
    /// Virtual ns spent on compaction work attributed to this level.
    pub compact_ns: u64,
    /// Pages read by compactions attributed to this level.
    pub compact_pages_read: u64,
    /// Pages written by compactions attributed to this level.
    pub compact_pages_written: u64,
    /// Entries processed by compactions attributed to this level.
    pub compact_keys: u64,
    /// Number of full-level merges pushed down from this level.
    pub merges_down: u64,
    /// Number of policy transitions applied at this level.
    pub transitions: u64,
}

impl LevelStatsSnapshot {
    /// Level-based latency `t_i`.
    pub fn total_ns(&self) -> u64 {
        self.lookup_ns + self.compact_ns
    }

    /// Counter-wise `self + other`: the combined view of one level across
    /// two shards of a sharded store.
    pub fn merged(&self, other: &LevelStatsSnapshot) -> LevelStatsSnapshot {
        LevelStatsSnapshot {
            lookup_ns: self.lookup_ns + other.lookup_ns,
            lookup_pages: self.lookup_pages + other.lookup_pages,
            probes: self.probes + other.probes,
            false_positives: self.false_positives + other.false_positives,
            compact_ns: self.compact_ns + other.compact_ns,
            compact_pages_read: self.compact_pages_read + other.compact_pages_read,
            compact_pages_written: self.compact_pages_written + other.compact_pages_written,
            compact_keys: self.compact_keys + other.compact_keys,
            merges_down: self.merges_down + other.merges_down,
            transitions: self.transitions + other.transitions,
        }
    }

    /// Counter-wise `self - earlier` (saturating).
    pub fn delta(&self, earlier: &LevelStatsSnapshot) -> LevelStatsSnapshot {
        LevelStatsSnapshot {
            lookup_ns: self.lookup_ns.saturating_sub(earlier.lookup_ns),
            lookup_pages: self.lookup_pages.saturating_sub(earlier.lookup_pages),
            probes: self.probes.saturating_sub(earlier.probes),
            false_positives: self.false_positives.saturating_sub(earlier.false_positives),
            compact_ns: self.compact_ns.saturating_sub(earlier.compact_ns),
            compact_pages_read: self
                .compact_pages_read
                .saturating_sub(earlier.compact_pages_read),
            compact_pages_written: self
                .compact_pages_written
                .saturating_sub(earlier.compact_pages_written),
            compact_keys: self.compact_keys.saturating_sub(earlier.compact_keys),
            merges_down: self.merges_down.saturating_sub(earlier.merges_down),
            transitions: self.transitions.saturating_sub(earlier.transitions),
        }
    }
}

/// Tree-wide statistics snapshot.
///
/// A snapshot taken from one tree describes one *time domain*: `clock_ns`
/// and `busy_ns` are both that domain's timeline. Merging shard snapshots
/// ([`TreeStatsSnapshot::merge`]) composes domains two ways at once:
/// `clock_ns` takes the **max** (wall composition — the longest domain
/// timeline) and `busy_ns` takes the **sum** (device-busy composition —
/// total virtual work performed). To window a parallel mission exactly,
/// delta each shard's snapshot against its own baseline first and merge
/// the deltas; max-of-deltas is not delta-of-maxes.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TreeStatsSnapshot {
    /// Number of lookups served.
    pub lookups: u64,
    /// Number of updates (puts + deletes) applied.
    pub updates: u64,
    /// Number of range scans served.
    pub scans: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Virtual time in this snapshot's domain (I/O + charged CPU), ns.
    /// Merged snapshots carry the max over the merged domains (wall).
    pub clock_ns: u64,
    /// Total virtual work, ns. Equals `clock_ns` for a single tree; merged
    /// snapshots carry the sum over the merged domains (device-busy).
    pub busy_ns: u64,
    /// Lifetime records appended to the tree's write-ahead log (0 when the
    /// tree runs without one).
    pub wal_appends: u64,
    /// Lifetime WAL fsyncs — the group-commit cost counter (≤ 1 per shard
    /// per batch under the mission barrier).
    pub wal_syncs: u64,
    /// Lifetime WAL records acknowledged durable: covered by a successful
    /// fsync, or superseded by a memtable flush that persisted them into
    /// the tree.
    pub wal_synced: u64,
    /// Lifetime structural edits through the tree's manifest: replayed at
    /// recovery plus committed since (0 when the tree runs without one).
    pub manifest_edits: u64,
    /// Runs rebuilt from manifest + data pages by the last recovery.
    pub runs_recovered: u64,
    /// WAL records replayed on top of the recovered structure by the
    /// last recovery.
    pub replayed_tail: u64,
    /// Extent files orphaned by a pre-commit power cut and removed by the
    /// last recovery's orphan sweep.
    pub orphans_collected: u64,
    /// Lifetime extent-file fsyncs issued (power-failure contract, step 1:
    /// data pages durable before their manifest commit).
    pub extent_syncs: u64,
    /// Lifetime directory-handle fsyncs issued (power-failure contract,
    /// step 2: extent creation durable before the manifest names it).
    pub dir_syncs: u64,
    /// Lifetime block-cache hits on the tree's storage (0 without a
    /// cache in the serving path).
    pub cache_hits: u64,
    /// Lifetime block-cache misses (reads that reached the device).
    pub cache_misses: u64,
    /// Lifetime block-cache evictions.
    pub cache_evictions: u64,
    /// Virtual ns that `put`/`delete` calls spent blocked on structural
    /// work: the inline flush/cascade in classic mode, or the flush
    /// backstop plus L0 backpressure stalls in background mode. Measured
    /// elapsed time on the tree's clock, never an extra charge.
    pub stall_ns: u64,
    /// Real wall-clock ns acknowledged writes spent waiting in a serving
    /// frontend's per-shard admission queue before the tree executed them
    /// (0 outside serving). Kept apart from the virtual `stall_ns`:
    /// queue wait is scheduling delay, not device work.
    pub queue_stall_ns: u64,
    /// Background maintenance steps that restructured the tree (deferred
    /// merges applied and trivial moves committed).
    pub bg_compactions: u64,
    /// Bytes resident in levels whose compaction score is at or above the
    /// picker threshold — a gauge of structural debt, not a counter.
    pub pending_compaction_bytes: u64,
    /// Per-level snapshots, index 0 = the paper's Level 1.
    pub levels: Vec<LevelStatsSnapshot>,
}

impl TreeStatsSnapshot {
    /// End-to-end latency `t'` accumulated so far (virtual ns, wall
    /// composition for merged snapshots).
    pub fn end_to_end_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Total virtual work performed (ns, device-busy composition for
    /// merged snapshots).
    pub fn device_busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Counter-wise delta versus an earlier snapshot. Levels missing from
    /// `earlier` (created in between) are taken as-is.
    pub fn delta(&self, earlier: &TreeStatsSnapshot) -> TreeStatsSnapshot {
        let levels = self
            .levels
            .iter()
            .enumerate()
            .map(|(i, l)| match earlier.levels.get(i) {
                Some(e) => l.delta(e),
                None => *l,
            })
            .collect();
        TreeStatsSnapshot {
            lookups: self.lookups.saturating_sub(earlier.lookups),
            updates: self.updates.saturating_sub(earlier.updates),
            scans: self.scans.saturating_sub(earlier.scans),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            clock_ns: self.clock_ns.saturating_sub(earlier.clock_ns),
            busy_ns: self.busy_ns.saturating_sub(earlier.busy_ns),
            wal_appends: self.wal_appends.saturating_sub(earlier.wal_appends),
            wal_syncs: self.wal_syncs.saturating_sub(earlier.wal_syncs),
            wal_synced: self.wal_synced.saturating_sub(earlier.wal_synced),
            manifest_edits: self.manifest_edits.saturating_sub(earlier.manifest_edits),
            runs_recovered: self.runs_recovered.saturating_sub(earlier.runs_recovered),
            replayed_tail: self.replayed_tail.saturating_sub(earlier.replayed_tail),
            orphans_collected: self
                .orphans_collected
                .saturating_sub(earlier.orphans_collected),
            extent_syncs: self.extent_syncs.saturating_sub(earlier.extent_syncs),
            dir_syncs: self.dir_syncs.saturating_sub(earlier.dir_syncs),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            stall_ns: self.stall_ns.saturating_sub(earlier.stall_ns),
            queue_stall_ns: self.queue_stall_ns.saturating_sub(earlier.queue_stall_ns),
            bg_compactions: self.bg_compactions.saturating_sub(earlier.bg_compactions),
            // A gauge: the delta window ends at `self`, so its end-state
            // debt is the meaningful reading.
            pending_compaction_bytes: self.pending_compaction_bytes,
            levels,
        }
    }

    /// Merges another shard's snapshot into a store-wide view.
    ///
    /// Operation and I/O counters add up shard-wise; per-level snapshots
    /// add element-wise (the deeper shard's extra levels are taken as-is).
    /// Time composes per domain: `clock_ns` takes the **max** (mission
    /// wall time is bounded by the busiest shard), `busy_ns` the **sum**
    /// (every domain's work occupies the shared device). Both compositions
    /// are commutative and associative, so any merge order agrees.
    pub fn merge(&self, other: &TreeStatsSnapshot) -> TreeStatsSnapshot {
        let n = self.levels.len().max(other.levels.len());
        let zero = LevelStatsSnapshot::default();
        let levels = (0..n)
            .map(|i| {
                self.levels
                    .get(i)
                    .unwrap_or(&zero)
                    .merged(other.levels.get(i).unwrap_or(&zero))
            })
            .collect();
        TreeStatsSnapshot {
            lookups: self.lookups + other.lookups,
            updates: self.updates + other.updates,
            scans: self.scans + other.scans,
            flushes: self.flushes + other.flushes,
            clock_ns: self.clock_ns.max(other.clock_ns),
            busy_ns: self.busy_ns + other.busy_ns,
            wal_appends: self.wal_appends + other.wal_appends,
            wal_syncs: self.wal_syncs + other.wal_syncs,
            wal_synced: self.wal_synced + other.wal_synced,
            manifest_edits: self.manifest_edits + other.manifest_edits,
            runs_recovered: self.runs_recovered + other.runs_recovered,
            replayed_tail: self.replayed_tail + other.replayed_tail,
            orphans_collected: self.orphans_collected + other.orphans_collected,
            extent_syncs: self.extent_syncs + other.extent_syncs,
            dir_syncs: self.dir_syncs + other.dir_syncs,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            cache_evictions: self.cache_evictions + other.cache_evictions,
            stall_ns: self.stall_ns + other.stall_ns,
            queue_stall_ns: self.queue_stall_ns + other.queue_stall_ns,
            bg_compactions: self.bg_compactions + other.bg_compactions,
            pending_compaction_bytes: self.pending_compaction_bytes
                + other.pending_compaction_bytes,
            levels,
        }
    }

    /// Merges the snapshots of all shards of a store ([`TreeStatsSnapshot::merge`]
    /// folded over an iterator).
    pub fn merge_all<'a>(snapshots: impl IntoIterator<Item = &'a TreeStatsSnapshot>) -> Self {
        snapshots
            .into_iter()
            .fold(TreeStatsSnapshot::default(), |acc, s| acc.merge(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_total_combines_lookup_and_compact() {
        let s = LevelStats {
            lookup_ns: 10,
            compact_ns: 32,
            ..Default::default()
        };
        assert_eq!(s.total_ns(), 42);
        assert_eq!(s.snapshot().total_ns(), 42);
    }

    #[test]
    fn snapshot_delta() {
        let a = LevelStatsSnapshot {
            probes: 10,
            false_positives: 2,
            ..Default::default()
        };
        let b = LevelStatsSnapshot {
            probes: 4,
            false_positives: 1,
            ..Default::default()
        };
        let d = a.delta(&b);
        assert_eq!(d.probes, 6);
        assert_eq!(d.false_positives, 1);
    }

    #[test]
    fn merge_composes_wall_as_max_and_busy_as_sum() {
        let a = TreeStatsSnapshot {
            lookups: 5,
            updates: 2,
            clock_ns: 900,
            busy_ns: 900,
            levels: vec![LevelStatsSnapshot {
                probes: 3,
                lookup_ns: 10,
                ..Default::default()
            }],
            ..Default::default()
        };
        let b = TreeStatsSnapshot {
            lookups: 1,
            updates: 4,
            clock_ns: 1000,
            busy_ns: 1000,
            levels: vec![
                LevelStatsSnapshot {
                    probes: 2,
                    lookup_ns: 5,
                    ..Default::default()
                },
                LevelStatsSnapshot {
                    compact_keys: 7,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.lookups, 6);
        assert_eq!(m.updates, 6);
        // Wall composition: max over domains. Busy composition: sum.
        assert_eq!(m.clock_ns, 1000);
        assert_eq!(m.busy_ns, 1900);
        assert_eq!(m.end_to_end_ns(), 1000);
        assert_eq!(m.device_busy_ns(), 1900);
        assert_eq!(m.levels.len(), 2);
        assert_eq!(m.levels[0].probes, 5);
        assert_eq!(m.levels[0].lookup_ns, 15);
        assert_eq!(m.levels[1].compact_keys, 7);
        // merge_all folds over shards; empty input is the identity.
        let all = TreeStatsSnapshot::merge_all([&a, &b]);
        assert_eq!(all, m);
        assert_eq!(
            TreeStatsSnapshot::merge_all([]),
            TreeStatsSnapshot::default()
        );
    }

    #[test]
    fn per_domain_delta_then_merge_supports_sharded_missions() {
        // The sharded store deltas each shard against its own baseline and
        // merges the deltas: wall = max of per-domain deltas, busy = sum.
        let before_a = TreeStatsSnapshot {
            lookups: 10,
            clock_ns: 100,
            busy_ns: 100,
            ..Default::default()
        };
        let before_b = TreeStatsSnapshot {
            lookups: 20,
            clock_ns: 40,
            busy_ns: 40,
            ..Default::default()
        };
        let after_a = TreeStatsSnapshot {
            lookups: 14,
            clock_ns: 250,
            busy_ns: 250,
            ..Default::default()
        };
        let after_b = TreeStatsSnapshot {
            lookups: 27,
            clock_ns: 90,
            busy_ns: 90,
            ..Default::default()
        };
        let d =
            TreeStatsSnapshot::merge_all([&after_a.delta(&before_a), &after_b.delta(&before_b)]);
        assert_eq!(d.lookups, 11);
        assert_eq!(d.clock_ns, 150, "wall = max(150, 50)");
        assert_eq!(d.busy_ns, 200, "busy = 150 + 50");
    }

    #[test]
    fn wal_counters_merge_as_sums_and_delta_counterwise() {
        let a = TreeStatsSnapshot {
            wal_appends: 10,
            wal_syncs: 2,
            wal_synced: 8,
            ..Default::default()
        };
        let b = TreeStatsSnapshot {
            wal_appends: 4,
            wal_syncs: 1,
            wal_synced: 4,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.wal_appends, 14);
        assert_eq!(m.wal_syncs, 3);
        assert_eq!(m.wal_synced, 12);
        let d = a.delta(&b);
        assert_eq!(d.wal_appends, 6);
        assert_eq!(d.wal_syncs, 1);
        assert_eq!(d.wal_synced, 4);
    }

    #[test]
    fn maintenance_counters_delta_and_merge() {
        let later = TreeStatsSnapshot {
            stall_ns: 100,
            bg_compactions: 7,
            pending_compaction_bytes: 4_096,
            ..Default::default()
        };
        let earlier = TreeStatsSnapshot {
            stall_ns: 40,
            bg_compactions: 3,
            pending_compaction_bytes: 9_999,
            ..Default::default()
        };
        let d = later.delta(&earlier);
        assert_eq!(d.stall_ns, 60);
        assert_eq!(d.bg_compactions, 4);
        // Gauge semantics: the delta reports the window's end state, not a
        // subtraction against the earlier reading.
        assert_eq!(d.pending_compaction_bytes, 4_096);
        let m = later.merge(&earlier);
        assert_eq!(m.stall_ns, 140);
        assert_eq!(m.bg_compactions, 10);
        assert_eq!(m.pending_compaction_bytes, 14_095);
    }

    #[test]
    fn tree_delta_handles_new_levels() {
        let earlier = TreeStatsSnapshot {
            lookups: 5,
            levels: vec![LevelStatsSnapshot {
                probes: 3,
                ..Default::default()
            }],
            ..Default::default()
        };
        let later = TreeStatsSnapshot {
            lookups: 9,
            levels: vec![
                LevelStatsSnapshot {
                    probes: 7,
                    ..Default::default()
                },
                LevelStatsSnapshot {
                    probes: 2,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let d = later.delta(&earlier);
        assert_eq!(d.lookups, 4);
        assert_eq!(d.levels[0].probes, 4);
        assert_eq!(d.levels[1].probes, 2);
    }
}
