//! Core key-value types shared across the engine.

use bytes::Bytes;

/// A user key. Keys are arbitrary byte strings ordered lexicographically;
/// the workload generators encode integer keys big-endian so lexicographic
/// and numeric order coincide.
pub type Key = Bytes;

/// A user value (opaque bytes).
pub type Value = Bytes;

/// Monotonically increasing sequence number assigned to every write.
/// Between two entries for the same key, the higher sequence number wins.
pub type SeqNo = u64;

/// The kind of a logical write operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Insert or overwrite a key.
    Put,
    /// Delete a key (a *tombstone*; physically removed at the bottom level).
    Delete,
}

impl OpKind {
    /// Single-byte wire encoding.
    pub fn to_byte(self) -> u8 {
        match self {
            OpKind::Put => 0,
            OpKind::Delete => 1,
        }
    }

    /// Decodes the wire byte; returns `None` for unknown values.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(OpKind::Put),
            1 => Some(OpKind::Delete),
            _ => None,
        }
    }
}

/// An internal key-value entry: a user key plus the versioning metadata the
/// engine needs to resolve overwrites and deletes during merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvEntry {
    /// User key.
    pub key: Key,
    /// User value; empty for tombstones.
    pub value: Value,
    /// Sequence number of the write that produced this entry.
    pub seq: SeqNo,
    /// Put or Delete.
    pub kind: OpKind,
}

impl KvEntry {
    /// Creates a put entry.
    pub fn put(key: impl Into<Key>, value: impl Into<Value>, seq: SeqNo) -> Self {
        Self {
            key: key.into(),
            value: value.into(),
            seq,
            kind: OpKind::Put,
        }
    }

    /// Creates a tombstone entry.
    pub fn delete(key: impl Into<Key>, seq: SeqNo) -> Self {
        Self {
            key: key.into(),
            value: Bytes::new(),
            seq,
            kind: OpKind::Delete,
        }
    }

    /// True if this entry is a tombstone.
    pub fn is_tombstone(&self) -> bool {
        self.kind == OpKind::Delete
    }

    /// The logical (encoded) size of the entry in bytes, used for all
    /// capacity accounting (`E` in the paper's notation is the typical value
    /// of this for fixed-size workloads).
    pub fn encoded_size(&self) -> usize {
        crate::entry::ENTRY_HEADER_BYTES + self.key.len() + self.value.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opkind_roundtrip() {
        for k in [OpKind::Put, OpKind::Delete] {
            assert_eq!(OpKind::from_byte(k.to_byte()), Some(k));
        }
        assert_eq!(OpKind::from_byte(9), None);
    }

    #[test]
    fn tombstone_has_empty_value() {
        let e = KvEntry::delete(Bytes::from_static(b"k"), 7);
        assert!(e.is_tombstone());
        assert!(e.value.is_empty());
        assert_eq!(e.seq, 7);
    }

    #[test]
    fn encoded_size_counts_header_and_payload() {
        let e = KvEntry::put(Bytes::from_static(b"key"), Bytes::from_static(b"value"), 1);
        assert_eq!(e.encoded_size(), crate::entry::ENTRY_HEADER_BYTES + 3 + 5);
    }
}
