//! The in-memory write buffer.
//!
//! New writes land here; when the buffer's logical size reaches the
//! configured capacity, the engine sorts (implicit: the map is ordered) and
//! flushes the contents as a sorted run into Level 1 (paper §2).

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::types::{Key, KvEntry, OpKind, SeqNo, Value};

/// Value slot stored per key in the buffer.
#[derive(Debug, Clone)]
struct Slot {
    value: Value,
    seq: SeqNo,
    kind: OpKind,
}

/// A sorted in-memory write buffer with logical-size accounting.
#[derive(Debug, Default)]
pub struct Memtable {
    map: BTreeMap<Key, Slot>,
    bytes: u64,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a put or tombstone, replacing any previous version of the key.
    pub fn insert(&mut self, entry: KvEntry) {
        let size = entry.encoded_size() as u64;
        let KvEntry {
            key,
            value,
            seq,
            kind,
        } = entry;
        if let Some(old) = self.map.insert(key.clone(), Slot { value, seq, kind }) {
            let old_size = (crate::entry::ENTRY_HEADER_BYTES + key.len() + old.value.len()) as u64;
            self.bytes = self.bytes - old_size + size;
        } else {
            self.bytes += size;
        }
    }

    /// Looks up the latest version of `key`, if buffered.
    pub fn get(&self, key: &[u8]) -> Option<KvEntry> {
        self.map.get(key).map(|slot| KvEntry {
            key: Key::copy_from_slice(key),
            value: slot.value.clone(),
            seq: slot.seq,
            kind: slot.kind,
        })
    }

    /// Logical size in bytes (sum of encoded entry sizes).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of distinct buffered keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drains the buffer, returning all entries in ascending key order.
    pub fn drain_sorted(&mut self) -> Vec<KvEntry> {
        self.bytes = 0;
        std::mem::take(&mut self.map)
            .into_iter()
            .map(|(key, slot)| KvEntry {
                key,
                value: slot.value,
                seq: slot.seq,
                kind: slot.kind,
            })
            .collect()
    }

    /// Returns buffered entries with keys in `[start, end)` in key order.
    pub fn range(&self, start: &[u8], end: &[u8]) -> Vec<KvEntry> {
        self.map
            .range::<[u8], _>((Bound::Included(start), Bound::Excluded(end)))
            .map(|(k, slot)| KvEntry {
                key: k.clone(),
                value: slot.value.clone(),
                seq: slot.seq,
                kind: slot.kind,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn put(k: &str, v: &str, seq: u64) -> KvEntry {
        KvEntry::put(
            Bytes::copy_from_slice(k.as_bytes()),
            Bytes::copy_from_slice(v.as_bytes()),
            seq,
        )
    }

    #[test]
    fn insert_get_overwrite() {
        let mut m = Memtable::new();
        m.insert(put("a", "1", 1));
        m.insert(put("a", "two", 2));
        let got = m.get(b"a").unwrap();
        assert_eq!(got.value.as_ref(), b"two");
        assert_eq!(got.seq, 2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn size_accounting_tracks_overwrites() {
        let mut m = Memtable::new();
        m.insert(put("key", "aa", 1));
        let s1 = m.bytes();
        m.insert(put("key", "aaaa", 2)); // value grew by 2
        assert_eq!(m.bytes(), s1 + 2);
        m.insert(put("key", "", 3));
        assert_eq!(m.bytes(), s1 - 2);
    }

    #[test]
    fn tombstones_are_stored() {
        let mut m = Memtable::new();
        m.insert(put("a", "1", 1));
        m.insert(KvEntry::delete(Bytes::from_static(b"a"), 2));
        let got = m.get(b"a").unwrap();
        assert!(got.is_tombstone());
    }

    #[test]
    fn drain_is_sorted_and_resets() {
        let mut m = Memtable::new();
        for (i, k) in ["mango", "apple", "zebra"].iter().enumerate() {
            m.insert(put(k, "v", i as u64));
        }
        let drained = m.drain_sorted();
        let keys: Vec<&[u8]> = drained.iter().map(|e| e.key.as_ref()).collect();
        assert_eq!(
            keys,
            vec![b"apple".as_ref(), b"mango".as_ref(), b"zebra".as_ref()]
        );
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn range_bounds_are_half_open() {
        let mut m = Memtable::new();
        for k in ["a", "b", "c", "d"] {
            m.insert(put(k, "v", 1));
        }
        let got: Vec<KvEntry> = m.range(b"b", b"d");
        let keys: Vec<&[u8]> = got.iter().map(|e| e.key.as_ref()).collect();
        assert_eq!(keys, vec![b"b".as_ref(), b"c".as_ref()]);
    }
}
