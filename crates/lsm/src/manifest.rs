//! The manifest: the durability substrate of the tree *structure*.
//!
//! The engine runs two logs with disjoint responsibilities:
//!
//! * the [`crate::wal::Wal`] protects the **write buffer** — every
//!   put/delete is logged before the memtable insert and the log truncates
//!   once a flush supersedes it;
//! * the **manifest** (this module) protects the **tree structure** —
//!   every structural edit (a run created at some level with its page
//!   extent and fence/Bloom metadata, a run deleted by compaction, a
//!   policy transition, the flush sequence watermark) is appended here, so
//!   a [`crate::FlsmTree`] on a persistent storage backend can be rebuilt
//!   after a restart: manifest → run/level structure, data pages → run
//!   contents, WAL tail → memtable.
//!
//! ## File format
//!
//! The manifest is an append-only sequence of CRC-framed records:
//!
//! ```text
//! record  = [len: u32] [crc32: u32] [body]
//! body    = [record_kind: u8] [payload]
//! kind 0  = header  { magic: u32 = "RKMF", version: u32 }
//! kind 1  = batch   { n_edits: u32, edit* }
//! ```
//!
//! The first record of a valid manifest is always a header; an unknown
//! version (or a missing/corrupt header) makes the whole file unreadable
//! by construction, which is the versioning contract.
//!
//! **Batches are atomic.** One structural mutation of the tree (a flush
//! with its compaction cascade, a policy transition, a bulk load) commits
//! *all* of its edits as a single CRC-covered record: either every edit of
//! the mutation survives or none does. This is what makes a torn tail
//! safe — a compaction that removes runs at level *i* and adds their
//! merged output at level *i + 1* can never be half-applied by recovery.
//!
//! ## Recovery
//!
//! [`Manifest::recover`] folds the longest **consistent** prefix of the
//! file: parsing stops at the first record that is truncated, fails its
//! CRC, decodes to an unknown edit, or does not *apply* cleanly to the
//! state folded so far (duplicate or out-of-order run ids, seals of
//! non-active runs, removals of unknown runs, a regressing sequence
//! watermark). The file is truncated back to that prefix, so later
//! appends extend a clean log. Folding is deterministic: recovering the
//! same bytes twice yields the same state.
//!
//! ## Checkpoint (log compaction)
//!
//! The log would otherwise grow with every flush, so
//! [`Manifest::checkpoint`] atomically rewrites it as `header + one batch
//! re-encoding the current state` (runs emitted in ascending run-id
//! order, which reconstructs every level's probe order exactly): the new
//! image is written to a temporary file, fsynced, renamed over the log,
//! and the parent directory is fsynced — without that last barrier a
//! power cut could roll the rename back and resurrect the old log. A
//! crash anywhere during the checkpoint leaves the previous log intact.
//! Commits auto-checkpoint once `checkpoint_every` edits have
//! accumulated since the last compaction.
//!
//! ## Ordering contract (why recovery never references missing pages)
//!
//! The tree writes a run's data pages *before* committing the edit that
//! references them, and frees an obsolete run's pages only *after* the
//! edit that removes it is durable ([`crate::FlsmTree`] defers the frees
//! until the commit returns). A crash between the data-page writes and
//! the manifest commit therefore only orphans unreferenced pages — it can
//! never produce a manifest that points at pages which were not written,
//! and a truncated tail rolls the state back to runs whose pages still
//! exist.
//!
//! ## Crash injection
//!
//! Mirroring the WAL's [`crate::wal::CrashPoint`] hook, the manifest
//! carries [`ManifestCrashPoint`]s for the recovery harness: a fired
//! crash kills the handle (a dead process appends nothing further) at one
//! of the interesting instants — before the batch is appended (the
//! crash-between-data-write-and-manifest-edit case), mid-append (a torn
//! manifest tail), after the append (before the WAL truncates), or in the
//! middle of a checkpoint rewrite.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::run::RunId;
use crate::types::{Key, SeqNo};
use crate::wal::crc32;

/// Magic number identifying a manifest file ("RKMF").
pub const MANIFEST_MAGIC: u32 = 0x524B_4D46;

/// Current manifest format version; recovery rejects anything else.
/// Version 2 added the `MoveRun` edit (trivial moves by the background
/// compaction picker).
pub const MANIFEST_VERSION: u32 = 2;

/// Everything recovery needs to rebuild one sorted run from its data
/// pages: the page extent, the integrity expectations (entry count, byte
/// and key bounds, sequence watermark), and the Bloom budget the filter
/// is rebuilt with.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The run's id within its tree (strictly increasing at creation).
    pub run_id: RunId,
    /// Storage extent id holding the run's pages.
    pub extent_id: u64,
    /// Number of pages in the extent.
    pub pages: u32,
    /// FLSM per-run capacity assigned at creation (bytes).
    pub capacity_bytes: u64,
    /// Number of entries the run holds.
    pub entry_count: u64,
    /// Logical data size (sum of encoded entry sizes).
    pub data_bytes: u64,
    /// Largest sequence number in the run.
    pub max_seq: SeqNo,
    /// Bits-per-key the run's Bloom filter was built with (recovery
    /// rebuilds an identical filter from the keys on the data pages).
    pub bloom_bits_per_key: f64,
    /// Smallest key in the run.
    pub min_key: Key,
    /// Largest key in the run.
    pub max_key: Key,
}

/// One structural edit of the tree, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestEdit {
    /// A run was created at `level` — as the level's active run
    /// (`active == true`) or directly sealed.
    AddRun {
        /// Zero-based level index.
        level: u32,
        /// Whether the run entered as the level's active run.
        active: bool,
        /// The run's recovery metadata.
        run: RunRecord,
    },
    /// The level's active run was sealed.
    SealRun {
        /// Zero-based level index.
        level: u32,
        /// Id of the run being sealed (must be the level's active run).
        run_id: RunId,
    },
    /// The level's active run was retargeted to a new capacity (flexible
    /// transition, §4.2).
    RetargetRun {
        /// Zero-based level index.
        level: u32,
        /// Id of the run being retargeted (must be the level's active run).
        run_id: RunId,
        /// The new per-run capacity in bytes.
        capacity_bytes: u64,
    },
    /// A run was deleted (superseded by a merge or compaction).
    RemoveRun {
        /// Zero-based level index.
        level: u32,
        /// Id of the run being removed.
        run_id: RunId,
    },
    /// The level's compaction policy changed (and/or a lazy transition
    /// was recorded as pending).
    SetPolicy {
        /// Zero-based level index.
        level: u32,
        /// The policy now in force.
        policy: u32,
        /// A recorded-but-unapplied lazy policy, if any.
        pending: Option<u32>,
    },
    /// The tree's sequence watermark at a memtable flush (or bulk load):
    /// recovery seeds the sequence counter from the max of this, the
    /// recovered runs' `max_seq`, and the replayed WAL tail.
    SeqWatermark {
        /// The sequence counter at the flush.
        seq: SeqNo,
    },
    /// A sealed run was re-parented to a deeper level without rewriting
    /// its pages (a trivial move by the background picker). The run joins
    /// the target level's sealed list, newest position.
    MoveRun {
        /// Zero-based level the run leaves.
        from_level: u32,
        /// Zero-based level the run joins.
        to_level: u32,
        /// Id of the run being moved (must be sealed at `from_level`).
        run_id: RunId,
    },
}

/// Why an edit did not apply to the folded state (recovery stops at the
/// batch containing the first such edit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// An `AddRun` reused or regressed a run id (ids are strictly
    /// increasing), or added an active run while one exists.
    InconsistentAdd,
    /// A seal/retarget named a run that is not the level's active run.
    NotActive,
    /// A removal named a run the level does not hold.
    UnknownRun,
    /// A policy edit carried a policy below 1.
    BadPolicy,
    /// A sequence watermark regressed.
    SeqRegressed,
    /// The edit referenced a level beyond the [`ManifestState::MAX_LEVELS`]
    /// ceiling.
    BadLevel,
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EditError::InconsistentAdd => "duplicate/out-of-order run id or double-active add",
            EditError::NotActive => "seal/retarget of a non-active run",
            EditError::UnknownRun => "removal of an unknown run",
            EditError::BadPolicy => "policy below 1",
            EditError::SeqRegressed => "sequence watermark regressed",
            EditError::BadLevel => "level index out of range",
        };
        f.write_str(s)
    }
}

/// One level of the folded manifest state: policies plus runs in exact
/// probe order (sealed oldest-first, active separate) — the same shape as
/// a live [`crate::level::Level`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelManifest {
    /// The level's policy; 0 means "never set" (recovery falls back to
    /// the configured initial policy).
    pub policy: u32,
    /// A pending lazy policy, if one was recorded.
    pub pending: Option<u32>,
    /// Sealed runs, oldest first.
    pub sealed: Vec<RunRecord>,
    /// The active run, if any.
    pub active: Option<RunRecord>,
}

impl LevelManifest {
    /// Number of runs the level describes.
    pub fn run_count(&self) -> usize {
        self.sealed.len() + usize::from(self.active.is_some())
    }
}

/// The complete tree structure described by a manifest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ManifestState {
    /// Per-level structure, index 0 = the paper's Level 1.
    pub levels: Vec<LevelManifest>,
    /// The last recorded sequence watermark.
    pub seq: SeqNo,
    /// The largest run id ever added (run ids are strictly increasing, so
    /// recovery resumes allocation at `max_run_id + 1`).
    pub max_run_id: RunId,
}

impl ManifestState {
    /// Hard ceiling on level indices: far deeper than any reachable tree
    /// (capacities grow geometrically; `bulk_load` caps at 24), it only
    /// exists so a corrupt edit cannot demand a pathological allocation.
    pub const MAX_LEVELS: usize = 64;

    /// Total runs across all levels.
    pub fn run_count(&self) -> usize {
        self.levels.iter().map(LevelManifest::run_count).sum()
    }

    fn level_mut(&mut self, level: u32) -> Result<&mut LevelManifest, EditError> {
        let idx = level as usize;
        // An edit may materialize levels it skips past (a checkpoint
        // batch emits runs in run-id order, which can reach a deep level
        // before any shallower one): missing levels spring into existence
        // with defaults, exactly like the tree's `ensure_level`.
        if idx >= Self::MAX_LEVELS {
            return Err(EditError::BadLevel);
        }
        while self.levels.len() <= idx {
            self.levels.push(LevelManifest::default());
        }
        Ok(&mut self.levels[idx])
    }

    /// Applies one edit, mirroring exactly what the live tree did.
    pub fn apply(&mut self, edit: &ManifestEdit) -> Result<(), EditError> {
        match edit {
            ManifestEdit::AddRun { level, active, run } => {
                if run.run_id <= self.max_run_id {
                    return Err(EditError::InconsistentAdd);
                }
                let l = self.level_mut(*level)?;
                if *active && l.active.is_some() {
                    return Err(EditError::InconsistentAdd);
                }
                if *active {
                    l.active = Some(run.clone());
                } else {
                    l.sealed.push(run.clone());
                }
                self.max_run_id = run.run_id;
                Ok(())
            }
            ManifestEdit::SealRun { level, run_id } => {
                let l = self.level_mut(*level)?;
                match l.active.take() {
                    Some(run) if run.run_id == *run_id => {
                        l.sealed.push(run);
                        Ok(())
                    }
                    other => {
                        l.active = other;
                        Err(EditError::NotActive)
                    }
                }
            }
            ManifestEdit::RetargetRun {
                level,
                run_id,
                capacity_bytes,
            } => {
                let l = self.level_mut(*level)?;
                match &mut l.active {
                    Some(run) if run.run_id == *run_id => {
                        run.capacity_bytes = *capacity_bytes;
                        Ok(())
                    }
                    _ => Err(EditError::NotActive),
                }
            }
            ManifestEdit::RemoveRun { level, run_id } => {
                let l = self.level_mut(*level)?;
                if l.active.as_ref().is_some_and(|r| r.run_id == *run_id) {
                    l.active = None;
                    return Ok(());
                }
                match l.sealed.iter().position(|r| r.run_id == *run_id) {
                    Some(i) => {
                        l.sealed.remove(i);
                        Ok(())
                    }
                    None => Err(EditError::UnknownRun),
                }
            }
            ManifestEdit::SetPolicy {
                level,
                policy,
                pending,
            } => {
                if *policy < 1 || pending.is_some_and(|p| p < 1) {
                    return Err(EditError::BadPolicy);
                }
                let l = self.level_mut(*level)?;
                l.policy = *policy;
                l.pending = *pending;
                Ok(())
            }
            ManifestEdit::SeqWatermark { seq } => {
                if *seq < self.seq {
                    return Err(EditError::SeqRegressed);
                }
                self.seq = *seq;
                Ok(())
            }
            ManifestEdit::MoveRun {
                from_level,
                to_level,
                run_id,
            } => {
                if *to_level as usize >= Self::MAX_LEVELS {
                    return Err(EditError::BadLevel);
                }
                let from = self.level_mut(*from_level)?;
                let Some(i) = from.sealed.iter().position(|r| r.run_id == *run_id) else {
                    return Err(EditError::UnknownRun);
                };
                let run = from.sealed.remove(i);
                self.level_mut(*to_level)?.sealed.push(run);
                Ok(())
            }
        }
    }
}

// ----------------------------------------------------------------------
// Binary encoding
// ----------------------------------------------------------------------

fn put_key(buf: &mut Vec<u8>, key: &Key) {
    buf.extend_from_slice(&(key.len() as u16).to_le_bytes());
    buf.extend_from_slice(key);
}

fn encode_run(buf: &mut Vec<u8>, r: &RunRecord) {
    buf.extend_from_slice(&r.run_id.to_le_bytes());
    buf.extend_from_slice(&r.extent_id.to_le_bytes());
    buf.extend_from_slice(&r.pages.to_le_bytes());
    buf.extend_from_slice(&r.capacity_bytes.to_le_bytes());
    buf.extend_from_slice(&r.entry_count.to_le_bytes());
    buf.extend_from_slice(&r.data_bytes.to_le_bytes());
    buf.extend_from_slice(&r.max_seq.to_le_bytes());
    buf.extend_from_slice(&r.bloom_bits_per_key.to_bits().to_le_bytes());
    put_key(buf, &r.min_key);
    put_key(buf, &r.max_key);
}

fn encode_edit(buf: &mut Vec<u8>, e: &ManifestEdit) {
    match e {
        ManifestEdit::AddRun { level, active, run } => {
            buf.push(1);
            buf.extend_from_slice(&level.to_le_bytes());
            buf.push(u8::from(*active));
            encode_run(buf, run);
        }
        ManifestEdit::SealRun { level, run_id } => {
            buf.push(2);
            buf.extend_from_slice(&level.to_le_bytes());
            buf.extend_from_slice(&run_id.to_le_bytes());
        }
        ManifestEdit::RetargetRun {
            level,
            run_id,
            capacity_bytes,
        } => {
            buf.push(3);
            buf.extend_from_slice(&level.to_le_bytes());
            buf.extend_from_slice(&run_id.to_le_bytes());
            buf.extend_from_slice(&capacity_bytes.to_le_bytes());
        }
        ManifestEdit::RemoveRun { level, run_id } => {
            buf.push(4);
            buf.extend_from_slice(&level.to_le_bytes());
            buf.extend_from_slice(&run_id.to_le_bytes());
        }
        ManifestEdit::SetPolicy {
            level,
            policy,
            pending,
        } => {
            buf.push(5);
            buf.extend_from_slice(&level.to_le_bytes());
            buf.extend_from_slice(&policy.to_le_bytes());
            buf.push(u8::from(pending.is_some()));
            buf.extend_from_slice(&pending.unwrap_or(0).to_le_bytes());
        }
        ManifestEdit::SeqWatermark { seq } => {
            buf.push(6);
            buf.extend_from_slice(&seq.to_le_bytes());
        }
        ManifestEdit::MoveRun {
            from_level,
            to_level,
            run_id,
        } => {
            buf.push(7);
            buf.extend_from_slice(&from_level.to_le_bytes());
            buf.extend_from_slice(&to_level.to_le_bytes());
            buf.extend_from_slice(&run_id.to_le_bytes());
        }
    }
}

/// A bounds-checked little-endian reader; every getter returns `None`
/// past the end, so decoding arbitrary bytes can never panic.
struct Cursor<'a> {
    data: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, off: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.off.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.off..end];
        self.off = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn key(&mut self) -> Option<Key> {
        let len = self.u16()? as usize;
        self.take(len).map(Bytes::copy_from_slice)
    }

    fn at_end(&self) -> bool {
        self.off == self.data.len()
    }
}

fn decode_run(c: &mut Cursor) -> Option<RunRecord> {
    Some(RunRecord {
        run_id: c.u64()?,
        extent_id: c.u64()?,
        pages: c.u32()?,
        capacity_bytes: c.u64()?,
        entry_count: c.u64()?,
        data_bytes: c.u64()?,
        max_seq: c.u64()?,
        bloom_bits_per_key: f64::from_bits(c.u64()?),
        min_key: c.key()?,
        max_key: c.key()?,
    })
}

fn decode_edit(c: &mut Cursor) -> Option<ManifestEdit> {
    match c.u8()? {
        1 => Some(ManifestEdit::AddRun {
            level: c.u32()?,
            active: c.u8()? != 0,
            run: decode_run(c)?,
        }),
        2 => Some(ManifestEdit::SealRun {
            level: c.u32()?,
            run_id: c.u64()?,
        }),
        3 => Some(ManifestEdit::RetargetRun {
            level: c.u32()?,
            run_id: c.u64()?,
            capacity_bytes: c.u64()?,
        }),
        4 => Some(ManifestEdit::RemoveRun {
            level: c.u32()?,
            run_id: c.u64()?,
        }),
        5 => {
            let level = c.u32()?;
            let policy = c.u32()?;
            let has_pending = c.u8()? != 0;
            let pending_raw = c.u32()?;
            Some(ManifestEdit::SetPolicy {
                level,
                policy,
                pending: has_pending.then_some(pending_raw),
            })
        }
        6 => Some(ManifestEdit::SeqWatermark { seq: c.u64()? }),
        7 => Some(ManifestEdit::MoveRun {
            from_level: c.u32()?,
            to_level: c.u32()?,
            run_id: c.u64()?,
        }),
        _ => None,
    }
}

/// Frames a record body as `[len][crc][body]`.
fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

fn header_record() -> Vec<u8> {
    let mut body = vec![0u8];
    body.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
    body.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    frame(&body)
}

fn batch_record(edits: &[ManifestEdit]) -> Vec<u8> {
    let mut body = vec![1u8];
    body.extend_from_slice(&(edits.len() as u32).to_le_bytes());
    for e in edits {
        encode_edit(&mut body, e);
    }
    frame(&body)
}

// ----------------------------------------------------------------------
// Crash injection
// ----------------------------------------------------------------------

/// Where in the manifest write path a simulated crash fires (test
/// harness), mirroring the WAL's [`crate::wal::CrashPoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifestCrashPoint {
    /// Before the pending batch is appended: the data pages it references
    /// are on disk, the edit is lost — the crash *between the data-page
    /// write and the manifest edit*.
    PreCommit,
    /// In the middle of appending the batch record: only a prefix of its
    /// bytes reaches the file — the torn manifest tail.
    MidCommit,
    /// After the batch is durable but before the process does anything
    /// else (in particular before the WAL truncates).
    PostCommit,
    /// In the middle of a checkpoint rewrite: the temporary file is torn
    /// and never renamed over the log.
    MidCheckpoint,
    /// Power cut after the checkpoint's rename but before the parent
    /// directory fsync: the rename was never made durable, so the old log
    /// bytes reappear at the path after restart.
    PreDirSync,
}

/// An armed crash: fires when `point` is visited for the `after + 1`-th
/// time.
#[derive(Debug, Clone, Copy)]
struct ArmedCrash {
    point: ManifestCrashPoint,
    after: u64,
}

// ----------------------------------------------------------------------
// The manifest handle
// ----------------------------------------------------------------------

/// An append-only, checkpointed manifest log attached to one tree.
pub struct Manifest {
    path: PathBuf,
    file: File,
    /// The folded structure as of the last durable commit.
    state: ManifestState,
    /// Edits logged since the last commit (one mutation's batch).
    pending: Vec<ManifestEdit>,
    /// Lifetime edits through this handle: replayed at recovery plus
    /// committed since (never reset).
    edits: u64,
    /// Durable commits (batches) through this handle.
    commits: u64,
    /// Checkpoint rewrites through this handle.
    checkpoints: u64,
    /// Edits appended since the last checkpoint.
    edits_since_checkpoint: u64,
    /// Auto-checkpoint once this many edits accumulate (0 = never).
    checkpoint_every: u64,
    /// Armed fault-injection point, if any.
    crash: Option<ArmedCrash>,
    /// True once a simulated crash fired: the handle is dead and every
    /// operation is a no-op.
    crashed: bool,
}

impl Manifest {
    /// Creates a fresh manifest at `path` (truncating any previous file)
    /// holding only the version header.
    pub fn create(path: impl AsRef<Path>, checkpoint_every: u64) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&header_record())?;
        file.sync_data()?;
        // The creation itself must survive power loss: fsync the
        // directory entry, not just the file contents.
        Self::sync_parent_dir(&path)?;
        let _ = std::fs::remove_file(Self::tmp_path(&path));
        Ok(Self {
            path,
            file,
            state: ManifestState::default(),
            pending: Vec::new(),
            edits: 0,
            commits: 0,
            checkpoints: 0,
            edits_since_checkpoint: 0,
            checkpoint_every,
            crash: None,
            crashed: false,
        })
    }

    /// Recovers a manifest: folds the longest consistent prefix of the
    /// file at `path` into a [`ManifestState`], truncates the file back
    /// to that prefix, and returns the handle ready for appending plus
    /// the number of edits replayed. A missing file (or one without a
    /// valid header) recovers to the empty state and is re-initialized.
    pub fn recover(path: impl AsRef<Path>, checkpoint_every: u64) -> std::io::Result<(Self, u64)> {
        let path = path.as_ref().to_path_buf();
        // A stale checkpoint temp file is a crashed, never-renamed
        // rewrite: the log itself is authoritative, drop the leftover.
        let _ = std::fs::remove_file(Self::tmp_path(&path));
        let (state, edits, valid_bytes) = Self::fold_file(&path)?;
        match OpenOptions::new().write(true).open(&path) {
            Ok(f) => {
                if f.metadata()?.len() > valid_bytes {
                    f.set_len(valid_bytes)?;
                    f.sync_data()?;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if valid_bytes == 0 {
            // Missing or headerless file: start a clean, versioned log so
            // future recoveries accept the appends. Make the (possible)
            // creation durable like `create` does.
            file.write_all(&header_record())?;
            file.sync_data()?;
            Self::sync_parent_dir(&path)?;
        }
        Ok((
            Self {
                path,
                file,
                state,
                pending: Vec::new(),
                edits,
                commits: 0,
                checkpoints: 0,
                edits_since_checkpoint: 0,
                checkpoint_every,
                crash: None,
                crashed: false,
            },
            edits,
        ))
    }

    /// Parses a manifest file into (state, edits folded, valid byte
    /// length). Never panics on arbitrary bytes.
    fn fold_file(path: &Path) -> std::io::Result<(ManifestState, u64, u64)> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((ManifestState::default(), 0, 0))
            }
            Err(e) => return Err(e),
        }
        let mut state = ManifestState::default();
        let mut edits = 0u64;
        let mut off = 0usize;
        let mut saw_header = false;
        while off + 8 <= data.len() {
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
            let start = off + 8;
            let Some(end) = start.checked_add(len) else {
                break;
            };
            if end > data.len() {
                break; // torn tail
            }
            let body = &data[start..end];
            if crc32(body) != crc || body.is_empty() {
                break; // corrupt record
            }
            let mut c = Cursor::new(&body[1..]);
            match body[0] {
                0 => {
                    // Header: must be the first record, magic and version
                    // must match exactly.
                    let ok = !saw_header
                        && off == 0
                        && c.u32() == Some(MANIFEST_MAGIC)
                        && c.u32() == Some(MANIFEST_VERSION)
                        && c.at_end();
                    if !ok {
                        break;
                    }
                    saw_header = true;
                }
                1 => {
                    if !saw_header {
                        break; // batches before the header are unreadable
                    }
                    let Some(n) = c.u32() else { break };
                    // Decode the whole batch before applying any of it:
                    // batches are atomic, a half-decodable one is torn.
                    // The reserve is capped by the body length (an edit
                    // encodes to at least one byte) so a crafted count
                    // cannot demand a pathological allocation.
                    let mut batch = Vec::with_capacity((n as usize).min(body.len()));
                    let mut ok = true;
                    for _ in 0..n {
                        match decode_edit(&mut c) {
                            Some(e) => batch.push(e),
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok || !c.at_end() {
                        break;
                    }
                    // Apply against a scratch copy: an inconsistent batch
                    // must not half-mutate the folded state.
                    let mut scratch = state.clone();
                    if batch.iter().try_for_each(|e| scratch.apply(e)).is_err() {
                        break;
                    }
                    state = scratch;
                    edits += batch.len() as u64;
                }
                _ => break, // unknown record kind
            }
            off = end;
        }
        // Without a valid header nothing is trustworthy.
        if !saw_header {
            return Ok((ManifestState::default(), 0, 0));
        }
        Ok((state, edits, off as u64))
    }

    fn tmp_path(path: &Path) -> PathBuf {
        let mut p = path.as_os_str().to_owned();
        p.push(".tmp");
        PathBuf::from(p)
    }

    /// Fsyncs `path`'s parent directory: a file creation or rename is not
    /// durable across power loss until the directory entry itself is.
    fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
        let parent = path.parent().unwrap_or_else(|| Path::new("."));
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        File::open(dir)?.sync_all()
    }

    /// The folded structure as of the last durable commit.
    pub fn state(&self) -> &ManifestState {
        &self.state
    }

    /// Buffers one edit into the current mutation's batch. No-op on a
    /// dead (crashed) handle.
    pub fn log(&mut self, edit: ManifestEdit) {
        if self.crashed {
            return;
        }
        self.pending.push(edit);
    }

    /// Number of edits buffered for the next commit.
    pub fn pending_edits(&self) -> usize {
        self.pending.len()
    }

    /// Lifetime edits through this handle (replayed at recovery plus
    /// committed since).
    pub fn edits(&self) -> u64 {
        self.edits
    }

    /// Durable commits (batches) through this handle.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Checkpoint rewrites through this handle.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Commits the buffered batch: encodes it as one atomic record,
    /// appends it, fsyncs, and folds it into the in-memory state.
    /// Returns whether a batch was written (an empty buffer is free).
    ///
    /// # Panics
    /// Panics (debug) if the buffered edits do not apply to the state —
    /// that is an emission bug in the tree, never an I/O condition.
    pub fn commit(&mut self) -> std::io::Result<bool> {
        if self.crashed || self.pending.is_empty() {
            self.pending.clear();
            return Ok(false);
        }
        if self.hit(ManifestCrashPoint::PreCommit) {
            // Process death before the edit reaches the log: the batch
            // (and the mutation it described) is lost; the data pages it
            // referenced become unreferenced orphans.
            self.pending.clear();
            return Ok(false);
        }
        let batch = std::mem::take(&mut self.pending);
        let record = batch_record(&batch);
        if self.hit(ManifestCrashPoint::MidCommit) {
            // Torn append: half the record's bytes reach the file.
            let half = record.len() / 2;
            self.file.write_all(&record[..half])?;
            return Ok(false);
        }
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        for e in &batch {
            if let Err(err) = self.state.apply(e) {
                // Unreachable from the tree's emission; a bug here would
                // desync the folded state from the log.
                debug_assert!(false, "manifest emitted an inconsistent edit: {err}");
            }
        }
        self.edits += batch.len() as u64;
        self.edits_since_checkpoint += batch.len() as u64;
        self.commits += 1;
        if self.hit(ManifestCrashPoint::PostCommit) {
            // The batch is durable; the process dies before doing
            // anything else (frees, WAL truncation).
            return Ok(true);
        }
        if self.checkpoint_every > 0 && self.edits_since_checkpoint >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(true)
    }

    /// Encodes the current state as `header + one batch`, with runs in
    /// ascending run-id order (which reconstructs every level's sealed
    /// order and active run exactly — within a level, sealed runs are
    /// sealed in id order and the active run carries the highest id).
    fn encode_state(&self) -> Vec<u8> {
        let mut edits: Vec<ManifestEdit> = Vec::new();
        for (idx, l) in self.state.levels.iter().enumerate() {
            if l.policy != 0 || l.pending.is_some() {
                edits.push(ManifestEdit::SetPolicy {
                    level: idx as u32,
                    policy: if l.policy == 0 { 1 } else { l.policy },
                    pending: l.pending,
                });
            }
        }
        let mut runs: Vec<(u32, bool, &RunRecord)> = Vec::new();
        for (idx, l) in self.state.levels.iter().enumerate() {
            for r in &l.sealed {
                runs.push((idx as u32, false, r));
            }
            if let Some(r) = &l.active {
                runs.push((idx as u32, true, r));
            }
        }
        runs.sort_by_key(|(_, _, r)| r.run_id);
        for (level, active, run) in runs {
            edits.push(ManifestEdit::AddRun {
                level,
                active,
                run: run.clone(),
            });
        }
        if self.state.seq > 0 {
            edits.push(ManifestEdit::SeqWatermark {
                seq: self.state.seq,
            });
        }
        let mut out = header_record();
        if !edits.is_empty() {
            out.extend_from_slice(&batch_record(&edits));
        }
        out
    }

    /// Compacts the log: atomically rewrites the file as `header + one
    /// batch` describing the current state (write to a temporary file,
    /// fsync, rename over the log). A crash anywhere during the rewrite
    /// leaves the previous log intact.
    pub fn checkpoint(&mut self) -> std::io::Result<()> {
        if self.crashed {
            return Ok(());
        }
        let image = self.encode_state();
        let tmp = Self::tmp_path(&self.path);
        if self.hit(ManifestCrashPoint::MidCheckpoint) {
            // Torn rewrite, never renamed: the old log stays authoritative.
            let mut f = File::create(&tmp)?;
            f.write_all(&image[..image.len() / 2])?;
            return Ok(());
        }
        // A power cut can roll back an un-fsynced rename: the armed
        // PreDirSync fault needs the old log bytes to restore.
        let pre_rename = if matches!(self.crash, Some(a) if a.point == ManifestCrashPoint::PreDirSync)
        {
            Some(std::fs::read(&self.path)?)
        } else {
            None
        };
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&image)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if self.hit(ManifestCrashPoint::PreDirSync) {
            // The rename happened but its directory entry was never
            // fsynced: power loss makes the old bytes reappear.
            std::fs::write(&self.path, pre_rename.expect("snapshot taken while armed"))?;
            return Ok(());
        }
        // The rename is not durable until the directory entry is: a power
        // cut here would resurrect the old (longer) log. Both states are
        // consistent, but the barrier makes checkpointing monotone.
        Self::sync_parent_dir(&self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.file.sync_data()?;
        // Note: the checkpoint's max_run_id is the max over *live* runs,
        // which may be lower than the pre-checkpoint watermark if the
        // newest runs were removed. That is safe: ids are only compared
        // for strict growth against the folded state.
        self.edits_since_checkpoint = 0;
        self.checkpoints += 1;
        Ok(())
    }

    /// Arms a simulated crash: the `after + 1`-th visit of `point` kills
    /// this handle. Test-harness hook; a production store never arms one.
    pub fn arm_crash(&mut self, point: ManifestCrashPoint, after: u64) {
        self.crash = Some(ArmedCrash { point, after });
    }

    /// True once an armed crash has fired: the handle is dead and every
    /// operation is a no-op.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Kills the handle from outside: the tree calls this when the
    /// storage device reports a power cut, so the manifest behaves
    /// exactly like a process that died before committing.
    pub fn mark_crashed(&mut self) {
        self.crashed = true;
        self.pending.clear();
    }

    fn hit(&mut self, point: ManifestCrashPoint) -> bool {
        match self.crash {
            Some(ref mut armed) if armed.point == point => {
                if armed.after > 0 {
                    armed.after -= 1;
                    false
                } else {
                    self.crash = None;
                    self.crashed = true;
                    true
                }
            }
            _ => false,
        }
    }
}

impl std::fmt::Debug for Manifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manifest")
            .field("path", &self.path)
            .field("edits", &self.edits)
            .field("runs", &self.state.run_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ruskey-manifest-{name}-{}", std::process::id()))
    }

    fn key(s: &str) -> Key {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn run(id: RunId) -> RunRecord {
        RunRecord {
            run_id: id,
            extent_id: id + 100,
            pages: 3,
            capacity_bytes: 4096,
            entry_count: 10,
            data_bytes: 300,
            max_seq: id * 10,
            bloom_bits_per_key: 8.0,
            min_key: key("a"),
            max_key: key("z"),
        }
    }

    #[test]
    fn roundtrip_commit_and_recover() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut m = Manifest::create(&path, 0).unwrap();
            m.log(ManifestEdit::AddRun {
                level: 0,
                active: true,
                run: run(1),
            });
            m.log(ManifestEdit::SeqWatermark { seq: 10 });
            assert!(m.commit().unwrap());
            m.log(ManifestEdit::SealRun {
                level: 0,
                run_id: 1,
            });
            m.log(ManifestEdit::AddRun {
                level: 0,
                active: true,
                run: run(2),
            });
            assert!(m.commit().unwrap());
            assert_eq!(m.edits(), 4);
            assert_eq!(m.commits(), 2);
        }
        let (m, replayed) = Manifest::recover(&path, 0).unwrap();
        assert_eq!(replayed, 4);
        let s = m.state();
        assert_eq!(s.levels.len(), 1);
        assert_eq!(s.levels[0].sealed.len(), 1);
        assert_eq!(s.levels[0].sealed[0].run_id, 1);
        assert_eq!(s.levels[0].active.as_ref().unwrap().run_id, 2);
        assert_eq!(s.seq, 10);
        assert_eq!(s.max_run_id, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_commit_is_free_and_recovery_of_missing_file_is_empty() {
        let path = tmp("empty");
        let _ = std::fs::remove_file(&path);
        let (mut m, replayed) = Manifest::recover(&path, 0).unwrap();
        assert_eq!(replayed, 0);
        assert_eq!(m.state(), &ManifestState::default());
        assert!(!m.commit().unwrap());
        // The re-initialized file carries a header: appends after an
        // empty recovery survive the next recovery.
        m.log(ManifestEdit::SeqWatermark { seq: 5 });
        m.commit().unwrap();
        drop(m);
        let (m2, r2) = Manifest::recover(&path, 0).unwrap();
        assert_eq!(r2, 1);
        assert_eq!(m2.state().seq, 5);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_drops_the_whole_batch() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut m = Manifest::create(&path, 0).unwrap();
            m.log(ManifestEdit::AddRun {
                level: 0,
                active: true,
                run: run(1),
            });
            m.commit().unwrap();
            // Batch 2 removes run 1 and adds run 2 — atomically.
            m.log(ManifestEdit::RemoveRun {
                level: 0,
                run_id: 1,
            });
            m.log(ManifestEdit::AddRun {
                level: 0,
                active: true,
                run: run(2),
            });
            m.commit().unwrap();
        }
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let (m, _) = Manifest::recover(&path, 0).unwrap();
        // The torn batch vanished as a unit: run 1 is still present (the
        // half-applied alternative would have lost both runs).
        assert_eq!(m.state().levels[0].active.as_ref().unwrap().run_id, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn inconsistent_batches_truncate_deterministically() {
        let path = tmp("inconsistent");
        let _ = std::fs::remove_file(&path);
        // Hand-craft a log whose second batch is internally valid but
        // inconsistent with the folded state (removes an unknown run).
        let mut bytes = header_record();
        bytes.extend_from_slice(&batch_record(&[ManifestEdit::AddRun {
            level: 0,
            active: true,
            run: run(1),
        }]));
        bytes.extend_from_slice(&batch_record(&[ManifestEdit::RemoveRun {
            level: 0,
            run_id: 99,
        }]));
        bytes.extend_from_slice(&batch_record(&[ManifestEdit::SeqWatermark { seq: 7 }]));
        std::fs::write(&path, &bytes).unwrap();
        let (m, replayed) = Manifest::recover(&path, 0).unwrap();
        assert_eq!(replayed, 1, "folding stops at the inconsistent batch");
        assert_eq!(m.state().seq, 0, "batches past the break are dropped");
        // Determinism: recovering the (now truncated) file again agrees.
        let state1 = m.state().clone();
        drop(m);
        let (m2, r2) = Manifest::recover(&path, 0).unwrap();
        assert_eq!(r2, 1);
        assert_eq!(m2.state(), &state1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_version_reads_as_empty() {
        let path = tmp("version");
        let _ = std::fs::remove_file(&path);
        let mut body = vec![0u8];
        body.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        body.extend_from_slice(&(MANIFEST_VERSION + 1).to_le_bytes());
        let mut bytes = frame(&body);
        bytes.extend_from_slice(&batch_record(&[ManifestEdit::SeqWatermark { seq: 3 }]));
        std::fs::write(&path, &bytes).unwrap();
        let (m, replayed) = Manifest::recover(&path, 0).unwrap();
        assert_eq!(replayed, 0);
        assert_eq!(m.state(), &ManifestState::default());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_compacts_and_preserves_state() {
        let path = tmp("checkpoint");
        let _ = std::fs::remove_file(&path);
        let mut m = Manifest::create(&path, 0).unwrap();
        for i in 1..=20u64 {
            if i > 1 {
                m.log(ManifestEdit::RemoveRun {
                    level: 0,
                    run_id: i - 1,
                });
            }
            m.log(ManifestEdit::AddRun {
                level: 0,
                active: true,
                run: run(i),
            });
            m.commit().unwrap();
        }
        m.log(ManifestEdit::SetPolicy {
            level: 0,
            policy: 4,
            pending: Some(2),
        });
        m.log(ManifestEdit::SeqWatermark { seq: 500 });
        m.commit().unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        let state_before = m.state().clone();
        m.checkpoint().unwrap();
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "checkpoint must shrink the log");
        assert_eq!(m.state(), &state_before);
        drop(m);
        let (rec, _) = Manifest::recover(&path, 0).unwrap();
        // The recovered state matches except for max_run_id, which the
        // checkpoint rebases to the largest live id.
        assert_eq!(rec.state().levels, state_before.levels);
        assert_eq!(rec.state().seq, state_before.seq);
        assert_eq!(rec.state().max_run_id, 20);
        let _ = std::fs::remove_file(&path);
    }

    /// Regression: a checkpoint of a *multi-level* state must survive
    /// recovery. The merge-down pattern leaves a deep-level run with a
    /// lower id than later shallow runs, so the checkpoint batch (runs
    /// in ascending id order) reaches level 1 before any level-0 edit —
    /// the fold must materialize the skipped level instead of rejecting
    /// the whole batch (which silently recovered an *empty* store).
    #[test]
    fn checkpoint_preserves_multi_level_states() {
        let path = tmp("multilevel");
        let _ = std::fs::remove_file(&path);
        let mut m = Manifest::create(&path, 0).unwrap();
        // Flush: run 1 lands at level 0.
        m.log(ManifestEdit::AddRun {
            level: 0,
            active: true,
            run: run(1),
        });
        m.commit().unwrap();
        // Merge down: run 1 becomes run 2 at level 1.
        m.log(ManifestEdit::RemoveRun {
            level: 0,
            run_id: 1,
        });
        m.log(ManifestEdit::AddRun {
            level: 1,
            active: true,
            run: run(2),
        });
        m.commit().unwrap();
        // Next flush: run 3 at level 0 — a higher id than level 1's run.
        m.log(ManifestEdit::AddRun {
            level: 0,
            active: true,
            run: run(3),
        });
        m.log(ManifestEdit::SeqWatermark { seq: 30 });
        m.commit().unwrap();
        let state = m.state().clone();
        m.checkpoint().unwrap();
        drop(m);
        let (rec, _) = Manifest::recover(&path, 0).unwrap();
        assert_eq!(rec.state().levels, state.levels);
        assert_eq!(rec.state().seq, state.seq);
        assert_eq!(
            rec.state().levels[1].active.as_ref().unwrap().run_id,
            2,
            "the deep level's run must survive the checkpoint"
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Regression: a crafted batch record claiming `u32::MAX` edits must
    /// not make recovery attempt a pathological allocation — the
    /// never-panics contract covers resource exhaustion too.
    #[test]
    fn huge_batch_count_is_rejected_without_allocating() {
        let path = tmp("hugecount");
        let _ = std::fs::remove_file(&path);
        let mut bytes = header_record();
        let mut body = vec![1u8];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&frame(&body));
        std::fs::write(&path, &bytes).unwrap();
        let (m, replayed) = Manifest::recover(&path, 0).unwrap();
        assert_eq!(replayed, 0, "the lying batch must be rejected");
        assert_eq!(m.state(), &ManifestState::default());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn auto_checkpoint_triggers_on_cadence() {
        let path = tmp("autockpt");
        let _ = std::fs::remove_file(&path);
        let mut m = Manifest::create(&path, 4).unwrap();
        for i in 1..=6u64 {
            m.log(ManifestEdit::AddRun {
                level: 0,
                active: false,
                run: run(i),
            });
            m.commit().unwrap();
        }
        assert!(m.checkpoints() >= 1, "cadence of 4 edits must checkpoint");
        drop(m);
        let (rec, _) = Manifest::recover(&path, 4).unwrap();
        assert_eq!(rec.state().levels[0].sealed.len(), 6);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_points_kill_the_handle() {
        let path = tmp("crash");
        let _ = std::fs::remove_file(&path);
        // PreCommit: the batch is lost entirely.
        let mut m = Manifest::create(&path, 0).unwrap();
        m.log(ManifestEdit::SeqWatermark { seq: 1 });
        m.commit().unwrap();
        m.arm_crash(ManifestCrashPoint::PreCommit, 0);
        m.log(ManifestEdit::SeqWatermark { seq: 2 });
        assert!(!m.commit().unwrap());
        assert!(m.is_crashed());
        // Dead handle: everything no-ops.
        m.log(ManifestEdit::SeqWatermark { seq: 3 });
        assert!(!m.commit().unwrap());
        drop(m);
        let (rec, _) = Manifest::recover(&path, 0).unwrap();
        assert_eq!(rec.state().seq, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_commit_crash_leaves_a_recoverable_torn_tail() {
        let path = tmp("midcommit");
        let _ = std::fs::remove_file(&path);
        let mut m = Manifest::create(&path, 0).unwrap();
        m.log(ManifestEdit::AddRun {
            level: 0,
            active: true,
            run: run(1),
        });
        m.commit().unwrap();
        m.arm_crash(ManifestCrashPoint::MidCommit, 0);
        m.log(ManifestEdit::RemoveRun {
            level: 0,
            run_id: 1,
        });
        m.log(ManifestEdit::AddRun {
            level: 0,
            active: true,
            run: run(2),
        });
        assert!(!m.commit().unwrap());
        assert!(m.is_crashed());
        drop(m);
        let (rec, _) = Manifest::recover(&path, 0).unwrap();
        assert_eq!(
            rec.state().levels[0].active.as_ref().unwrap().run_id,
            1,
            "the torn batch must vanish as a unit"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_checkpoint_crash_keeps_the_old_log() {
        let path = tmp("midckpt");
        let _ = std::fs::remove_file(&path);
        let mut m = Manifest::create(&path, 0).unwrap();
        for i in 1..=3u64 {
            m.log(ManifestEdit::AddRun {
                level: 0,
                active: false,
                run: run(i),
            });
            m.commit().unwrap();
        }
        let state = m.state().clone();
        m.arm_crash(ManifestCrashPoint::MidCheckpoint, 0);
        m.checkpoint().unwrap();
        assert!(m.is_crashed());
        drop(m);
        let (rec, _) = Manifest::recover(&path, 0).unwrap();
        assert_eq!(rec.state(), &state, "the old log stays authoritative");
        assert!(
            !Manifest::tmp_path(&path).exists(),
            "recovery must clean the stale checkpoint temp file"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn apply_rejects_inconsistencies() {
        let mut s = ManifestState::default();
        s.apply(&ManifestEdit::AddRun {
            level: 0,
            active: true,
            run: run(5),
        })
        .unwrap();
        // Duplicate / regressed id.
        assert_eq!(
            s.apply(&ManifestEdit::AddRun {
                level: 0,
                active: false,
                run: run(5),
            }),
            Err(EditError::InconsistentAdd)
        );
        // Double active.
        assert_eq!(
            s.apply(&ManifestEdit::AddRun {
                level: 0,
                active: true,
                run: run(6),
            }),
            Err(EditError::InconsistentAdd)
        );
        // Seal of a non-active id.
        assert_eq!(
            s.apply(&ManifestEdit::SealRun {
                level: 0,
                run_id: 99
            }),
            Err(EditError::NotActive)
        );
        // Removal of an unknown run.
        assert_eq!(
            s.apply(&ManifestEdit::RemoveRun {
                level: 0,
                run_id: 99
            }),
            Err(EditError::UnknownRun)
        );
        // A skipped-past level materializes with defaults (checkpoint
        // batches reach deep levels before shallow ones)...
        s.apply(&ManifestEdit::SetPolicy {
            level: 7,
            policy: 2,
            pending: None,
        })
        .unwrap();
        assert_eq!(s.levels.len(), 8);
        // ...but the ceiling still rejects pathological indices.
        assert_eq!(
            s.apply(&ManifestEdit::SetPolicy {
                level: 10_000,
                policy: 2,
                pending: None
            }),
            Err(EditError::BadLevel)
        );
        // Seq regression.
        s.apply(&ManifestEdit::SeqWatermark { seq: 50 }).unwrap();
        assert_eq!(
            s.apply(&ManifestEdit::SeqWatermark { seq: 49 }),
            Err(EditError::SeqRegressed)
        );
        // Bad policy.
        assert_eq!(
            s.apply(&ManifestEdit::SetPolicy {
                level: 0,
                policy: 0,
                pending: None
            }),
            Err(EditError::BadPolicy)
        );
    }

    #[test]
    fn move_run_reparents_a_sealed_run() {
        let mut s = ManifestState::default();
        s.apply(&ManifestEdit::AddRun {
            level: 0,
            active: false,
            run: run(3),
        })
        .unwrap();
        // Moving the active run or an unknown id is rejected.
        assert_eq!(
            s.apply(&ManifestEdit::MoveRun {
                from_level: 0,
                to_level: 1,
                run_id: 99
            }),
            Err(EditError::UnknownRun)
        );
        assert_eq!(
            s.apply(&ManifestEdit::MoveRun {
                from_level: 0,
                to_level: 10_000,
                run_id: 3
            }),
            Err(EditError::BadLevel)
        );
        s.apply(&ManifestEdit::MoveRun {
            from_level: 0,
            to_level: 1,
            run_id: 3,
        })
        .unwrap();
        assert!(s.levels[0].sealed.is_empty());
        assert_eq!(s.levels[1].sealed.len(), 1);
        assert_eq!(s.levels[1].sealed[0].run_id, 3);
        // The move allocates no new run id.
        assert_eq!(s.max_run_id, 3);
    }

    #[test]
    fn edits_survive_an_encode_decode_roundtrip() {
        let edits = vec![
            ManifestEdit::AddRun {
                level: 3,
                active: true,
                run: run(42),
            },
            ManifestEdit::SealRun {
                level: 1,
                run_id: 7,
            },
            ManifestEdit::RetargetRun {
                level: 0,
                run_id: 9,
                capacity_bytes: 1 << 20,
            },
            ManifestEdit::RemoveRun {
                level: 2,
                run_id: 11,
            },
            ManifestEdit::SetPolicy {
                level: 1,
                policy: 3,
                pending: Some(7),
            },
            ManifestEdit::SetPolicy {
                level: 0,
                policy: 1,
                pending: None,
            },
            ManifestEdit::SeqWatermark { seq: 12345 },
            ManifestEdit::MoveRun {
                from_level: 0,
                to_level: 1,
                run_id: 42,
            },
        ];
        let mut body = Vec::new();
        for e in &edits {
            encode_edit(&mut body, e);
        }
        let mut c = Cursor::new(&body);
        for e in &edits {
            assert_eq!(decode_edit(&mut c).as_ref(), Some(e));
        }
        assert!(c.at_end());
    }
}
