//! Immutable sorted runs.
//!
//! A run is the disk-resident unit of the LSM-tree: a sequence of pages of
//! sorted entries, paired with an in-memory Bloom filter and fence pointers.
//! In the FLSM-tree, every run additionally carries its own *capacity*,
//! assigned at creation from the level's policy at that moment — this is the
//! mechanism that lets runs of different sizes coexist in one level (§4.2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ruskey_storage::{Extent, Storage};

use crate::bloom::Bloom;
use crate::entry::{self, PAGE_HEADER_BYTES};
use crate::fence::FencePointers;
use crate::types::{Key, KvEntry, SeqNo};

/// Unique run identifier within one tree.
pub type RunId = u64;

/// The outcome of probing one run for a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The run's metadata excluded the key without any I/O
    /// (range check or Bloom-filter negative).
    FilteredOut,
    /// The Bloom filter answered positive but the page did not contain the
    /// key — a false positive costing one page read.
    FalsePositive,
    /// The key was found.
    Found(KvEntry),
}

/// Statistics of one probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeResult {
    /// What happened.
    pub outcome: ProbeOutcome,
    /// Pages read from storage during the probe (0 or 1).
    pub pages_read: u32,
}

/// An immutable sorted run.
#[derive(Debug)]
pub struct Run {
    id: RunId,
    extent: Extent,
    bloom: Bloom,
    fences: FencePointers,
    entry_count: u64,
    data_bytes: u64,
    /// Atomic so a *shared* run handle (`Arc<Run>`) can be retargeted by a
    /// flexible policy transition while snapshots hold the same run: the
    /// capacity is the only mutable field of an otherwise immutable run.
    capacity_bytes: AtomicU64,
    min_key: Key,
    max_key: Key,
    max_seq: SeqNo,
}

impl Run {
    /// Run identifier.
    pub fn id(&self) -> RunId {
        self.id
    }

    /// Logical data size in bytes (sum of encoded entry sizes).
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// The FLSM per-run capacity assigned at creation (bytes).
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes.load(Ordering::Relaxed)
    }

    /// Updates the capacity (only ever called on a level's *active* run when
    /// a flexible transition changes the policy, §4.2). Takes `&self`: runs
    /// are shared handles, and the capacity is their one interior-mutable
    /// field.
    pub fn set_capacity_bytes(&self, capacity: u64) {
        self.capacity_bytes.store(capacity, Ordering::Relaxed);
    }

    /// Number of entries in the run.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Number of pages occupied on storage.
    pub fn page_count(&self) -> u32 {
        self.extent.pages
    }

    /// The storage extent holding the run's pages (recorded in the
    /// manifest so the run survives a restart on a persistent backend).
    pub fn extent(&self) -> Extent {
        self.extent
    }

    /// Smallest key in the run.
    pub fn min_key(&self) -> &Key {
        &self.min_key
    }

    /// Largest key in the run.
    pub fn max_key(&self) -> &Key {
        &self.max_key
    }

    /// Largest sequence number in the run.
    pub fn max_seq(&self) -> SeqNo {
        self.max_seq
    }

    /// In-memory metadata footprint (Bloom bits + fence keys), bytes.
    pub fn metadata_bytes(&self) -> usize {
        self.bloom.memory_bytes() + self.fences.memory_bytes()
    }

    /// Probes the run for `key`, charging `c_r` CPU plus any page read to
    /// the storage clock.
    pub fn probe(&self, storage: &dyn Storage, key: &[u8]) -> ProbeResult {
        storage.charge_cpu(storage.cost_model().cpu_probe_ns);
        if key < self.min_key.as_ref() || key > self.max_key.as_ref() {
            return ProbeResult {
                outcome: ProbeOutcome::FilteredOut,
                pages_read: 0,
            };
        }
        if !self.bloom.contains(key) {
            return ProbeResult {
                outcome: ProbeOutcome::FilteredOut,
                pages_read: 0,
            };
        }
        let Some(page_idx) = self.fences.locate(key) else {
            return ProbeResult {
                outcome: ProbeOutcome::FilteredOut,
                pages_read: 0,
            };
        };
        let mut buf = Vec::with_capacity(storage.page_size());
        storage.read_page(self.extent, page_idx, &mut buf);
        match entry::search_page(&buf, key) {
            Some(e) => ProbeResult {
                outcome: ProbeOutcome::Found(e),
                pages_read: 1,
            },
            None => ProbeResult {
                outcome: ProbeOutcome::FalsePositive,
                pages_read: 1,
            },
        }
    }

    /// Sequential iterator over all entries, reading pages on demand.
    pub fn iter(&self, storage: Arc<dyn Storage>) -> RunIterator {
        RunIterator::new(self.extent, storage, 0)
    }

    /// Iterator positioned at the first entry with key `>= start`.
    pub fn iter_from(&self, storage: Arc<dyn Storage>, start: &[u8]) -> RunIterator {
        let page = self.fences.seek_page(start);
        let mut it = RunIterator::new(self.extent, storage, page);
        it.skip_until(start);
        it
    }

    /// Frees the run's pages on storage. The run must not be used afterwards.
    pub fn destroy(self, storage: &dyn Storage) {
        storage.free(self.extent);
    }

    /// Rebuilds a run from its manifest record and data pages: every page
    /// of the recorded extent is read back, entries are decoded to
    /// re-derive the fence pointers and an identical Bloom filter, and
    /// the result is cross-checked against the record's integrity
    /// expectations (entry count, data bytes, key bounds, max seq).
    ///
    /// Returns `InvalidData` if the decoded pages disagree with the
    /// record — a manifest that references pages which were never written
    /// cannot get here under the commit ordering contract (pages first,
    /// edit after), so a mismatch means externally corrupted page
    /// *contents*. A missing, truncated, or torn extent file surfaces the
    /// same way: the fallible [`Storage::try_read_page`] propagates the
    /// backend's typed error wrapped with the run's identity, so recovery
    /// reports *which* run failed instead of panicking mid-restart.
    pub fn recover(
        storage: &dyn Storage,
        rec: &crate::manifest::RunRecord,
    ) -> std::io::Result<Run> {
        let extent = Extent {
            id: rec.extent_id,
            pages: rec.pages,
        };
        let mut first_keys: Vec<Key> = Vec::with_capacity(rec.pages as usize);
        let mut keys: Vec<Key> = Vec::with_capacity(rec.entry_count as usize);
        let mut data_bytes = 0u64;
        let mut max_seq: SeqNo = 0;
        let mut buf = Vec::with_capacity(storage.page_size());
        for page in 0..rec.pages {
            storage.try_read_page(extent, page, &mut buf).map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("run {} (extent {}): {e}", rec.run_id, rec.extent_id),
                )
            })?;
            let entries = entry::decode_page(std::mem::take(&mut buf));
            if let Some(first) = entries.first() {
                first_keys.push(first.key.clone());
            }
            for e in entries {
                if keys.last().is_some_and(|last| *last >= e.key) {
                    return Err(corrupt_run(rec, "keys out of order"));
                }
                data_bytes += e.encoded_size() as u64;
                max_seq = max_seq.max(e.seq);
                keys.push(e.key);
            }
        }
        let bounds_ok = keys.first() == Some(&rec.min_key) && keys.last() == Some(&rec.max_key);
        if keys.len() as u64 != rec.entry_count
            || data_bytes != rec.data_bytes
            || max_seq != rec.max_seq
            || !bounds_ok
        {
            return Err(corrupt_run(rec, "pages disagree with the manifest record"));
        }
        let bloom = Bloom::build(
            keys.iter().map(|k| k.as_ref()),
            keys.len(),
            rec.bloom_bits_per_key,
        );
        Ok(Run {
            id: rec.run_id,
            extent,
            bloom,
            fences: FencePointers::new(first_keys),
            entry_count: rec.entry_count,
            data_bytes: rec.data_bytes,
            capacity_bytes: AtomicU64::new(rec.capacity_bytes),
            min_key: rec.min_key.clone(),
            max_key: rec.max_key.clone(),
            max_seq: rec.max_seq,
        })
    }
}

fn corrupt_run(rec: &crate::manifest::RunRecord, what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("run {} (extent {}): {what}", rec.run_id, rec.extent_id),
    )
}

/// Streams a run's entries in key order, reading one page at a time.
pub struct RunIterator {
    extent: Extent,
    storage: Arc<dyn Storage>,
    next_page: u32,
    current: std::vec::IntoIter<KvEntry>,
    peeked: Option<KvEntry>,
}

impl RunIterator {
    fn new(extent: Extent, storage: Arc<dyn Storage>, start_page: u32) -> Self {
        Self {
            extent,
            storage,
            next_page: start_page,
            current: Vec::new().into_iter(),
            peeked: None,
        }
    }

    fn refill(&mut self) -> bool {
        while self.next_page < self.extent.pages {
            let mut buf = Vec::with_capacity(self.storage.page_size());
            self.storage
                .read_page(self.extent, self.next_page, &mut buf);
            self.next_page += 1;
            let entries = entry::decode_page(buf);
            if !entries.is_empty() {
                self.current = entries.into_iter();
                return true;
            }
        }
        false
    }

    fn skip_until(&mut self, start: &[u8]) {
        while let Some(e) = self.peek() {
            if e.key.as_ref() >= start {
                break;
            }
            self.next();
        }
    }

    /// Peeks at the next entry without consuming it.
    pub fn peek(&mut self) -> Option<&KvEntry> {
        if self.peeked.is_none() {
            self.peeked = self.advance();
        }
        self.peeked.as_ref()
    }

    fn advance(&mut self) -> Option<KvEntry> {
        loop {
            if let Some(e) = self.current.next() {
                return Some(e);
            }
            if !self.refill() {
                return None;
            }
        }
    }
}

impl Iterator for RunIterator {
    type Item = KvEntry;

    fn next(&mut self) -> Option<KvEntry> {
        if let Some(e) = self.peeked.take() {
            return Some(e);
        }
        self.advance()
    }
}

/// Builds a run from entries supplied in strictly ascending key order.
pub struct RunBuilder {
    id: RunId,
    page_size: usize,
    bits_per_key: f64,
    pages: Vec<Vec<u8>>,
    current: Vec<u8>,
    first_keys: Vec<Key>,
    keys: Vec<Key>,
    data_bytes: u64,
    min_key: Option<Key>,
    max_key: Option<Key>,
    max_seq: SeqNo,
}

impl RunBuilder {
    /// Starts a builder. `bits_per_key` controls the Bloom filter (0 = none).
    pub fn new(id: RunId, page_size: usize, bits_per_key: f64) -> Self {
        assert!(page_size > PAGE_HEADER_BYTES + crate::entry::ENTRY_HEADER_BYTES);
        Self {
            id,
            page_size,
            bits_per_key,
            pages: Vec::new(),
            current: Vec::new(),
            first_keys: Vec::new(),
            keys: Vec::new(),
            data_bytes: 0,
            min_key: None,
            max_key: None,
            max_seq: 0,
        }
    }

    /// Appends an entry. Panics if keys are not strictly ascending or the
    /// entry cannot fit in an empty page.
    pub fn push(&mut self, e: KvEntry) {
        if let Some(last) = &self.max_key {
            assert!(e.key > *last, "RunBuilder keys must be strictly ascending");
        }
        if self.min_key.is_none() {
            self.min_key = Some(e.key.clone());
        }
        self.max_key = Some(e.key.clone());
        self.max_seq = self.max_seq.max(e.seq);
        self.data_bytes += e.encoded_size() as u64;
        self.keys.push(e.key.clone());
        if self.current.is_empty() {
            self.first_keys.push(e.key.clone());
        }
        if !entry::append_entry(&mut self.current, &e, self.page_size) {
            assert!(!self.current.is_empty(), "entry larger than a page");
            let full = std::mem::take(&mut self.current);
            self.pages.push(full);
            self.first_keys.push(e.key.clone());
            let ok = entry::append_entry(&mut self.current, &e, self.page_size);
            assert!(ok, "entry larger than a page");
        }
    }

    /// Number of entries added so far.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if nothing was added.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Logical bytes accumulated so far.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Writes the pages to `storage` (charging write I/O), builds the Bloom
    /// filter and fence pointers, and returns the finished run.
    ///
    /// `capacity_bytes` is the FLSM per-run capacity recorded on the run.
    /// Returns `None` if no entries were pushed.
    pub fn finish(mut self, storage: &dyn Storage, capacity_bytes: u64) -> Option<Run> {
        if self.keys.is_empty() {
            return None;
        }
        if !self.current.is_empty() {
            let last = std::mem::take(&mut self.current);
            self.pages.push(last);
        } else {
            // The last first_key belongs to a page that was never started.
            if self.first_keys.len() > self.pages.len() {
                self.first_keys.pop();
            }
        }
        debug_assert_eq!(self.first_keys.len(), self.pages.len());
        let extent = storage.allocate(self.pages.len() as u32);
        for (i, page) in self.pages.iter().enumerate() {
            storage.write_page(extent, i as u32, page);
        }
        let bloom = Bloom::build(
            self.keys.iter().map(|k| k.as_ref()),
            self.keys.len(),
            self.bits_per_key,
        );
        Some(Run {
            id: self.id,
            extent,
            bloom,
            fences: FencePointers::new(self.first_keys),
            entry_count: self.keys.len() as u64,
            data_bytes: self.data_bytes,
            capacity_bytes: AtomicU64::new(capacity_bytes),
            min_key: self.min_key.unwrap(),
            max_key: self.max_key.unwrap(),
            max_seq: self.max_seq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use ruskey_storage::{CostModel, SimulatedDisk};

    fn key(i: u64) -> Key {
        Bytes::copy_from_slice(&i.to_be_bytes())
    }

    fn value(i: u64) -> Key {
        Bytes::from(format!("value-{i:06}"))
    }

    fn build_run(storage: &dyn Storage, n: u64, bits: f64) -> Run {
        let mut b = RunBuilder::new(1, storage.page_size(), bits);
        for i in 0..n {
            b.push(KvEntry::put(key(i * 2), value(i), i + 1));
        }
        b.finish(storage, u64::MAX).unwrap()
    }

    #[test]
    fn probe_finds_every_key() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let run = build_run(disk.as_ref(), 100, 10.0);
        for i in 0..100 {
            let r = run.probe(disk.as_ref(), &key(i * 2));
            match r.outcome {
                ProbeOutcome::Found(e) => assert_eq!(e.value, value(i)),
                other => panic!("key {i} not found: {other:?}"),
            }
        }
    }

    #[test]
    fn probe_out_of_range_costs_nothing() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let run = build_run(disk.as_ref(), 10, 10.0);
        let before = disk.metrics().pages_read;
        let r = run.probe(disk.as_ref(), &key(1_000_000));
        assert_eq!(r.outcome, ProbeOutcome::FilteredOut);
        assert_eq!(disk.metrics().pages_read, before);
    }

    #[test]
    fn probe_missing_key_in_range() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let run = build_run(disk.as_ref(), 100, 10.0);
        // Odd keys are absent; with bits=10 most probes are filtered, any
        // bloom positive must come back as FalsePositive, never Found.
        for i in 0..100 {
            let r = run.probe(disk.as_ref(), &key(i * 2 + 1));
            assert!(
                matches!(
                    r.outcome,
                    ProbeOutcome::FilteredOut | ProbeOutcome::FalsePositive
                ),
                "phantom key found"
            );
        }
    }

    #[test]
    fn iterator_streams_in_order() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let run = build_run(disk.as_ref(), 50, 10.0);
        let entries: Vec<KvEntry> = run.iter(disk.clone() as Arc<dyn Storage>).collect();
        assert_eq!(entries.len(), 50);
        for w in entries.windows(2) {
            assert!(w[0].key < w[1].key);
        }
        assert_eq!(entries[0].key, key(0));
        assert_eq!(entries[49].key, key(98));
    }

    #[test]
    fn seeked_iterator_starts_at_bound() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let run = build_run(disk.as_ref(), 50, 10.0);
        // Seek to key 31 (absent): first yielded must be 32.
        let it = run.iter_from(disk.clone() as Arc<dyn Storage>, &key(31));
        let first = it.take(1).next().unwrap();
        assert_eq!(first.key, key(32));
        // Seek before the run start.
        let it = run.iter_from(disk.clone() as Arc<dyn Storage>, &key(0));
        assert_eq!(it.take(1).next().unwrap().key, key(0));
    }

    #[test]
    fn metadata_and_counters() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let run = build_run(disk.as_ref(), 100, 8.0);
        assert_eq!(run.entry_count(), 100);
        assert!(run.page_count() > 1);
        assert!(run.data_bytes() > 0);
        assert!(run.metadata_bytes() > 0);
        assert_eq!(run.max_seq(), 100);
        assert_eq!(run.min_key(), &key(0));
        assert_eq!(run.max_key(), &key(198));
    }

    #[test]
    fn destroy_frees_pages() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let run = build_run(disk.as_ref(), 20, 8.0);
        assert!(disk.live_pages() > 0);
        run.destroy(disk.as_ref());
        assert_eq!(disk.live_pages(), 0);
    }

    #[test]
    fn empty_builder_returns_none() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let b = RunBuilder::new(1, 256, 8.0);
        assert!(b.finish(disk.as_ref(), 0).is_none());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_push_panics() {
        let mut b = RunBuilder::new(1, 256, 8.0);
        b.push(KvEntry::put(key(5), value(5), 1));
        b.push(KvEntry::put(key(3), value(3), 2));
    }

    /// A run rebuilt from its manifest record and data pages is
    /// observationally identical: same probes, same iteration, same
    /// metadata footprint (the Bloom filter is rebuilt from the same keys
    /// with the same budget).
    #[test]
    fn recover_rebuilds_an_identical_run() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let run = build_run(disk.as_ref(), 80, 8.0);
        let rec = crate::manifest::RunRecord {
            run_id: run.id(),
            extent_id: run.extent().id,
            pages: run.page_count(),
            capacity_bytes: run.capacity_bytes(),
            entry_count: run.entry_count(),
            data_bytes: run.data_bytes(),
            max_seq: run.max_seq(),
            bloom_bits_per_key: 8.0,
            min_key: run.min_key().clone(),
            max_key: run.max_key().clone(),
        };
        let rebuilt = Run::recover(disk.as_ref(), &rec).unwrap();
        assert_eq!(rebuilt.entry_count(), run.entry_count());
        assert_eq!(rebuilt.metadata_bytes(), run.metadata_bytes());
        for i in 0..80u64 {
            let a = run.probe(disk.as_ref(), &key(i * 2));
            let b = rebuilt.probe(disk.as_ref(), &key(i * 2));
            assert_eq!(a, b, "probe {i} diverged after recovery");
        }
        let before: Vec<KvEntry> = run.iter(disk.clone() as Arc<dyn Storage>).collect();
        let after: Vec<KvEntry> = rebuilt.iter(disk.clone() as Arc<dyn Storage>).collect();
        assert_eq!(before, after);
        // A record whose expectations disagree with the pages is rejected.
        let bad = crate::manifest::RunRecord {
            entry_count: rec.entry_count + 1,
            ..rec
        };
        assert!(Run::recover(disk.as_ref(), &bad).is_err());
    }

    #[test]
    fn zero_bits_run_still_correct() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let run = build_run(disk.as_ref(), 30, 0.0);
        let r = run.probe(disk.as_ref(), &key(4));
        assert!(matches!(r.outcome, ProbeOutcome::Found(_)));
        // In-range misses always pay a page read without a filter.
        let r = run.probe(disk.as_ref(), &key(5));
        assert_eq!(r.outcome, ProbeOutcome::FalsePositive);
        assert_eq!(r.pages_read, 1);
    }
}
