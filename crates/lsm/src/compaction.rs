//! K-way merging of sorted entry sources.
//!
//! Compaction sort-merges multiple sorted runs into one, keeping only the
//! newest version (highest sequence number) of each key, and physically
//! dropping tombstones when the merge output lands in the tree's bottom
//! level (below which no older version can exist).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::types::{Key, KvEntry};

/// A sorted source of entries for merging.
pub type EntrySource = Box<dyn Iterator<Item = KvEntry>>;

struct HeapItem {
    key: Key,
    seq: u64,
    source: usize,
    entry: KvEntry,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest key first, and for
        // equal keys the *highest* sequence number first (so the winner is
        // popped before its stale duplicates).
        other
            .key
            .cmp(&self.key)
            .then_with(|| self.seq.cmp(&other.seq))
            .then_with(|| other.source.cmp(&self.source))
    }
}

/// Streaming k-way merge over sorted sources with version resolution.
pub struct MergeIterator {
    heap: BinaryHeap<HeapItem>,
    sources: Vec<EntrySource>,
    drop_tombstones: bool,
    /// Number of input entries consumed (for `c_w` CPU accounting).
    pub entries_in: u64,
    /// Number of entries emitted.
    pub entries_out: u64,
}

impl MergeIterator {
    /// Creates a merge over `sources`; each must yield strictly ascending
    /// keys. If `drop_tombstones` is set, delete markers are elided from the
    /// output (only valid when merging into the bottom level).
    pub fn new(sources: Vec<EntrySource>, drop_tombstones: bool) -> Self {
        let mut m = Self {
            heap: BinaryHeap::with_capacity(sources.len()),
            sources,
            drop_tombstones,
            entries_in: 0,
            entries_out: 0,
        };
        for i in 0..m.sources.len() {
            m.pull(i);
        }
        m
    }

    fn pull(&mut self, source: usize) {
        if let Some(entry) = self.sources[source].next() {
            self.entries_in += 1;
            self.heap.push(HeapItem {
                key: entry.key.clone(),
                seq: entry.seq,
                source,
                entry,
            });
        }
    }
}

impl Iterator for MergeIterator {
    type Item = KvEntry;

    fn next(&mut self) -> Option<KvEntry> {
        loop {
            let top = self.heap.pop()?;
            self.pull(top.source);
            // Discard stale versions of the same key.
            while let Some(peek) = self.heap.peek() {
                if peek.key != top.key {
                    break;
                }
                let stale = self.heap.pop().unwrap();
                self.pull(stale.source);
            }
            if self.drop_tombstones && top.entry.is_tombstone() {
                continue;
            }
            self.entries_out += 1;
            return Some(top.entry);
        }
    }
}

/// Convenience: merges in-memory entry vectors (each sorted) into one vector.
pub fn merge_sorted(batches: Vec<Vec<KvEntry>>, drop_tombstones: bool) -> Vec<KvEntry> {
    let sources: Vec<EntrySource> = batches
        .into_iter()
        .map(|b| Box::new(b.into_iter()) as EntrySource)
        .collect();
    MergeIterator::new(sources, drop_tombstones).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn e(k: &str, v: &str, seq: u64) -> KvEntry {
        KvEntry::put(
            Bytes::copy_from_slice(k.as_bytes()),
            Bytes::copy_from_slice(v.as_bytes()),
            seq,
        )
    }

    fn d(k: &str, seq: u64) -> KvEntry {
        KvEntry::delete(Bytes::copy_from_slice(k.as_bytes()), seq)
    }

    #[test]
    fn merges_disjoint_sources() {
        let out = merge_sorted(
            vec![vec![e("a", "1", 1), e("c", "3", 2)], vec![e("b", "2", 3)]],
            false,
        );
        let keys: Vec<&[u8]> = out.iter().map(|x| x.key.as_ref()).collect();
        assert_eq!(keys, vec![b"a".as_ref(), b"b".as_ref(), b"c".as_ref()]);
    }

    #[test]
    fn newest_version_wins() {
        let out = merge_sorted(
            vec![
                vec![e("k", "old", 1)],
                vec![e("k", "mid", 5)],
                vec![e("k", "new", 9)],
            ],
            false,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value.as_ref(), b"new");
        assert_eq!(out[0].seq, 9);
    }

    #[test]
    fn tombstone_shadows_older_put() {
        let out = merge_sorted(vec![vec![e("k", "v", 1)], vec![d("k", 2)]], false);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_tombstone());
    }

    #[test]
    fn tombstones_dropped_at_bottom() {
        let out = merge_sorted(
            vec![vec![e("a", "1", 1), e("k", "v", 2)], vec![d("k", 3)]],
            true,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key.as_ref(), b"a");
    }

    #[test]
    fn newer_put_survives_older_tombstone() {
        let out = merge_sorted(vec![vec![d("k", 1)], vec![e("k", "alive", 2)]], true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value.as_ref(), b"alive");
    }

    #[test]
    fn counts_in_and_out() {
        let sources: Vec<EntrySource> = vec![
            Box::new(vec![e("a", "1", 1), e("b", "2", 2)].into_iter()),
            Box::new(vec![e("b", "3", 3)].into_iter()),
        ];
        let mut m = MergeIterator::new(sources, false);
        let out: Vec<KvEntry> = m.by_ref().collect();
        assert_eq!(out.len(), 2);
        assert_eq!(m.entries_in, 3);
        assert_eq!(m.entries_out, 2);
    }

    #[test]
    fn empty_sources() {
        let out = merge_sorted(vec![vec![], vec![]], false);
        assert!(out.is_empty());
        let out: Vec<KvEntry> = MergeIterator::new(vec![], false).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn many_sources_interleaved() {
        // 8 sources with interleaved keys; result must be globally sorted.
        let mut batches = Vec::new();
        for s in 0..8u64 {
            let batch: Vec<KvEntry> = (0..20u64)
                .map(|i| {
                    let k = i * 8 + s;
                    KvEntry::put(
                        Bytes::copy_from_slice(&k.to_be_bytes()),
                        Bytes::new(),
                        s + 1,
                    )
                })
                .collect();
            batches.push(batch);
        }
        let out = merge_sorted(batches, false);
        assert_eq!(out.len(), 160);
        for w in out.windows(2) {
            assert!(w[0].key < w[1].key);
        }
    }
}
