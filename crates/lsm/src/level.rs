//! A single FLSM-tree level.
//!
//! A level holds a set of *sealed* runs plus at most one *active* run. The
//! active run admits batches merged down from the level above; when it
//! reaches its capacity it is sealed and a fresh active run is opened. In
//! contrast to a classic LSM-tree, sealed runs may have **different sizes**,
//! because each run's capacity is fixed at its creation from the policy in
//! force at that moment (§4.2). The level's compaction policy `K` only
//! governs the capacity of the *current and future* active runs:
//! `active_capacity = C / K`.

use std::sync::Arc;

use crate::run::Run;
use crate::types::Key;

/// One level of the FLSM-tree.
#[derive(Debug)]
pub struct Level {
    /// Zero-based index (0 = the paper's Level 1).
    pub index: usize,
    /// Level capacity `C_i` in bytes.
    pub capacity: u64,
    /// Current compaction policy `K_i ∈ [1, T]`.
    pub policy: u32,
    /// Policy recorded but not yet applied (lazy transition, §4.1).
    pub pending_policy: Option<u32>,
    /// Sealed runs, oldest first. Never modified by transitions. Runs are
    /// shared handles: snapshots and in-flight background merges may pin
    /// the same run while it stays resident here.
    pub sealed: Vec<Arc<Run>>,
    /// The run currently admitting merged batches from above, if any.
    pub active: Option<Arc<Run>>,
    /// Aggregate `[min, max]` key range over every resident run, cached
    /// so a lookup can reject out-of-range keys in O(1) without touching
    /// a single run. `None` while the level is empty. Maintained by
    /// [`Level::refresh_bounds`], which the tree calls at every
    /// structural mutation (admit, merge, bulk load, recovery); must
    /// always equal [`Level::computed_bounds`].
    pub bounds: Option<(Key, Key)>,
}

impl Level {
    /// Creates an empty level.
    pub fn new(index: usize, capacity: u64, policy: u32) -> Self {
        assert!(policy >= 1, "policy must be at least 1");
        Self {
            index,
            capacity,
            policy,
            pending_policy: None,
            sealed: Vec::new(),
            active: None,
            bounds: None,
        }
    }

    /// Capacity of the active run under the current policy: `C / K`.
    pub fn active_capacity(&self) -> u64 {
        (self.capacity / self.policy as u64).max(1)
    }

    /// Total logical bytes stored in the level.
    pub fn data_bytes(&self) -> u64 {
        self.sealed.iter().map(|r| r.data_bytes()).sum::<u64>()
            + self.active.as_ref().map_or(0, |r| r.data_bytes())
    }

    /// Total entries stored in the level.
    pub fn entry_count(&self) -> u64 {
        self.sealed.iter().map(|r| r.entry_count()).sum::<u64>()
            + self.active.as_ref().map_or(0, |r| r.entry_count())
    }

    /// Number of runs currently in the level (sealed + active).
    pub fn run_count(&self) -> usize {
        self.sealed.len() + usize::from(self.active.is_some())
    }

    /// Fill ratio `D/C ∈ [0, ~1]` (may transiently exceed 1 right before a
    /// full-level merge).
    pub fn fill_ratio(&self) -> f64 {
        self.data_bytes() as f64 / self.capacity as f64
    }

    /// Whether the level has reached capacity and must merge down.
    pub fn is_full(&self) -> bool {
        self.data_bytes() >= self.capacity
    }

    /// Seals the active run (no-op when there is none).
    pub fn seal_active(&mut self) {
        if let Some(run) = self.active.take() {
            self.sealed.push(run);
        }
    }

    /// Runs in probe order: active first (newest data), then sealed runs
    /// newest-to-oldest.
    pub fn probe_order(&self) -> impl Iterator<Item = &Arc<Run>> {
        self.active.iter().chain(self.sealed.iter().rev())
    }

    /// Removes and returns all runs (active first sealed last — age does not
    /// matter for a full merge, sequence numbers resolve versions).
    pub fn take_all_runs(&mut self) -> Vec<Arc<Run>> {
        let mut runs: Vec<Arc<Run>> = self.active.take().into_iter().collect();
        runs.append(&mut self.sealed);
        self.bounds = None;
        runs
    }

    /// Recomputes the cached aggregate bounds from the resident runs.
    /// Called by the tree after every mutation that changes the level's
    /// run membership.
    pub fn refresh_bounds(&mut self) {
        self.bounds = self.computed_bounds();
    }

    /// The aggregate `[min, max]` key range computed fresh from the
    /// resident runs — the value the cached [`Level::bounds`] must equal
    /// (the invariant the bounds tests pin).
    pub fn computed_bounds(&self) -> Option<(Key, Key)> {
        self.probe_order().fold(None, |acc, run| {
            Some(match acc {
                None => (run.min_key().clone(), run.max_key().clone()),
                Some((lo, hi)) => (
                    if *run.min_key() < lo {
                        run.min_key().clone()
                    } else {
                        lo
                    },
                    if *run.max_key() > hi {
                        run.max_key().clone()
                    } else {
                        hi
                    },
                ),
            })
        })
    }

    /// O(1) out-of-range rejection: whether `key` falls inside the
    /// level's aggregate bounds (false for an empty level).
    pub fn key_in_bounds(&self, key: &[u8]) -> bool {
        self.bounds
            .as_ref()
            .is_some_and(|(lo, hi)| lo.as_ref() <= key && key <= hi.as_ref())
    }

    /// Applies the flexible transition for a new policy `k` (§4.2): change
    /// the policy, retarget the active run's capacity, and seal it
    /// immediately if it already exceeds the new capacity.
    pub fn apply_flexible(&mut self, k: u32) {
        self.policy = k;
        self.pending_policy = None;
        let cap = self.active_capacity();
        if let Some(active) = &self.active {
            active.set_capacity_bytes(cap);
            if active.data_bytes() >= cap {
                self.seal_active();
            }
        }
    }

    /// Records a lazy transition: the policy will be adopted when the level
    /// next empties via a full-level merge.
    pub fn apply_lazy(&mut self, k: u32) {
        if k == self.policy {
            self.pending_policy = None;
        } else {
            self.pending_policy = Some(k);
        }
    }

    /// Adopts any pending (lazy) policy; called right after the level
    /// empties through a full-level compaction.
    pub fn adopt_pending_policy(&mut self) {
        if let Some(k) = self.pending_policy.take() {
            self.policy = k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_level_accounting() {
        let l = Level::new(0, 1000, 2);
        assert_eq!(l.data_bytes(), 0);
        assert_eq!(l.run_count(), 0);
        assert_eq!(l.fill_ratio(), 0.0);
        assert!(!l.is_full());
        assert_eq!(l.active_capacity(), 500);
    }

    #[test]
    fn active_capacity_follows_policy() {
        let mut l = Level::new(0, 1000, 1);
        assert_eq!(l.active_capacity(), 1000);
        l.policy = 4;
        assert_eq!(l.active_capacity(), 250);
        l.policy = 10;
        assert_eq!(l.active_capacity(), 100);
    }

    #[test]
    fn lazy_records_without_applying() {
        let mut l = Level::new(0, 1000, 2);
        l.apply_lazy(5);
        assert_eq!(l.policy, 2);
        assert_eq!(l.pending_policy, Some(5));
        l.adopt_pending_policy();
        assert_eq!(l.policy, 5);
        assert_eq!(l.pending_policy, None);
    }

    #[test]
    fn lazy_same_policy_clears_pending() {
        let mut l = Level::new(0, 1000, 2);
        l.apply_lazy(5);
        l.apply_lazy(2);
        assert_eq!(l.pending_policy, None);
    }

    #[test]
    fn flexible_changes_policy_immediately() {
        let mut l = Level::new(0, 1000, 2);
        l.apply_flexible(8);
        assert_eq!(l.policy, 8);
        assert_eq!(l.pending_policy, None);
        assert_eq!(l.active_capacity(), 125);
    }
}
