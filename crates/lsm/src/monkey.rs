//! Monkey Bloom-filter allocation (Dayan et al., SIGMOD'17), §5.2 Case 2.
//!
//! Mainstream designs give every level the same bits-per-key ("uniform").
//! Monkey instead assigns exponentially higher false-positive rates to larger
//! levels — `f_i = T^{i−1} · f_1` — which minimizes the total expected probe
//! cost for a fixed memory budget. The RusKey policy-propagation lemma
//! (Lemma 5.1) is derived under exactly this allocation.

use crate::bloom::{bits_for_fpr, fpr_for_bits};

/// Per-level false-positive rate under the Monkey scheme.
///
/// `level` is zero-based (level 0 = the paper's Level 1). FPRs are capped at
/// 1.0; a level with `f_i ≥ 1` receives no filter memory at all.
pub fn monkey_fpr(level1_fpr: f64, size_ratio: u32, level: usize) -> f64 {
    let f = level1_fpr * (size_ratio as f64).powi(level as i32);
    f.min(1.0)
}

/// Per-level bits-per-key under the Monkey scheme.
pub fn monkey_bits_per_key(level1_fpr: f64, size_ratio: u32, level: usize) -> f64 {
    bits_for_fpr(monkey_fpr(level1_fpr, size_ratio, level))
}

/// Per-level false-positive rate under the uniform scheme.
pub fn uniform_fpr(bits_per_key: f64) -> f64 {
    fpr_for_bits(bits_per_key)
}

/// Total filter memory (bits) for a tree where level `i` holds
/// `entries_per_level[i]` keys, under Monkey with the given `level1_fpr`.
pub fn monkey_total_bits(level1_fpr: f64, size_ratio: u32, entries_per_level: &[u64]) -> f64 {
    entries_per_level
        .iter()
        .enumerate()
        .map(|(i, &n)| n as f64 * monkey_bits_per_key(level1_fpr, size_ratio, i))
        .sum()
}

/// Finds the `level1_fpr` whose Monkey allocation uses (approximately) the
/// same total memory as a uniform allocation with `uniform_bits` bits/key,
/// enabling apples-to-apples scheme comparisons (the paper lowers RocksDB's
/// default 8 bits/key to 4 under Monkey for this reason).
pub fn equivalent_level1_fpr(uniform_bits: f64, size_ratio: u32, entries_per_level: &[u64]) -> f64 {
    let budget: f64 = entries_per_level
        .iter()
        .map(|&n| n as f64 * uniform_bits)
        .sum();
    if budget <= 0.0 {
        return 1.0;
    }
    // Monotone in f1: bisect.
    let (mut lo, mut hi) = (1e-9f64, 1.0f64);
    for _ in 0..80 {
        let mid = (lo * hi).sqrt(); // geometric bisection: f1 spans decades
        let used = monkey_total_bits(mid, size_ratio, entries_per_level);
        if used > budget {
            lo = mid; // too much memory → allow higher FPR
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpr_grows_by_t_per_level() {
        let f1 = 0.001;
        let t = 10;
        assert!((monkey_fpr(f1, t, 0) - 0.001).abs() < 1e-12);
        assert!((monkey_fpr(f1, t, 1) - 0.01).abs() < 1e-12);
        assert!((monkey_fpr(f1, t, 2) - 0.1).abs() < 1e-12);
        assert_eq!(monkey_fpr(f1, t, 3), 1.0);
        assert_eq!(monkey_fpr(f1, t, 9), 1.0);
    }

    #[test]
    fn deepest_levels_get_zero_bits() {
        let bits = monkey_bits_per_key(0.01, 10, 5);
        assert_eq!(bits, 0.0);
        let bits1 = monkey_bits_per_key(0.01, 10, 0);
        assert!(bits1 > 6.0, "level 1 should get a real filter, got {bits1}");
    }

    #[test]
    fn bits_decrease_with_depth() {
        let f1 = 0.0001;
        let mut prev = f64::INFINITY;
        for lvl in 0..6 {
            let b = monkey_bits_per_key(f1, 10, lvl);
            assert!(b <= prev, "bits must be non-increasing with depth");
            prev = b;
        }
    }

    #[test]
    fn equivalent_budget_matches() {
        // Exponentially growing levels, T = 10.
        let entries = [1_000u64, 10_000, 100_000, 1_000_000];
        let uniform_bits = 8.0;
        let f1 = equivalent_level1_fpr(uniform_bits, 10, &entries);
        let used = monkey_total_bits(f1, 10, &entries);
        let budget: f64 = entries.iter().map(|&n| n as f64 * uniform_bits).sum();
        assert!(
            (used - budget).abs() / budget < 0.05,
            "memory within 5%: used={used} budget={budget} f1={f1}"
        );
        // Monkey should give level 1 a *lower* FPR than uniform for the
        // same budget (that is the entire point of the scheme).
        assert!(f1 < fpr_for_bits(uniform_bits));
    }
}
