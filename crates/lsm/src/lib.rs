//! The FLSM-tree engine of the RusKey reproduction.
//!
//! This crate implements the paper's §4 contribution plus the classic
//! LSM-tree substrate it extends:
//!
//! * a write-buffer [`memtable`], sorted disk-resident [`run`]s with
//!   [`bloom`] filters and [`fence`] pointers, and k-way merging
//!   [`compaction`];
//! * per-level compaction policies `K_i` (max number of sorted runs in
//!   level *i*, `K_i ∈ [1, T]`; `K_i = 1` is leveling, `K_i = T` is tiering),
//!   following Dostoevsky's hybrid-policy formulation;
//! * the **FLSM-tree** ([`tree::FlsmTree`]): a flexible LSM-tree that allows
//!   *different-sized runs in one level*, so a policy change only affects the
//!   capacity of the level's *active run* — the flexible transition of §4.2;
//! * the two baseline transition strategies of §4.1 (**greedy**: flush the
//!   level immediately; **lazy**: defer the new policy until the level next
//!   empties), selectable per tree via [`transition::TransitionStrategy`];
//! * Bloom-filter memory schemes: uniform bits-per-key and the **Monkey**
//!   allocation (`f_i = T^{i-1}·f_1`) used in §5.2 Case 2 ([`monkey`]);
//! * exact per-level statistics ([`stats`]) feeding the RL reward
//!   (`t_i`, the level-based latency) and the experiment harness;
//! * a write-ahead log ([`wal`]) that an [`tree::FlsmTree`] optionally
//!   owns: puts/deletes are logged before the memtable insert, the log
//!   truncates on flush, and [`tree::FlsmTree::recover`] rebuilds the
//!   write buffer from the log's valid prefix after a crash (see the
//!   [`wal`] module docs for the durability contract and crash-injection
//!   hooks);
//! * a versioned, checksummed [`manifest`] that records every structural
//!   edit (runs created/removed, policy transitions, flush watermarks) as
//!   an append-only log with atomic checkpoint compaction, so
//!   [`tree::FlsmTree::recover_persistent`] can rebuild the *full*
//!   run/level structure from the manifest plus the data pages on a
//!   persistent storage backend, replaying the WAL tail on top;
//! * **background maintenance**: runs are immutable shared handles
//!   (`Arc<Run>`), so reads pin structure instead of borrowing it — a
//!   cheap [`tree::TreeSnapshot`] stays valid across concurrent merges —
//!   and with [`config::LsmConfig::background_maintenance`] enabled a
//!   score-based [`picker`] moves flushes and compactions off the write
//!   path into explicit [`tree::FlsmTree::step_maintenance`] steps.
//!
//! All I/O goes through the [`ruskey_storage::Storage`] abstraction so the
//! engine runs identically on the simulated device and on real files.

#![warn(missing_docs)]

pub mod bloom;
pub mod compaction;
pub mod config;
pub mod entry;
pub mod fence;
pub mod iter;
pub mod level;
pub mod manifest;
pub mod memtable;
pub mod monkey;
pub mod picker;
pub mod run;
pub mod stats;
pub mod transition;
pub mod tree;
pub mod types;
pub mod wal;

pub use config::{BloomScheme, ConfigError, LsmConfig};
pub use manifest::{Manifest, ManifestCrashPoint, ManifestEdit, ManifestState, RunRecord};
pub use picker::{CompactionPick, CompactionPicker, PickerConfig, SCORE_SCALE};
pub use stats::{LevelStatsSnapshot, TreeStatsSnapshot};
pub use transition::TransitionStrategy;
pub use tree::{FlsmTree, TreeSnapshot};
pub use types::{Key, KvEntry, OpKind, SeqNo, Value};
pub use wal::{CrashPoint, Wal};
