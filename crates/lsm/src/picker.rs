//! Score-based compaction picker.
//!
//! Inline mode merges a level the moment it fills, on the write path. In
//! background mode the tree instead asks the picker *which* level most
//! needs work and runs one bounded step at a time off the hot path. The
//! scoring follows the classic level-management scheme (see the jdb
//! snippet in SNIPPETS.md): scores are expressed against a fixed scale,
//! Level 1 (index 0) is additionally scored by run count (runs there are
//! small and each one taxes every lookup), and a level holding a *single*
//! sealed run that overlaps nothing in the next level qualifies for a
//! **trivial move** — re-parenting the run handle without rewriting a
//! byte — as long as the overlap with the *grandparent* level stays
//! bounded, so the move does not set up a pathologically wide merge two
//! levels down.
//!
//! The picker only ever selects **sealed** runs, and a background step
//! always takes *all* of a level's sealed runs. That pair of rules keeps
//! the per-key version ordering of the probe path intact: within a level
//! the active run is strictly newer than every sealed run, so versions of
//! a key can never be split across "moved below" and "left behind".

use std::sync::Arc;

use crate::level::Level;
use crate::run::Run;

/// Fixed-point scale for compaction scores: a score at or above this
/// value means the level needs structural work.
pub const SCORE_SCALE: u64 = 100;

/// Picker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PickerConfig {
    /// Run-count threshold for Level 1 (index 0): the level scores
    /// `run_count · SCORE_SCALE / l0_run_limit` in addition to its byte
    /// fill, so a pile-up of small runs triggers work before the bytes do.
    pub l0_run_limit: u64,
    /// Maximum bytes of grandparent-level overlap a trivial move may
    /// carry; beyond this the runs are merged normally instead.
    pub gp_limit_bytes: u64,
}

impl Default for PickerConfig {
    fn default() -> Self {
        Self {
            l0_run_limit: 4,
            gp_limit_bytes: 640 << 20,
        }
    }
}

/// One unit of work selected by the picker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPick {
    /// Level whose sealed runs should move down (zero-based).
    pub level: usize,
    /// The level's score at pick time (≥ [`SCORE_SCALE`]).
    pub score: u64,
    /// Whether the sealed runs can be re-parented to the next level
    /// without a merge (no overlap with any resident run there, bounded
    /// grandparent overlap).
    pub trivial: bool,
}

/// Selects which level's sealed runs to compact next.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactionPicker {
    cfg: PickerConfig,
}

impl CompactionPicker {
    /// Creates a picker with the given thresholds.
    pub fn new(cfg: PickerConfig) -> Self {
        Self { cfg }
    }

    /// The level's compaction score against [`SCORE_SCALE`]: its byte
    /// fill ratio, and for Level 1 (index 0) also its run count against
    /// the configured limit.
    pub fn level_score(&self, level: &Level) -> u64 {
        let bytes = level
            .data_bytes()
            .saturating_mul(SCORE_SCALE)
            .checked_div(level.capacity)
            .unwrap_or(u64::MAX);
        if level.index == 0 {
            let runs = (level.run_count() as u64).saturating_mul(SCORE_SCALE)
                / self.cfg.l0_run_limit.max(1);
            bytes.max(runs)
        } else {
            bytes
        }
    }

    /// Picks the highest-scoring level that has sealed runs and a score
    /// at or above the scale; ties go to the shallower level (its runs
    /// tax more of the probe path). Returns `None` when no level needs
    /// work — the tree is structurally quiescent.
    pub fn pick(&self, levels: &[Level]) -> Option<CompactionPick> {
        let mut best: Option<CompactionPick> = None;
        for (idx, level) in levels.iter().enumerate() {
            if level.sealed.is_empty() {
                continue;
            }
            let score = self.level_score(level);
            if score < SCORE_SCALE {
                continue;
            }
            if best.is_none_or(|b| score > b.score) {
                best = Some(CompactionPick {
                    level: idx,
                    score,
                    trivial: self.is_trivial_move(levels, idx),
                });
            }
        }
        best
    }

    /// Whether `levels[idx]`'s sealed runs can move to `idx + 1` without
    /// a merge: there must be exactly **one** (several sealed runs carry
    /// redundant versions — relocating them would just push the merge
    /// debt down a level), it must overlap **no** resident run at the
    /// target (active or sealed — the target's probe order would
    /// otherwise serve stale versions), and its overlap with the
    /// grandparent level must not exceed the configured bound.
    pub fn is_trivial_move(&self, levels: &[Level], idx: usize) -> bool {
        let candidates = &levels[idx].sealed;
        if candidates.len() != 1 {
            return false;
        }
        if let Some(target) = levels.get(idx + 1) {
            let overlaps = candidates
                .iter()
                .any(|run| target.probe_order().any(|res| runs_overlap(run, res)));
            if overlaps {
                return false;
            }
        }
        let gp = levels
            .get(idx + 2)
            .map_or(0, |g| overlap_bytes(candidates, g));
        gp <= self.cfg.gp_limit_bytes
    }
}

/// Whether two runs' key ranges intersect.
pub fn runs_overlap(a: &Run, b: &Run) -> bool {
    a.min_key() <= b.max_key() && b.min_key() <= a.max_key()
}

/// Total data bytes of `target` runs whose key range intersects any of
/// `runs` — the work a future merge at `target` would have to rewrite.
pub fn overlap_bytes(runs: &[Arc<Run>], target: &Level) -> u64 {
    target
        .probe_order()
        .filter(|res| runs.iter().any(|r| runs_overlap(r, res)))
        .map(|res| res.data_bytes())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::RunBuilder;
    use crate::types::KvEntry;
    use bytes::Bytes;
    use ruskey_storage::{CostModel, SimulatedDisk, Storage};

    fn key(i: u64) -> Bytes {
        Bytes::from(format!("key-{i:06}"))
    }

    /// A run spanning `[lo, hi]` with one filler entry per step of 2.
    fn run_in(storage: &dyn Storage, id: u64, lo: u64, hi: u64) -> Arc<Run> {
        let mut b = RunBuilder::new(id, storage.page_size(), 8.0);
        let mut i = lo;
        let mut seq = 1;
        while i < hi {
            b.push(KvEntry::put(key(i), Bytes::from_static(b"v"), seq));
            seq += 1;
            i += 2;
        }
        b.push(KvEntry::put(key(hi), Bytes::from_static(b"v"), seq));
        Arc::new(b.finish(storage, u64::MAX).unwrap())
    }

    fn level_with(index: usize, capacity: u64, sealed: Vec<Arc<Run>>) -> Level {
        let mut l = Level::new(index, capacity, 1);
        l.sealed = sealed;
        l.refresh_bounds();
        l
    }

    #[test]
    fn scores_order_by_fill_and_pick_prefers_fullest() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let p = CompactionPicker::default();
        // Level 0 barely filled, level 1 grossly over capacity.
        let l0 = level_with(0, 1 << 30, vec![run_in(disk.as_ref(), 1, 0, 10)]);
        let big = run_in(disk.as_ref(), 2, 0, 400);
        let l1 = level_with(1, big.data_bytes() / 2, vec![big]);
        assert!(p.level_score(&l0) < SCORE_SCALE);
        assert!(p.level_score(&l1) >= SCORE_SCALE);
        let pick = p.pick(&[l0, l1]).expect("over-capacity level needs work");
        assert_eq!(pick.level, 1);
        assert!(pick.score >= SCORE_SCALE);
    }

    #[test]
    fn level0_scores_by_run_count_too() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let p = CompactionPicker::default();
        // Capacity far above the data: bytes alone would never trigger,
        // but 5 runs against an L0 limit of 4 must.
        let sealed: Vec<Arc<Run>> = (0..5)
            .map(|i| run_in(disk.as_ref(), i + 1, i * 100, i * 100 + 50))
            .collect();
        let l0 = level_with(0, 1 << 30, sealed);
        assert!(p.level_score(&l0) >= SCORE_SCALE);
        let pick = p.pick(&[l0]).expect("run pile-up needs work");
        assert_eq!(pick.level, 0);
    }

    #[test]
    fn quiescent_levels_pick_nothing() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let p = CompactionPicker::default();
        let l0 = level_with(0, 1 << 30, vec![run_in(disk.as_ref(), 1, 0, 10)]);
        // A full level with no sealed runs is not pickable either.
        let mut l1 = Level::new(1, 1, 1);
        l1.refresh_bounds();
        assert!(p.pick(&[l0, l1]).is_none());
    }

    #[test]
    fn disjoint_runs_are_a_trivial_move() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let p = CompactionPicker::default();
        let l0 = level_with(0, 1, vec![run_in(disk.as_ref(), 1, 0, 99)]);
        let l1 = level_with(1, 1 << 30, vec![run_in(disk.as_ref(), 2, 200, 299)]);
        let pick = p.pick(&[l0, l1]).unwrap();
        assert_eq!(pick.level, 0);
        assert!(pick.trivial, "no overlap at the target level");
    }

    #[test]
    fn multiple_sealed_runs_disqualify_a_trivial_move() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let p = CompactionPicker::default();
        // Both runs are disjoint from the (empty) target, but moving two
        // mutually redundant runs would only relocate the merge debt.
        let l0 = level_with(
            0,
            1,
            vec![
                run_in(disk.as_ref(), 1, 0, 99),
                run_in(disk.as_ref(), 2, 0, 99),
            ],
        );
        let l1 = level_with(1, 1 << 30, vec![]);
        let pick = p.pick(&[l0, l1]).unwrap();
        assert!(!pick.trivial, "a multi-run level must merge, not move");
    }

    #[test]
    fn target_overlap_disqualifies_a_trivial_move() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let p = CompactionPicker::default();
        let l0 = level_with(0, 1, vec![run_in(disk.as_ref(), 1, 0, 99)]);
        let l1 = level_with(1, 1 << 30, vec![run_in(disk.as_ref(), 2, 50, 150)]);
        let pick = p.pick(&[l0, l1]).unwrap();
        assert_eq!(pick.level, 0);
        assert!(!pick.trivial, "target-level overlap forces a merge");
    }

    #[test]
    fn grandparent_overlap_bounds_a_trivial_move() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let l0 = level_with(0, 1, vec![run_in(disk.as_ref(), 1, 0, 99)]);
        let l1 = level_with(1, 1 << 30, vec![run_in(disk.as_ref(), 2, 200, 299)]);
        let gp_run = run_in(disk.as_ref(), 3, 0, 99);
        let gp_bytes = gp_run.data_bytes();
        let l2 = level_with(2, 1 << 30, vec![gp_run]);
        assert_eq!(overlap_bytes(&l0.sealed, &l2), gp_bytes);

        let generous = CompactionPicker::new(PickerConfig {
            gp_limit_bytes: gp_bytes,
            ..PickerConfig::default()
        });
        let strict = CompactionPicker::new(PickerConfig {
            gp_limit_bytes: gp_bytes - 1,
            ..PickerConfig::default()
        });
        let levels = [l0, l1, l2];
        assert!(generous.is_trivial_move(&levels, 0));
        assert!(
            !strict.is_trivial_move(&levels, 0),
            "over-bound grandparent overlap must force a merge"
        );
    }
}
