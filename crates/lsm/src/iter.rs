//! Streaming range scans.

use crate::compaction::{EntrySource, MergeIterator};
use crate::types::{Key, KvEntry, Value};

/// A streaming, merged, version-resolved range scan over `[start, end)`.
///
/// Wraps a [`MergeIterator`] over per-run iterators and the memtable,
/// excluding tombstoned keys and stopping at the end bound. Constructed by
/// [`crate::FlsmTree::scan_iter`].
pub struct RangeScan {
    inner: MergeIterator,
    end: Key,
    remaining: usize,
}

impl RangeScan {
    /// Builds a scan from pre-seeked sorted sources.
    pub fn new(sources: Vec<EntrySource>, end: Key, limit: usize) -> Self {
        Self {
            inner: MergeIterator::new(sources, true),
            end,
            remaining: limit,
        }
    }
}

impl Iterator for RangeScan {
    type Item = (Key, Value);

    fn next(&mut self) -> Option<(Key, Value)> {
        if self.remaining == 0 {
            return None;
        }
        let e: KvEntry = self.inner.next()?;
        if e.key >= self.end {
            self.remaining = 0;
            return None;
        }
        self.remaining -= 1;
        Some((e.key, e.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn e(k: &str, v: &str, seq: u64) -> KvEntry {
        KvEntry::put(
            Bytes::copy_from_slice(k.as_bytes()),
            Bytes::copy_from_slice(v.as_bytes()),
            seq,
        )
    }

    #[test]
    fn scan_stops_at_end_and_limit() {
        let src: EntrySource = Box::new(
            vec![
                e("a", "1", 1),
                e("b", "2", 2),
                e("c", "3", 3),
                e("d", "4", 4),
            ]
            .into_iter(),
        );
        let got: Vec<_> = RangeScan::new(vec![src], Bytes::from_static(b"d"), 10).collect();
        assert_eq!(got.len(), 3);

        let src: EntrySource =
            Box::new(vec![e("a", "1", 1), e("b", "2", 2), e("c", "3", 3)].into_iter());
        let got: Vec<_> = RangeScan::new(vec![src], Bytes::from_static(b"zzz"), 2).collect();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn scan_skips_tombstones() {
        let newer: EntrySource =
            Box::new(vec![KvEntry::delete(Bytes::from_static(b"b"), 10)].into_iter());
        let older: EntrySource = Box::new(vec![e("a", "1", 1), e("b", "2", 2)].into_iter());
        let got: Vec<_> =
            RangeScan::new(vec![newer, older], Bytes::from_static(b"zzz"), 10).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0.as_ref(), b"a");
    }
}
