//! Bloom filters.
//!
//! One filter per sorted run, probed before any disk access (paper §2). The
//! implementation uses the classic double-hashing scheme (Kirsch &
//! Mitzenmacher): two independent 64-bit hashes `h1`, `h2` generate the `k`
//! probe positions `h1 + i·h2`. The number of hash functions is derived from
//! the bits-per-key as `k = round(bits · ln 2)`, as in LevelDB/RocksDB.

/// Analytic false-positive rate for a filter with `bits_per_key` bits/key.
///
/// `f = (1 − e^{−k/bpk·...})^k ≈ 0.6185^{bits_per_key}` at the optimal `k`.
pub fn fpr_for_bits(bits_per_key: f64) -> f64 {
    if bits_per_key <= 0.0 {
        return 1.0;
    }
    let k = (bits_per_key * std::f64::consts::LN_2).round().max(1.0);
    (1.0 - (-k / bits_per_key).exp()).powf(k)
}

/// Bits-per-key needed for a target false-positive rate.
///
/// Inverse of the optimum `f = 2^{−bits·ln2}`: `bits = −ln f / (ln 2)²`.
pub fn bits_for_fpr(fpr: f64) -> f64 {
    if fpr >= 1.0 {
        return 0.0;
    }
    let f = fpr.max(1e-12);
    -f.ln() / (std::f64::consts::LN_2 * std::f64::consts::LN_2)
}

/// 64-bit FNV-1a hash with a seed, used as the base hash pair.
fn fnv1a64(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // Final avalanche (splitmix64 finalizer) to decorrelate the seeds.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// A Bloom filter over a fixed set of keys.
#[derive(Debug, Clone)]
pub struct Bloom {
    bits: Vec<u64>,
    nbits: u64,
    k: u32,
    keys: u64,
}

impl Bloom {
    /// Builds a filter for `keys` with the given bits-per-key budget.
    ///
    /// `bits_per_key == 0` produces a degenerate always-positive filter
    /// (Monkey assigns zero memory to the deepest levels when `f_i ≥ 1`).
    pub fn build<'a>(
        keys: impl Iterator<Item = &'a [u8]>,
        n_keys: usize,
        bits_per_key: f64,
    ) -> Self {
        if bits_per_key <= 0.0 || n_keys == 0 {
            return Self {
                bits: Vec::new(),
                nbits: 0,
                k: 0,
                keys: n_keys as u64,
            };
        }
        let nbits = ((n_keys as f64 * bits_per_key).ceil() as u64).max(64);
        let k = ((bits_per_key * std::f64::consts::LN_2).round() as u32).clamp(1, 30);
        let mut filter = Self {
            bits: vec![0u64; nbits.div_ceil(64) as usize],
            nbits,
            k,
            keys: n_keys as u64,
        };
        for key in keys {
            filter.insert(key);
        }
        filter
    }

    fn insert(&mut self, key: &[u8]) {
        let h1 = fnv1a64(key, 0x51_7c_c1_b7);
        let h2 = fnv1a64(key, 0x85_eb_ca_6b) | 1;
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Probes the filter. `true` means "maybe present"; `false` is definite.
    pub fn contains(&self, key: &[u8]) -> bool {
        if self.nbits == 0 {
            return true; // zero-memory filter: always positive
        }
        let h1 = fnv1a64(key, 0x51_7c_c1_b7);
        let h2 = fnv1a64(key, 0x85_eb_ca_6b) | 1;
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Memory footprint of the bit array in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Number of keys the filter was built over.
    pub fn key_count(&self) -> u64 {
        self.keys
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> u32 {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> [u8; 8] {
        i.to_be_bytes()
    }

    #[test]
    fn no_false_negatives() {
        let keys: Vec<[u8; 8]> = (0..1000).map(key).collect();
        let bloom = Bloom::build(keys.iter().map(|k| k.as_slice()), keys.len(), 10.0);
        for k in &keys {
            assert!(bloom.contains(k));
        }
    }

    #[test]
    fn measured_fpr_tracks_analytic() {
        let n = 10_000u64;
        for bits in [4.0, 8.0, 10.0] {
            let keys: Vec<[u8; 8]> = (0..n).map(key).collect();
            let bloom = Bloom::build(keys.iter().map(|k| k.as_slice()), keys.len(), bits);
            let mut fp = 0u64;
            let probes = 20_000u64;
            for i in 0..probes {
                if bloom.contains(&key(n + i)) {
                    fp += 1;
                }
            }
            let measured = fp as f64 / probes as f64;
            let analytic = fpr_for_bits(bits);
            // Within a factor of two of the analytic optimum.
            assert!(
                measured < analytic * 2.0 + 0.002,
                "bits={bits}: measured {measured} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn zero_bits_always_positive() {
        let keys: Vec<[u8; 8]> = (0..10).map(key).collect();
        let bloom = Bloom::build(keys.iter().map(|k| k.as_slice()), keys.len(), 0.0);
        assert!(bloom.contains(&key(12345)));
        assert_eq!(bloom.memory_bytes(), 0);
    }

    #[test]
    fn bits_fpr_inverses() {
        for bits in [4.0, 8.0, 12.0] {
            let f = fpr_for_bits(bits);
            let back = bits_for_fpr(f);
            assert!((back - bits).abs() < 1.0, "bits={bits} f={f} back={back}");
        }
        assert_eq!(bits_for_fpr(1.0), 0.0);
        assert_eq!(fpr_for_bits(0.0), 1.0);
    }

    #[test]
    fn memory_scales_with_keys() {
        let keys: Vec<[u8; 8]> = (0..1024).map(key).collect();
        let bloom = Bloom::build(keys.iter().map(|k| k.as_slice()), keys.len(), 8.0);
        // 1024 keys * 8 bits = 8192 bits = 1024 bytes (rounded to u64 words).
        assert!(bloom.memory_bytes() >= 1024 && bloom.memory_bytes() <= 1032);
        assert_eq!(bloom.key_count(), 1024);
    }
}
