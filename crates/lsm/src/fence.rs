//! Fence pointers: the in-memory first-key index of a run's pages.
//!
//! With fence pointers, probing a run for a key requires at most one page
//! read (paper §2): a binary search over the first keys locates the unique
//! page that could contain the key.

use crate::types::Key;

/// First-key-per-page index for one sorted run.
#[derive(Debug, Clone, Default)]
pub struct FencePointers {
    first_keys: Vec<Key>,
}

impl FencePointers {
    /// Builds fence pointers from the first key of each page, in page order.
    pub fn new(first_keys: Vec<Key>) -> Self {
        debug_assert!(
            first_keys.windows(2).all(|w| w[0] <= w[1]),
            "pages must be sorted"
        );
        Self { first_keys }
    }

    /// Number of pages indexed.
    pub fn page_count(&self) -> usize {
        self.first_keys.len()
    }

    /// The unique page that may contain `key`, or `None` if `key` sorts
    /// before the first page.
    pub fn locate(&self, key: &[u8]) -> Option<u32> {
        // partition_point: first index whose first_key > key; the candidate
        // page is the one before it.
        let idx = self.first_keys.partition_point(|fk| fk.as_ref() <= key);
        idx.checked_sub(1).map(|i| i as u32)
    }

    /// The first page whose content may include keys `>= key` (for seeking a
    /// range scan). Returns `page_count()` if all pages sort before `key`.
    pub fn seek_page(&self, key: &[u8]) -> u32 {
        // Start from the page that could contain `key` itself.
        self.locate(key).unwrap_or(0)
    }

    /// In-memory footprint in bytes (keys only, ignoring Vec overhead).
    pub fn memory_bytes(&self) -> usize {
        self.first_keys.iter().map(|k| k.len()).sum()
    }

    /// First key of page `idx`.
    pub fn first_key(&self, idx: u32) -> &Key {
        &self.first_keys[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn fences(keys: &[&str]) -> FencePointers {
        FencePointers::new(
            keys.iter()
                .map(|k| Bytes::copy_from_slice(k.as_bytes()))
                .collect(),
        )
    }

    #[test]
    fn locate_exact_and_between() {
        let f = fences(&["b", "f", "m"]);
        assert_eq!(f.locate(b"b"), Some(0));
        assert_eq!(f.locate(b"c"), Some(0));
        assert_eq!(f.locate(b"f"), Some(1));
        assert_eq!(f.locate(b"g"), Some(1));
        assert_eq!(f.locate(b"m"), Some(2));
        assert_eq!(f.locate(b"zzz"), Some(2));
    }

    #[test]
    fn locate_before_first_is_none() {
        let f = fences(&["b", "f"]);
        assert_eq!(f.locate(b"a"), None);
    }

    #[test]
    fn seek_clamps_to_first_page() {
        let f = fences(&["b", "f"]);
        assert_eq!(f.seek_page(b"a"), 0);
        assert_eq!(f.seek_page(b"c"), 0);
        assert_eq!(f.seek_page(b"q"), 1);
    }

    #[test]
    fn empty_fences() {
        let f = FencePointers::default();
        assert_eq!(f.page_count(), 0);
        assert_eq!(f.locate(b"x"), None);
        assert_eq!(f.memory_bytes(), 0);
    }
}
