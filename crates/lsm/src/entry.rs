//! On-page encoding of entries.
//!
//! A page is laid out as:
//!
//! ```text
//! [n_entries: u16] [entry]*
//! entry = [klen: u16] [vlen: u32] [seq: u64] [kind: u8] [key bytes] [value bytes]
//! ```
//!
//! Entries never span pages (the engine enforces `encoded_size <= page
//! capacity`), matching how fence pointers guarantee `O(1)` page reads per
//! run probe in the paper's model.

use bytes::Bytes;

use crate::types::{KvEntry, OpKind};

/// Fixed per-entry header size: klen (2) + vlen (4) + seq (8) + kind (1).
pub const ENTRY_HEADER_BYTES: usize = 2 + 4 + 8 + 1;

/// Fixed per-page header size: entry count (2).
pub const PAGE_HEADER_BYTES: usize = 2;

/// Serializes entries into a page buffer. Returns `None` (and leaves `buf`
/// untouched) if the entry would not fit in a page of `page_size` bytes given
/// the current buffer content.
pub fn append_entry(buf: &mut Vec<u8>, e: &KvEntry, page_size: usize) -> bool {
    let need = e.encoded_size();
    let used = if buf.is_empty() {
        PAGE_HEADER_BYTES
    } else {
        buf.len()
    };
    if used + need > page_size {
        return false;
    }
    if buf.is_empty() {
        buf.extend_from_slice(&0u16.to_le_bytes());
    }
    buf.extend_from_slice(&(e.key.len() as u16).to_le_bytes());
    buf.extend_from_slice(&(e.value.len() as u32).to_le_bytes());
    buf.extend_from_slice(&e.seq.to_le_bytes());
    buf.push(e.kind.to_byte());
    buf.extend_from_slice(&e.key);
    buf.extend_from_slice(&e.value);
    let n = u16::from_le_bytes([buf[0], buf[1]]) + 1;
    buf[0..2].copy_from_slice(&n.to_le_bytes());
    true
}

/// Decodes all entries from an encoded page.
///
/// The page buffer is converted to [`Bytes`] once; keys and values are
/// zero-copy slices of it.
pub fn decode_page(page: Vec<u8>) -> Vec<KvEntry> {
    if page.len() < PAGE_HEADER_BYTES {
        return Vec::new();
    }
    let page = Bytes::from(page);
    let n = u16::from_le_bytes([page[0], page[1]]) as usize;
    let mut out = Vec::with_capacity(n);
    let mut off = PAGE_HEADER_BYTES;
    for _ in 0..n {
        let klen = u16::from_le_bytes(page[off..off + 2].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(page[off + 2..off + 6].try_into().unwrap()) as usize;
        let seq = u64::from_le_bytes(page[off + 6..off + 14].try_into().unwrap());
        let kind = OpKind::from_byte(page[off + 14]).expect("corrupt entry kind");
        off += ENTRY_HEADER_BYTES;
        let key = page.slice(off..off + klen);
        off += klen;
        let value = page.slice(off..off + vlen);
        off += vlen;
        out.push(KvEntry {
            key,
            value,
            seq,
            kind,
        });
    }
    out
}

/// Searches an encoded page for `key` without materializing all entries.
pub fn search_page(page: &[u8], key: &[u8]) -> Option<KvEntry> {
    if page.len() < PAGE_HEADER_BYTES {
        return None;
    }
    let n = u16::from_le_bytes([page[0], page[1]]) as usize;
    let mut off = PAGE_HEADER_BYTES;
    for _ in 0..n {
        let klen = u16::from_le_bytes(page[off..off + 2].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(page[off + 2..off + 6].try_into().unwrap()) as usize;
        let seq = u64::from_le_bytes(page[off + 6..off + 14].try_into().unwrap());
        let kind = OpKind::from_byte(page[off + 14]).expect("corrupt entry kind");
        let kstart = off + ENTRY_HEADER_BYTES;
        let k = &page[kstart..kstart + klen];
        // Entries within a page are sorted: stop early once past the key.
        match k.cmp(key) {
            std::cmp::Ordering::Less => {}
            std::cmp::Ordering::Equal => {
                let vstart = kstart + klen;
                return Some(KvEntry {
                    key: Bytes::copy_from_slice(k),
                    value: Bytes::copy_from_slice(&page[vstart..vstart + vlen]),
                    seq,
                    kind,
                });
            }
            std::cmp::Ordering::Greater => return None,
        }
        off = kstart + klen + vlen;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(k: &str, v: &str, seq: u64) -> KvEntry {
        KvEntry::put(
            Bytes::copy_from_slice(k.as_bytes()),
            Bytes::copy_from_slice(v.as_bytes()),
            seq,
        )
    }

    #[test]
    fn roundtrip_single_page() {
        let mut buf = Vec::new();
        let entries = vec![
            entry("a", "1", 1),
            entry("b", "22", 2),
            entry("c", "333", 3),
        ];
        for e in &entries {
            assert!(append_entry(&mut buf, e, 4096));
        }
        let decoded = decode_page(buf);
        assert_eq!(decoded, entries);
    }

    #[test]
    fn rejects_when_full() {
        let mut buf = Vec::new();
        let big = KvEntry::put(Bytes::from(vec![b'k'; 10]), Bytes::from(vec![0u8; 60]), 1);
        let page = 100;
        assert!(append_entry(&mut buf, &big, page));
        assert!(!append_entry(&mut buf, &big, page));
        assert_eq!(decode_page(buf).len(), 1);
    }

    #[test]
    fn tombstones_roundtrip() {
        let mut buf = Vec::new();
        let t = KvEntry::delete(Bytes::from_static(b"gone"), 9);
        assert!(append_entry(&mut buf, &t, 4096));
        let decoded = decode_page(buf);
        assert_eq!(decoded[0], t);
        assert!(decoded[0].is_tombstone());
    }

    #[test]
    fn search_finds_and_misses() {
        let mut buf = Vec::new();
        for e in [
            entry("apple", "1", 1),
            entry("mango", "2", 2),
            entry("zebra", "3", 3),
        ] {
            append_entry(&mut buf, &e, 4096);
        }
        assert_eq!(search_page(&buf, b"mango").unwrap().seq, 2);
        assert!(search_page(&buf, b"banana").is_none());
        assert!(search_page(&buf, b"zzz").is_none());
        assert!(search_page(&buf, b"").is_none());
    }

    #[test]
    fn empty_page_decodes_empty() {
        assert!(decode_page(Vec::new()).is_empty());
        assert!(search_page(&[], b"x").is_none());
    }
}
