//! The FLSM-tree: a flexible LSM-tree with per-level compaction policies and
//! transition-friendly policy changes (§4.2).

use std::sync::Arc;

use ruskey_storage::{Extent, Storage};

use crate::compaction::{EntrySource, MergeIterator};
use crate::config::LsmConfig;
use crate::level::Level;
use crate::manifest::{Manifest, ManifestEdit, RunRecord};
use crate::memtable::Memtable;
use crate::picker::{CompactionPicker, PickerConfig, SCORE_SCALE};
use crate::run::{ProbeOutcome, Run, RunBuilder, RunId};
use crate::stats::{LevelStats, TreeStatsSnapshot};
use crate::transition::TransitionStrategy;
use crate::types::{Key, KvEntry, SeqNo, Value};
use crate::wal::Wal;

/// A deferred merge built by a background maintenance step and applied
/// by a later one: the merged batch waits in memory while the input runs
/// stay resident (and readable) in their level. Crash-safe by
/// construction — nothing structural happens until the apply step logs
/// and commits the edit batch.
struct PendingCompaction {
    /// Level whose sealed runs were merged.
    level: usize,
    /// The sealed runs consumed by the merge, pinned so a concurrent
    /// retire cannot free their extents. Apply revalidates that each is
    /// still resident (a greedy transition may have consumed them).
    inputs: Vec<Arc<Run>>,
    /// The merged output, ready to admit into `level + 1`.
    batch: Vec<KvEntry>,
}

/// A cheap, immutable view of the tree's on-disk run structure.
///
/// Creating one is O(resident runs); cloning is O(1) (a single `Arc`
/// bump). The snapshot *pins* every run it references: background
/// maintenance may retire those runs from the live structure, but their
/// extents — and the block-cache pages mapping them — are freed only
/// after the manifest commit **and** the last pin drops, so reads
/// through a snapshot are immune to concurrent structural changes.
///
/// A snapshot covers only flushed data. The memtable is the mutable
/// front of the tree and is not part of the structural view.
#[derive(Clone)]
pub struct TreeSnapshot {
    inner: Arc<SnapshotInner>,
}

struct SnapshotInner {
    levels: Vec<SnapshotLevel>,
    bounds: Option<(Key, Key)>,
}

struct SnapshotLevel {
    /// Runs in probe order (newest data first), as captured.
    runs: Vec<Arc<Run>>,
    bounds: Option<(Key, Key)>,
}

impl TreeSnapshot {
    /// Point lookup against the pinned structure. Returns the latest
    /// flushed value, or `None` if absent/deleted. Probes in the same
    /// order as [`FlsmTree::get`], with the same O(1) bound rejections;
    /// I/O is charged to `storage` as usual, but no tree statistics are
    /// recorded (the snapshot is immutable).
    pub fn get(&self, storage: &dyn Storage, key: &[u8]) -> Option<Value> {
        match &self.inner.bounds {
            Some((lo, hi)) if lo.as_ref() <= key && key <= hi.as_ref() => {}
            _ => return None,
        }
        for level in &self.inner.levels {
            let in_bounds = level
                .bounds
                .as_ref()
                .is_some_and(|(lo, hi)| lo.as_ref() <= key && key <= hi.as_ref());
            if !in_bounds {
                continue;
            }
            for run in &level.runs {
                if let ProbeOutcome::Found(e) = run.probe(storage, key).outcome {
                    return (!e.is_tombstone()).then_some(e.value);
                }
            }
        }
        None
    }

    /// Number of levels captured.
    pub fn level_count(&self) -> usize {
        self.inner.levels.len()
    }

    /// Total runs pinned by the snapshot.
    pub fn run_count(&self) -> usize {
        self.inner.levels.iter().map(|l| l.runs.len()).sum()
    }
}

/// Keeps a scanned run alive for the lifetime of a streaming scan: the
/// pin defers extent reuse until the iterator drops, extending the
/// deferred-free contract to outstanding scans.
struct PinnedRunIter {
    inner: crate::run::RunIterator,
    _pin: Arc<Run>,
}

impl Iterator for PinnedRunIter {
    type Item = KvEntry;

    fn next(&mut self) -> Option<KvEntry> {
        self.inner.next()
    }
}

/// A flexible LSM-tree.
///
/// ```
/// use ruskey_lsm::{FlsmTree, LsmConfig};
/// use ruskey_storage::{CostModel, SimulatedDisk};
///
/// let disk = SimulatedDisk::new(4096, CostModel::NVME);
/// let mut tree = FlsmTree::new(LsmConfig::scaled_default(), disk);
/// tree.put(&b"hello"[..], &b"world"[..]);
/// assert_eq!(tree.get(b"hello").as_deref(), Some(&b"world"[..]));
/// tree.delete(&b"hello"[..]);
/// assert_eq!(tree.get(b"hello"), None);
/// ```
pub struct FlsmTree {
    storage: Arc<dyn Storage>,
    cfg: LsmConfig,
    memtable: Memtable,
    levels: Vec<Level>,
    level_stats: Vec<LevelStats>,
    seq: SeqNo,
    next_run_id: RunId,
    lookups: u64,
    updates: u64,
    scans: u64,
    flushes: u64,
    /// Optional write-ahead log: when attached, every put/delete is
    /// appended *before* the memtable insert and the log truncates after
    /// each successful memtable flush. WAL I/O is charged to this tree's
    /// storage time domain.
    wal: Option<Wal>,
    /// Optional manifest: when attached, every structural edit (runs
    /// created/removed, transitions, flush watermarks) is recorded and
    /// committed atomically at each mutation boundary, so the full
    /// run/level structure survives a restart on a persistent backend.
    manifest: Option<Manifest>,
    /// Runs superseded by the mutation in flight: with a manifest
    /// attached, their pages are freed only *after* the edit removing
    /// them is durable, so a truncated manifest tail never rolls back to
    /// runs whose pages are already gone.
    pending_retire: Vec<Arc<Run>>,
    /// Runs whose removal is durable (or that never had a manifest) but
    /// that are still pinned by a [`TreeSnapshot`] or an outstanding
    /// scan. Their extents — and the cache pages mapping them — are
    /// freed by [`FlsmTree::reclaim_retired`] once the last pin drops.
    retired: Vec<Arc<Run>>,
    /// A background merge built but not yet applied (see
    /// [`FlsmTree::step_maintenance`]).
    pending_compaction: Option<PendingCompaction>,
    /// Virtual ns the write path spent blocked on structural work
    /// (flushes triggered by `put`/`delete`, backpressure stalls).
    stall_ns: u64,
    /// Real ns acknowledged writes spent queued before this tree executed
    /// them (serving-frontend admission queues; 0 outside serving). A
    /// wall-clock reading, kept apart from the virtual `stall_ns` so the
    /// device model's accounting stays exact.
    queue_stall_ns: u64,
    /// Structural steps completed by background maintenance (applied
    /// merges and trivial moves).
    bg_compactions: u64,
    /// Runs rebuilt from manifest + data pages by the last recovery.
    runs_recovered: u64,
    /// WAL records replayed on top of the recovered structure by the
    /// last recovery.
    replayed_tail: u64,
    /// Extent files orphaned by a pre-commit power cut and garbage-
    /// collected by the last recovery.
    orphans_collected: u64,
    /// True once a storage durability barrier ([`Storage::sync_extent`] /
    /// [`Storage::sync_dir`]) failed: the device power-failed mid-mutation.
    /// Both logs are killed at that instant, so the in-flight mutation can
    /// never commit and `crashed()` reports the store as dead.
    power_failed: bool,
    /// Set when the in-flight mutation fsynced freshly created extents:
    /// their directory entries still need the one `sync_dir` barrier
    /// before the manifest batch referencing them may commit.
    dir_sync_due: bool,
    /// Tree-wide aggregate `[min, max]` key range over every resident
    /// run (all levels), cached so a lookup outside it returns in O(1)
    /// with zero probes and zero I/O. `None` while no runs exist.
    /// Maintained together with the per-level [`Level::bounds`] at every
    /// structural mutation.
    bounds: Option<(Key, Key)>,
}

impl FlsmTree {
    /// Creates an empty tree over `storage`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid ([`LsmConfig::validate`]);
    /// use [`FlsmTree::try_new`] for fallible construction.
    pub fn new(cfg: LsmConfig, storage: Arc<dyn Storage>) -> Self {
        Self::try_new(cfg, storage).unwrap_or_else(|e| panic!("invalid LsmConfig: {e}"))
    }

    /// Creates an empty tree over `storage`, rejecting invalid
    /// configurations instead of panicking.
    pub fn try_new(
        cfg: LsmConfig,
        storage: Arc<dyn Storage>,
    ) -> Result<Self, crate::config::ConfigError> {
        cfg.validate()?;
        Ok(Self {
            storage,
            cfg,
            memtable: Memtable::new(),
            levels: Vec::new(),
            level_stats: Vec::new(),
            seq: 0,
            next_run_id: 1,
            lookups: 0,
            updates: 0,
            scans: 0,
            flushes: 0,
            wal: None,
            manifest: None,
            pending_retire: Vec::new(),
            retired: Vec::new(),
            pending_compaction: None,
            stall_ns: 0,
            queue_stall_ns: 0,
            bg_compactions: 0,
            runs_recovered: 0,
            replayed_tail: 0,
            orphans_collected: 0,
            power_failed: false,
            dir_sync_due: false,
            bounds: None,
        })
    }

    /// Recovers a tree from the write-ahead log at `path`: the log's valid
    /// prefix is replayed into a fresh tree's memtable (replay order pinned
    /// by the sequence numbers in the record headers), any torn tail is
    /// truncated away, and the log stays attached for subsequent writes.
    ///
    /// The WAL protects the write buffer: runs flushed to `storage` before
    /// the crash are the storage backend's durability concern and are not
    /// reconstructed here.
    ///
    /// # Panics
    /// Panics if the configuration is invalid ([`LsmConfig::validate`]).
    pub fn recover(
        cfg: LsmConfig,
        storage: Arc<dyn Storage>,
        path: impl AsRef<std::path::Path>,
        sync_every: u64,
    ) -> std::io::Result<Self> {
        let mut tree = Self::new(cfg, storage);
        tree.replay_wal_tail(path, sync_every)?;
        Ok(tree)
    }

    /// Recovers the WAL at `path`, replays its valid prefix into the
    /// memtable, and attaches the log. Deterministic replay order:
    /// ascending sequence number, so the latest version of a key wins in
    /// the memtable regardless of how the log bytes were produced.
    fn replay_wal_tail(
        &mut self,
        path: impl AsRef<std::path::Path>,
        sync_every: u64,
    ) -> std::io::Result<()> {
        let (wal, mut records) = Wal::recover(path, sync_every)?;
        records.sort_by_key(|e| e.seq);
        self.replayed_tail = records.len() as u64;
        for e in records {
            self.seq = self.seq.max(e.seq);
            self.memtable.insert(e);
        }
        self.wal = Some(wal);
        Ok(())
    }

    /// Recovers a tree from its **two** logs on a persistent storage
    /// backend — the full-store restart path:
    ///
    /// 1. the manifest's longest consistent prefix is folded into the
    ///    run/level structure (policies, sealed/active runs in exact
    ///    probe order, sequence watermark, run-id allocation);
    /// 2. every recorded run is rebuilt from its data pages on `storage`
    ///    ([`Run::recover`] re-derives identical fence pointers and Bloom
    ///    filters, cross-checking the record's integrity expectations);
    /// 3. extents orphaned by a pre-commit power cut — data files no
    ///    recovered run references — are garbage-collected, and their
    ///    ids re-enter allocation safely;
    /// 4. the WAL tail — everything logged since the last flush — is
    ///    replayed into the memtable on top, order pinned by record seq.
    ///
    /// Both logs stay attached for subsequent operation. A WAL tail that
    /// was already superseded by a flush (the crash hit between the
    /// manifest commit and the WAL truncation) replays harmlessly: the
    /// memtable copy carries the same seq as the flushed run's entry, so
    /// reads resolve identically.
    ///
    /// The page reads recovery performs are charged to this tree's
    /// storage time domain like any other I/O.
    pub fn recover_persistent(
        cfg: LsmConfig,
        storage: Arc<dyn Storage>,
        manifest_path: impl AsRef<std::path::Path>,
        wal_path: impl AsRef<std::path::Path>,
        sync_every: u64,
        checkpoint_every: u64,
    ) -> std::io::Result<Self> {
        let (manifest, _edits) = Manifest::recover(manifest_path, checkpoint_every)?;
        let mut tree = Self::try_new(cfg, storage)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let state = manifest.state().clone();
        for (idx, lvl) in state.levels.iter().enumerate() {
            tree.ensure_level(idx);
            if lvl.policy != 0 {
                tree.levels[idx].policy = lvl.policy;
            }
            tree.levels[idx].pending_policy = lvl.pending;
            for rec in &lvl.sealed {
                let run = Arc::new(Run::recover(tree.storage.as_ref(), rec)?);
                tree.seq = tree.seq.max(run.max_seq());
                tree.levels[idx].sealed.push(run);
                tree.runs_recovered += 1;
            }
            if let Some(rec) = &lvl.active {
                let run = Arc::new(Run::recover(tree.storage.as_ref(), rec)?);
                tree.seq = tree.seq.max(run.max_seq());
                tree.levels[idx].active = Some(run);
                tree.runs_recovered += 1;
            }
        }
        tree.seq = tree.seq.max(state.seq);
        tree.next_run_id = state.max_run_id + 1;
        for level in &mut tree.levels {
            level.refresh_bounds();
        }
        tree.refresh_tree_bounds();
        // Garbage-collect extents orphaned by a power cut between their
        // data-page writes and the manifest commit: anything on the
        // device the recovered structure does not reference. Must run
        // *before* the WAL replay — a replay-triggered flush allocates
        // fresh extents the sweep must not touch — and it resets extent-
        // id allocation so the collected ids are safely reusable.
        let live: Vec<u64> = state
            .levels
            .iter()
            .flat_map(|l| l.sealed.iter().chain(l.active.as_ref()))
            .map(|r| r.extent_id)
            .collect();
        tree.orphans_collected = tree.storage.collect_orphans(&live)?.len() as u64;
        tree.replay_wal_tail(wal_path, sync_every)?;
        tree.manifest = Some(manifest);
        Ok(tree)
    }

    /// Attaches a write-ahead log: subsequent puts/deletes append to it
    /// before entering the memtable, and each successful memtable flush
    /// truncates it. Replaces any previously attached log.
    pub fn attach_wal(&mut self, wal: Wal) {
        self.wal = Some(wal);
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// Mutable access to the attached write-ahead log (test harnesses arm
    /// crash points through this).
    pub fn wal_mut(&mut self) -> Option<&mut Wal> {
        self.wal.as_mut()
    }

    /// True if the attached WAL simulated a process crash (fault
    /// injection); a crashed tree's write path is dead.
    pub fn wal_crashed(&self) -> bool {
        self.wal.as_ref().is_some_and(Wal::is_crashed)
    }

    /// Attaches a manifest: subsequent structural edits (flushes,
    /// compactions, transitions, bulk loads) are recorded and committed
    /// atomically at each mutation boundary. The manifest describes the
    /// structure from its own beginning, so it must be attached while the
    /// tree is still empty.
    pub fn attach_manifest(&mut self, manifest: Manifest) {
        debug_assert!(
            self.levels.is_empty() && self.memtable.is_empty(),
            "attach_manifest requires an empty tree"
        );
        self.manifest = Some(manifest);
    }

    /// The attached manifest, if any.
    pub fn manifest(&self) -> Option<&Manifest> {
        self.manifest.as_ref()
    }

    /// Mutable access to the attached manifest (test harnesses arm crash
    /// points and force checkpoints through this).
    pub fn manifest_mut(&mut self) -> Option<&mut Manifest> {
        self.manifest.as_mut()
    }

    /// True if the attached manifest simulated a process crash (fault
    /// injection); a crashed tree's structural write path is dead.
    pub fn manifest_crashed(&self) -> bool {
        self.manifest.as_ref().is_some_and(Manifest::is_crashed)
    }

    /// True if either log simulated a process crash, or the storage
    /// device reported a power failure mid-mutation: the store is dead
    /// and the harness should recover from the logs.
    pub fn crashed(&self) -> bool {
        self.power_failed || self.wal_crashed() || self.manifest_crashed()
    }

    /// True once a storage durability barrier failed (simulated power
    /// cut, or a real fsync error on a file-backed device).
    pub fn power_failed(&self) -> bool {
        self.power_failed
    }

    /// Runs rebuilt from manifest + data pages by the last recovery.
    pub fn runs_recovered(&self) -> u64 {
        self.runs_recovered
    }

    /// WAL records replayed on top by the last recovery.
    pub fn replayed_tail(&self) -> u64 {
        self.replayed_tail
    }

    /// Extent files orphaned by a pre-commit power cut and removed by
    /// the last recovery's garbage-collection sweep.
    pub fn orphans_collected(&self) -> u64 {
        self.orphans_collected
    }

    /// Syncs the attached WAL — the per-shard leg of a group-commit
    /// barrier. Exactly one fsync is issued, and only when unacknowledged
    /// records exist (an idle shard pays nothing), so a batch costs at
    /// most one sync per shard. The fsync's virtual cost is charged to
    /// this tree's storage time domain. Returns whether a sync was issued.
    pub fn commit_wal(&mut self) -> std::io::Result<bool> {
        let Some(wal) = &mut self.wal else {
            return Ok(false);
        };
        if wal.unsynced() == 0 || wal.is_crashed() {
            return Ok(false);
        }
        wal.sync()?;
        if wal.is_crashed() {
            // The (simulated) process died during the sync: nothing was
            // acknowledged and no cost accrues to a dead domain.
            return Ok(false);
        }
        self.storage
            .charge_cpu(self.storage.cost_model().wal_sync_ns);
        Ok(true)
    }

    /// [`FlsmTree::commit_wal`] with its cost measured on this tree's own
    /// storage time domain: returns whether a sync was issued and the
    /// virtual ns the commit leg added to the domain. This is the entry
    /// point the engine's commit barriers call — from the mission thread
    /// for a single tree, or from a persistent shard worker whose legs
    /// run concurrently with its siblings' (the per-domain clock makes
    /// the reading exact either way).
    pub fn commit_wal_timed(&mut self) -> std::io::Result<(bool, u64)> {
        let before = self.storage.clock().now_ns();
        let synced = self.commit_wal()?;
        Ok((synced, self.storage.clock().now_ns() - before))
    }

    /// Attributes real wall-clock ns that acknowledged writes spent queued
    /// before this tree executed them (the serving frontend's per-shard
    /// admission queues). The reading flows into
    /// [`TreeStatsSnapshot::queue_stall_ns`] and the mission report but
    /// never into the virtual clock — queue wait is scheduling delay, not
    /// device work.
    pub fn note_queue_stall_ns(&mut self, ns: u64) {
        self.queue_stall_ns += ns;
    }

    /// The tree's configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.cfg
    }

    /// The storage device the tree runs on.
    pub fn storage(&self) -> &Arc<dyn Storage> {
        &self.storage
    }

    /// Changes the transition strategy used by subsequent policy changes.
    pub fn set_transition_strategy(&mut self, strategy: TransitionStrategy) {
        self.cfg.transition = strategy;
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Inserts or overwrites a key. With a WAL attached the write is
    /// logged before it enters the memtable.
    pub fn put(&mut self, key: impl Into<Key>, value: impl Into<Value>) {
        self.seq += 1;
        self.updates += 1;
        self.storage
            .charge_cpu(self.storage.cost_model().cpu_memtable_ns);
        let e = KvEntry::put(key, value, self.seq);
        self.log_write(&e);
        self.memtable.insert(e);
        self.after_write();
    }

    /// Deletes a key (writes a tombstone). With a WAL attached the
    /// tombstone is logged before it enters the memtable.
    pub fn delete(&mut self, key: impl Into<Key>) {
        self.seq += 1;
        self.updates += 1;
        self.storage
            .charge_cpu(self.storage.cost_model().cpu_memtable_ns);
        let e = KvEntry::delete(key, self.seq);
        self.log_write(&e);
        self.memtable.insert(e);
        self.after_write();
    }

    /// Appends one entry to the attached WAL (no-op without one), charging
    /// the append — and any auto-sync the flush policy triggered — to this
    /// tree's storage time domain.
    fn log_write(&mut self, e: &KvEntry) {
        let Some(wal) = &mut self.wal else {
            return;
        };
        let syncs_before = wal.sync_count();
        wal.append(e).expect("WAL append failed");
        if wal.is_crashed() {
            // Appends on a dead handle are no-ops; a dead process
            // charges nothing to its time domain.
            return;
        }
        let cost = self.storage.cost_model();
        let ns = cost.wal_append_ns + (wal.sync_count() - syncs_before) * cost.wal_sync_ns;
        if ns > 0 {
            self.storage.charge_cpu(ns);
        }
    }

    /// Structural work a `put`/`delete` may have to absorb inline, with
    /// the time it blocks measured onto `stall_ns` (measured elapsed
    /// virtual time — structural I/O and CPU keep their ordinary charges;
    /// the counter only attributes them to the write that waited).
    ///
    /// Inline mode flushes the moment the buffer fills (and the flush may
    /// cascade). Background mode defers the flush to maintenance steps,
    /// keeping only a 2× buffer backstop so an unserviced tree cannot
    /// grow its memtable without bound, and stalls the write while
    /// Level 1 has piled up more than [`LsmConfig::l0_stall_runs`] runs —
    /// the stall *runs* maintenance steps, so it is backpressure that
    /// drains the debt it is blocked on.
    fn after_write(&mut self) {
        let t0 = self.storage.clock().now();
        let limit = if self.cfg.background_maintenance {
            self.cfg.buffer_bytes.saturating_mul(2)
        } else {
            self.cfg.buffer_bytes
        };
        if self.memtable.bytes() >= limit {
            self.flush();
        }
        if self.cfg.background_maintenance {
            let stall_at = self.cfg.l0_stall_runs.max(1);
            while self.level_run_count(0) as u64 > stall_at {
                if !self.step_maintenance() {
                    break;
                }
            }
        }
        self.stall_ns += self.storage.clock().elapsed_since(t0);
    }

    /// Flushes the memtable into Level 1 (index 0) regardless of fill.
    ///
    /// Ordering is the durability contract of the two-log design,
    /// extended to power-failure semantics: the flushed run's data pages
    /// are written *and fsynced* first (extent fsync, then one directory
    /// fsync naming it), then the manifest commits the structural edits
    /// (run added, superseded runs removed, sequence watermark) as one
    /// atomic batch, and only then is the WAL truncated — so at every
    /// crash or power-cut point either the manifest or the WAL still
    /// covers the flushed records, and the manifest never references
    /// pages the device could lose.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let batch = self.memtable.drain_sorted();
        self.flushes += 1;
        self.admit_batch(0, batch);
        let seq = self.seq;
        self.log_edit(ManifestEdit::SeqWatermark { seq });
        self.commit_manifest();
        if self.manifest_crashed() {
            // Simulated process death inside the manifest commit: the
            // WAL must keep its records (they may be the only copy).
            return;
        }
        if let Some(wal) = &mut self.wal {
            wal.reset().expect("WAL reset failed");
        }
    }

    // ------------------------------------------------------------------
    // Manifest plumbing
    // ------------------------------------------------------------------

    /// Buffers one structural edit into the attached manifest's current
    /// batch (no-op without one).
    fn log_edit(&mut self, edit: ManifestEdit) {
        if let Some(m) = &mut self.manifest {
            m.log(edit);
        }
    }

    /// Declares the device power-failed: both logs are killed so the
    /// in-flight mutation can never commit — exactly the state a real
    /// power cut leaves. The WAL's durable on-disk prefix still covers
    /// every acknowledged record, which is what recovery replays.
    fn power_fail(&mut self) {
        self.power_failed = true;
        if let Some(w) = &mut self.wal {
            w.mark_crashed();
        }
        if let Some(m) = &mut self.manifest {
            m.mark_crashed();
        }
    }

    /// Step 1 of the power-failure contract: a freshly built run's data
    /// pages are fsynced *before* any manifest edit referencing them can
    /// commit, and the pending directory barrier is noted for commit
    /// time. Volatile backends no-op at zero cost; a failed barrier
    /// means the device power-failed and the mutation is abandoned.
    fn sync_new_run(&mut self, ext: Extent) {
        if self.power_failed {
            return;
        }
        match self.storage.sync_extent(ext) {
            Ok(_) => self.dir_sync_due = true,
            Err(_) => self.power_fail(),
        }
    }

    /// Commits the mutation's buffered manifest batch, charges its cost
    /// to this tree's storage time domain, and — only once the batch is
    /// durable — frees the extents of the runs the mutation superseded.
    ///
    /// # Panics
    /// Panics if the manifest I/O fails (mirroring the WAL's policy).
    fn commit_manifest(&mut self) {
        // Step 2 boundary of the power-failure contract: every extent
        // this mutation created is already fsynced; one directory fsync
        // now makes their *names* durable before the manifest batch
        // referencing them commits. Volatile backends no-op.
        if self.dir_sync_due && !self.power_failed {
            match self.storage.sync_dir() {
                Ok(_) => self.dir_sync_due = false,
                Err(_) => self.power_fail(),
            }
        }
        let Some(m) = &mut self.manifest else {
            debug_assert!(self.pending_retire.is_empty());
            self.reclaim_retired();
            return;
        };
        let pending = m.pending_edits() as u64;
        let wrote = m.commit().expect("manifest commit failed");
        if m.is_crashed() {
            // Simulated process death: the deferred frees never happen
            // (recovery ignores the orphaned pages) and a dead process
            // charges nothing to its time domain.
            return;
        }
        if wrote {
            let cost = self.storage.cost_model();
            self.storage
                .charge_cpu(pending * cost.wal_append_ns + cost.wal_sync_ns);
        }
        let newly_durable = std::mem::take(&mut self.pending_retire);
        self.retired.extend(newly_durable);
        self.reclaim_retired();
    }

    /// Retires a superseded run: with a manifest attached the free is
    /// further gated on the removal edit becoming durable; without one
    /// only the snapshot gate applies.
    fn retire_run(&mut self, run: Arc<Run>) {
        if self.manifest.is_some() {
            self.pending_retire.push(run);
        } else {
            self.retired.push(run);
        }
    }

    /// Frees the extents of retired runs whose last external pin
    /// (snapshot or outstanding scan) has dropped. Freeing through
    /// `storage` also purges any block-cache pages mapping the extent, so
    /// a pinned reader can never observe recycled pages — the extent id
    /// re-enters circulation only here.
    fn reclaim_retired(&mut self) {
        let storage = Arc::clone(&self.storage);
        self.retired.retain(|run| {
            if Arc::strong_count(run) == 1 {
                storage.free(run.extent());
                false
            } else {
                true
            }
        });
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Point lookup. Returns the latest value, or `None` if absent/deleted.
    pub fn get(&mut self, key: &[u8]) -> Option<Value> {
        self.lookups += 1;
        if let Some(e) = self.memtable.get(key) {
            return (!e.is_tombstone()).then_some(e.value);
        }
        // O(1) bound fast paths: a key outside the aggregate range of
        // every resident run cannot exist on disk — return with zero
        // probes, zero Bloom checks, and zero page I/O. The tree-wide
        // check rejects in one comparison pair; a level whose own bounds
        // exclude the key is skipped the same way.
        match &self.bounds {
            Some((lo, hi)) if lo.as_ref() <= key && key <= hi.as_ref() => {}
            _ => return None,
        }
        for idx in 0..self.levels.len() {
            if !self.levels[idx].key_in_bounds(key) {
                continue;
            }
            let t0 = self.storage.clock().now();
            let mut found: Option<KvEntry> = None;
            for run in self.levels[idx].probe_order() {
                let r = run.probe(self.storage.as_ref(), key);
                self.level_stats[idx].probes += 1;
                self.level_stats[idx].lookup_pages += r.pages_read as u64;
                match r.outcome {
                    ProbeOutcome::Found(e) => {
                        found = Some(e);
                        break;
                    }
                    ProbeOutcome::FalsePositive => {
                        self.level_stats[idx].false_positives += 1;
                    }
                    ProbeOutcome::FilteredOut => {}
                }
            }
            self.level_stats[idx].lookup_ns += self.storage.clock().elapsed_since(t0);
            if let Some(e) = found {
                return (!e.is_tombstone()).then_some(e.value);
            }
        }
        None
    }

    /// Range scan over `[start, end)`, at most `limit` results, in key order.
    /// Deleted keys are excluded; each key appears once with its latest value.
    pub fn scan(&mut self, start: &[u8], end: &[u8], limit: usize) -> Vec<(Key, Value)> {
        self.scan_iter(start, end, limit).collect()
    }

    /// Streaming variant of [`FlsmTree::scan`].
    pub fn scan_iter(&mut self, start: &[u8], end: &[u8], limit: usize) -> crate::iter::RangeScan {
        self.scans += 1;
        let mut sources: Vec<EntrySource> = Vec::new();
        sources.push(Box::new(self.memtable.range(start, end).into_iter()));
        for level in &self.levels {
            for run in level.probe_order() {
                if start <= run.max_key().as_ref() && run.min_key().as_ref() < end {
                    sources.push(Box::new(PinnedRunIter {
                        inner: run.iter_from(Arc::clone(&self.storage), start),
                        _pin: Arc::clone(run),
                    }));
                }
            }
        }
        crate::iter::RangeScan::new(sources, Key::copy_from_slice(end), limit)
    }

    // ------------------------------------------------------------------
    // Structure management
    // ------------------------------------------------------------------

    fn ensure_level(&mut self, idx: usize) {
        while self.levels.len() <= idx {
            let i = self.levels.len();
            self.levels.push(Level::new(
                i,
                self.cfg.level_capacity(i),
                self.cfg.initial_policy,
            ));
            self.level_stats.push(LevelStats::default());
        }
    }

    /// Refreshes the cached bounds of `levels[idx]` and the tree-wide
    /// aggregate; called after every mutation of a level's run set.
    fn refresh_bounds(&mut self, idx: usize) {
        self.levels[idx].refresh_bounds();
        self.refresh_tree_bounds();
    }

    /// Recomputes the tree-wide aggregate bounds from the cached
    /// per-level bounds (O(levels), no run access).
    fn refresh_tree_bounds(&mut self) {
        self.bounds = self.levels.iter().fold(None, |acc, l| {
            let Some((lo, hi)) = &l.bounds else {
                return acc;
            };
            Some(match acc {
                None => (lo.clone(), hi.clone()),
                Some((alo, ahi)) => (
                    if *lo < alo { lo.clone() } else { alo },
                    if *hi > ahi { hi.clone() } else { ahi },
                ),
            })
        });
    }

    /// The tree-wide aggregate `[min, max]` key range over all resident
    /// runs, or `None` while nothing has been flushed.
    pub fn key_bounds(&self) -> Option<(&Key, &Key)> {
        self.bounds.as_ref().map(|(lo, hi)| (lo, hi))
    }

    /// Admits a sorted batch (from a flush or an upper-level merge) into the
    /// active run of level `idx`, then cascades if the level became full.
    fn admit_batch(&mut self, idx: usize, batch: Vec<KvEntry>) {
        if batch.is_empty() {
            return;
        }
        self.ensure_level(idx);
        let t0 = self.storage.clock().now();
        let m0 = self.storage.metrics();

        // Tombstones may be dropped only when the merge output will be the
        // *only* data at the deepest populated depth: no sealed runs remain
        // in this level and nothing lives below, so no older version of any
        // key can resurface.
        let is_bottom = self.levels[idx].sealed.is_empty()
            && self.levels[idx + 1..].iter().all(|l| l.run_count() == 0);
        let bits = self.cfg.bloom.bits_for_level(idx, self.cfg.size_ratio);
        let active_cap = self.levels[idx].active_capacity();
        let old_active = self.levels[idx].active.take();

        let mut sources: Vec<EntrySource> = Vec::with_capacity(2);
        if let Some(active) = &old_active {
            sources.push(Box::new(active.iter(Arc::clone(&self.storage))));
        }
        sources.push(Box::new(batch.into_iter()));

        let mut merge = MergeIterator::new(sources, is_bottom);
        let run_id = self.next_run_id;
        self.next_run_id += 1;
        let mut builder = RunBuilder::new(run_id, self.storage.page_size(), bits);
        for e in merge.by_ref() {
            builder.push(e);
        }
        let keys_processed = merge.entries_in;
        self.storage
            .charge_cpu(self.storage.cost_model().cpu_merge_per_key_ns * keys_processed);

        let new_run = builder
            .finish(self.storage.as_ref(), active_cap)
            .map(Arc::new);
        if let Some(run) = &new_run {
            // The run's pages must be durable before the AddRun edit
            // below can commit (power-failure contract, step 1).
            self.sync_new_run(run.extent());
        }
        if let Some(old) = old_active {
            self.log_edit(ManifestEdit::RemoveRun {
                level: idx as u32,
                run_id: old.id(),
            });
            self.retire_run(old);
        }
        if let Some(run) = new_run {
            let sealed = run.data_bytes() >= run.capacity_bytes();
            self.log_edit(ManifestEdit::AddRun {
                level: idx as u32,
                active: !sealed,
                run: describe_run(&run, bits),
            });
            let level = &mut self.levels[idx];
            if sealed {
                level.sealed.push(run);
            } else {
                level.active = Some(run);
            }
        }

        let dm = self.storage.metrics().delta(&m0);
        let st = &mut self.level_stats[idx];
        st.compact_ns += self.storage.clock().elapsed_since(t0);
        st.compact_pages_read += dm.pages_read;
        st.compact_pages_written += dm.pages_written;
        st.compact_keys += keys_processed;
        self.refresh_bounds(idx);

        // Background mode leaves a full level in place for the picker;
        // inline mode cascades immediately, on the caller's (write) path.
        if !self.cfg.background_maintenance && self.levels[idx].is_full() {
            self.merge_down(idx);
        }
    }

    /// Merges all runs of level `idx` into one sorted batch and admits it
    /// into level `idx + 1`. Adopts any pending (lazy) policy afterwards.
    fn merge_down(&mut self, idx: usize) {
        self.ensure_level(idx + 1);
        let runs = self.levels[idx].take_all_runs();
        if runs.is_empty() {
            self.adopt_pending_policy(idx);
            return;
        }
        let t0 = self.storage.clock().now();
        let m0 = self.storage.metrics();

        let sources: Vec<EntrySource> = runs
            .iter()
            .map(|r| Box::new(r.iter(Arc::clone(&self.storage))) as EntrySource)
            .collect();
        let mut merge = MergeIterator::new(sources, false);
        let batch: Vec<KvEntry> = merge.by_ref().collect();
        let keys = merge.entries_in;
        self.storage
            .charge_cpu(self.storage.cost_model().cpu_merge_per_key_ns * keys);
        for r in runs {
            self.log_edit(ManifestEdit::RemoveRun {
                level: idx as u32,
                run_id: r.id(),
            });
            self.retire_run(r);
        }

        let dm = self.storage.metrics().delta(&m0);
        let st = &mut self.level_stats[idx];
        st.compact_ns += self.storage.clock().elapsed_since(t0);
        st.compact_pages_read += dm.pages_read;
        st.compact_pages_written += dm.pages_written;
        st.compact_keys += keys;
        st.merges_down += 1;

        // `take_all_runs` emptied the level; the tree aggregate must not
        // keep covering its former range (the admitted batch below may be
        // empty after tombstone drops, so this cannot ride on admit_batch).
        self.refresh_bounds(idx);
        self.adopt_pending_policy(idx);
        self.admit_batch(idx + 1, batch);
    }

    /// Adopts a level's pending (lazy) policy, recording the adoption in
    /// the manifest so the transition survives a restart.
    fn adopt_pending_policy(&mut self, idx: usize) {
        if let Some(k) = self.levels[idx].pending_policy {
            self.levels[idx].adopt_pending_policy();
            self.log_edit(ManifestEdit::SetPolicy {
                level: idx as u32,
                policy: k,
                pending: None,
            });
        }
    }

    // ------------------------------------------------------------------
    // Background maintenance
    // ------------------------------------------------------------------

    /// Takes a cheap, pinned snapshot of the on-disk run structure (see
    /// [`TreeSnapshot`]). O(resident runs) to create; clones are O(1).
    pub fn snapshot(&self) -> TreeSnapshot {
        TreeSnapshot {
            inner: Arc::new(SnapshotInner {
                levels: self
                    .levels
                    .iter()
                    .map(|l| SnapshotLevel {
                        runs: l.probe_order().map(Arc::clone).collect(),
                        bounds: l.bounds.clone(),
                    })
                    .collect(),
                bounds: self.bounds.clone(),
            }),
        }
    }

    /// Whether a background merge has been built but not yet applied.
    pub fn has_pending_compaction(&self) -> bool {
        self.pending_compaction.is_some()
    }

    /// Structural steps completed by background maintenance so far.
    pub fn bg_compactions(&self) -> u64 {
        self.bg_compactions
    }

    /// Runs one bounded unit of background maintenance; returns whether
    /// any work was done. Priority order:
    ///
    /// 1. flush a memtable at or over the configured buffer size;
    /// 2. apply a previously built merge (revalidated against the live
    ///    structure — a greedy transition may have consumed its inputs);
    /// 3. ask the [`CompactionPicker`] for the neediest level and either
    ///    re-parent its sealed runs (trivial move — zero I/O) or build
    ///    the merge for a later step to apply.
    ///
    /// Splitting *build* (step issuing the read + CPU work) from *apply*
    /// (step logging and committing the edit batch) keeps each step
    /// bounded and leaves the input runs resident — readable by gets,
    /// scans, and snapshots — for the whole merge. Callers interleave
    /// steps between operation batches; [`FlsmTree::maintain`] loops.
    ///
    /// On a quiescent tree the step only sweeps retired runs whose last
    /// snapshot pin dropped, and reports no work done.
    pub fn step_maintenance(&mut self) -> bool {
        if self.crashed() {
            return false;
        }
        if self.memtable.bytes() >= self.cfg.buffer_bytes {
            self.flush();
            return true;
        }
        if let Some(p) = self.pending_compaction.take() {
            if self.pending_still_valid(&p) {
                self.apply_pending(p);
                return true;
            }
            // Inputs vanished under the pending merge: drop the stale
            // batch (its pins release here) and pick afresh below.
        }
        let picker = CompactionPicker::new(self.picker_config());
        let Some(pick) = picker.pick(&self.levels) else {
            self.reclaim_retired();
            return false;
        };
        if pick.trivial {
            self.apply_trivial_move(pick.level);
        } else {
            self.build_pending(pick.level);
        }
        true
    }

    /// Runs up to `max_steps` maintenance steps; returns how many did
    /// work. A return below `max_steps` means the tree went quiescent.
    pub fn maintain(&mut self, max_steps: u64) -> u64 {
        let mut steps = 0;
        while steps < max_steps && self.step_maintenance() {
            steps += 1;
        }
        steps
    }

    /// Picker thresholds derived from the tree's configuration. The
    /// grandparent bound follows the classic 10× write-buffer ratio.
    fn picker_config(&self) -> PickerConfig {
        PickerConfig {
            l0_run_limit: 4,
            gp_limit_bytes: self.cfg.buffer_bytes.saturating_mul(10),
        }
    }

    /// Bytes resident in levels the picker currently scores at or above
    /// the work threshold — a gauge of outstanding structural debt.
    pub fn pending_compaction_bytes(&self) -> u64 {
        let picker = CompactionPicker::new(self.picker_config());
        self.levels
            .iter()
            .filter(|l| !l.sealed.is_empty() && picker.level_score(l) >= SCORE_SCALE)
            .map(Level::data_bytes)
            .sum()
    }

    /// A pending merge is applicable only while every input is still
    /// resident among its level's sealed runs.
    fn pending_still_valid(&self, p: &PendingCompaction) -> bool {
        let Some(level) = self.levels.get(p.level) else {
            return false;
        };
        p.inputs
            .iter()
            .all(|r| level.sealed.iter().any(|s| s.id() == r.id()))
    }

    /// Builds (but does not apply) the merge of all sealed runs of level
    /// `idx`: the k-way merge reads every input and materializes the
    /// output batch in memory, charging the read and CPU cost now, while
    /// the inputs stay resident and readable.
    fn build_pending(&mut self, idx: usize) {
        let inputs: Vec<Arc<Run>> = self.levels[idx].sealed.clone();
        if inputs.is_empty() {
            return;
        }
        let t0 = self.storage.clock().now();
        let m0 = self.storage.metrics();
        let sources: Vec<EntrySource> = inputs
            .iter()
            .map(|r| Box::new(r.iter(Arc::clone(&self.storage))) as EntrySource)
            .collect();
        let mut merge = MergeIterator::new(sources, false);
        let batch: Vec<KvEntry> = merge.by_ref().collect();
        let keys = merge.entries_in;
        self.storage
            .charge_cpu(self.storage.cost_model().cpu_merge_per_key_ns * keys);
        let dm = self.storage.metrics().delta(&m0);
        let st = &mut self.level_stats[idx];
        st.compact_ns += self.storage.clock().elapsed_since(t0);
        st.compact_pages_read += dm.pages_read;
        st.compact_keys += keys;
        self.pending_compaction = Some(PendingCompaction {
            level: idx,
            inputs,
            batch,
        });
    }

    /// Applies a built merge: removes the inputs from their level,
    /// admits the output into the next level, and commits the whole edit
    /// batch atomically. The inputs' extents stay allocated until the
    /// commit is durable *and* their last snapshot pin drops.
    fn apply_pending(&mut self, p: PendingCompaction) {
        let PendingCompaction {
            level: idx,
            inputs,
            batch,
        } = p;
        self.ensure_level(idx + 1);
        for r in &inputs {
            let pos = self.levels[idx]
                .sealed
                .iter()
                .position(|s| s.id() == r.id())
                .expect("pending inputs were revalidated");
            let run = self.levels[idx].sealed.remove(pos);
            self.log_edit(ManifestEdit::RemoveRun {
                level: idx as u32,
                run_id: run.id(),
            });
            self.retire_run(run);
        }
        // Release the builder's own pins before the commit below tries
        // to reclaim; outside pins (snapshots, scans) still defer.
        drop(inputs);
        self.level_stats[idx].merges_down += 1;
        self.refresh_bounds(idx);
        if self.levels[idx].run_count() == 0 {
            self.adopt_pending_policy(idx);
        }
        self.admit_batch(idx + 1, batch);
        self.bg_compactions += 1;
        self.commit_manifest();
    }

    /// Re-parents all sealed runs of level `idx` to level `idx + 1`
    /// without rewriting a byte — the picker guaranteed they overlap no
    /// resident run there, so appending them to the target's sealed end
    /// preserves probe (age) order.
    fn apply_trivial_move(&mut self, idx: usize) {
        self.ensure_level(idx + 1);
        let moved = std::mem::take(&mut self.levels[idx].sealed);
        for run in moved {
            self.log_edit(ManifestEdit::MoveRun {
                from_level: idx as u32,
                to_level: (idx + 1) as u32,
                run_id: run.id(),
            });
            self.levels[idx + 1].sealed.push(run);
        }
        if self.levels[idx].run_count() == 0 {
            self.adopt_pending_policy(idx);
        }
        self.refresh_bounds(idx);
        self.refresh_bounds(idx + 1);
        self.bg_compactions += 1;
        self.commit_manifest();
    }

    // ------------------------------------------------------------------
    // Compaction-policy tuning interface
    // ------------------------------------------------------------------

    /// Number of levels materialized so far.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The policy `K_i` of a (zero-based) level; levels beyond the current
    /// depth report the configured initial policy.
    pub fn policy(&self, idx: usize) -> u32 {
        self.levels
            .get(idx)
            .map_or(self.cfg.initial_policy, |l| l.policy)
    }

    /// Policies of all materialized levels.
    pub fn policies(&self) -> Vec<u32> {
        self.levels.iter().map(|l| l.policy).collect()
    }

    /// Changes the compaction policy of level `idx` to `k` (clamped to
    /// `[1, T]`), using the configured [`TransitionStrategy`].
    pub fn set_policy(&mut self, idx: usize, k: u32) {
        self.ensure_level(idx);
        let k = self.cfg.clamp_policy(k as i64);
        if self.levels[idx].policy == k && self.levels[idx].pending_policy.is_none() {
            return;
        }
        self.level_stats[idx].transitions += 1;
        match self.cfg.transition {
            TransitionStrategy::Flexible => {
                let prev_active = self.levels[idx].active.as_ref().map(|r| r.id());
                self.levels[idx].apply_flexible(k);
                self.log_edit(ManifestEdit::SetPolicy {
                    level: idx as u32,
                    policy: k,
                    pending: None,
                });
                if let Some(run_id) = prev_active {
                    // Mirror what apply_flexible did to the active run:
                    // retarget its capacity and, if the new capacity
                    // sealed it, record the seal.
                    self.log_edit(ManifestEdit::RetargetRun {
                        level: idx as u32,
                        run_id,
                        capacity_bytes: self.levels[idx].active_capacity(),
                    });
                    if self.levels[idx].active.is_none() {
                        self.log_edit(ManifestEdit::SealRun {
                            level: idx as u32,
                            run_id,
                        });
                    }
                }
            }
            TransitionStrategy::Lazy => {
                self.levels[idx].apply_lazy(k);
                self.log_edit(ManifestEdit::SetPolicy {
                    level: idx as u32,
                    policy: self.levels[idx].policy,
                    pending: self.levels[idx].pending_policy,
                });
            }
            TransitionStrategy::Greedy => {
                // §4.1: merge and flush all the level's data into the next
                // level immediately, then rebuild under the new policy.
                self.levels[idx].policy = k;
                self.levels[idx].pending_policy = None;
                self.log_edit(ManifestEdit::SetPolicy {
                    level: idx as u32,
                    policy: k,
                    pending: None,
                });
                if self.levels[idx].run_count() > 0 {
                    self.merge_down(idx);
                }
            }
        }
        self.commit_manifest();
    }

    /// Sets every materialized level's policy to `k`.
    pub fn set_policy_all(&mut self, k: u32) {
        for idx in 0..self.levels.len() {
            self.set_policy(idx, k);
        }
    }

    // ------------------------------------------------------------------
    // Introspection & statistics
    // ------------------------------------------------------------------

    /// Bytes buffered in the memtable.
    pub fn memtable_bytes(&self) -> u64 {
        self.memtable.bytes()
    }

    /// Logical bytes stored in a level (0 when the level doesn't exist).
    pub fn level_bytes(&self, idx: usize) -> u64 {
        self.levels.get(idx).map_or(0, Level::data_bytes)
    }

    /// Fill ratio `D/C` of a level.
    pub fn level_fill(&self, idx: usize) -> f64 {
        self.levels.get(idx).map_or(0.0, Level::fill_ratio)
    }

    /// Number of runs in a level.
    pub fn level_run_count(&self, idx: usize) -> usize {
        self.levels.get(idx).map_or(0, Level::run_count)
    }

    /// Capacity `C_i` of a level as configured.
    pub fn level_capacity(&self, idx: usize) -> u64 {
        self.cfg.level_capacity(idx)
    }

    /// Total logical bytes across all levels plus the memtable.
    pub fn total_bytes(&self) -> u64 {
        self.memtable.bytes() + self.levels.iter().map(Level::data_bytes).sum::<u64>()
    }

    /// Total entries resident in disk levels.
    pub fn disk_entry_count(&self) -> u64 {
        self.levels.iter().map(Level::entry_count).sum()
    }

    /// Snapshot of all statistics. One tree is one time domain, so the
    /// wall (`clock_ns`) and busy (`busy_ns`) readings coincide here; they
    /// diverge only in shard-merged snapshots.
    pub fn stats(&self) -> TreeStatsSnapshot {
        let domain_ns = self.storage.clock().now_ns();
        let io = self.storage.metrics();
        TreeStatsSnapshot {
            lookups: self.lookups,
            updates: self.updates,
            scans: self.scans,
            flushes: self.flushes,
            clock_ns: domain_ns,
            busy_ns: domain_ns,
            wal_appends: self.wal.as_ref().map_or(0, Wal::appended),
            wal_syncs: self.wal.as_ref().map_or(0, Wal::sync_count),
            wal_synced: self.wal.as_ref().map_or(0, Wal::durable_records),
            manifest_edits: self.manifest.as_ref().map_or(0, Manifest::edits),
            runs_recovered: self.runs_recovered,
            replayed_tail: self.replayed_tail,
            orphans_collected: self.orphans_collected,
            extent_syncs: io.extent_syncs,
            dir_syncs: io.dir_syncs,
            cache_hits: io.cache_hits,
            cache_misses: io.cache_misses,
            cache_evictions: io.cache_evictions,
            stall_ns: self.stall_ns,
            queue_stall_ns: self.queue_stall_ns,
            bg_compactions: self.bg_compactions,
            pending_compaction_bytes: self.pending_compaction_bytes(),
            levels: self.level_stats.iter().map(LevelStats::snapshot).collect(),
        }
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    /// Bulk-loads a fresh tree with unique key-value pairs, mimicking the
    /// steady-state layout reached after sustained insertion: deeper levels
    /// hold (exponentially) more data, and every level holds a uniform
    /// sample of the key space so probe behaviour matches a naturally grown
    /// tree.
    ///
    /// # Panics
    /// Panics if the tree is not empty.
    pub fn bulk_load(&mut self, mut pairs: Vec<(Key, Value)>) {
        assert!(
            self.levels.is_empty() && self.memtable.is_empty(),
            "bulk_load requires an empty tree"
        );
        if pairs.is_empty() {
            return;
        }
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs.dedup_by(|a, b| a.0 == b.0);

        let entries: Vec<KvEntry> = pairs
            .into_iter()
            .enumerate()
            .map(|(i, (k, v))| KvEntry::put(k, v, i as u64 + 1))
            .collect();
        self.seq = entries.len() as u64 + 1;
        let total: u64 = entries.iter().map(|e| e.encoded_size() as u64).sum();

        // Choose the number of levels so the layout matches a naturally
        // grown tree: upper levels about half full, the bottom level holding
        // the bulk of the data (at most 90% full).
        const UPPER_FILL: f64 = 0.5;
        const BOTTOM_FILL: f64 = 0.9;
        let mut depth = 1usize;
        loop {
            let uppers: f64 = (0..depth - 1)
                .map(|i| self.cfg.level_capacity(i) as f64 * UPPER_FILL)
                .sum();
            let bottom_remaining = total as f64 - uppers;
            if bottom_remaining <= self.cfg.level_capacity(depth - 1) as f64 * BOTTOM_FILL
                || depth >= 24
            {
                break;
            }
            depth += 1;
        }
        self.ensure_level(depth - 1);

        // Per-level byte targets: upper levels half full, bottom the rest.
        let mut targets = vec![0u64; depth];
        let mut remaining = total;
        for (i, target) in targets.iter_mut().enumerate().take(depth - 1) {
            let take = remaining.min((self.cfg.level_capacity(i) as f64 * UPPER_FILL) as u64);
            *target = take;
            remaining -= take;
        }
        targets[depth - 1] = remaining;

        // Deal entries to levels proportionally (largest-remainder credit
        // scheme) so each level samples the key space uniformly.
        let mut per_level: Vec<Vec<KvEntry>> = vec![Vec::new(); depth];
        let mut credit = vec![0f64; depth];
        let fractions: Vec<f64> = targets.iter().map(|&t| t as f64 / total as f64).collect();
        for e in entries {
            for (c, f) in credit.iter_mut().zip(&fractions) {
                *c += f;
            }
            let lvl = credit
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            credit[lvl] -= 1.0;
            per_level[lvl].push(e);
        }

        // Build each level's runs: stripe across ceil(bytes / run_cap) runs
        // so every run spans the key space (as tiering produces naturally).
        for (idx, level_entries) in per_level.into_iter().enumerate() {
            if level_entries.is_empty() {
                continue;
            }
            let bytes: u64 = level_entries.iter().map(|e| e.encoded_size() as u64).sum();
            let run_cap = self.levels[idx].active_capacity();
            let n_runs = (bytes.div_ceil(run_cap)).max(1) as usize;
            let bits = self.cfg.bloom.bits_for_level(idx, self.cfg.size_ratio);
            let mut buckets: Vec<Vec<KvEntry>> = vec![Vec::new(); n_runs];
            for (j, e) in level_entries.into_iter().enumerate() {
                buckets[j % n_runs].push(e);
            }
            for (b, bucket) in buckets.into_iter().enumerate() {
                let run_id = self.next_run_id;
                self.next_run_id += 1;
                let mut builder = RunBuilder::new(run_id, self.storage.page_size(), bits);
                for e in bucket {
                    builder.push(e);
                }
                if let Some(run) = builder.finish(self.storage.as_ref(), run_cap).map(Arc::new) {
                    self.sync_new_run(run.extent());
                    let is_last = b == n_runs - 1;
                    let active = is_last && run.data_bytes() < run.capacity_bytes();
                    self.log_edit(ManifestEdit::AddRun {
                        level: idx as u32,
                        active,
                        run: describe_run(&run, bits),
                    });
                    let level = &mut self.levels[idx];
                    if active {
                        level.active = Some(run);
                    } else {
                        level.sealed.push(run);
                    }
                }
            }
        }
        for idx in 0..self.levels.len() {
            self.levels[idx].refresh_bounds();
        }
        self.refresh_tree_bounds();
        let seq = self.seq;
        self.log_edit(ManifestEdit::SeqWatermark { seq });
        self.commit_manifest();
    }
}

/// Builds the manifest record describing a freshly created run.
fn describe_run(run: &Run, bloom_bits_per_key: f64) -> RunRecord {
    RunRecord {
        run_id: run.id(),
        extent_id: run.extent().id,
        pages: run.page_count(),
        capacity_bytes: run.capacity_bytes(),
        entry_count: run.entry_count(),
        data_bytes: run.data_bytes(),
        max_seq: run.max_seq(),
        bloom_bits_per_key,
        min_key: run.min_key().clone(),
        max_key: run.max_key().clone(),
    }
}

impl std::fmt::Debug for FlsmTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("FlsmTree");
        s.field("levels", &self.levels.len())
            .field("memtable_bytes", &self.memtable.bytes())
            .field("policies", &self.policies());
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use ruskey_storage::{CostModel, SimulatedDisk};

    fn key(i: u64) -> Key {
        Bytes::copy_from_slice(&i.to_be_bytes())
    }

    fn val(i: u64) -> Value {
        Bytes::from(format!("value-{i:08}"))
    }

    /// Shards execute missions on worker threads, so the tree (and
    /// everything it owns) must stay `Send`. Compile-time assertion.
    #[test]
    fn tree_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FlsmTree>();
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let cfg = LsmConfig {
            size_ratio: 1,
            ..LsmConfig::scaled_default()
        };
        let err = FlsmTree::try_new(cfg, disk).expect_err("must reject T < 2");
        assert!(err.to_string().contains("size_ratio"));
    }

    fn small_tree() -> FlsmTree {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let cfg = LsmConfig {
            buffer_bytes: 1024,
            size_ratio: 4,
            initial_policy: 1,
            ..LsmConfig::scaled_default()
        };
        FlsmTree::new(cfg, disk)
    }

    #[test]
    fn put_get_roundtrip_through_flushes() {
        let mut t = small_tree();
        for i in 0..500u64 {
            t.put(key(i), val(i));
        }
        for i in 0..500u64 {
            assert_eq!(t.get(&key(i)), Some(val(i)), "key {i}");
        }
        assert!(t.level_count() >= 1);
        assert!(t.stats().flushes > 0);
    }

    #[test]
    fn overwrites_return_latest() {
        let mut t = small_tree();
        for round in 0..5u64 {
            for i in 0..100u64 {
                t.put(key(i), val(i * 1000 + round));
            }
        }
        for i in 0..100u64 {
            assert_eq!(t.get(&key(i)), Some(val(i * 1000 + 4)));
        }
    }

    #[test]
    fn deletes_mask_older_values() {
        let mut t = small_tree();
        for i in 0..200u64 {
            t.put(key(i), val(i));
        }
        for i in 0..200u64 {
            if i % 3 == 0 {
                t.delete(key(i));
            }
        }
        // Force everything to disk.
        t.flush();
        for i in 0..200u64 {
            if i % 3 == 0 {
                assert_eq!(t.get(&key(i)), None, "deleted key {i} resurfaced");
            } else {
                assert_eq!(t.get(&key(i)), Some(val(i)));
            }
        }
    }

    #[test]
    fn levels_grow_with_data() {
        let mut t = small_tree();
        for i in 0..3000u64 {
            t.put(key(i), val(i));
        }
        assert!(t.level_count() >= 2, "expected cascade, got {:?}", t);
        // Level capacities must respect the invariant D <= C after quiescence.
        for idx in 0..t.level_count() {
            assert!(
                t.level_bytes(idx) <= t.level_capacity(idx),
                "level {idx} over capacity"
            );
        }
    }

    #[test]
    fn tiering_policy_accumulates_runs() {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let cfg = LsmConfig {
            buffer_bytes: 1024,
            size_ratio: 4,
            initial_policy: 4, // tiering
            ..LsmConfig::scaled_default()
        };
        let mut t = FlsmTree::new(cfg, disk);
        for i in 0..400u64 {
            t.put(key(i), val(i));
        }
        // With K = T = 4 each flush becomes its own run in L1.
        assert!(t.level_run_count(0) >= 2 || t.level_count() > 1);
        for i in 0..400u64 {
            assert_eq!(t.get(&key(i)), Some(val(i)));
        }
    }

    #[test]
    fn scan_returns_sorted_latest_versions() {
        let mut t = small_tree();
        for i in 0..300u64 {
            t.put(key(i), val(i));
        }
        for i in 100..120u64 {
            t.put(key(i), val(i + 5000));
        }
        t.delete(key(105));
        let result = t.scan(&key(100), &key(110), 100);
        let keys: Vec<u64> = result
            .iter()
            .map(|(k, _)| u64::from_be_bytes(k.as_ref().try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![100, 101, 102, 103, 104, 106, 107, 108, 109]);
        for (k, v) in &result {
            let i = u64::from_be_bytes(k.as_ref().try_into().unwrap());
            assert_eq!(*v, val(i + 5000));
        }
    }

    #[test]
    fn scan_respects_limit() {
        let mut t = small_tree();
        for i in 0..100u64 {
            t.put(key(i), val(i));
        }
        let result = t.scan(&key(0), &key(100), 7);
        assert_eq!(result.len(), 7);
    }

    #[test]
    fn set_policy_flexible_is_free() {
        let mut t = small_tree();
        for i in 0..2000u64 {
            t.put(key(i), val(i));
        }
        let before = t.storage().metrics();
        t.set_policy(0, 4);
        t.set_policy(1, 3);
        let delta = t.storage().metrics().delta(&before);
        assert_eq!(delta.pages_read, 0, "flexible transition must not read");
        assert_eq!(delta.pages_written, 0, "flexible transition must not write");
        assert_eq!(t.policy(0), 4);
        assert_eq!(t.policy(1), 3);
        // Data still all readable.
        for i in (0..2000u64).step_by(97) {
            assert_eq!(t.get(&key(i)), Some(val(i)));
        }
    }

    #[test]
    fn set_policy_greedy_pays_io() {
        let mut t = small_tree();
        t.set_transition_strategy(TransitionStrategy::Greedy);
        for i in 0..2000u64 {
            t.put(key(i), val(i));
        }
        // Ensure level 0 holds data before the transition.
        assert!(t.level_bytes(0) > 0 || t.level_bytes(1) > 0);
        let with_data = (0..t.level_count())
            .find(|&i| t.level_bytes(i) > 0)
            .unwrap();
        let before = t.storage().metrics();
        t.set_policy(with_data, 4);
        let delta = t.storage().metrics().delta(&before);
        assert!(
            delta.pages_read > 0,
            "greedy transition must rewrite the level"
        );
        assert_eq!(t.level_bytes(with_data), 0, "greedy empties the level");
        for i in (0..2000u64).step_by(131) {
            assert_eq!(t.get(&key(i)), Some(val(i)));
        }
    }

    #[test]
    fn set_policy_lazy_defers() {
        let mut t = small_tree();
        t.set_transition_strategy(TransitionStrategy::Lazy);
        for i in 0..300u64 {
            t.put(key(i), val(i));
        }
        t.set_policy(0, 4);
        // Policy not yet in force.
        assert_eq!(t.policy(0), 1);
        // Keep writing until level 0 has merged down at least once more.
        let merges_before = t.stats().levels[0].merges_down;
        let mut i = 300u64;
        while t.stats().levels[0].merges_down == merges_before {
            t.put(key(i), val(i));
            i += 1;
            assert!(i < 100_000, "level never merged");
        }
        assert_eq!(t.policy(0), 4, "lazy policy adopted after merge");
    }

    #[test]
    fn flexible_seals_oversized_active() {
        let mut t = small_tree();
        // Fill level 0's active run partially under K = 1 (cap = whole level).
        for i in 0..120u64 {
            t.put(key(i), val(i));
        }
        t.flush();
        if t.level_run_count(0) == 0 {
            return; // data cascaded; nothing to check here
        }
        let runs_before = t.level_run_count(0);
        // K = 4 shrinks active capacity to 1/4; an active run bigger than
        // that must be sealed immediately (§4.2 case K' > K).
        t.set_policy(0, 4);
        assert!(t.level_run_count(0) >= runs_before);
        for i in (0..120u64).step_by(13) {
            assert_eq!(t.get(&key(i)), Some(val(i)));
        }
    }

    #[test]
    fn bulk_load_layout_and_correctness() {
        let disk = SimulatedDisk::new(512, CostModel::FREE);
        let cfg = LsmConfig {
            buffer_bytes: 2048,
            size_ratio: 4,
            initial_policy: 2,
            ..LsmConfig::scaled_default()
        };
        let mut t = FlsmTree::new(cfg, disk);
        let pairs: Vec<(Key, Value)> = (0..4000u64).map(|i| (key(i), val(i))).collect();
        t.bulk_load(pairs);
        assert!(t.level_count() >= 2);
        // Deeper levels hold more data.
        let top = t.level_bytes(0);
        let bottom = t.level_bytes(t.level_count() - 1);
        assert!(bottom > top, "bottom {bottom} must exceed top {top}");
        // No level overflows.
        for idx in 0..t.level_count() {
            assert!(t.level_bytes(idx) <= t.level_capacity(idx));
        }
        // All readable.
        for i in (0..4000u64).step_by(37) {
            assert_eq!(t.get(&key(i)), Some(val(i)));
        }
        // Writes continue to work after a bulk load.
        for i in 4000..4500u64 {
            t.put(key(i), val(i));
        }
        assert_eq!(t.get(&key(4321)), Some(val(4321)));
    }

    #[test]
    #[should_panic(expected = "empty tree")]
    fn bulk_load_rejects_nonempty() {
        let mut t = small_tree();
        t.put(key(1), val(1));
        t.flush();
        t.bulk_load(vec![(key(2), val(2))]);
    }

    #[test]
    fn stats_track_operations() {
        let mut t = small_tree();
        for i in 0..50u64 {
            t.put(key(i), val(i));
        }
        for i in 0..20u64 {
            t.get(&key(i));
        }
        t.scan(&key(0), &key(10), 5);
        let s = t.stats();
        assert_eq!(s.updates, 50);
        assert_eq!(s.lookups, 20);
        assert_eq!(s.scans, 1);
    }

    #[test]
    fn policy_clamped_to_t() {
        let mut t = small_tree();
        t.set_policy(0, 99);
        assert_eq!(t.policy(0), 4); // T = 4
        t.set_policy(0, 0);
        assert_eq!(t.policy(0), 1);
    }

    fn wal_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ruskey-tree-wal-{name}-{}", std::process::id()))
    }

    /// Writes are logged before the memtable insert: a tree dropped
    /// without flushing recovers its synced writes from the WAL, replayed
    /// in sequence order.
    #[test]
    fn recover_restores_synced_writes() {
        let path = wal_path("recover");
        let _ = std::fs::remove_file(&path);
        let cfg = LsmConfig {
            buffer_bytes: 1 << 20, // large: nothing flushes
            size_ratio: 4,
            ..LsmConfig::scaled_default()
        };
        {
            let disk = SimulatedDisk::new(256, CostModel::FREE);
            let mut t = FlsmTree::new(cfg.clone(), disk);
            t.attach_wal(crate::wal::Wal::open(&path).unwrap());
            for i in 0..50u64 {
                t.put(key(i), val(i));
            }
            t.put(key(7), val(777)); // overwrite: replay must keep the latest
            t.delete(key(9));
            t.commit_wal().unwrap();
            t.put(key(99), val(99)); // never synced: must not survive
            drop(t); // process death: user-space WAL buffer is lost
        }
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let mut r = FlsmTree::recover(cfg, disk, &path, 0).unwrap();
        for i in 0..50u64 {
            match i {
                7 => assert_eq!(r.get(&key(7)), Some(val(777))),
                9 => assert_eq!(r.get(&key(9)), None, "tombstone must replay"),
                _ => assert_eq!(r.get(&key(i)), Some(val(i)), "key {i}"),
            }
        }
        assert_eq!(r.get(&key(99)), None, "unsynced write resurfaced");
        // The recovered tree keeps logging: a new write plus commit is
        // durable across another restart.
        r.put(key(100), val(100));
        r.commit_wal().unwrap();
        drop(r);
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let mut r2 = FlsmTree::recover(
            LsmConfig {
                buffer_bytes: 1 << 20,
                size_ratio: 4,
                ..LsmConfig::scaled_default()
            },
            disk,
            &path,
            0,
        )
        .unwrap();
        assert_eq!(r2.get(&key(100)), Some(val(100)));
        assert_eq!(r2.get(&key(3)), Some(val(3)));
        let _ = std::fs::remove_file(&path);
    }

    /// A memtable flush supersedes the log: the WAL truncates, so replay
    /// after a flush yields only post-flush writes.
    #[test]
    fn flush_truncates_the_wal() {
        let path = wal_path("flush-reset");
        let _ = std::fs::remove_file(&path);
        let mut t = small_tree();
        t.attach_wal(crate::wal::Wal::open(&path).unwrap());
        for i in 0..50u64 {
            t.put(key(i), val(i));
        }
        t.flush();
        assert_eq!(t.wal().unwrap().records(), 0, "flush must reset the log");
        t.put(key(1000), val(1000));
        t.commit_wal().unwrap();
        let replayed = crate::wal::Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1, "only the post-flush write is logged");
        assert_eq!(t.stats().wal_appends, 51, "lifetime appends keep counting");
        let _ = std::fs::remove_file(&path);
    }

    /// WAL costs are charged to the tree's storage time domain: appends
    /// and the group-commit sync advance the virtual clock.
    #[test]
    fn wal_costs_land_on_the_time_domain() {
        let path = wal_path("costs");
        let _ = std::fs::remove_file(&path);
        let disk = SimulatedDisk::new(256, CostModel::NVME);
        let cfg = LsmConfig {
            buffer_bytes: 1 << 20,
            size_ratio: 4,
            ..LsmConfig::scaled_default()
        };
        let mut t = FlsmTree::new(cfg, disk);
        t.attach_wal(crate::wal::Wal::open(&path).unwrap());
        let base = t.storage().clock().now_ns();
        t.put(key(1), val(1));
        let after_put = t.storage().clock().now_ns();
        assert_eq!(
            after_put - base,
            CostModel::NVME.cpu_memtable_ns + CostModel::NVME.wal_append_ns,
            "put charges memtable + WAL append"
        );
        assert!(t.commit_wal().unwrap());
        assert_eq!(
            t.storage().clock().now_ns() - after_put,
            CostModel::NVME.wal_sync_ns,
            "group commit charges one sync"
        );
        assert!(!t.commit_wal().unwrap(), "idle shard must not re-sync");
        let _ = std::fs::remove_file(&path);
    }

    /// The cached aggregate bounds — per level and the tree total — must
    /// equal the values recomputed fresh from the resident runs.
    fn assert_bounds_invariant(t: &FlsmTree) {
        let mut want: Option<(Key, Key)> = None;
        for l in &t.levels {
            assert_eq!(
                l.bounds,
                l.computed_bounds(),
                "level {} cached bounds diverged from the resident runs",
                l.index
            );
            if let Some((lo, hi)) = &l.bounds {
                want = Some(match want {
                    None => (lo.clone(), hi.clone()),
                    Some((wl, wh)) => (
                        if *lo < wl { lo.clone() } else { wl },
                        if *hi > wh { hi.clone() } else { wh },
                    ),
                });
            }
        }
        assert_eq!(
            t.bounds, want,
            "tree aggregate bounds diverged from the level bounds"
        );
    }

    /// ISSUE tentpole (c): a lookup outside every resident run's range
    /// costs zero run probes (hence zero Bloom checks) and zero page
    /// reads — the O(1) bound fast path rejects before any per-run work.
    #[test]
    fn out_of_bounds_lookup_costs_zero_probes_and_zero_reads() {
        let mut t = small_tree();
        for i in 100..300u64 {
            t.put(key(i), val(i));
        }
        t.flush(); // memtable empty: lookups must go to the levels
        let (lo, hi) = {
            let (lo, hi) = t.key_bounds().expect("resident runs have bounds");
            (lo.clone(), hi.clone())
        };
        assert_eq!(lo, key(100));
        assert_eq!(hi, key(299));

        let probes = |t: &FlsmTree| -> u64 { t.stats().levels.iter().map(|l| l.probes).sum() };
        let probes_before = probes(&t);
        let reads_before = t.storage.metrics().pages_read;
        assert_eq!(t.get(&key(5)), None, "below every bound");
        assert_eq!(t.get(&key(100_000)), None, "above every bound");
        assert_eq!(
            probes(&t),
            probes_before,
            "out-of-range lookups must probe no run"
        );
        assert_eq!(
            t.storage.metrics().pages_read,
            reads_before,
            "out-of-range lookups must read no page"
        );
        // In-range lookups still pay the normal probe path.
        assert_eq!(t.get(&key(150)), Some(val(150)));
        assert!(probes(&t) > probes_before);
    }

    /// The bounds caches stay exact through every structural mutation:
    /// flushes, compaction cascades, and all three transition strategies
    /// (greedy rewrites run membership via `merge_down`).
    #[test]
    fn bounds_invariant_holds_through_mutations() {
        for strategy in [
            TransitionStrategy::Flexible,
            TransitionStrategy::Lazy,
            TransitionStrategy::Greedy,
        ] {
            let disk = SimulatedDisk::new(256, CostModel::FREE);
            let cfg = LsmConfig {
                buffer_bytes: 1024,
                size_ratio: 4,
                initial_policy: 2,
                transition: strategy,
                ..LsmConfig::scaled_default()
            };
            let mut t = FlsmTree::new(cfg, disk);
            assert_eq!(t.key_bounds(), None, "empty tree has no bounds");
            for i in 0..2500u64 {
                t.put(key(i), val(i));
                if i % 500 == 0 {
                    assert_bounds_invariant(&t);
                }
            }
            t.flush();
            assert_bounds_invariant(&t);
            t.set_policy(0, 4);
            assert_bounds_invariant(&t);
            t.set_policy(1, 3);
            assert_bounds_invariant(&t);
            t.set_policy(0, 1);
            assert_bounds_invariant(&t);
            for i in 2500..3000u64 {
                t.put(key(i), val(i));
            }
            t.flush();
            assert_bounds_invariant(&t);
        }
    }

    /// Recovery rebuilds the bounds caches: a recovered persistent tree
    /// carries exact bounds and rejects out-of-range keys for free.
    #[test]
    fn bounds_rebuilt_by_recovery() {
        let dir = persist_dir("bounds");
        let cfg = LsmConfig {
            buffer_bytes: 1024,
            size_ratio: 4,
            initial_policy: 2,
            ..LsmConfig::scaled_default()
        };
        {
            let mut t = persistent_tree(&dir, cfg.clone());
            for i in 50..800u64 {
                t.put(key(i), val(i));
            }
            t.commit_wal().unwrap();
            assert!(t.stats().flushes > 0);
            drop(t);
        }
        let mut r = recover_persistent_tree(&dir, cfg);
        assert_bounds_invariant(&r);
        let probes_before: u64 = r.stats().levels.iter().map(|l| l.probes).sum();
        let reads_before = r.storage.metrics().pages_read;
        assert_eq!(r.get(&key(10)), None);
        assert_eq!(r.get(&key(10_000)), None);
        assert_eq!(
            r.stats().levels.iter().map(|l| l.probes).sum::<u64>(),
            probes_before,
            "recovered tree must reject out-of-range keys without probing"
        );
        assert_eq!(r.storage.metrics().pages_read, reads_before);
        assert_eq!(r.get(&key(400)), Some(val(400)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn persist_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ruskey-tree-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn persistent_tree(dir: &std::path::Path, cfg: LsmConfig) -> FlsmTree {
        let disk = ruskey_storage::FileDisk::new(dir.join("data"), 256, CostModel::FREE).unwrap();
        let mut t = FlsmTree::new(cfg, disk);
        t.attach_manifest(crate::manifest::Manifest::create(dir.join("MANIFEST"), 0).unwrap());
        t.attach_wal(crate::wal::Wal::open(dir.join("wal")).unwrap());
        t
    }

    fn recover_persistent_tree(dir: &std::path::Path, cfg: LsmConfig) -> FlsmTree {
        let disk = ruskey_storage::FileDisk::new(dir.join("data"), 256, CostModel::FREE).unwrap();
        FlsmTree::recover_persistent(cfg, disk, dir.join("MANIFEST"), dir.join("wal"), 0, 0)
            .unwrap()
    }

    /// The full-store restart path: flushed runs are rebuilt from the
    /// manifest + data pages, the WAL tail replays on top, and the
    /// recovered tree keeps operating (and survives another restart).
    #[test]
    fn persistent_restart_preserves_runs_and_wal_tail() {
        let dir = persist_dir("roundtrip");
        let cfg = LsmConfig {
            buffer_bytes: 1024,
            size_ratio: 4,
            initial_policy: 2,
            ..LsmConfig::scaled_default()
        };
        {
            let mut t = persistent_tree(&dir, cfg.clone());
            for i in 0..600u64 {
                t.put(key(i), val(i));
            }
            t.delete(key(17));
            t.put(key(3), val(9999)); // overwrite across flush boundaries
            t.commit_wal().unwrap(); // sync the unflushed tail
            assert!(t.stats().flushes > 0, "scenario must exercise flushes");
            assert!(t.level_count() >= 2, "scenario must exercise compaction");
            drop(t); // restart: in-memory structure is gone
        }
        let mut r = recover_persistent_tree(&dir, cfg.clone());
        assert!(r.runs_recovered() > 0, "flushed runs must be rebuilt");
        for i in 0..600u64 {
            match i {
                17 => assert_eq!(r.get(&key(17)), None, "tombstone lost"),
                3 => assert_eq!(r.get(&key(3)), Some(val(9999))),
                _ => assert_eq!(r.get(&key(i)), Some(val(i)), "key {i} lost"),
            }
        }
        // The recovered tree keeps operating and survives another restart.
        for i in 600..700u64 {
            r.put(key(i), val(i));
        }
        r.commit_wal().unwrap();
        drop(r);
        let mut r2 = recover_persistent_tree(&dir, cfg);
        assert_eq!(r2.get(&key(650)), Some(val(650)));
        assert_eq!(r2.get(&key(5)), Some(val(5)));
        assert_eq!(r2.get(&key(17)), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Policy transitions are structural edits: flexible and lazy
    /// transitions (including the pending marker) survive a restart.
    #[test]
    fn persistent_restart_preserves_policies() {
        let dir = persist_dir("policies");
        let cfg = LsmConfig {
            buffer_bytes: 1024,
            size_ratio: 4,
            ..LsmConfig::scaled_default()
        };
        {
            let mut t = persistent_tree(&dir, cfg.clone());
            for i in 0..400u64 {
                t.put(key(i), val(i));
            }
            t.set_policy(0, 4);
            t.set_transition_strategy(TransitionStrategy::Lazy);
            t.set_policy(1, 3);
            t.commit_wal().unwrap();
            drop(t);
        }
        let r = recover_persistent_tree(&dir, cfg);
        assert_eq!(r.policy(0), 4, "flexible transition lost");
        // The lazy transition is still pending; the recovered level
        // carries the marker so the next merge adopts it.
        assert!(
            r.policy(1) == 3 || r.levels[1].pending_policy == Some(3),
            "lazy transition lost: policy {} pending {:?}",
            r.policy(1),
            r.levels[1].pending_policy
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The deferred-free contract: with a manifest attached, a
    /// compaction's obsolete pages are freed only after the commit, so
    /// the storage never holds a manifest that references freed pages.
    #[test]
    fn superseded_runs_are_freed_after_the_commit() {
        let dir = persist_dir("frees");
        let cfg = LsmConfig {
            buffer_bytes: 1024,
            size_ratio: 4,
            ..LsmConfig::scaled_default()
        };
        let mut t = persistent_tree(&dir, cfg);
        for i in 0..2000u64 {
            t.put(key(i), val(i));
        }
        // Quiescent after the mutation: nothing pending, and the live
        // pages on storage are exactly the recorded runs' pages.
        assert!(t.pending_retire.is_empty(), "frees must drain at commit");
        assert!(t.retired.is_empty(), "no pins exist — retirees must free");
        let recorded: u64 = t
            .manifest()
            .unwrap()
            .state()
            .levels
            .iter()
            .flat_map(|l| l.sealed.iter().chain(l.active.iter()))
            .map(|r| r.pages as u64)
            .sum();
        assert_eq!(t.storage().live_pages(), recorded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_cost_probe_for_absent_range() {
        let mut t = small_tree();
        for i in 0..200u64 {
            t.put(key(i), val(i));
        }
        t.flush();
        let before = t.storage().metrics().pages_read;
        // Key far outside every run's range: filtered by min/max, no I/O.
        t.get(&key(1_000_000));
        assert_eq!(t.storage().metrics().pages_read, before);
    }

    /// Background maintenance must be purely a *scheduling* change: the
    /// same operations against an inline tree and a background tree —
    /// with merges left in flight mid-stream — read back identically.
    #[test]
    fn background_maintenance_matches_inline_and_defers_the_cascade() {
        let base = LsmConfig {
            buffer_bytes: 1024,
            size_ratio: 4,
            initial_policy: 1,
            ..LsmConfig::scaled_default()
        };
        let mut inline_t = FlsmTree::new(base.clone(), SimulatedDisk::new(256, CostModel::FREE));
        let bg_cfg = LsmConfig {
            background_maintenance: true,
            ..base
        };
        let mut bg = FlsmTree::new(bg_cfg, SimulatedDisk::new(256, CostModel::FREE));
        let mut saw_pending = false;
        for i in 0..3000u64 {
            let k = i % 911;
            inline_t.put(key(k), val(i));
            bg.put(key(k), val(i));
            if i % 13 == 0 {
                inline_t.delete(key((i + 7) % 911));
                bg.delete(key((i + 7) % 911));
            }
            if i % 97 == 0 {
                // One step at a time so a built-but-unapplied merge is
                // observable between steps.
                for _ in 0..3 {
                    bg.maintain(1);
                    saw_pending |= bg.has_pending_compaction();
                    // A read during the in-flight merge must already match.
                    assert_eq!(bg.get(&key(k)), inline_t.get(&key(k)));
                }
            }
        }
        assert!(saw_pending, "the mix must exercise an in-flight merge");
        while bg.maintain(8) > 0 {}
        assert!(bg.bg_compactions() > 0, "background steps must have run");
        for k in 0..911u64 {
            assert_eq!(bg.get(&key(k)), inline_t.get(&key(k)), "key {k}");
        }
        assert_eq!(
            bg.scan(&key(0), &key(911), usize::MAX),
            inline_t.scan(&key(0), &key(911), usize::MAX)
        );
        assert_bounds_invariant(&bg);
    }

    /// Regression for the extent-reuse window under shared runs: a
    /// snapshot taken before a background merge keeps reading the
    /// superseded runs — their extents (and cache pages) recycle only
    /// after the last pin drops, never under the reader.
    #[test]
    fn snapshot_pins_retired_runs_until_dropped() {
        use ruskey_storage::BlockCache;
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let cache = BlockCache::new(Arc::clone(&disk), 128);
        let cfg = LsmConfig {
            buffer_bytes: 1024,
            size_ratio: 4,
            background_maintenance: true,
            ..LsmConfig::scaled_default()
        };
        let mut t = FlsmTree::new(cfg, cache);
        for i in 0..2000u64 {
            t.put(key(i), val(i));
        }
        t.flush();
        let snap = t.snapshot();
        // Drain all structural debt while the snapshot pins its runs.
        while t.maintain(8) > 0 {}
        assert!(t.bg_compactions() > 0, "the load must trigger compactions");
        assert!(
            !t.retired.is_empty(),
            "superseded runs must stay allocated under the pin"
        );
        // The pinned view still reads every key through the old runs —
        // this is the get racing the compaction that would have freed
        // its extent.
        for i in (0..2000u64).step_by(37) {
            assert_eq!(
                snap.get(t.storage().as_ref(), &key(i)),
                Some(val(i)),
                "pinned read of key {i}"
            );
        }
        let pinned_live = t.storage().live_pages();
        drop(snap);
        // The next maintenance step on the quiescent tree sweeps the
        // now-unpinned retirees.
        t.step_maintenance();
        assert!(t.retired.is_empty(), "dropping the pin must release them");
        assert!(t.storage().live_pages() < pinned_live);
        for i in (0..2000u64).step_by(37) {
            assert_eq!(t.get(&key(i)), Some(val(i)));
        }
    }

    /// `stall_ns` attributes structural time to the writes that waited:
    /// a flush-heavy inline load accrues it, an all-in-buffer load never
    /// does.
    #[test]
    fn stall_time_lands_on_the_counter() {
        let mut t = FlsmTree::new(
            LsmConfig {
                buffer_bytes: 1024,
                size_ratio: 4,
                ..LsmConfig::scaled_default()
            },
            SimulatedDisk::new(256, CostModel::NVME),
        );
        for i in 0..500u64 {
            t.put(key(i), val(i));
        }
        assert!(t.stats().flushes > 0);
        assert!(t.stats().stall_ns > 0, "inline flushes must be attributed");

        let mut calm = FlsmTree::new(
            LsmConfig::scaled_default(),
            SimulatedDisk::new(256, CostModel::NVME),
        );
        for i in 0..100u64 {
            calm.put(key(i), val(i));
        }
        assert_eq!(calm.stats().flushes, 0);
        assert_eq!(calm.stats().stall_ns, 0, "no structural work, no stall");
    }
}
