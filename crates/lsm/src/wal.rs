//! Write-ahead log: the durability substrate of the engine's write path.
//!
//! Every put/delete is appended here *before* it enters the memtable
//! ([`crate::FlsmTree`] owns an optional `Wal` and logs automatically), so
//! the write buffer — the only volatile state between memtable flushes —
//! can be reconstructed after a crash. Record format:
//!
//! ```text
//! [len: u32] [crc32: u32] [seq: u64] [kind: u8] [klen: u16] [key] [value]
//! ```
//!
//! ## Durability contract
//!
//! Appends buffer in user space; the buffer reaches the file only at
//! [`Wal::flush`] (process-crash safety) and becomes stable at
//! [`Wal::sync`] (fsync — power-failure safety). Three policies layer on
//! top:
//!
//! * **manual** ([`Wal::open`]): nothing is durable until the caller
//!   syncs — the raw substrate for group commit;
//! * **auto-sync** ([`Wal::open_with_sync_every`]): an fsync every `n`
//!   appends bounds the loss window to `n - 1` records;
//! * **group commit** (the sharded store): one [`Wal::sync`] per shard per
//!   batch at a mission-level commit barrier, so the fsync cost is
//!   amortized over the whole batch instead of paid per record. The
//!   per-shard sync legs run *concurrently* on the engine's persistent
//!   shard workers — the barrier waits for the slowest shard, not the sum
//!   of all shards, and a shard that crashes mid-leg does not stop its
//!   siblings' fsyncs from completing.
//!
//! A record is *acknowledged* only once a sync covering it succeeds;
//! [`Wal::durable_records`] counts exactly those. After a successful
//! memtable flush the log's contents are superseded by the flushed run and
//! [`Wal::reset`] truncates the file (which also clears the unsynced-window
//! counter — a reset log has nothing left to lose).
//!
//! ## Recovery
//!
//! [`Wal::replay`] parses the longest valid prefix of a log file: it stops
//! at the first record whose length field overruns the file (torn write)
//! or whose CRC mismatches (corruption), and never panics on arbitrary
//! bytes. [`Wal::recover`] additionally truncates the file back to that
//! valid prefix — so later appends extend a clean log rather than trailing
//! garbage — and returns a handle ready for appending. Replay order is
//! pinned by the sequence numbers in the record headers; callers sort by
//! `seq` before reinsertion so recovery is deterministic regardless of how
//! the log was produced.
//!
//! Note the WAL protects the *write buffer* only — one half of the
//! engine's two-log durability contract. The other half is the
//! [`crate::manifest::Manifest`], which records the tree *structure*
//! (runs, levels, policies) so that on a persistent backend
//! ([`ruskey_storage::FileDisk`]) flushed runs survive a restart too:
//! [`crate::FlsmTree::recover_persistent`] rebuilds the structure from
//! manifest + data pages and replays this log's tail on top. A flush
//! truncates the WAL only *after* the manifest batch covering the
//! flushed run is durable, so every acknowledged write is always covered
//! by at least one of the logs. On the deliberately volatile simulated
//! backend the WAL is the whole recovery story.
//!
//! ## Crash injection
//!
//! For the crash-recovery test harness the log carries a built-in fault
//! hook: [`Wal::arm_crash`] plants a [`CrashPoint`] that, once reached,
//! simulates the process dying at that instant — the user-space buffer is
//! discarded, and every later call on the handle becomes a no-op (a dead
//! process issues no more I/O). [`CrashPoint::MidFlush`] additionally
//! writes only half of the pending buffer first, producing the torn tail
//! that replay must tolerate.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::types::{KvEntry, OpKind};

/// CRC-32 (IEEE) over `data`, bitwise implementation (no table needed at
/// these log volumes). Shared with the manifest's record framing.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Where in the WAL write path a simulated crash fires (test harness).
///
/// Each point models the process dying at a distinct instant relative to
/// the durability boundary of one record or batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before the record is even buffered: the write is lost entirely.
    PreAppend,
    /// After the record is buffered but before any flush/sync: the
    /// user-space buffer dies with the process.
    PostAppend,
    /// Immediately after a successful fsync: the batch is durable, the
    /// process dies before acknowledging further work.
    PostSync,
    /// In the middle of flushing the buffer to the file: only a prefix of
    /// the buffered bytes reaches the disk — the torn-write case.
    MidFlush,
}

/// An armed crash: fires when `point` is visited for the `after + 1`-th
/// time.
#[derive(Debug, Clone, Copy)]
struct ArmedCrash {
    point: CrashPoint,
    after: u64,
}

/// An append-only write-ahead log.
pub struct Wal {
    path: PathBuf,
    file: File,
    /// User-space buffer: bytes appended but not yet written to the file.
    /// Dies with the process — exactly the data a crash loses.
    buf: Vec<u8>,
    /// Records in the current log generation (file + buffer); zeroed by
    /// [`Wal::reset`].
    records: u64,
    /// Auto-fsync every `n` appends; 0 = manual syncs only.
    sync_every: u64,
    /// Records appended since the last successful fsync.
    unsynced: u64,
    /// Lifetime appends through this handle (never reset).
    total_appends: u64,
    /// Lifetime successful fsyncs (never reset).
    syncs: u64,
    /// Lifetime records covered by a successful fsync (never reset).
    durable: u64,
    /// Armed fault-injection point, if any.
    crash: Option<ArmedCrash>,
    /// True once a simulated crash fired: the handle is "dead" and every
    /// operation is a no-op.
    crashed: bool,
}

impl Wal {
    /// Opens (creating or appending to) the log at `path`, with manual
    /// durability: appends buffer in user space until [`Wal::flush`] or
    /// [`Wal::sync`] is called.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::open_with_sync_every(path, 0)
    }

    /// Opens the log with an automatic fsync every `sync_every` appends
    /// (0 disables auto-sync), bounding crash loss to the last
    /// `sync_every - 1` records.
    pub fn open_with_sync_every(path: impl AsRef<Path>, sync_every: u64) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let existed = path.exists();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if !existed {
            // A freshly created log is not durable until its directory
            // entry is: power loss before the dir fsync would lose the
            // file — and with it every acknowledged record.
            let parent = path.parent().unwrap_or_else(|| Path::new("."));
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            File::open(dir)?.sync_all()?;
        }
        Ok(Self {
            path,
            file,
            buf: Vec::new(),
            records: 0,
            sync_every,
            unsynced: 0,
            total_appends: 0,
            syncs: 0,
            durable: 0,
            crash: None,
            crashed: false,
        })
    }

    /// Recovers a log: parses the longest valid prefix of the file at
    /// `path`, truncates the file back to that prefix (dropping any torn
    /// tail so future appends extend a clean log), and returns the parsed
    /// records alongside a handle open for appending. The records are
    /// counted as durable — they were read back from the disk.
    pub fn recover(
        path: impl AsRef<Path>,
        sync_every: u64,
    ) -> std::io::Result<(Self, Vec<KvEntry>)> {
        let path = path.as_ref();
        let (records, valid_bytes) = Self::replay_prefix(path)?;
        match OpenOptions::new().write(true).open(path) {
            Ok(f) => {
                if f.metadata()?.len() > valid_bytes {
                    f.set_len(valid_bytes)?;
                    f.sync_data()?;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut wal = Self::open_with_sync_every(path, sync_every)?;
        wal.records = records.len() as u64;
        wal.durable = records.len() as u64;
        Ok((wal, records))
    }

    /// Appends one entry. Durability follows the flush policy: with
    /// auto-sync configured the append fsyncs once the cadence is
    /// reached, otherwise it only buffers until [`Wal::flush`]/[`Wal::sync`].
    pub fn append(&mut self, e: &KvEntry) -> std::io::Result<()> {
        if self.crashed {
            return Ok(());
        }
        if self.hit(CrashPoint::PreAppend) {
            // Process death before buffering: every unflushed byte dies.
            self.buf.clear();
            return Ok(());
        }
        let mut body = Vec::with_capacity(11 + e.key.len() + e.value.len());
        body.extend_from_slice(&e.seq.to_le_bytes());
        body.push(e.kind.to_byte());
        body.extend_from_slice(&(e.key.len() as u16).to_le_bytes());
        body.extend_from_slice(&e.key);
        body.extend_from_slice(&e.value);
        self.buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(&body).to_le_bytes());
        self.buf.extend_from_slice(&body);
        self.records += 1;
        self.unsynced += 1;
        self.total_appends += 1;
        if self.hit(CrashPoint::PostAppend) {
            // Process death after buffering: the buffer (this record
            // included) dies with the process.
            self.buf.clear();
            return Ok(());
        }
        if self.sync_every > 0 && self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes buffered records to the file without forcing them to stable
    /// storage — the cheap mission-boundary policy: survives a process
    /// crash, not a power failure. Deliberately does *not* reset the
    /// auto-sync cadence, so the `sync_every` power-failure bound holds
    /// however often callers flush.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.crashed {
            return Ok(());
        }
        self.flush_buf()
    }

    /// Flushes buffered records and fsyncs the file — the group-commit
    /// primitive: one call makes every record appended so far durable
    /// (acknowledged). The loss-window counter resets only once the fsync
    /// *succeeds* — a failed sync leaves `unsynced()` (and the auto-sync
    /// cadence) honest.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.crashed {
            return Ok(());
        }
        self.flush_buf()?;
        if self.crashed {
            // A MidFlush crash fired inside the flush: the sync never
            // completed, so no record becomes acknowledged.
            return Ok(());
        }
        self.file.sync_data()?;
        self.syncs += 1;
        self.durable += self.unsynced;
        self.unsynced = 0;
        self.hit(CrashPoint::PostSync);
        Ok(())
    }

    /// Writes the user-space buffer to the file, honoring an armed
    /// [`CrashPoint::MidFlush`]: the crash writes only the first half of
    /// the pending bytes (a torn write) before the process "dies".
    fn flush_buf(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        if self.hit(CrashPoint::MidFlush) {
            let half = self.buf.len() / 2;
            self.file.write_all(&self.buf[..half])?;
            self.buf.clear();
            return Ok(());
        }
        self.file.write_all(&self.buf)?;
        self.buf.clear();
        Ok(())
    }

    /// Number of records appended in the current log generation (since
    /// open or the last [`Wal::reset`]).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Lifetime number of records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.total_appends
    }

    /// Records appended since the last fsync — the current power-failure
    /// loss window.
    pub fn unsynced(&self) -> u64 {
        self.unsynced
    }

    /// Lifetime number of successful fsyncs through this handle — the
    /// group-commit cost counter (≤ 1 per shard per batch under the
    /// mission barrier).
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// Lifetime number of records that have exited the loss window — the
    /// acknowledged write count: covered by a successful fsync, or
    /// superseded by a memtable flush (the flushed run persists them, so
    /// [`Wal::reset`] resolves them too).
    pub fn durable_records(&self) -> u64 {
        self.durable
    }

    /// Truncates the log (after a successful memtable flush): the flushed
    /// run supersedes the logged records, so both the file and the
    /// user-space buffer are discarded and the unsynced window resets to
    /// zero — a reset log has nothing left to lose.
    pub fn reset(&mut self) -> std::io::Result<()> {
        if self.crashed {
            return Ok(());
        }
        self.buf.clear();
        // Records still in the loss window are superseded by the flushed
        // run: they leave the window as acknowledged, not as lost.
        self.durable += self.unsynced;
        let file = OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        file.sync_data()?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.records = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Arms a simulated crash: the `after + 1`-th visit of `point` kills
    /// this handle (discarding the user-space buffer, as process death
    /// would). Test-harness hook; a production store never arms one.
    pub fn arm_crash(&mut self, point: CrashPoint, after: u64) {
        self.crash = Some(ArmedCrash { point, after });
    }

    /// True once an armed crash has fired: the handle is dead and every
    /// operation is a no-op. Counters keep reporting the pre-crash state
    /// of the (simulated) process.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Kills the handle from outside: the tree calls this when the
    /// storage device reports a power cut, so the WAL behaves exactly
    /// like a process that died — the user-space buffer is lost, the
    /// on-disk prefix stays authoritative for recovery.
    pub fn mark_crashed(&mut self) {
        self.crashed = true;
        self.buf.clear();
    }

    /// Visits a crash point: decrements an armed countdown and, when it
    /// fires, kills the handle. Returns true if the crash fired *now*.
    fn hit(&mut self, point: CrashPoint) -> bool {
        match self.crash {
            Some(ref mut armed) if armed.point == point => {
                if armed.after > 0 {
                    armed.after -= 1;
                    false
                } else {
                    self.crash = None;
                    self.crashed = true;
                    // The caller discards the user-space buffer (MidFlush
                    // half-writes it first, so the clear cannot live here).
                    true
                }
            }
            _ => false,
        }
    }

    /// Replays a log file, returning the longest valid prefix of records.
    /// Never panics on arbitrary bytes: parsing stops at the first
    /// truncated or checksum-failing record.
    pub fn replay(path: impl AsRef<Path>) -> std::io::Result<Vec<KvEntry>> {
        Self::replay_prefix(path).map(|(records, _)| records)
    }

    /// [`Wal::replay`] plus the byte length of the valid prefix, so
    /// recovery can truncate a torn tail before appending again.
    pub fn replay_prefix(path: impl AsRef<Path>) -> std::io::Result<(Vec<KvEntry>, u64)> {
        let mut data = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(e),
        }
        let mut out = Vec::new();
        let mut off = 0usize;
        while off + 8 <= data.len() {
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
            let start = off + 8;
            let end = start.saturating_add(len);
            if end > data.len() {
                break; // truncated tail
            }
            let body = &data[start..end];
            if crc32(body) != crc || len < 11 {
                break; // corrupt record: stop replay
            }
            let seq = u64::from_le_bytes(body[0..8].try_into().unwrap());
            let Some(kind) = OpKind::from_byte(body[8]) else {
                break;
            };
            let klen = u16::from_le_bytes(body[9..11].try_into().unwrap()) as usize;
            if 11 + klen > body.len() {
                break;
            }
            let key = Bytes::copy_from_slice(&body[11..11 + klen]);
            let value = Bytes::copy_from_slice(&body[11 + klen..]);
            out.push(KvEntry {
                key,
                value,
                seq,
                kind,
            });
            off = end;
        }
        Ok((out, off as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ruskey-wal-{name}-{}", std::process::id()))
    }

    fn e(k: &str, v: &str, seq: u64) -> KvEntry {
        KvEntry::put(
            Bytes::copy_from_slice(k.as_bytes()),
            Bytes::copy_from_slice(v.as_bytes()),
            seq,
        )
    }

    #[test]
    fn append_sync_replay() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.append(&KvEntry::delete(Bytes::from_static(b"b"), 2))
                .unwrap();
            wal.append(&e("c", "3", 3)).unwrap();
            wal.sync().unwrap();
            assert_eq!(wal.appended(), 3);
            assert_eq!(wal.records(), 3);
            assert_eq!(wal.sync_count(), 1);
            assert_eq!(wal.durable_records(), 3);
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[0].key.as_ref(), b"a");
        assert!(replayed[1].is_tombstone());
        assert_eq!(replayed[2].seq, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let replayed = Wal::replay(tmp("never-created-xyz")).unwrap();
        assert!(replayed.is_empty());
    }

    #[test]
    fn replay_stops_at_truncation() {
        let path = tmp("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.append(&e("b", "2", 2)).unwrap();
            wal.sync().unwrap();
        }
        // Chop off the last 5 bytes (torn write).
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key.as_ref(), b"a");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_stops_at_corruption() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.append(&e("b", "2", 2)).unwrap();
            wal.sync().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF; // flip a bit in record 2's value
        std::fs::write(&path, &data).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reset_truncates() {
        let path = tmp("reset");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&e("a", "1", 1)).unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.records(), 0);
        wal.append(&e("z", "9", 9)).unwrap();
        wal.sync().unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key.as_ref(), b"z");
        let _ = std::fs::remove_file(&path);
    }

    /// Pins the reset invariant: truncating the log clears the unsynced
    /// loss window (a reset log has nothing left to lose), while the
    /// lifetime counters keep accumulating.
    #[test]
    fn reset_clears_unsynced_window() {
        let path = tmp("reset-unsynced");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open_with_sync_every(&path, 8).unwrap();
        for i in 1..=5u64 {
            wal.append(&e(&format!("k{i}"), "v", i)).unwrap();
        }
        assert_eq!(wal.unsynced(), 5);
        wal.reset().unwrap();
        assert_eq!(wal.unsynced(), 0, "reset must clear the loss window");
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.appended(), 5, "lifetime appends survive reset");
        // The auto-sync cadence restarts from a clean window: the next
        // sync happens 8 appends after the reset, not 3.
        for i in 6..=12u64 {
            wal.append(&e(&format!("k{i}"), "v", i)).unwrap();
        }
        assert_eq!(wal.unsynced(), 7, "no premature auto-sync after reset");
        assert_eq!(wal.sync_count(), 0);
        wal.append(&e("k13", "v", 13)).unwrap();
        assert_eq!(wal.unsynced(), 0, "cadence of 8 reached");
        assert_eq!(wal.sync_count(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crc_detects_changes() {
        assert_ne!(crc32(b"hello"), crc32(b"hellp"));
        assert_eq!(crc32(b""), 0);
    }

    /// Simulates a crash: the handle is leaked so its user-space buffer
    /// is never flushed, exactly like a process dying mid-append.
    fn crash(wal: Wal) {
        std::mem::forget(wal);
    }

    #[test]
    fn auto_sync_bounds_crash_loss() {
        let path = tmp("autosync");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open_with_sync_every(&path, 4).unwrap();
            for i in 1..=10u64 {
                wal.append(&e(&format!("k{i}"), "v", i)).unwrap();
            }
            // Appends 1..=8 were covered by the two automatic syncs; 9 and
            // 10 sit in the loss window.
            assert_eq!(wal.appended(), 10);
            assert_eq!(wal.unsynced(), 2);
            assert_eq!(wal.sync_count(), 2);
            assert_eq!(wal.durable_records(), 8);
            crash(wal);
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(
            replayed.len(),
            8,
            "auto-sync every 4 must preserve the first 8 of 10 records"
        );
        assert_eq!(replayed.last().unwrap().seq, 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn manual_policy_without_flush_loses_buffered_records() {
        let path = tmp("manual-crash");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.append(&e("b", "2", 2)).unwrap();
            assert_eq!(wal.unsynced(), 2);
            crash(wal);
        }
        // The documented (and previously silent) failure mode of the
        // manual policy: "logged" but unflushed records vanish.
        assert!(Wal::replay(&path).unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mission_boundary_flush_survives_process_crash() {
        let path = tmp("flush-boundary");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.append(&e("b", "2", 2)).unwrap();
            wal.flush().unwrap(); // mission boundary
                                  // flush() bounds *process-crash* loss; the power-failure
                                  // window (fsync cadence) is untouched.
            assert_eq!(wal.unsynced(), 2);
            wal.append(&e("c", "3", 3)).unwrap();
            crash(wal);
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 2, "flushed prefix survives, tail is lost");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_does_not_defer_auto_sync() {
        let path = tmp("flush-vs-autosync");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open_with_sync_every(&path, 2).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.flush().unwrap(); // must not reset the fsync cadence
            wal.append(&e("b", "2", 2)).unwrap(); // second append: auto-sync
            assert_eq!(wal.unsynced(), 0, "cadence of 2 reached despite flush");
            wal.append(&e("c", "3", 3)).unwrap();
            crash(wal);
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 2, "the auto-synced prefix survives");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_stops_at_mid_record_truncation_after_auto_sync() {
        let path = tmp("autosync-midrec");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open_with_sync_every(&path, 1).unwrap();
            for i in 1..=3u64 {
                wal.append(&e(&format!("key-{i}"), "value", i)).unwrap();
            }
            crash(wal);
        }
        // Tear the last record in half (torn write at power loss): chop
        // inside record 3's body, past its header.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 2, "torn third record must be dropped");
        assert_eq!(replayed[1].seq, 2);
        let _ = std::fs::remove_file(&path);
    }

    // ------------------------------------------------------------------
    // Crash-point fault injection
    // ------------------------------------------------------------------

    #[test]
    fn pre_append_crash_loses_the_record_and_kills_the_handle() {
        let path = tmp("crash-preappend");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&e("a", "1", 1)).unwrap();
        wal.sync().unwrap();
        wal.arm_crash(CrashPoint::PreAppend, 0);
        wal.append(&e("b", "2", 2)).unwrap(); // fires: record never buffered
        assert!(wal.is_crashed());
        // Dead handle: everything is a no-op.
        wal.append(&e("c", "3", 3)).unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn post_append_crash_discards_the_buffer() {
        let path = tmp("crash-postappend");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&e("a", "1", 1)).unwrap();
        wal.sync().unwrap();
        wal.arm_crash(CrashPoint::PostAppend, 1);
        wal.append(&e("b", "2", 2)).unwrap(); // countdown: 1 -> 0
        wal.append(&e("c", "3", 3)).unwrap(); // fires: b and c die in the buffer
        assert!(wal.is_crashed());
        assert_eq!(
            Wal::replay(&path).unwrap().len(),
            1,
            "only the synced record"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn post_sync_crash_keeps_the_batch_durable() {
        let path = tmp("crash-postsync");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&e("a", "1", 1)).unwrap();
        wal.append(&e("b", "2", 2)).unwrap();
        wal.arm_crash(CrashPoint::PostSync, 0);
        wal.sync().unwrap(); // batch committed, then the process dies
        assert!(wal.is_crashed());
        assert_eq!(wal.durable_records(), 2, "the sync completed first");
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_flush_crash_tears_the_tail_but_keeps_a_prefix() {
        let path = tmp("crash-midflush");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&e("a", "1", 1)).unwrap();
        wal.sync().unwrap();
        for i in 2..=9u64 {
            wal.append(&e(&format!("key-{i}"), "some-value", i))
                .unwrap();
        }
        wal.arm_crash(CrashPoint::MidFlush, 0);
        wal.sync().unwrap(); // torn: only half the batch bytes hit the file
        assert!(wal.is_crashed());
        assert_eq!(
            wal.durable_records(),
            1,
            "the torn sync acknowledged nothing"
        );
        let replayed = Wal::replay(&path).unwrap();
        // Replay yields a strict prefix: at least the previously synced
        // record, fewer than the full batch, all in order.
        assert!(
            !replayed.is_empty() && replayed.len() < 9,
            "{}",
            replayed.len()
        );
        for (i, r) in replayed.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1, "prefix order broken");
        }
        let _ = std::fs::remove_file(&path);
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    #[test]
    fn recover_truncates_torn_tail_and_appends_cleanly() {
        let path = tmp("recover-torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            for i in 1..=3u64 {
                wal.append(&e(&format!("key-{i}"), "value", i)).unwrap();
            }
            wal.sync().unwrap();
        }
        // Tear the third record.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 4]).unwrap();
        let (mut wal, records) = Wal::recover(&path, 0).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(wal.records(), 2);
        assert_eq!(wal.durable_records(), 2);
        // Appending after recovery extends a clean log: all records replay.
        wal.append(&e("key-4", "value", 4)).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[2].seq, 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_missing_file_starts_empty() {
        let path = tmp("recover-missing");
        let _ = std::fs::remove_file(&path);
        let (wal, records) = Wal::recover(&path, 0).unwrap();
        assert!(records.is_empty());
        assert_eq!(wal.records(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
