//! Write-ahead log.
//!
//! A durability substrate orthogonal to the paper's evaluation (RocksDB
//! provides one implicitly): every write is appended to an on-disk log
//! before entering the memtable, and an interrupted process can replay the
//! log to recover the buffered writes. Record format:
//!
//! ```text
//! [len: u32] [crc32: u32] [seq: u64] [kind: u8] [klen: u16] [key] [value]
//! ```
//!
//! Replay stops at the first corrupt or truncated record, recovering the
//! longest valid prefix — the standard torn-write-tolerant behaviour.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::types::{KvEntry, OpKind};

/// CRC-32 (IEEE) over `data`, bitwise implementation (no table needed at
/// these log volumes).
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// An append-only write-ahead log.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    records: u64,
}

impl Wal {
    /// Opens (creating or appending to) the log at `path`.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            path,
            writer: BufWriter::new(file),
            records: 0,
        })
    }

    /// Appends one entry. Durability requires a subsequent [`Wal::sync`].
    pub fn append(&mut self, e: &KvEntry) -> std::io::Result<()> {
        let mut body = Vec::with_capacity(11 + e.key.len() + e.value.len());
        body.extend_from_slice(&e.seq.to_le_bytes());
        body.push(e.kind.to_byte());
        body.extend_from_slice(&(e.key.len() as u16).to_le_bytes());
        body.extend_from_slice(&e.key);
        body.extend_from_slice(&e.value);
        self.writer.write_all(&(body.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32(&body).to_le_bytes())?;
        self.writer.write_all(&body)?;
        self.records += 1;
        Ok(())
    }

    /// Flushes buffered records and fsyncs the file.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()
    }

    /// Number of records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.records
    }

    /// Truncates the log (after a successful memtable flush).
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        let file = OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        self.writer = BufWriter::new(
            OpenOptions::new()
                .append(true)
                .open(&self.path)
                .unwrap_or(file),
        );
        self.records = 0;
        Ok(())
    }

    /// Replays a log file, returning the longest valid prefix of records.
    pub fn replay(path: impl AsRef<Path>) -> std::io::Result<Vec<KvEntry>> {
        let mut data = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        }
        let mut out = Vec::new();
        let mut off = 0usize;
        while off + 8 <= data.len() {
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
            let start = off + 8;
            let end = start.saturating_add(len);
            if end > data.len() {
                break; // truncated tail
            }
            let body = &data[start..end];
            if crc32(body) != crc || len < 11 {
                break; // corrupt record: stop replay
            }
            let seq = u64::from_le_bytes(body[0..8].try_into().unwrap());
            let Some(kind) = OpKind::from_byte(body[8]) else {
                break;
            };
            let klen = u16::from_le_bytes(body[9..11].try_into().unwrap()) as usize;
            if 11 + klen > body.len() {
                break;
            }
            let key = Bytes::copy_from_slice(&body[11..11 + klen]);
            let value = Bytes::copy_from_slice(&body[11 + klen..]);
            out.push(KvEntry {
                key,
                value,
                seq,
                kind,
            });
            off = end;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ruskey-wal-{name}-{}", std::process::id()))
    }

    fn e(k: &str, v: &str, seq: u64) -> KvEntry {
        KvEntry::put(
            Bytes::copy_from_slice(k.as_bytes()),
            Bytes::copy_from_slice(v.as_bytes()),
            seq,
        )
    }

    #[test]
    fn append_sync_replay() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.append(&KvEntry::delete(Bytes::from_static(b"b"), 2))
                .unwrap();
            wal.append(&e("c", "3", 3)).unwrap();
            wal.sync().unwrap();
            assert_eq!(wal.appended(), 3);
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[0].key.as_ref(), b"a");
        assert!(replayed[1].is_tombstone());
        assert_eq!(replayed[2].seq, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let replayed = Wal::replay(tmp("never-created-xyz")).unwrap();
        assert!(replayed.is_empty());
    }

    #[test]
    fn replay_stops_at_truncation() {
        let path = tmp("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.append(&e("b", "2", 2)).unwrap();
            wal.sync().unwrap();
        }
        // Chop off the last 5 bytes (torn write).
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key.as_ref(), b"a");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_stops_at_corruption() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.append(&e("b", "2", 2)).unwrap();
            wal.sync().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF; // flip a bit in record 2's value
        std::fs::write(&path, &data).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reset_truncates() {
        let path = tmp("reset");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&e("a", "1", 1)).unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.appended(), 0);
        wal.append(&e("z", "9", 9)).unwrap();
        wal.sync().unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key.as_ref(), b"z");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crc_detects_changes() {
        assert_ne!(crc32(b"hello"), crc32(b"hellp"));
        assert_eq!(crc32(b""), 0);
    }
}
