//! Write-ahead log.
//!
//! A durability substrate orthogonal to the paper's evaluation (RocksDB
//! provides one implicitly): every write is appended to an on-disk log
//! before entering the memtable, and an interrupted process can replay the
//! log to recover the buffered writes. Record format:
//!
//! ```text
//! [len: u32] [crc32: u32] [seq: u64] [kind: u8] [klen: u16] [key] [value]
//! ```
//!
//! Replay stops at the first corrupt or truncated record, recovering the
//! longest valid prefix — the standard torn-write-tolerant behaviour.
//!
//! Durability is governed by an explicit **flush policy**: by default
//! appends only buffer in user space (a crash can lose everything since
//! the last [`Wal::sync`]), while [`Wal::open_with_sync_every`] bounds the
//! loss window to `n` records by fsyncing automatically every `n`
//! appends. Callers batching at a coarser granularity (e.g. one mission)
//! can instead call [`Wal::flush`] or [`Wal::sync`] at their boundary.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::types::{KvEntry, OpKind};

/// CRC-32 (IEEE) over `data`, bitwise implementation (no table needed at
/// these log volumes).
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// An append-only write-ahead log.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    records: u64,
    /// Auto-fsync every `n` appends; 0 = manual syncs only.
    sync_every: u64,
    /// Records appended since the last fsync.
    unsynced: u64,
}

impl Wal {
    /// Opens (creating or appending to) the log at `path`, with manual
    /// durability: appends buffer in user space until [`Wal::flush`] or
    /// [`Wal::sync`] is called.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::open_with_sync_every(path, 0)
    }

    /// Opens the log with an automatic fsync every `sync_every` appends
    /// (0 disables auto-sync), bounding crash loss to the last
    /// `sync_every - 1` records.
    pub fn open_with_sync_every(path: impl AsRef<Path>, sync_every: u64) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            path,
            writer: BufWriter::new(file),
            records: 0,
            sync_every,
            unsynced: 0,
        })
    }

    /// Appends one entry. Durability follows the flush policy: with
    /// auto-sync configured the append fsyncs once the cadence is
    /// reached, otherwise it only buffers until [`Wal::flush`]/[`Wal::sync`].
    pub fn append(&mut self, e: &KvEntry) -> std::io::Result<()> {
        let mut body = Vec::with_capacity(11 + e.key.len() + e.value.len());
        body.extend_from_slice(&e.seq.to_le_bytes());
        body.push(e.kind.to_byte());
        body.extend_from_slice(&(e.key.len() as u16).to_le_bytes());
        body.extend_from_slice(&e.key);
        body.extend_from_slice(&e.value);
        self.writer.write_all(&(body.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32(&body).to_le_bytes())?;
        self.writer.write_all(&body)?;
        self.records += 1;
        self.unsynced += 1;
        if self.sync_every > 0 && self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes buffered records to the OS without forcing them to stable
    /// storage — the cheap mission-boundary policy: survives a process
    /// crash, not a power failure. Deliberately does *not* reset the
    /// auto-sync cadence, so the `sync_every` power-failure bound holds
    /// however often callers flush.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Flushes buffered records and fsyncs the file. The loss-window
    /// counter resets only once the fsync *succeeds* — a failed sync
    /// leaves `unsynced()` (and the auto-sync cadence) honest.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Number of records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.records
    }

    /// Records appended since the last fsync — the current power-failure
    /// loss window.
    pub fn unsynced(&self) -> u64 {
        self.unsynced
    }

    /// Truncates the log (after a successful memtable flush).
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        let file = OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        self.writer = BufWriter::new(
            OpenOptions::new()
                .append(true)
                .open(&self.path)
                .unwrap_or(file),
        );
        self.records = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Replays a log file, returning the longest valid prefix of records.
    pub fn replay(path: impl AsRef<Path>) -> std::io::Result<Vec<KvEntry>> {
        let mut data = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        }
        let mut out = Vec::new();
        let mut off = 0usize;
        while off + 8 <= data.len() {
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
            let start = off + 8;
            let end = start.saturating_add(len);
            if end > data.len() {
                break; // truncated tail
            }
            let body = &data[start..end];
            if crc32(body) != crc || len < 11 {
                break; // corrupt record: stop replay
            }
            let seq = u64::from_le_bytes(body[0..8].try_into().unwrap());
            let Some(kind) = OpKind::from_byte(body[8]) else {
                break;
            };
            let klen = u16::from_le_bytes(body[9..11].try_into().unwrap()) as usize;
            if 11 + klen > body.len() {
                break;
            }
            let key = Bytes::copy_from_slice(&body[11..11 + klen]);
            let value = Bytes::copy_from_slice(&body[11 + klen..]);
            out.push(KvEntry {
                key,
                value,
                seq,
                kind,
            });
            off = end;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ruskey-wal-{name}-{}", std::process::id()))
    }

    fn e(k: &str, v: &str, seq: u64) -> KvEntry {
        KvEntry::put(
            Bytes::copy_from_slice(k.as_bytes()),
            Bytes::copy_from_slice(v.as_bytes()),
            seq,
        )
    }

    #[test]
    fn append_sync_replay() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.append(&KvEntry::delete(Bytes::from_static(b"b"), 2))
                .unwrap();
            wal.append(&e("c", "3", 3)).unwrap();
            wal.sync().unwrap();
            assert_eq!(wal.appended(), 3);
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[0].key.as_ref(), b"a");
        assert!(replayed[1].is_tombstone());
        assert_eq!(replayed[2].seq, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let replayed = Wal::replay(tmp("never-created-xyz")).unwrap();
        assert!(replayed.is_empty());
    }

    #[test]
    fn replay_stops_at_truncation() {
        let path = tmp("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.append(&e("b", "2", 2)).unwrap();
            wal.sync().unwrap();
        }
        // Chop off the last 5 bytes (torn write).
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key.as_ref(), b"a");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_stops_at_corruption() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.append(&e("b", "2", 2)).unwrap();
            wal.sync().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF; // flip a bit in record 2's value
        std::fs::write(&path, &data).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reset_truncates() {
        let path = tmp("reset");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&e("a", "1", 1)).unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.appended(), 0);
        wal.append(&e("z", "9", 9)).unwrap();
        wal.sync().unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key.as_ref(), b"z");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crc_detects_changes() {
        assert_ne!(crc32(b"hello"), crc32(b"hellp"));
        assert_eq!(crc32(b""), 0);
    }

    /// Simulates a crash: the writer is leaked so its `BufWriter` never
    /// flushes on drop, exactly like a process dying mid-append.
    fn crash(wal: Wal) {
        std::mem::forget(wal);
    }

    #[test]
    fn auto_sync_bounds_crash_loss() {
        let path = tmp("autosync");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open_with_sync_every(&path, 4).unwrap();
            for i in 1..=10u64 {
                wal.append(&e(&format!("k{i}"), "v", i)).unwrap();
            }
            // Appends 1..=8 were covered by the two automatic syncs; 9 and
            // 10 sit in the loss window.
            assert_eq!(wal.appended(), 10);
            assert_eq!(wal.unsynced(), 2);
            crash(wal);
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(
            replayed.len(),
            8,
            "auto-sync every 4 must preserve the first 8 of 10 records"
        );
        assert_eq!(replayed.last().unwrap().seq, 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn manual_policy_without_flush_loses_buffered_records() {
        let path = tmp("manual-crash");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.append(&e("b", "2", 2)).unwrap();
            assert_eq!(wal.unsynced(), 2);
            crash(wal);
        }
        // The documented (and previously silent) failure mode of the
        // manual policy: "logged" but unflushed records vanish.
        assert!(Wal::replay(&path).unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mission_boundary_flush_survives_process_crash() {
        let path = tmp("flush-boundary");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.append(&e("b", "2", 2)).unwrap();
            wal.flush().unwrap(); // mission boundary
                                  // flush() bounds *process-crash* loss; the power-failure
                                  // window (fsync cadence) is untouched.
            assert_eq!(wal.unsynced(), 2);
            wal.append(&e("c", "3", 3)).unwrap();
            crash(wal);
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 2, "flushed prefix survives, tail is lost");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_does_not_defer_auto_sync() {
        let path = tmp("flush-vs-autosync");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open_with_sync_every(&path, 2).unwrap();
            wal.append(&e("a", "1", 1)).unwrap();
            wal.flush().unwrap(); // must not reset the fsync cadence
            wal.append(&e("b", "2", 2)).unwrap(); // second append: auto-sync
            assert_eq!(wal.unsynced(), 0, "cadence of 2 reached despite flush");
            wal.append(&e("c", "3", 3)).unwrap();
            crash(wal);
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 2, "the auto-synced prefix survives");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_stops_at_mid_record_truncation_after_auto_sync() {
        let path = tmp("autosync-midrec");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open_with_sync_every(&path, 1).unwrap();
            for i in 1..=3u64 {
                wal.append(&e(&format!("key-{i}"), "value", i)).unwrap();
            }
            crash(wal);
        }
        // Tear the last record in half (torn write at power loss): chop
        // inside record 3's body, past its header.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 2, "torn third record must be dropped");
        assert_eq!(replayed[1].seq, 2);
        let _ = std::fs::remove_file(&path);
    }
}
