//! Key popularity distributions.

use rand::Rng;

/// How keys are drawn from the key space `[0, n)`.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyDistribution {
    /// Every key equally likely (the paper's default experiments).
    Uniform,
    /// YCSB-style scrambled Zipfian: ranks follow a Zipf law with exponent
    /// `theta` (YCSB default 0.99) and are scattered over the key space by a
    /// deterministic bijection so hot keys are not clustered.
    Zipfian {
        /// Zipf exponent in `(0, 1)`; YCSB's default is 0.99.
        theta: f64,
    },
    /// Recency-skewed: key `n−1−r` where rank `r` is Zipf-distributed, so
    /// the most recently inserted keys are hottest (YCSB "latest").
    Latest {
        /// Zipf exponent for the recency ranks.
        theta: f64,
    },
    /// A hot set of `hot_fraction` of the keys receives `hot_probability`
    /// of the accesses; the rest are uniform over the cold set.
    HotSpot {
        /// Fraction of the key space that is hot, in `(0, 1)`.
        hot_fraction: f64,
        /// Probability an access goes to the hot set, in `(0, 1)`.
        hot_probability: f64,
    },
}

impl KeyDistribution {
    /// YCSB's default Zipfian.
    pub fn zipfian_default() -> Self {
        KeyDistribution::Zipfian { theta: 0.99 }
    }
}

/// A sampler binding a [`KeyDistribution`] to a key-space size.
#[derive(Debug, Clone)]
pub struct KeySampler {
    n: u64,
    dist: KeyDistribution,
    zipf: Option<ZipfState>,
    scramble_mult: u64,
}

#[derive(Debug, Clone)]
struct ZipfState {
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl ZipfState {
    fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1);
        // The supported range is the half-open [0, 1): `theta = 0`
        // degenerates cleanly to the uniform distribution (`alpha = 1`,
        // `eta = 1`, so ranks are `n·u`), while `theta = 1` divides by
        // zero in `alpha = 1/(1-theta)`.
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            theta,
            zetan,
            alpha,
            eta,
        }
    }

    /// Draws a Zipf-distributed rank in `[0, n)` (Gray et al. / YCSB).
    fn sample(&self, n: u64, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(n - 1)
    }
}

/// Greatest common divisor (for picking a scramble multiplier coprime to n).
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl KeySampler {
    /// Creates a sampler over the key space `[0, n)`.
    pub fn new(n: u64, dist: KeyDistribution) -> Self {
        assert!(n >= 1, "key space must be non-empty");
        let zipf = match &dist {
            KeyDistribution::Zipfian { theta } | KeyDistribution::Latest { theta } => {
                Some(ZipfState::new(n, *theta))
            }
            _ => None,
        };
        // A multiplier coprime to n makes `rank * mult % n` a bijection,
        // scattering hot ranks across the key space deterministically.
        let mut scramble_mult = 0x9E37_79B9_7F4A_7C15u64 % n.max(1);
        if scramble_mult == 0 {
            scramble_mult = 1;
        }
        while gcd(scramble_mult, n) != 1 {
            scramble_mult += 1;
        }
        Self {
            n,
            dist,
            zipf,
            scramble_mult,
        }
    }

    /// The key-space size.
    pub fn key_space(&self) -> u64 {
        self.n
    }

    /// Draws one key id in `[0, n)`.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        match &self.dist {
            KeyDistribution::Uniform => rng.gen_range(0..self.n),
            KeyDistribution::Zipfian { .. } => {
                let rank = self.zipf.as_ref().unwrap().sample(self.n, rng);
                (rank as u128 * self.scramble_mult as u128 % self.n as u128) as u64
            }
            KeyDistribution::Latest { .. } => {
                let rank = self.zipf.as_ref().unwrap().sample(self.n, rng);
                self.n - 1 - rank
            }
            KeyDistribution::HotSpot {
                hot_fraction,
                hot_probability,
            } => {
                let hot_n = ((self.n as f64 * hot_fraction).ceil() as u64).clamp(1, self.n);
                if rng.gen::<f64>() < *hot_probability {
                    rng.gen_range(0..hot_n)
                } else if hot_n < self.n {
                    rng.gen_range(hot_n..self.n)
                } else {
                    rng.gen_range(0..self.n)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(sampler: &KeySampler, draws: usize, n: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(42);
        let mut h = vec![0u64; n];
        for _ in 0..draws {
            h[sampler.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let s = KeySampler::new(100, KeyDistribution::Uniform);
        let h = histogram(&s, 100_000, 100);
        let (min, max) = (h.iter().min().unwrap(), h.iter().max().unwrap());
        assert!(
            *max < 2 * *min,
            "uniform histogram too skewed: {min}..{max}"
        );
    }

    #[test]
    fn zipfian_is_skewed_and_scattered() {
        let n = 1000u64;
        let s = KeySampler::new(n, KeyDistribution::zipfian_default());
        let h = histogram(&s, 200_000, n as usize);
        let mut sorted = h.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Top-10 keys should take a large share (Zipf 0.99 over 1000 keys).
        let top10: u64 = sorted[..10].iter().sum();
        let total: u64 = sorted.iter().sum();
        assert!(
            top10 as f64 / total as f64 > 0.25,
            "zipfian not skewed enough: top10 {top10}/{total}"
        );
        // Scrambling: rank 0 maps to key 0, but rank 1 (second hottest)
        // must be scattered away from key 1 by the multiplier bijection.
        let mut by_count: Vec<(usize, u64)> = h.iter().copied().enumerate().collect();
        by_count.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
        assert_eq!(by_count[0].0 as u64, 0, "rank 0 scrambles to key 0");
        let mut mult = 0x9E37_79B9_7F4A_7C15u64 % n;
        while gcd(mult, n) != 1 {
            mult += 1;
        }
        assert_eq!(
            by_count[1].0 as u64, mult,
            "rank 1 lands at the scramble multiplier"
        );
    }

    #[test]
    fn latest_prefers_high_ids() {
        let n = 1000u64;
        let s = KeySampler::new(n, KeyDistribution::Latest { theta: 0.99 });
        let h = histogram(&s, 100_000, n as usize);
        let hottest = h.iter().enumerate().max_by_key(|(_, c)| **c).unwrap().0 as u64;
        assert_eq!(hottest, n - 1);
    }

    #[test]
    fn hotspot_concentrates() {
        let s = KeySampler::new(
            1000,
            KeyDistribution::HotSpot {
                hot_fraction: 0.1,
                hot_probability: 0.9,
            },
        );
        let h = histogram(&s, 100_000, 1000);
        let hot: u64 = h[..100].iter().sum();
        let total: u64 = h.iter().sum();
        let share = hot as f64 / total as f64;
        assert!((share - 0.9).abs() < 0.02, "hot share {share}");
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for dist in [
            KeyDistribution::Uniform,
            KeyDistribution::zipfian_default(),
            KeyDistribution::Latest { theta: 0.5 },
            KeyDistribution::HotSpot {
                hot_fraction: 0.2,
                hot_probability: 0.8,
            },
        ] {
            let s = KeySampler::new(17, dist);
            for _ in 0..10_000 {
                assert!(s.sample(&mut rng) < 17);
            }
        }
    }

    #[test]
    fn tiny_key_spaces_work() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = KeySampler::new(1, KeyDistribution::zipfian_default());
        assert_eq!(s.sample(&mut rng), 0);
        let s = KeySampler::new(2, KeyDistribution::Uniform);
        for _ in 0..100 {
            assert!(s.sample(&mut rng) < 2);
        }
    }

    /// `theta = 0` sits *inside* the supported range and degenerates to
    /// the uniform distribution (after the scramble bijection, which is
    /// measure-preserving) — pinning that the accepted range really is
    /// the half-open `[0, 1)`.
    #[test]
    fn zipf_theta_zero_is_uniform() {
        let s = KeySampler::new(100, KeyDistribution::Zipfian { theta: 0.0 });
        let h = histogram(&s, 100_000, 100);
        let (min, max) = (h.iter().min().unwrap(), h.iter().max().unwrap());
        assert!(*max < 2 * *min, "theta=0 must be uniform, got {min}..{max}");
    }

    #[test]
    #[should_panic(expected = "theta must be in [0, 1)")]
    fn zipf_theta_one_is_rejected() {
        let _ = KeySampler::new(100, KeyDistribution::Zipfian { theta: 1.0 });
    }

    #[test]
    #[should_panic(expected = "theta must be in [0, 1)")]
    fn zipf_negative_theta_is_rejected() {
        let _ = KeySampler::new(100, KeyDistribution::Latest { theta: -0.1 });
    }

    #[test]
    fn zeta_matches_hand_computed() {
        assert!((zeta(1, 0.99) - 1.0).abs() < 1e-12);
        let z3 = 1.0 + 1.0 / 2f64.powf(0.5) + 1.0 / 3f64.powf(0.5);
        assert!((zeta(3, 0.5) - z3).abs() < 1e-12);
    }
}
