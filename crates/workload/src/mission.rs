//! Mission segmentation.
//!
//! RusKey divides the workload into *missions* — fixed-size batches of
//! operations — and the tuner interacts with the tree between missions
//! (paper §3.1; default 50 000 ops/mission, scaled down here).

use crate::generator::OpGenerator;
use crate::ops::Operation;

/// Chunks a generator's stream into missions of `mission_size` operations.
pub struct MissionStream {
    generator: OpGenerator,
    mission_size: usize,
    produced: usize,
}

impl MissionStream {
    /// Creates a mission stream.
    pub fn new(generator: OpGenerator, mission_size: usize) -> Self {
        assert!(mission_size > 0);
        Self {
            generator,
            mission_size,
            produced: 0,
        }
    }

    /// The configured mission size.
    pub fn mission_size(&self) -> usize {
        self.mission_size
    }

    /// Number of missions produced so far.
    pub fn missions_produced(&self) -> usize {
        self.produced
    }

    /// Mutable access to the underlying generator (e.g. to shift the mix).
    pub fn generator_mut(&mut self) -> &mut OpGenerator {
        &mut self.generator
    }

    /// Produces the next mission.
    pub fn next_mission(&mut self) -> Vec<Operation> {
        self.produced += 1;
        self.generator.take_ops(self.mission_size)
    }
}

impl Iterator for MissionStream {
    type Item = Vec<Operation>;

    fn next(&mut self) -> Option<Vec<Operation>> {
        Some(self.next_mission())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadSpec;
    use crate::ops::OpMix;

    #[test]
    fn missions_have_exact_size() {
        let g = OpGenerator::new(WorkloadSpec::scaled_default(100), 1);
        let mut ms = MissionStream::new(g, 250);
        for _ in 0..4 {
            assert_eq!(ms.next_mission().len(), 250);
        }
        assert_eq!(ms.missions_produced(), 4);
    }

    #[test]
    fn generator_access_allows_mix_shift() {
        let g = OpGenerator::new(
            WorkloadSpec::scaled_default(100).with_mix(OpMix::reads(1.0)),
            1,
        );
        let mut ms = MissionStream::new(g, 100);
        assert!(ms.next_mission().iter().all(Operation::is_read));
        ms.generator_mut().set_mix(OpMix::reads(0.0));
        assert!(ms.next_mission().iter().all(Operation::is_write));
    }
}
