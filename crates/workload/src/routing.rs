//! Shard-aware operation routing.
//!
//! A sharded store hash-partitions the key space across `N` independent
//! FLSM shards. Routing lives in the workload crate because it is a
//! property of the *operation stream*, not of any one engine: benchmarks
//! pre-partition missions with [`partition_ops`], and the engine routes
//! single operations with [`shard_for_key`].
//!
//! The hash is FNV-1a over the key bytes — stable across runs, platforms,
//! and releases, so a store's partitioning never silently changes.

use crate::ops::Operation;

/// Where one operation must execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Exactly one shard owns the key.
    Shard(usize),
    /// Every shard participates (range scans span the hash partition).
    Broadcast,
}

/// FNV-1a 64-bit hash of `key` — the stable shard-routing hash.
pub fn route_hash(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The shard (in `[0, shards)`) owning `key`.
///
/// # Panics
/// Panics if `shards` is zero.
pub fn shard_for_key(key: &[u8], shards: usize) -> usize {
    assert!(shards > 0, "a store needs at least one shard");
    (route_hash(key) % shards as u64) as usize
}

/// Routes one operation: point operations go to the owning shard, range
/// scans broadcast to all shards.
pub fn route_op(op: &Operation, shards: usize) -> Route {
    match op {
        Operation::Get { key } | Operation::Put { key, .. } | Operation::Delete { key } => {
            Route::Shard(shard_for_key(key, shards))
        }
        Operation::Scan { .. } => Route::Broadcast,
    }
}

/// Partitions a mission into per-shard operation streams, preserving each
/// shard's relative operation order. Point operations land on exactly one
/// shard; scans are appended to every shard's stream at their position.
pub fn partition_ops(ops: &[Operation], shards: usize) -> Vec<Vec<&Operation>> {
    assert!(shards > 0, "a store needs at least one shard");
    // Vec::clone drops capacity, so build each lane's allocation directly.
    let mut out: Vec<Vec<&Operation>> = (0..shards)
        .map(|_| Vec::with_capacity(ops.len() / shards + 1))
        .collect();
    for op in ops {
        match route_op(op, shards) {
            Route::Shard(s) => out[s].push(op),
            Route::Broadcast => {
                for lane in &mut out {
                    lane.push(op);
                }
            }
        }
    }
    out
}

/// Owned variant of [`partition_ops`] for executors whose workers outlive
/// the mission borrow — e.g. a persistent shard worker pool, where lanes
/// are sent over a channel to long-lived threads. Each operation is cloned
/// into its lane(s); keys and values are refcounted [`bytes::Bytes`], so
/// the clone is a pointer bump, not a copy of the payload.
pub fn partition_ops_owned(ops: &[Operation], shards: usize) -> Vec<Vec<Operation>> {
    partition_ops(ops, shards)
        .into_iter()
        .map(|lane| lane.into_iter().cloned().collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{encode_key, OpGenerator, WorkloadSpec};
    use crate::ops::OpMix;
    use bytes::Bytes;

    #[test]
    fn routing_is_stable_across_runs_and_releases() {
        // Pinned values: changing the hash would silently repartition
        // every existing store, so the mapping is part of the contract.
        assert_eq!(route_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(route_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(
            shard_for_key(&encode_key(0, 16), 4),
            shard_for_key(&encode_key(0, 16), 4)
        );
        let expected: Vec<usize> = (0..8u64)
            .map(|id| shard_for_key(&encode_key(id, 16), 4))
            .collect();
        let again: Vec<usize> = (0..8u64)
            .map(|id| shard_for_key(&encode_key(id, 16), 4))
            .collect();
        assert_eq!(expected, again);
    }

    #[test]
    fn single_shard_takes_everything() {
        for id in 0..100u64 {
            assert_eq!(shard_for_key(&encode_key(id, 16), 1), 0);
        }
    }

    #[test]
    fn point_ops_route_scans_broadcast() {
        let k = Bytes::from_static(b"somekey~");
        let shard = shard_for_key(&k, 8);
        assert_eq!(
            route_op(&Operation::Get { key: k.clone() }, 8),
            Route::Shard(shard)
        );
        assert_eq!(
            route_op(
                &Operation::Put {
                    key: k.clone(),
                    value: k.clone()
                },
                8
            ),
            Route::Shard(shard)
        );
        assert_eq!(
            route_op(&Operation::Delete { key: k.clone() }, 8),
            Route::Shard(shard)
        );
        assert_eq!(
            route_op(
                &Operation::Scan {
                    start: k.clone(),
                    end: k,
                    limit: 5
                },
                8
            ),
            Route::Broadcast
        );
    }

    #[test]
    fn partition_preserves_order_and_covers_all_ops() {
        let spec = WorkloadSpec::scaled_default(500).with_mix(OpMix {
            lookup: 0.4,
            update: 0.4,
            delete: 0.1,
            scan: 0.1,
        });
        let ops = OpGenerator::new(spec, 17).take_ops(1000);
        let lanes = partition_ops(&ops, 4);
        let scans = ops
            .iter()
            .filter(|o| matches!(o, Operation::Scan { .. }))
            .count();
        let points = ops.len() - scans;
        let total: usize = lanes.iter().map(Vec::len).sum();
        assert_eq!(
            total,
            points + 4 * scans,
            "every op routed, scans to all lanes"
        );
        // Relative order within a lane follows the mission order.
        for lane in &lanes {
            let mut positions = lane
                .iter()
                .map(|op| ops.iter().position(|o| std::ptr::eq(o, *op)).unwrap());
            let mut prev = None;
            for p in &mut positions {
                if let Some(q) = prev {
                    assert!(p > q, "lane order diverged from mission order");
                }
                prev = Some(p);
            }
        }
    }

    /// The owned partition is element-for-element the borrowed one: the
    /// pool's lanes carry exactly what scoped-thread execution saw.
    #[test]
    fn owned_partition_equals_borrowed_partition() {
        let spec = WorkloadSpec::scaled_default(300).with_mix(OpMix {
            lookup: 0.4,
            update: 0.4,
            delete: 0.1,
            scan: 0.1,
        });
        let ops = OpGenerator::new(spec, 23).take_ops(500);
        for shards in [1usize, 3, 4] {
            let borrowed = partition_ops(&ops, shards);
            let owned = partition_ops_owned(&ops, shards);
            assert_eq!(owned.len(), borrowed.len());
            for (lane_owned, lane_borrowed) in owned.iter().zip(&borrowed) {
                assert_eq!(lane_owned.len(), lane_borrowed.len());
                for (a, b) in lane_owned.iter().zip(lane_borrowed) {
                    assert_eq!(a, *b, "{shards} shards: owned lane diverged");
                }
            }
        }
    }

    #[test]
    fn hash_partitioning_is_roughly_balanced() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for id in 0..80_000u64 {
            counts[shard_for_key(&encode_key(id, 16), shards)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < min * 12 / 10, "shard skew beyond 20%: {counts:?}");
    }
}
