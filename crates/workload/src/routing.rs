//! Shard-aware operation routing.
//!
//! A sharded store hash-partitions the key space across `N` independent
//! FLSM shards. Routing lives in the workload crate because it is a
//! property of the *operation stream*, not of any one engine: benchmarks
//! pre-partition missions with [`partition_ops`], and the engine routes
//! single operations with [`shard_for_key`].
//!
//! The hash is FNV-1a over the key bytes — stable across runs, platforms,
//! and releases, so a store's partitioning never silently changes.

use crate::ops::Operation;
use bytes::Bytes;

/// Where one operation must execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Exactly one shard owns the key.
    Shard(usize),
    /// Every shard participates (range scans span the hash partition).
    Broadcast,
}

/// FNV-1a 64-bit hash of `key` — the stable shard-routing hash.
pub fn route_hash(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The shard (in `[0, shards)`) owning `key`.
///
/// # Panics
/// Panics if `shards` is zero.
pub fn shard_for_key(key: &[u8], shards: usize) -> usize {
    assert!(shards > 0, "a store needs at least one shard");
    (route_hash(key) % shards as u64) as usize
}

/// Routes one operation: point operations go to the owning shard, range
/// scans broadcast to all shards.
pub fn route_op(op: &Operation, shards: usize) -> Route {
    match op {
        Operation::Get { key } | Operation::Put { key, .. } | Operation::Delete { key } => {
            Route::Shard(shard_for_key(key, shards))
        }
        Operation::Scan { .. } => Route::Broadcast,
    }
}

/// Partitions a mission into per-shard operation streams, preserving each
/// shard's relative operation order. Point operations land on exactly one
/// shard; scans are appended to every shard's stream at their position.
pub fn partition_ops(ops: &[Operation], shards: usize) -> Vec<Vec<&Operation>> {
    assert!(shards > 0, "a store needs at least one shard");
    // Vec::clone drops capacity, so build each lane's allocation directly.
    let mut out: Vec<Vec<&Operation>> = (0..shards)
        .map(|_| Vec::with_capacity(ops.len() / shards + 1))
        .collect();
    for op in ops {
        match route_op(op, shards) {
            Route::Shard(s) => out[s].push(op),
            Route::Broadcast => {
                for lane in &mut out {
                    lane.push(op);
                }
            }
        }
    }
    out
}

/// Owned variant of [`partition_ops`] for executors whose workers outlive
/// the mission borrow — e.g. a persistent shard worker pool, where lanes
/// are sent over a channel to long-lived threads. Each operation is cloned
/// into its lane(s); keys and values are refcounted [`bytes::Bytes`], so
/// the clone is a pointer bump, not a copy of the payload.
pub fn partition_ops_owned(ops: &[Operation], shards: usize) -> Vec<Vec<Operation>> {
    partition_ops(ops, shards)
        .into_iter()
        .map(|lane| lane.into_iter().cloned().collect())
        .collect()
}

/// A per-key routing override table: the hot-shard balancer's output.
///
/// Keys absent from the table route by [`shard_for_key`] as always; a
/// present key has been *re-homed* to the recorded shard. The table is the
/// single source of routing truth for a balanced store — every point-op
/// path (mission partitioning, ad-hoc reads/writes, the serving frontend)
/// must consult it, or a re-homed key would be read where it no longer
/// lives. Scans are unaffected: they broadcast to every shard regardless
/// of where any individual key resides.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    overrides: std::collections::HashMap<Bytes, usize>,
}

impl RoutingTable {
    /// An empty table: pure hash routing.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard owning `key` under this table.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn shard_for(&self, key: &[u8], shards: usize) -> usize {
        assert!(shards > 0, "a store needs at least one shard");
        match self.overrides.get(key) {
            // An override that points beyond the current shard count
            // (table written by a larger store) falls back to hashing.
            Some(&s) if s < shards => s,
            _ => shard_for_key(key, shards),
        }
    }

    /// Re-homes `key` to `shard`. Idempotent; later calls win.
    pub fn set(&mut self, key: Bytes, shard: usize) {
        self.overrides.insert(key, shard);
    }

    /// Drops the override for `key`, restoring hash routing.
    pub fn remove(&mut self, key: &[u8]) {
        self.overrides.remove(key);
    }

    /// Number of re-homed keys.
    pub fn len(&self) -> usize {
        self.overrides.len()
    }

    /// True when no key is re-homed (pure hash routing).
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Iterates the overrides as `(key, shard)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, usize)> {
        self.overrides.iter().map(|(k, &s)| (k, s))
    }

    /// [`partition_ops_owned`] with this table's overrides applied to
    /// point operations. Scans still broadcast.
    pub fn partition_ops_owned(&self, ops: &[Operation], shards: usize) -> Vec<Vec<Operation>> {
        assert!(shards > 0, "a store needs at least one shard");
        let mut out: Vec<Vec<Operation>> = (0..shards)
            .map(|_| Vec::with_capacity(ops.len() / shards + 1))
            .collect();
        for op in ops {
            match op {
                Operation::Get { key } | Operation::Put { key, .. } | Operation::Delete { key } => {
                    out[self.shard_for(key, shards)].push(op.clone());
                }
                Operation::Scan { .. } => {
                    for lane in &mut out {
                        lane.push(op.clone());
                    }
                }
            }
        }
        out
    }
}

/// Tuning knobs for hot-shard detection and mitigation.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceConfig {
    /// Re-home keys only when [`LoadSketch::imbalance`] (max shard ops /
    /// mean shard ops) exceeds this. 1.0 is perfect balance; the default
    /// tolerates modest skew before paying migration cost.
    pub imbalance_threshold: f64,
    /// Minimum decayed operations observed before acting — avoids
    /// reacting to noise on a near-idle store.
    pub min_ops: u64,
    /// Maximum keys migrated per balancing pass.
    pub max_moves: usize,
    /// Heavy-hitter sketch capacity (distinct candidate keys tracked).
    pub capacity: usize,
    /// Multiplicative decay applied to all counters after each pass, so
    /// the sketch tracks *recent* load and a formerly-viral key ages out.
    pub decay: f64,
}

impl Default for BalanceConfig {
    fn default() -> Self {
        Self {
            imbalance_threshold: 1.5,
            min_ops: 256,
            max_moves: 4,
            capacity: 32,
            decay: 0.5,
        }
    }
}

/// A cheap load sketch for hot-shard detection: decayed per-shard op
/// counters plus a Misra–Gries heavy-hitter summary over point-op keys.
///
/// Misra–Gries with capacity `k` guarantees any key with frequency above
/// `n/(k+1)` is present in the summary — exactly the "one viral key"
/// regime the balancer targets. Counts are approximate (undercounted by
/// at most `n/(k+1)`), which is fine: the balancer only needs the *top*
/// keys on the hottest shard, not exact frequencies.
#[derive(Debug, Clone)]
pub struct LoadSketch {
    shard_ops: Vec<f64>,
    counters: std::collections::HashMap<Bytes, f64>,
    capacity: usize,
}

impl LoadSketch {
    /// Creates a sketch over `shards` shards tracking at most `capacity`
    /// candidate heavy keys.
    pub fn new(shards: usize, capacity: usize) -> Self {
        Self {
            shard_ops: vec![0.0; shards],
            counters: std::collections::HashMap::with_capacity(capacity + 1),
            capacity: capacity.max(1),
        }
    }

    /// Records one point operation on `key`, executed by `shard`.
    pub fn record(&mut self, key: &[u8], shard: usize) {
        if let Some(c) = self.shard_ops.get_mut(shard) {
            *c += 1.0;
        }
        if let Some(c) = self.counters.get_mut(key) {
            *c += 1.0;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(Bytes::copy_from_slice(key), 1.0);
            return;
        }
        // Misra–Gries decrement step: no slot free, all counters pay.
        self.counters.retain(|_, c| {
            *c -= 1.0;
            *c > 0.0
        });
    }

    /// Records `n` shard-executed operations that carry no single key
    /// (e.g. a broadcast scan leg) — they weigh the shard's load counter
    /// but nominate no heavy-hitter candidate.
    pub fn record_bulk(&mut self, shard: usize, n: u64) {
        if let Some(c) = self.shard_ops.get_mut(shard) {
            *c += n as f64;
        }
    }

    /// Decayed per-shard operation counters.
    pub fn shard_ops(&self) -> &[f64] {
        &self.shard_ops
    }

    /// Total decayed operations observed.
    pub fn total_ops(&self) -> f64 {
        self.shard_ops.iter().sum()
    }

    /// Load imbalance: max shard counter over the mean. 1.0 means
    /// balanced; 0.0 means no load observed yet (less than one whole
    /// recent observation — decayed residue is noise, not skew).
    pub fn imbalance(&self) -> f64 {
        let total: f64 = self.shard_ops.iter().sum();
        if self.shard_ops.is_empty() || total < 1.0 {
            return 0.0;
        }
        let max = self.shard_ops.iter().cloned().fold(0.0f64, f64::max);
        max / (total / self.shard_ops.len() as f64)
    }

    /// The shard with the highest decayed load.
    pub fn hottest_shard(&self) -> usize {
        self.shard_ops
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The shard with the lowest decayed load.
    pub fn coldest_shard(&self) -> usize {
        self.shard_ops
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Current heavy-hitter candidates, hottest first.
    pub fn heavy_hitters(&self) -> Vec<(Bytes, f64)> {
        let mut hh: Vec<(Bytes, f64)> =
            self.counters.iter().map(|(k, &c)| (k.clone(), c)).collect();
        hh.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        hh
    }

    /// Applies multiplicative decay to every counter, dropping candidates
    /// that fade below one observation.
    pub fn decay(&mut self, factor: f64) {
        let f = factor.clamp(0.0, 1.0);
        for c in &mut self.shard_ops {
            *c *= f;
        }
        self.counters.retain(|_, c| {
            *c *= f;
            *c >= 1.0
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{encode_key, OpGenerator, WorkloadSpec};
    use crate::ops::OpMix;
    use bytes::Bytes;

    #[test]
    fn routing_is_stable_across_runs_and_releases() {
        // Pinned values: changing the hash would silently repartition
        // every existing store, so the mapping is part of the contract.
        assert_eq!(route_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(route_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(
            shard_for_key(&encode_key(0, 16), 4),
            shard_for_key(&encode_key(0, 16), 4)
        );
        let expected: Vec<usize> = (0..8u64)
            .map(|id| shard_for_key(&encode_key(id, 16), 4))
            .collect();
        let again: Vec<usize> = (0..8u64)
            .map(|id| shard_for_key(&encode_key(id, 16), 4))
            .collect();
        assert_eq!(expected, again);
    }

    #[test]
    fn single_shard_takes_everything() {
        for id in 0..100u64 {
            assert_eq!(shard_for_key(&encode_key(id, 16), 1), 0);
        }
    }

    #[test]
    fn point_ops_route_scans_broadcast() {
        let k = Bytes::from_static(b"somekey~");
        let shard = shard_for_key(&k, 8);
        assert_eq!(
            route_op(&Operation::Get { key: k.clone() }, 8),
            Route::Shard(shard)
        );
        assert_eq!(
            route_op(
                &Operation::Put {
                    key: k.clone(),
                    value: k.clone()
                },
                8
            ),
            Route::Shard(shard)
        );
        assert_eq!(
            route_op(&Operation::Delete { key: k.clone() }, 8),
            Route::Shard(shard)
        );
        assert_eq!(
            route_op(
                &Operation::Scan {
                    start: k.clone(),
                    end: k,
                    limit: 5
                },
                8
            ),
            Route::Broadcast
        );
    }

    #[test]
    fn partition_preserves_order_and_covers_all_ops() {
        let spec = WorkloadSpec::scaled_default(500).with_mix(OpMix {
            lookup: 0.4,
            update: 0.4,
            delete: 0.1,
            scan: 0.1,
        });
        let ops = OpGenerator::new(spec, 17).take_ops(1000);
        let lanes = partition_ops(&ops, 4);
        let scans = ops
            .iter()
            .filter(|o| matches!(o, Operation::Scan { .. }))
            .count();
        let points = ops.len() - scans;
        let total: usize = lanes.iter().map(Vec::len).sum();
        assert_eq!(
            total,
            points + 4 * scans,
            "every op routed, scans to all lanes"
        );
        // Relative order within a lane follows the mission order.
        for lane in &lanes {
            let mut positions = lane
                .iter()
                .map(|op| ops.iter().position(|o| std::ptr::eq(o, *op)).unwrap());
            let mut prev = None;
            for p in &mut positions {
                if let Some(q) = prev {
                    assert!(p > q, "lane order diverged from mission order");
                }
                prev = Some(p);
            }
        }
    }

    /// The owned partition is element-for-element the borrowed one: the
    /// pool's lanes carry exactly what scoped-thread execution saw.
    #[test]
    fn owned_partition_equals_borrowed_partition() {
        let spec = WorkloadSpec::scaled_default(300).with_mix(OpMix {
            lookup: 0.4,
            update: 0.4,
            delete: 0.1,
            scan: 0.1,
        });
        let ops = OpGenerator::new(spec, 23).take_ops(500);
        for shards in [1usize, 3, 4] {
            let borrowed = partition_ops(&ops, shards);
            let owned = partition_ops_owned(&ops, shards);
            assert_eq!(owned.len(), borrowed.len());
            for (lane_owned, lane_borrowed) in owned.iter().zip(&borrowed) {
                assert_eq!(lane_owned.len(), lane_borrowed.len());
                for (a, b) in lane_owned.iter().zip(lane_borrowed) {
                    assert_eq!(a, *b, "{shards} shards: owned lane diverged");
                }
            }
        }
    }

    #[test]
    fn routing_table_overrides_point_ops_only() {
        let mut table = RoutingTable::new();
        let k = Bytes::from_static(b"viral-key-000000");
        let home = shard_for_key(&k, 4);
        assert_eq!(table.shard_for(&k, 4), home, "empty table = hash routing");
        assert!(table.is_empty());
        let target = (home + 1) % 4;
        table.set(k.clone(), target);
        assert_eq!(table.shard_for(&k, 4), target);
        assert_eq!(table.len(), 1);
        // Other keys are untouched.
        let other = Bytes::from_static(b"other-key-000000");
        assert_eq!(table.shard_for(&other, 4), shard_for_key(&other, 4));
        // Partitioning follows the override; scans still broadcast.
        let ops = vec![
            Operation::Get { key: k.clone() },
            Operation::Scan {
                start: Bytes::from_static(b"a"),
                end: Bytes::from_static(b"z"),
                limit: 10,
            },
        ];
        let lanes = table.partition_ops_owned(&ops, 4);
        assert_eq!(lanes[target].len(), 2, "get routed to override + scan");
        assert_eq!(lanes[home].len(), 1, "home shard sees only the scan");
        // Removal restores hash routing.
        table.remove(&k);
        assert_eq!(table.shard_for(&k, 4), home);
        assert!(table.is_empty());
    }

    #[test]
    fn routing_table_ignores_out_of_range_overrides() {
        let mut table = RoutingTable::new();
        let k = Bytes::from_static(b"some-key");
        table.set(k.clone(), 7);
        assert_eq!(
            table.shard_for(&k, 2),
            shard_for_key(&k, 2),
            "override beyond shard count falls back to hashing"
        );
    }

    #[test]
    fn routing_table_partition_matches_plain_partition_when_empty() {
        let spec = WorkloadSpec::scaled_default(300).with_mix(OpMix {
            lookup: 0.4,
            update: 0.4,
            delete: 0.1,
            scan: 0.1,
        });
        let ops = OpGenerator::new(spec, 23).take_ops(500);
        let table = RoutingTable::new();
        for shards in [1usize, 3, 4] {
            assert_eq!(
                table.partition_ops_owned(&ops, shards),
                partition_ops_owned(&ops, shards)
            );
        }
    }

    #[test]
    fn load_sketch_finds_the_viral_key() {
        let mut sketch = LoadSketch::new(4, 8);
        let viral = Bytes::from_static(b"viral-key");
        // One viral key at ~50% of traffic, the rest spread over many
        // distinct keys (far more than the sketch capacity).
        for i in 0..1000u64 {
            if i % 2 == 0 {
                sketch.record(&viral, 3);
            } else {
                sketch.record(&encode_key(i, 16), (i % 3) as usize);
            }
        }
        let hh = sketch.heavy_hitters();
        assert_eq!(hh[0].0, viral, "viral key must surface: {hh:?}");
        assert_eq!(sketch.hottest_shard(), 3);
        assert!(sketch.imbalance() > 1.5, "imbalance {}", sketch.imbalance());
        assert!(sketch.total_ops() > 999.0);
    }

    #[test]
    fn load_sketch_decay_ages_out_history() {
        let mut sketch = LoadSketch::new(2, 4);
        let old = Bytes::from_static(b"formerly-viral");
        for _ in 0..100 {
            sketch.record(&old, 0);
        }
        assert_eq!(sketch.heavy_hitters()[0].0, old);
        sketch.decay(0.001);
        assert!(
            sketch.heavy_hitters().is_empty(),
            "decayed candidates below one observation are dropped"
        );
        assert!(sketch.total_ops() < 1.0);
        assert_eq!(sketch.imbalance(), 0.0, "no recent load = no imbalance");
        // Fresh load on the other shard now dominates.
        sketch.record_bulk(1, 50);
        assert_eq!(sketch.hottest_shard(), 1);
        assert_eq!(sketch.coldest_shard(), 0);
    }

    #[test]
    fn hash_partitioning_is_roughly_balanced() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for id in 0..80_000u64 {
            counts[shard_for_key(&encode_key(id, 16), shards)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < min * 12 / 10, "shard skew beyond 20%: {counts:?}");
    }
}
