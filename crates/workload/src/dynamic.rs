//! Multi-session dynamic workloads (paper §7, Fig. 7).
//!
//! A dynamic workload is a sequence of *sessions*, each with its own
//! operation mix and mission count. The Fig. 7 evaluation runs five
//! sessions — read-heavy → balanced → write-heavy → write-inclined →
//! read-inclined — with no announcement to the store when they change.

use crate::generator::OpGenerator;
use crate::ops::{OpMix, Operation};

/// One phase of a dynamic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Session {
    /// Operation mix during the session.
    pub mix: OpMix,
    /// Number of missions in the session.
    pub missions: usize,
    /// Human-readable label for experiment output.
    pub label: &'static str,
}

/// A dynamic workload: sessions played back-to-back, chopped into missions.
pub struct DynamicWorkload {
    generator: OpGenerator,
    sessions: Vec<Session>,
    mission_size: usize,
    session_idx: usize,
    mission_in_session: usize,
}

impl DynamicWorkload {
    /// Creates a dynamic workload from a base generator (its mix is
    /// overridden per session) and a session schedule.
    pub fn new(generator: OpGenerator, sessions: Vec<Session>, mission_size: usize) -> Self {
        assert!(!sessions.is_empty());
        assert!(mission_size > 0);
        let mut w = Self {
            generator,
            sessions,
            mission_size,
            session_idx: 0,
            mission_in_session: 0,
        };
        w.generator.set_mix(w.sessions[0].mix);
        w
    }

    /// The paper's Fig. 7 schedule with `missions` missions per session:
    /// read-heavy (10% upd), balanced (50%), write-heavy (90%),
    /// write-inclined (70%), read-inclined (30%).
    pub fn paper_fig7(generator: OpGenerator, missions: usize, mission_size: usize) -> Self {
        let sessions = vec![
            Session {
                mix: OpMix::read_heavy(),
                missions,
                label: "read-heavy",
            },
            Session {
                mix: OpMix::balanced(),
                missions,
                label: "balanced",
            },
            Session {
                mix: OpMix::write_heavy(),
                missions,
                label: "write-heavy",
            },
            Session {
                mix: OpMix::write_inclined(),
                missions,
                label: "write-inclined",
            },
            Session {
                mix: OpMix::read_inclined(),
                missions,
                label: "read-inclined",
            },
        ];
        Self::new(generator, sessions, mission_size)
    }

    /// Total missions across all sessions.
    pub fn total_missions(&self) -> usize {
        self.sessions.iter().map(|s| s.missions).sum()
    }

    /// The session schedule.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// The session the *next* mission belongs to, or `None` when exhausted.
    pub fn current_session(&self) -> Option<&Session> {
        self.sessions.get(self.session_idx)
    }

    /// Produces the next mission, or `None` when the schedule is exhausted.
    pub fn next_mission(&mut self) -> Option<(usize, Vec<Operation>)> {
        let session = *self.sessions.get(self.session_idx)?;
        let idx = self.session_idx;
        self.generator.set_mix(session.mix);
        let ops = self.generator.take_ops(self.mission_size);
        self.mission_in_session += 1;
        if self.mission_in_session >= session.missions {
            self.session_idx += 1;
            self.mission_in_session = 0;
        }
        Some((idx, ops))
    }
}

impl Iterator for DynamicWorkload {
    type Item = (usize, Vec<Operation>);

    fn next(&mut self) -> Option<Self::Item> {
        self.next_mission()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadSpec;

    fn gen() -> OpGenerator {
        OpGenerator::new(WorkloadSpec::scaled_default(500), 42)
    }

    #[test]
    fn fig7_schedule_has_five_sessions() {
        let w = DynamicWorkload::paper_fig7(gen(), 10, 100);
        assert_eq!(w.sessions().len(), 5);
        assert_eq!(w.total_missions(), 50);
        assert_eq!(w.sessions()[0].label, "read-heavy");
        assert_eq!(w.sessions()[2].label, "write-heavy");
    }

    #[test]
    fn sessions_change_composition() {
        let mut w = DynamicWorkload::paper_fig7(gen(), 5, 400);
        let mut session_reads = [0usize; 5];
        let mut session_ops = vec![0usize; 5];
        while let Some((s, ops)) = w.next_mission() {
            session_reads[s] += ops.iter().filter(|o| o.is_read()).count();
            session_ops[s] += ops.len();
        }
        let frac: Vec<f64> = session_reads
            .iter()
            .zip(&session_ops)
            .map(|(r, n)| *r as f64 / *n as f64)
            .collect();
        // Expected γ per session: 0.9, 0.5, 0.1, 0.3, 0.7.
        for (got, want) in frac.iter().zip([0.9, 0.5, 0.1, 0.3, 0.7]) {
            assert!((got - want).abs() < 0.05, "γ {got} vs {want}");
        }
    }

    #[test]
    fn exhausts_after_schedule() {
        let mut w = DynamicWorkload::new(
            gen(),
            vec![Session {
                mix: OpMix::balanced(),
                missions: 2,
                label: "x",
            }],
            10,
        );
        assert!(w.next_mission().is_some());
        assert!(w.next_mission().is_some());
        assert!(w.next_mission().is_none());
        assert!(w.current_session().is_none());
    }
}
