//! YCSB presets and the paper's workload mixes.
//!
//! Fig. 11 evaluates RusKey on YCSB with the default Zipfian distribution,
//! using the same compositions as the uniform experiments — (a) read-heavy,
//! (b) write-heavy, (c) balanced — plus (d) 50% range lookups / 50% updates.

use crate::dist::KeyDistribution;
use crate::generator::WorkloadSpec;
use crate::ops::OpMix;

/// Named workload presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Paper Fig. 6/11(a): 90% lookups, 10% updates.
    ReadHeavy,
    /// Paper Fig. 6/11(b): 10% lookups, 90% updates.
    WriteHeavy,
    /// Paper Fig. 6/11(c): 50% lookups, 50% updates.
    Balanced,
    /// Paper Fig. 11(d): 50% range lookups, 50% updates.
    RangeBalanced,
    /// YCSB A: 50% reads, 50% updates, Zipfian.
    YcsbA,
    /// YCSB B: 95% reads, 5% updates, Zipfian.
    YcsbB,
    /// YCSB C: 100% reads, Zipfian.
    YcsbC,
    /// YCSB D-like: 95% reads with latest distribution, 5% inserts.
    YcsbD,
}

impl Preset {
    /// The operation mix of the preset.
    pub fn mix(self) -> OpMix {
        match self {
            Preset::ReadHeavy => OpMix::read_heavy(),
            Preset::WriteHeavy => OpMix::write_heavy(),
            Preset::Balanced | Preset::YcsbA => OpMix::balanced(),
            Preset::RangeBalanced => OpMix::range_balanced(),
            Preset::YcsbB | Preset::YcsbD => OpMix::reads(0.95),
            Preset::YcsbC => OpMix::reads(1.0),
        }
    }

    /// The key distribution of the preset.
    pub fn distribution(self) -> KeyDistribution {
        match self {
            Preset::ReadHeavy | Preset::WriteHeavy | Preset::Balanced | Preset::RangeBalanced => {
                KeyDistribution::zipfian_default()
            }
            Preset::YcsbA | Preset::YcsbB | Preset::YcsbC => KeyDistribution::zipfian_default(),
            Preset::YcsbD => KeyDistribution::Latest { theta: 0.99 },
        }
    }

    /// A full [`WorkloadSpec`] for the preset over `key_space` keys.
    pub fn spec(self, key_space: u64) -> WorkloadSpec {
        WorkloadSpec::scaled_default(key_space)
            .with_mix(self.mix())
            .with_distribution(self.distribution())
    }

    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Preset::ReadHeavy => "ycsb-read-heavy",
            Preset::WriteHeavy => "ycsb-write-heavy",
            Preset::Balanced => "ycsb-balanced",
            Preset::RangeBalanced => "ycsb-range",
            Preset::YcsbA => "ycsb-a",
            Preset::YcsbB => "ycsb-b",
            Preset::YcsbC => "ycsb-c",
            Preset::YcsbD => "ycsb-d",
        }
    }

    /// All presets.
    pub const ALL: [Preset; 8] = [
        Preset::ReadHeavy,
        Preset::WriteHeavy,
        Preset::Balanced,
        Preset::RangeBalanced,
        Preset::YcsbA,
        Preset::YcsbB,
        Preset::YcsbC,
        Preset::YcsbD,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_valid() {
        for p in Preset::ALL {
            let spec = p.spec(1000);
            spec.mix.validate().unwrap();
            assert_eq!(spec.key_space, 1000);
        }
    }

    #[test]
    fn labels_unique() {
        let set: std::collections::HashSet<_> = Preset::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(set.len(), Preset::ALL.len());
    }

    #[test]
    fn ycsb_d_uses_latest() {
        assert_eq!(
            Preset::YcsbD.distribution(),
            KeyDistribution::Latest { theta: 0.99 }
        );
    }

    #[test]
    fn range_preset_has_scans() {
        let mix = Preset::RangeBalanced.mix();
        assert!(mix.scan > 0.4);
        assert!((mix.gamma() - 0.5).abs() < 1e-12);
    }
}
