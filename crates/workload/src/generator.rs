//! Deterministic operation-stream generation.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::{KeyDistribution, KeySampler};
use crate::ops::{OpMix, Operation};

/// Encodes a key id as a fixed-width big-endian key so lexicographic order
/// equals numeric order. `key_len` must be at least 8.
pub fn encode_key(id: u64, key_len: usize) -> Bytes {
    assert!(key_len >= 8, "key_len must be >= 8");
    let mut k = vec![0u8; key_len];
    let off = key_len - 8;
    k[off..].copy_from_slice(&id.to_be_bytes());
    Bytes::from(k)
}

/// Decodes a key produced by [`encode_key`].
pub fn decode_key(key: &[u8]) -> u64 {
    let off = key.len() - 8;
    u64::from_be_bytes(key[off..].try_into().expect("key too short"))
}

/// Generates the `(key, value)` pairs used to bulk-load the store before an
/// experiment (the paper loads 100 M random entries; we scale `n` down).
pub fn bulk_load_pairs(n: u64, key_len: usize, value_len: usize, seed: u64) -> Vec<(Bytes, Bytes)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|id| (encode_key(id, key_len), random_value(&mut rng, value_len)))
        .collect()
}

fn random_value(rng: &mut StdRng, len: usize) -> Bytes {
    let mut v = vec![0u8; len];
    rng.fill(v.as_mut_slice());
    Bytes::from(v)
}

/// Static description of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Number of distinct keys (`[0, key_space)`).
    pub key_space: u64,
    /// Encoded key length in bytes (≥ 8; paper: 128, scaled default: 16).
    pub key_len: usize,
    /// Value length in bytes (paper: 896, scaled default: 112).
    pub value_len: usize,
    /// Key popularity distribution.
    pub distribution: KeyDistribution,
    /// Operation mix.
    pub mix: OpMix,
    /// Maximum results per range scan.
    pub scan_limit: usize,
    /// Key-id span covered by a range scan.
    pub scan_span: u64,
    /// Fraction of lookups that target keys outside the key space
    /// (zero-result lookups, exercising the Bloom filters).
    pub zero_result_fraction: f64,
}

impl WorkloadSpec {
    /// Scaled-down defaults (see DESIGN.md §2): 16-byte keys, 112-byte
    /// values, uniform keys, balanced mix.
    pub fn scaled_default(key_space: u64) -> Self {
        Self {
            key_space,
            key_len: 16,
            value_len: 112,
            distribution: KeyDistribution::Uniform,
            mix: OpMix::balanced(),
            scan_limit: 100,
            scan_span: 100,
            zero_result_fraction: 0.0,
        }
    }

    /// Replaces the operation mix.
    pub fn with_mix(mut self, mix: OpMix) -> Self {
        self.mix = mix;
        self
    }

    /// Replaces the key distribution.
    pub fn with_distribution(mut self, d: KeyDistribution) -> Self {
        self.distribution = d;
        self
    }
}

/// An infinite, deterministic stream of operations.
pub struct OpGenerator {
    spec: WorkloadSpec,
    sampler: KeySampler,
    rng: StdRng,
}

impl OpGenerator {
    /// Creates a generator with a fixed seed (same seed ⇒ same stream).
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        spec.mix.validate().expect("invalid op mix");
        let sampler = KeySampler::new(spec.key_space, spec.distribution.clone());
        Self {
            spec,
            sampler,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The spec this generator draws from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Swaps the operation mix mid-stream (dynamic workloads).
    pub fn set_mix(&mut self, mix: OpMix) {
        mix.validate().expect("invalid op mix");
        self.spec.mix = mix;
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Operation {
        let mix = self.spec.mix;
        let r: f64 = self.rng.gen();
        if r < mix.lookup {
            let id = if self.spec.zero_result_fraction > 0.0
                && self.rng.gen::<f64>() < self.spec.zero_result_fraction
            {
                // Outside the loaded key space: guaranteed zero-result.
                self.spec.key_space + self.rng.gen_range(0..self.spec.key_space.max(1))
            } else {
                self.sampler.sample(&mut self.rng)
            };
            Operation::Get {
                key: encode_key(id, self.spec.key_len),
            }
        } else if r < mix.lookup + mix.update {
            let id = self.sampler.sample(&mut self.rng);
            Operation::Put {
                key: encode_key(id, self.spec.key_len),
                value: random_value(&mut self.rng, self.spec.value_len),
            }
        } else if r < mix.lookup + mix.update + mix.delete {
            let id = self.sampler.sample(&mut self.rng);
            Operation::Delete {
                key: encode_key(id, self.spec.key_len),
            }
        } else {
            let start = self.sampler.sample(&mut self.rng);
            let end = start + self.spec.scan_span;
            Operation::Scan {
                start: encode_key(start, self.spec.key_len),
                end: encode_key(end, self.spec.key_len),
                limit: self.spec.scan_limit,
            }
        }
    }

    /// Draws the next `n` operations.
    pub fn take_ops(&mut self, n: usize) -> Vec<Operation> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

impl Iterator for OpGenerator {
    type Item = Operation;

    fn next(&mut self) -> Option<Operation> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_preserves_order() {
        let a = encode_key(5, 16);
        let b = encode_key(1000, 16);
        assert!(a < b);
        assert_eq!(decode_key(&a), 5);
        assert_eq!(decode_key(&b), 1000);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn bulk_load_is_deterministic() {
        let p1 = bulk_load_pairs(100, 16, 32, 7);
        let p2 = bulk_load_pairs(100, 16, 32, 7);
        assert_eq!(p1, p2);
        let p3 = bulk_load_pairs(100, 16, 32, 8);
        assert_ne!(p1, p3);
        assert_eq!(p1.len(), 100);
        assert_eq!(p1[0].1.len(), 32);
    }

    #[test]
    fn generator_is_deterministic() {
        let spec = WorkloadSpec::scaled_default(1000);
        let a: Vec<Operation> = OpGenerator::new(spec.clone(), 3).take_ops(50);
        let b: Vec<Operation> = OpGenerator::new(spec, 3).take_ops(50);
        assert_eq!(a, b);
    }

    #[test]
    fn mix_fractions_are_respected() {
        let spec = WorkloadSpec::scaled_default(1000).with_mix(OpMix::read_heavy());
        let mut g = OpGenerator::new(spec, 11);
        let ops = g.take_ops(20_000);
        let reads = ops.iter().filter(|o| o.is_read()).count() as f64 / ops.len() as f64;
        assert!((reads - 0.9).abs() < 0.02, "read fraction {reads}");
    }

    #[test]
    fn scan_ops_have_bounds() {
        let spec = WorkloadSpec::scaled_default(1000).with_mix(OpMix::range_balanced());
        let mut g = OpGenerator::new(spec, 11);
        let mut saw_scan = false;
        for op in g.take_ops(100) {
            if let Operation::Scan { start, end, limit } = op {
                assert!(start < end);
                assert_eq!(limit, 100);
                saw_scan = true;
            }
        }
        assert!(saw_scan);
    }

    #[test]
    fn zero_result_lookups_exceed_keyspace() {
        let mut spec = WorkloadSpec::scaled_default(100).with_mix(OpMix::reads(1.0));
        spec.zero_result_fraction = 1.0;
        let mut g = OpGenerator::new(spec, 5);
        for op in g.take_ops(200) {
            match op {
                Operation::Get { key } => assert!(decode_key(&key) >= 100),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn set_mix_changes_stream_composition() {
        let spec = WorkloadSpec::scaled_default(1000).with_mix(OpMix::reads(1.0));
        let mut g = OpGenerator::new(spec, 11);
        assert!(g.take_ops(100).iter().all(|o| o.is_read()));
        g.set_mix(OpMix::reads(0.0));
        assert!(g.take_ops(100).iter().all(|o| o.is_write()));
    }
}
