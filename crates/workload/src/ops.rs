//! The operation vocabulary and per-workload mixes.

use bytes::Bytes;

/// One key-value operation, as issued by the application workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// Point lookup.
    Get {
        /// Key to look up.
        key: Bytes,
    },
    /// Insert or overwrite (the paper's "update").
    Put {
        /// Key to write.
        key: Bytes,
        /// Value to write.
        value: Bytes,
    },
    /// Delete a key.
    Delete {
        /// Key to delete.
        key: Bytes,
    },
    /// Range lookup over `[start, end)` returning at most `limit` entries.
    Scan {
        /// Inclusive start key.
        start: Bytes,
        /// Exclusive end key.
        end: Bytes,
        /// Maximum number of results.
        limit: usize,
    },
}

impl Operation {
    /// True for operations that read (Get/Scan).
    pub fn is_read(&self) -> bool {
        matches!(self, Operation::Get { .. } | Operation::Scan { .. })
    }

    /// True for operations that write (Put/Delete).
    pub fn is_write(&self) -> bool {
        !self.is_read()
    }
}

/// Fractions of each operation kind in a workload; must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Fraction of point lookups (`γ` in the paper's analysis).
    pub lookup: f64,
    /// Fraction of updates (puts).
    pub update: f64,
    /// Fraction of deletes.
    pub delete: f64,
    /// Fraction of range scans.
    pub scan: f64,
}

impl OpMix {
    /// A lookup/update-only mix with the given lookup fraction `γ`.
    pub fn reads(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma));
        Self {
            lookup: gamma,
            update: 1.0 - gamma,
            delete: 0.0,
            scan: 0.0,
        }
    }

    /// Paper read-heavy: 90% lookups, 10% updates.
    pub fn read_heavy() -> Self {
        Self::reads(0.9)
    }

    /// Paper write-heavy: 10% lookups, 90% updates.
    pub fn write_heavy() -> Self {
        Self::reads(0.1)
    }

    /// Paper balanced: 50/50.
    pub fn balanced() -> Self {
        Self::reads(0.5)
    }

    /// Paper read-inclined: 70% lookups, 30% updates.
    pub fn read_inclined() -> Self {
        Self::reads(0.7)
    }

    /// Paper write-inclined: 30% lookups, 70% updates.
    pub fn write_inclined() -> Self {
        Self::reads(0.3)
    }

    /// YCSB (d)-style range workload: 50% range lookups, 50% updates.
    pub fn range_balanced() -> Self {
        Self {
            lookup: 0.0,
            update: 0.5,
            delete: 0.0,
            scan: 0.5,
        }
    }

    /// The fraction of reads (`γ`), counting scans as reads.
    pub fn gamma(&self) -> f64 {
        self.lookup + self.scan
    }

    /// Checks the fractions are non-negative and sum to ~1.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("lookup", self.lookup),
            ("update", self.update),
            ("delete", self.delete),
            ("scan", self.scan),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} fraction {v} out of [0,1]"));
            }
        }
        let sum = self.lookup + self.update + self.delete + self.scan;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("fractions sum to {sum}, expected 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for mix in [
            OpMix::read_heavy(),
            OpMix::write_heavy(),
            OpMix::balanced(),
            OpMix::read_inclined(),
            OpMix::write_inclined(),
            OpMix::range_balanced(),
        ] {
            mix.validate().unwrap();
        }
    }

    #[test]
    fn gamma_counts_scans() {
        assert!((OpMix::range_balanced().gamma() - 0.5).abs() < 1e-12);
        assert!((OpMix::read_heavy().gamma() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_mixes() {
        let bad = OpMix {
            lookup: 0.5,
            update: 0.6,
            delete: 0.0,
            scan: 0.0,
        };
        assert!(bad.validate().is_err());
        let neg = OpMix {
            lookup: -0.1,
            update: 1.1,
            delete: 0.0,
            scan: 0.0,
        };
        assert!(neg.validate().is_err());
    }

    #[test]
    fn read_write_classification() {
        let k = Bytes::from_static(b"k");
        assert!(Operation::Get { key: k.clone() }.is_read());
        assert!(Operation::Scan {
            start: k.clone(),
            end: k.clone(),
            limit: 1
        }
        .is_read());
        assert!(Operation::Put {
            key: k.clone(),
            value: k.clone()
        }
        .is_write());
        assert!(Operation::Delete { key: k }.is_write());
    }
}
