//! Workload generation for the RusKey reproduction.
//!
//! The paper drives RusKey with synthetic key-value workloads: streams of
//! lookups and updates (plus range scans for YCSB (d)) whose composition
//! shifts over time, chopped into fixed-size *missions* between which the
//! tuner acts. This crate reproduces that driver:
//!
//! * [`dist`] — key popularity distributions: uniform, YCSB-style scrambled
//!   Zipfian, latest, and hotspot;
//! * [`ops`] — the operation vocabulary and per-workload operation mixes;
//! * [`generator`] — deterministic seeded operation streams and bulk-load
//!   key sets;
//! * [`mission`] — mission segmentation (paper default: 50 000 ops/mission,
//!   scaled down in the experiments here);
//! * [`dynamic`] — multi-session dynamic workloads (Fig. 7: read-heavy →
//!   balanced → write-heavy → write-inclined → read-inclined);
//! * [`ycsb`] — presets for the paper's mixes and the YCSB A/B/C standards;
//! * [`routing`] — stable hash routing of operations onto the shards of a
//!   sharded store (point ops to one shard, scans broadcast);
//! * [`closed_loop`] — deterministic per-client scripts over disjoint key
//!   ranges, driving the concurrent serving frontend at concurrency `K`
//!   while keeping every interleaving equivalent to a single-threaded
//!   replay.

#![warn(missing_docs)]

pub mod closed_loop;
pub mod dist;
pub mod dynamic;
pub mod generator;
pub mod mission;
pub mod ops;
pub mod routing;
pub mod ycsb;

pub use closed_loop::{client_key_range, client_scripts};
pub use dist::KeyDistribution;
pub use dynamic::{DynamicWorkload, Session};
pub use generator::{bulk_load_pairs, encode_key, OpGenerator, WorkloadSpec};
pub use mission::MissionStream;
pub use ops::{OpMix, Operation};
pub use routing::{partition_ops, route_op, shard_for_key, Route};
