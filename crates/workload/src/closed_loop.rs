//! Closed-loop multi-client workload scripts (the YCSB-style serving
//! driver).
//!
//! A closed-loop client issues one operation, waits for its reply, then
//! issues the next — `K` such clients drive a serving frontend at
//! concurrency `K`. This module generates **deterministic per-client
//! scripts over disjoint key ranges**: the key space is split into `K`
//! contiguous slices, client `i` only ever writes inside slice `i`
//! (reads and scans may bleed past a slice edge — reads don't affect
//! state), so *every* interleaving of the scripts drives the store to
//! the same final contents. That is what lets the serving equivalence
//! harness replay the same scripts single-threaded through missions and
//! demand an identical final get/scan state, no matter how the
//! concurrent run's operations actually interleaved.

use bytes::Bytes;

use crate::generator::{decode_key, encode_key, OpGenerator, WorkloadSpec};
use crate::ops::Operation;

/// The key-id range `[lo, hi)` owned by one client: an even contiguous
/// split of `key_space`, earlier clients absorbing the remainder.
///
/// # Panics
/// Panics if `clients` is zero, `client` is out of range, or the key
/// space has fewer ids than clients (an empty slice can't host writes).
pub fn client_key_range(key_space: u64, clients: usize, client: usize) -> (u64, u64) {
    assert!(clients >= 1, "need at least one client");
    assert!(client < clients, "client index out of range");
    let clients = clients as u64;
    assert!(
        key_space >= clients,
        "key space smaller than the client count leaves empty slices"
    );
    let (q, r) = (key_space / clients, key_space % clients);
    let c = client as u64;
    let lo = c * q + c.min(r);
    let hi = lo + q + u64::from(c < r);
    (lo, hi)
}

/// Rebases one operation's keys from a client's private `[0, span)` id
/// space into its slice of the global key space.
fn rebase(op: Operation, offset: u64, key_len: usize) -> Operation {
    let shift = |key: &Bytes| encode_key(decode_key(key) + offset, key_len);
    match op {
        Operation::Get { key } => Operation::Get { key: shift(&key) },
        Operation::Put { key, value } => Operation::Put {
            key: shift(&key),
            value,
        },
        Operation::Delete { key } => Operation::Delete { key: shift(&key) },
        Operation::Scan { start, end, limit } => Operation::Scan {
            start: shift(&start),
            end: shift(&end),
            limit,
        },
    }
}

/// Generates `clients` deterministic operation scripts of
/// `ops_per_client` each over disjoint slices of `workload.key_space`
/// (same inputs ⇒ same scripts). Each client's sub-generator draws from
/// the same distribution and mix as `workload`, restricted to its slice;
/// zero-result lookups are disabled (an id past one slice is a live key
/// of the next).
pub fn client_scripts(
    workload: &WorkloadSpec,
    clients: usize,
    ops_per_client: usize,
    seed: u64,
) -> Vec<Vec<Operation>> {
    (0..clients)
        .map(|c| {
            let (lo, hi) = client_key_range(workload.key_space, clients, c);
            let span = hi - lo;
            let mut sub = workload.clone();
            sub.key_space = span;
            sub.zero_result_fraction = 0.0;
            sub.scan_span = workload.scan_span.min(span);
            // Decorrelate the per-client streams without making them
            // depend on the client count (Weyl increment).
            let client_seed = seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut g = OpGenerator::new(sub, client_seed);
            g.take_ops(ops_per_client)
                .into_iter()
                .map(|op| rebase(op, lo, workload.key_len))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpMix;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::scaled_default(1000).with_mix(OpMix {
            lookup: 0.4,
            update: 0.4,
            delete: 0.1,
            scan: 0.1,
        })
    }

    #[test]
    fn ranges_partition_the_key_space() {
        for (key_space, clients) in [(1000u64, 4usize), (1001, 4), (7, 7), (10, 3)] {
            let mut next = 0u64;
            for c in 0..clients {
                let (lo, hi) = client_key_range(key_space, clients, c);
                assert_eq!(lo, next, "slices must be contiguous");
                assert!(hi > lo, "slices must be non-empty");
                next = hi;
            }
            assert_eq!(next, key_space, "slices must cover the space");
        }
    }

    #[test]
    fn scripts_are_deterministic_and_sized() {
        let a = client_scripts(&spec(), 4, 50, 9);
        let b = client_scripts(&spec(), 4, 50, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|s| s.len() == 50));
        let c = client_scripts(&spec(), 4, 50, 10);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn writes_stay_inside_each_clients_slice() {
        let s = spec();
        let scripts = client_scripts(&s, 4, 200, 3);
        for (c, script) in scripts.iter().enumerate() {
            let (lo, hi) = client_key_range(s.key_space, 4, c);
            for op in script {
                if let Operation::Put { key, .. } | Operation::Delete { key } = op {
                    let id = decode_key(key);
                    assert!(
                        (lo..hi).contains(&id),
                        "client {c} wrote id {id} outside [{lo}, {hi})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "smaller than the client count")]
    fn tiny_key_space_is_rejected() {
        client_key_range(3, 4, 0);
    }
}
