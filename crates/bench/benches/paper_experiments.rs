//! One Criterion benchmark per paper table/figure, exercising the exact
//! code path the `repro` binary uses at a reduced scale. These validate the
//! harness end-to-end under `cargo bench`; the full-scale series come from
//! `cargo run --release -p ruskey-bench --bin repro`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ruskey::runner::ExperimentScale;
use ruskey_bench as exp;

fn bench_scale() -> ExperimentScale {
    ExperimentScale {
        load_entries: 5_000,
        mission_size: 250,
        missions: 12,
        ..ExperimentScale::small()
    }
}

fn table2(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("table2_transition_costs", |b| {
        b.iter(|| black_box(exp::table2(&scale)))
    });
}

fn fig6(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig6_static_workloads", |b| {
        b.iter(|| black_box(exp::fig6(&scale)))
    });
}

fn fig7(c: &mut Criterion) {
    let scale = ExperimentScale {
        missions: 6,
        ..bench_scale()
    };
    c.bench_function("fig7_dynamic_workload", |b| {
        b.iter(|| {
            let series = exp::fig7(&scale);
            black_box(exp::ranking_from_series(&series, exp::FIG7_SESSIONS.len()))
        })
    });
}

fn fig8(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig8_monkey_scheme", |b| {
        b.iter(|| black_box(exp::fig8(&scale)))
    });
}

fn fig9(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig9_per_level_policies", |b| {
        b.iter(|| black_box(exp::fig9(&scale)))
    });
}

fn fig10(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig10_transition_methods", |b| {
        b.iter(|| black_box(exp::fig10(&scale)))
    });
}

fn fig11(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig11_ycsb", |b| {
        b.iter(|| {
            black_box(exp::fig11_abc(&scale));
            black_box(exp::fig11_range(&scale))
        })
    });
}

fn fig12(c: &mut Criterion) {
    let scale = ExperimentScale {
        missions: 4,
        ..bench_scale()
    };
    c.bench_function("fig12_greedy_heuristics", |b| {
        b.iter(|| black_box(exp::fig12(&scale)))
    });
}

fn fig13(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig13_model_update_cost", |b| {
        b.iter(|| black_box(exp::fig13(&scale)))
    });
}

fn bruteforce(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("bruteforce_rl_comparison", |b| {
        b.iter(|| black_box(exp::bruteforce(&scale)))
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = table2, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, bruteforce
}
criterion_main!(paper);
