//! Component micro-benchmarks: the primitive costs underlying the paper's
//! cost model (Bloom probes = `c_r`, merge work = `c_w`, run probes,
//! memtable inserts, DDPG gradient steps = the Fig. 13 numerator).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use ruskey_lsm::bloom::Bloom;
use ruskey_lsm::memtable::Memtable;
use ruskey_lsm::run::RunBuilder;
use ruskey_lsm::types::KvEntry;
use ruskey_rl::{Ddpg, DdpgConfig, Transition};
use ruskey_storage::{CostModel, SimulatedDisk, Storage};

fn key(i: u64) -> bytes::Bytes {
    bytes::Bytes::copy_from_slice(&i.to_be_bytes())
}

fn bench_bloom(c: &mut Criterion) {
    let keys: Vec<[u8; 8]> = (0..10_000u64).map(|i| i.to_be_bytes()).collect();
    let bloom = Bloom::build(keys.iter().map(|k| k.as_slice()), keys.len(), 8.0);
    let mut i = 0u64;
    c.bench_function("bloom_probe_8bpk", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(bloom.contains(&i.to_be_bytes()))
        })
    });
}

fn bench_memtable(c: &mut Criterion) {
    c.bench_function("memtable_insert_128B", |b| {
        b.iter_batched(
            Memtable::new,
            |mut m| {
                for i in 0..512u64 {
                    m.insert(KvEntry::put(key(i), vec![7u8; 112], i));
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_run_probe(c: &mut Criterion) {
    let disk = SimulatedDisk::new(4096, CostModel::FREE);
    let mut builder = RunBuilder::new(1, 4096, 8.0);
    for i in 0..10_000u64 {
        builder.push(KvEntry::put(key(i * 2), vec![1u8; 112], i));
    }
    let run = builder.finish(disk.as_ref(), u64::MAX).unwrap();
    let mut i = 0u64;
    c.bench_function("run_probe_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 10_000;
            black_box(run.probe(disk.as_ref(), &key(i * 2)))
        })
    });
    c.bench_function("run_probe_miss", |b| {
        b.iter(|| {
            i = (i + 1) % 10_000;
            black_box(run.probe(disk.as_ref(), &key(i * 2 + 1)))
        })
    });
}

fn bench_merge(c: &mut Criterion) {
    use ruskey_lsm::compaction::merge_sorted;
    c.bench_function("merge_4x1000_entries", |b| {
        b.iter_batched(
            || {
                (0..4u64)
                    .map(|s| {
                        (0..1000u64)
                            .map(|i| KvEntry::put(key(i * 4 + s), vec![0u8; 32], s * 1000 + i))
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
            },
            |batches| black_box(merge_sorted(batches, false)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_ddpg_step(c: &mut Criterion) {
    // The Fig. 13 numerator: one model update with the paper's 3x128 nets.
    let mut agent = Ddpg::new(DdpgConfig::paper_default(6, 1));
    for i in 0..256 {
        agent.observe(Transition {
            state: vec![0.1; 6],
            action: vec![0.0],
            reward: -(i as f32 % 7.0),
            next_state: vec![0.1; 6],
            done: false,
        });
    }
    c.bench_function("ddpg_train_step_3x128_batch32", |b| {
        b.iter(|| black_box(agent.train_step()))
    });
}

fn bench_flush_admit(c: &mut Criterion) {
    use ruskey_lsm::{FlsmTree, LsmConfig};
    c.bench_function("tree_put_with_flushes_64KiB_buffer", |b| {
        b.iter_batched(
            || {
                let disk = SimulatedDisk::new(4096, CostModel::FREE);
                FlsmTree::new(LsmConfig::scaled_default(), disk as Arc<dyn Storage>)
            },
            |mut tree| {
                for i in 0..2000u64 {
                    tree.put(key(i), vec![5u8; 112]);
                }
                tree
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_bloom, bench_memtable, bench_run_probe, bench_merge, bench_ddpg_step, bench_flush_admit
}
criterion_main!(micro);
