//! Plain-text table, CSV, and JSON rendering for experiment results.

use crate::compaction::CompactionRow;
use crate::durability::DurabilityRow;
use crate::experiments::{Comparison, RankingTable, Series};
use crate::persistence::PersistenceRow;
use crate::read_path::ReadPathRow;
use crate::scaling::ShardScalingRow;
use crate::serve::ServeVerdict;
use crate::tuning::TuningVerdict;

/// Renders a mission-series comparison as CSV: `mission,method,...`.
pub fn series_csv(series: &[Series]) -> String {
    let mut out = String::from(
        "mission,session,method,latency_ms_per_op,write_latency_s,read_latency_s,policy_l1,converged\n",
    );
    for s in series {
        for r in &s.records {
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6},{:.6},{},{}\n",
                r.mission,
                r.session,
                s.method,
                r.latency_ms_per_op,
                r.write_latency_s,
                r.read_latency_s,
                r.policy_l1,
                r.converged
            ));
        }
    }
    out
}

/// Renders a comparison summary: per-method mean latency over the last
/// `tail` fraction of missions, with the winner marked.
pub fn comparison_summary(c: &Comparison, tail: f64) -> String {
    let mut rows: Vec<(String, f64)> = c
        .series
        .iter()
        .map(|s| {
            let n = ((s.records.len() as f64 * tail).ceil() as usize).clamp(1, s.records.len());
            let slice = &s.records[s.records.len() - n..];
            let mean = slice.iter().map(|r| r.latency_ms_per_op).sum::<f64>() / slice.len() as f64;
            (s.method.clone(), mean)
        })
        .collect();
    let best = rows.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let mut out = format!("workload: {}\n", c.workload);
    for (m, v) in rows {
        let marker = if (v - best).abs() < 1e-12 {
            "  <-- best"
        } else {
            ""
        };
        out.push_str(&format!("  {m:<22} {v:>10.4} ms/op{marker}\n"));
    }
    out
}

/// Renders a [`RankingTable`] like the paper's Table 3.
pub fn ranking_table(t: &RankingTable, session_labels: &[&str]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<28}", "Method"));
    for l in session_labels {
        out.push_str(&format!("{l:>16}"));
    }
    out.push_str(&format!("{:>12}\n", "Avg.Rank"));
    for (m, method) in t.methods.iter().enumerate() {
        out.push_str(&format!("{method:<28}"));
        for s in 0..session_labels.len() {
            out.push_str(&format!("{:>12.4}({})", t.latency[m][s], t.ranks[m][s]));
        }
        out.push_str(&format!("{:>12.2}\n", t.avg_rank[m]));
    }
    out
}

/// Renders the shard-scaling experiment as a machine-readable JSON
/// document (hand-rolled — the workspace carries no serde), the anchor of
/// the repo's performance trajectory across PRs. Each row reports both
/// virtual-time compositions explicitly: `virtual_wall_ns_per_op` (max
/// over shard time domains per mission) and `virtual_busy_ns_per_op`
/// (sum over shard time domains — total device work).
pub fn shard_scaling_json(scale_label: &str, rows: &[ShardScalingRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"shard_scaling\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(scale_label)));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"shards\": {}, \"missions\": {}, \"ops_total\": {}, \
             \"wall_s\": {:.6}, \
             \"kops_per_s\": {:.3}, \"virtual_wall_ns_per_op\": {:.1}, \
             \"virtual_busy_ns_per_op\": {:.1}, \"real_us_per_mission\": {:.1}, \
             \"real_get_ns_per_op\": {:.1}, \"cache_hit_ratio\": {:.4}, \
             \"parallelism\": {}}}{}\n",
            r.backend,
            r.shards,
            r.missions,
            r.ops_total,
            r.wall_s,
            r.kops_per_s,
            r.virtual_wall_ns_per_op,
            r.virtual_busy_ns_per_op,
            r.real_us_per_mission,
            r.real_get_ns_per_op,
            r.cache_hit_ratio,
            r.parallelism,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the read-path experiment as machine-readable JSON. Each row
/// carries the three timed populations (hot / cold / missing, real ns
/// per lookup), the cache counters, and the zero-alloc accounting; the
/// per-row verdicts conjoin into the top-level `read_path_ok` flag CI
/// greps as a smoke check (cache hits observed, hot no slower than
/// cold, missing-key rejection no slower than hot, zero fds opened and
/// zero buffer regrows during the timed phases, zero probes and page
/// reads for out-of-bounds keys). `speedup_hot_vs_uncached` is the
/// cached variant's hot-phase advantage over the bare `FileDisk` path.
pub fn read_path_json(scale_label: &str, rows: &[ReadPathRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"read_path\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(scale_label)));
    out.push_str(&format!(
        "  \"read_path_ok\": {},\n",
        rows.iter().all(|r| r.ok)
    ));
    let cached_hot = rows
        .iter()
        .find(|r| r.variant == "cached")
        .map(|r| r.hot_ns_per_op);
    let uncached_hot = rows
        .iter()
        .find(|r| r.variant == "uncached")
        .map(|r| r.hot_ns_per_op);
    if let (Some(c), Some(u)) = (cached_hot, uncached_hot) {
        out.push_str(&format!(
            "  \"speedup_hot_vs_uncached\": {:.2},\n",
            if c > 0.0 { u / c } else { 0.0 }
        ));
    }
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"variant\": \"{}\", \"entries\": {}, \"ops_per_phase\": {}, \
             \"hot_ns_per_op\": {:.1}, \"cold_ns_per_op\": {:.1}, \
             \"missing_ns_per_op\": {:.1}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"cache_hit_ratio\": {:.4}, \"fds_opened\": {}, \"buffer_grows\": {}, \
             \"hot_device_reads\": {}, \"missing_device_reads\": {}, \
             \"missing_probes\": {}, \"ok\": {}}}{}\n",
            r.variant,
            r.entries,
            r.ops_per_phase,
            r.hot_ns_per_op,
            r.cold_ns_per_op,
            r.missing_ns_per_op,
            r.cache_hits,
            r.cache_misses,
            r.cache_hit_ratio,
            r.fds_opened,
            r.buffer_grows,
            r.hot_device_reads,
            r.missing_device_reads,
            r.missing_probes,
            r.ok,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the background-compaction experiment as machine-readable
/// JSON. Each row carries the per-op virtual-latency percentiles, the
/// structural counters (`flushes`, `bg_compactions`, `stall_ns`,
/// `pending_compaction_bytes`), and the model-equivalence accounting;
/// the per-row verdicts conjoin into the top-level `compaction_ok` flag
/// CI greps as a smoke check (background p99 no worse than inline p99,
/// zero read divergence including during in-flight merges and through a
/// pinned snapshot, background compactions actually observed).
/// `p99_speedup_vs_inline` is the inline row's p99 over the background
/// row's — the tail-latency win of moving structural work off the hot
/// path.
pub fn compaction_json(scale_label: &str, rows: &[CompactionRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"compaction\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(scale_label)));
    out.push_str(&format!(
        "  \"compaction_ok\": {},\n",
        rows.iter().all(|r| r.ok)
    ));
    let inline_p99 = rows
        .iter()
        .find(|r| r.variant == "inline")
        .map(|r| r.p99_ns);
    let bg_p99 = rows
        .iter()
        .find(|r| r.variant == "background")
        .map(|r| r.p99_ns);
    if let (Some(i), Some(b)) = (inline_p99, bg_p99) {
        out.push_str(&format!(
            "  \"p99_speedup_vs_inline\": {:.2},\n",
            if b > 0 { i as f64 / b as f64 } else { 0.0 }
        ));
    }
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"variant\": \"{}\", \"ops\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"max_ns\": {}, \"flushes\": {}, \"bg_compactions\": {}, \"stall_ns\": {}, \
             \"pending_compaction_bytes\": {}, \"equivalence_checks\": {}, \"ok\": {}}}{}\n",
            r.variant,
            r.ops,
            r.p50_ns,
            r.p99_ns,
            r.max_ns,
            r.flushes,
            r.bg_compactions,
            r.stall_ns,
            r.pending_compaction_bytes,
            r.equivalence_checks,
            r.ok,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the durability experiment as machine-readable JSON. Each row
/// carries the group-commit accounting (`synced_ops` vs
/// `acknowledged_ops`, fsync counts, batch size, both commit
/// compositions) plus a per-row `ok` verdict; the top-level
/// `durability_ok` is the conjunction, which CI greps as a smoke check
/// (synced ops ≥ acknowledged ops, ≤ 1 sync per shard per batch, exact
/// replay on recovery). `overlap_ok` is the overlapped-barrier bound on
/// its own: every row's `commit_ns_per_mission` (max over concurrent
/// legs) stayed ≤ `commit_busy_ns_per_mission` (the sequential sum).
pub fn durability_json(scale_label: &str, rows: &[DurabilityRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"durability\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(scale_label)));
    out.push_str(&format!(
        "  \"durability_ok\": {},\n",
        rows.iter().all(|r| r.ok)
    ));
    out.push_str(&format!(
        "  \"overlap_ok\": {},\n",
        rows.iter()
            .all(|r| r.commit_ns_per_mission <= r.commit_busy_ns_per_mission + 1e-9)
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"missions\": {}, \"ops_total\": {}, \
             \"acknowledged_ops\": {}, \"synced_ops\": {}, \"wal_appends\": {}, \
             \"wal_syncs\": {}, \"mean_batch\": {:.2}, \
             \"commit_ns_per_mission\": {:.1}, \
             \"commit_busy_ns_per_mission\": {:.1}, \"recovered_records\": {}, \
             \"ok\": {}}}{}\n",
            r.shards,
            r.missions,
            r.ops_total,
            r.acknowledged_ops,
            r.synced_ops,
            r.wal_appends,
            r.wal_syncs,
            r.mean_batch,
            r.commit_ns_per_mission,
            r.commit_busy_ns_per_mission,
            r.recovered_records,
            r.ok,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the persistence experiment as machine-readable JSON. Each row
/// carries the restart-equivalence accounting (flushes before the
/// restart, manifest edits, runs rebuilt from data pages, WAL records
/// replayed on top, keys compared) plus a per-row `ok` verdict; the
/// top-level `persistence_ok` is the conjunction, which CI greps as a
/// smoke check (a `FileDisk`-backed store at every shard count survives
/// drop + recover get/scan-identical with its flushed runs intact).
/// `power_failure_ok` is the conjunction of the per-row `power_ok`
/// verdicts — the simulated power cut at the extent-fsync barrier was
/// recovered to exactly the acknowledged state with the torn orphan
/// swept — which CI greps alongside.
pub fn persistence_json(scale_label: &str, rows: &[PersistenceRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"persistence\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(scale_label)));
    out.push_str(&format!(
        "  \"persistence_ok\": {},\n",
        rows.iter().all(|r| r.ok)
    ));
    out.push_str(&format!(
        "  \"power_failure_ok\": {},\n",
        rows.iter().all(|r| r.power_ok)
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"missions\": {}, \"ops_total\": {}, \"flushes\": {}, \
             \"manifest_edits\": {}, \"runs_recovered\": {}, \"replayed_tail\": {}, \
             \"checked_keys\": {}, \"ok\": {}, \"extent_syncs\": {}, \"dir_syncs\": {}, \
             \"orphans_collected\": {}, \"power_ok\": {}}}{}\n",
            r.shards,
            r.missions,
            r.ops_total,
            r.flushes,
            r.manifest_edits,
            r.runs_recovered,
            r.replayed_tail,
            r.checked_keys,
            r.ok,
            r.extent_syncs,
            r.dir_syncs,
            r.orphans_collected,
            r.power_ok,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the concurrent-serving experiment as machine-readable JSON.
/// Each row carries the closed-loop measurement (real-time throughput,
/// p50/p99/p999 request latency, cross-client commit coalescing,
/// backpressure stalls) and the equivalence accounting (mid-flight
/// read-your-writes rereads, final-state shadow comparison); the
/// per-row verdicts conjoin with the crash-durability and
/// admission-control legs into the top-level `serve_ok` flag CI greps
/// as a smoke check. `crash_ok` and `admission_ok` are also reported on
/// their own.
pub fn serve_json(scale_label: &str, v: &ServeVerdict) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"serve\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(scale_label)));
    out.push_str(&format!("  \"serve_ok\": {},\n", v.ok));
    out.push_str(&format!("  \"crash_ok\": {},\n", v.crash_ok));
    out.push_str(&format!("  \"crash_acked\": {},\n", v.crash_acked));
    out.push_str(&format!("  \"admission_ok\": {},\n", v.admission_ok));
    out.push_str(&format!(
        "  \"admission_rejections\": {},\n",
        v.admission_rejections
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in v.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"shards\": {}, \"ops_total\": {}, \
             \"acked_writes\": {}, \"stalls\": {}, \"throughput_kops\": {:.3}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}, \
             \"mean_batch\": {:.2}, \"ryw_checks\": {}, \"ryw_violations\": {}, \
             \"final_mismatches\": {}, \"client_errors\": {}, \"ok\": {}}}{}\n",
            r.clients,
            r.shards,
            r.ops_total,
            r.acked_writes,
            r.stalls,
            r.throughput_kops,
            r.p50_ns,
            r.p99_ns,
            r.p999_ns,
            r.max_ns,
            r.mean_batch,
            r.ryw_checks,
            r.ryw_violations,
            r.final_mismatches,
            r.client_errors,
            r.ok,
            if i + 1 < v.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the per-shard-tuning experiment as machine-readable JSON.
/// Each tuning row carries the converged-tail metric
/// (`tail_ns_per_op`), the non-vacuity counter (`tuned_missions`), and
/// the visible specialization (`final_k1`, `distinct_policies`); the
/// mitigation rows carry the imbalance trajectory and migration
/// counters. The verdict legs — `parity_ok`, `skew_ok`,
/// `mitigation_ok`, `tuned_ok` — conjoin into the top-level
/// `tuning_ok` flag CI greps as a smoke check.
pub fn tuning_json(scale_label: &str, v: &TuningVerdict) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"tuning\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(scale_label)));
    out.push_str(&format!("  \"tuning_ok\": {},\n", v.ok));
    out.push_str(&format!("  \"parity_ok\": {},\n", v.parity_ok));
    out.push_str(&format!("  \"skew_ok\": {},\n", v.skew_ok));
    out.push_str(&format!("  \"mitigation_ok\": {},\n", v.mitigation_ok));
    out.push_str(&format!("  \"tuned_ok\": {},\n", v.tuned_ok));
    out.push_str(&format!("  \"uniform_ratio\": {:.4},\n", v.uniform_ratio));
    out.push_str("  \"rows\": [\n");
    for (i, r) in v.rows.iter().enumerate() {
        let k1: Vec<String> = r.final_k1.iter().map(|k| k.to_string()).collect();
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"strategy\": \"{}\", \"shards\": {}, \
             \"missions\": {}, \"ops_total\": {}, \"tail_ns_per_op\": {:.1}, \
             \"tuned_missions\": {}, \"final_k1\": [{}], \
             \"distinct_policies\": {}}}{}\n",
            r.workload,
            r.strategy,
            r.shards,
            r.missions,
            r.ops_total,
            r.tail_ns_per_op,
            r.tuned_missions,
            k1.join(", "),
            r.distinct_policies,
            if i + 1 < v.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"mitigation\": [\n");
    for (i, r) in v.mitigation.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"balanced\": {}, \"mean_imbalance\": {:.4}, \
             \"peak_imbalance\": {:.4}, \"final_imbalance\": {:.4}, \
             \"rebalances\": {}, \"rehomed_keys\": {}}}{}\n",
            r.balanced,
            r.mean_imbalance,
            r.peak_imbalance,
            r.final_imbalance,
            r.rebalances,
            r.rehomed_keys,
            if i + 1 < v.mitigation.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Simple aligned two-column table.
pub fn kv_table(title: &str, rows: &[(String, String)]) -> String {
    let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(8) + 2;
    let mut out = format!("{title}\n");
    for (k, v) in rows {
        out.push_str(&format!("  {k:<w$}{v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::ServeRow;
    use ruskey::runner::MissionRecord;

    fn record(mission: usize, latency: f64) -> MissionRecord {
        MissionRecord {
            mission,
            session: 0,
            latency_ms_per_op: latency,
            write_latency_s: 0.1,
            read_latency_s: 0.2,
            policy_l1: 3,
            policies: vec![3],
            model_update_ns: 5,
            real_process_ns: 10,
            converged: true,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = vec![Series {
            method: "X".into(),
            records: vec![record(0, 1.5), record(1, 2.0)],
        }];
        let csv = series_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("mission,"));
        assert!(lines[1].contains(",X,"));
    }

    #[test]
    fn summary_marks_best() {
        let c = Comparison {
            workload: "w".into(),
            series: vec![
                Series {
                    method: "slow".into(),
                    records: vec![record(0, 5.0)],
                },
                Series {
                    method: "fast".into(),
                    records: vec![record(0, 1.0)],
                },
            ],
        };
        let s = comparison_summary(&c, 1.0);
        let fast_line = s.lines().find(|l| l.contains("fast")).unwrap();
        assert!(fast_line.contains("best"));
        // Sorted ascending: fast before slow.
        let fast_pos = s.find("fast").unwrap();
        let slow_pos = s.find("slow").unwrap();
        assert!(fast_pos < slow_pos);
    }

    #[test]
    fn shard_scaling_json_is_well_formed() {
        let rows = vec![
            ShardScalingRow {
                backend: "simulated",
                shards: 1,
                missions: 10,
                ops_total: 1000,
                wall_s: 0.5,
                kops_per_s: 2.0,
                virtual_wall_ns_per_op: 12345.6,
                virtual_busy_ns_per_op: 12345.6,
                real_us_per_mission: 800.0,
                real_get_ns_per_op: 900.0,
                cache_hit_ratio: 0.0,
                parallelism: 1,
            },
            ShardScalingRow {
                backend: "file",
                shards: 4,
                missions: 10,
                ops_total: 1000,
                wall_s: 0.2,
                kops_per_s: 5.0,
                virtual_wall_ns_per_op: 4000.2,
                virtual_busy_ns_per_op: 13000.8,
                real_us_per_mission: 350.0,
                real_get_ns_per_op: 450.0,
                cache_hit_ratio: 0.8731,
                parallelism: 4,
            },
        ];
        let json = shard_scaling_json("small", &rows);
        assert!(json.contains("\"experiment\": \"shard_scaling\""));
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"backend\": \"simulated\""));
        assert!(json.contains("\"backend\": \"file\""));
        // Both time compositions are named explicitly in every row.
        assert_eq!(json.matches("\"virtual_wall_ns_per_op\":").count(), 2);
        assert_eq!(json.matches("\"virtual_busy_ns_per_op\":").count(), 2);
        assert_eq!(json.matches("\"real_us_per_mission\":").count(), 2);
        // As are the read-path columns this PR trajectory tracks.
        assert_eq!(json.matches("\"real_get_ns_per_op\":").count(), 2);
        assert_eq!(json.matches("\"cache_hit_ratio\":").count(), 2);
        // Exactly one comma between the two row objects, none trailing.
        assert_eq!(json.matches("}},").count(), 0);
        assert_eq!(json.matches("},\n").count(), 1);
        assert!(!json.contains(",\n  ]"));
        // Balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn durability_json_reports_both_commit_compositions() {
        let row = |shards: usize, commit: f64, busy: f64| DurabilityRow {
            shards,
            missions: 5,
            ops_total: 500,
            acknowledged_ops: 200,
            wal_appends: 200,
            wal_syncs: 10,
            synced_ops: 200,
            mean_batch: 20.0,
            commit_ns_per_mission: commit,
            commit_busy_ns_per_mission: busy,
            recovered_records: 0,
            ok: true,
        };
        let json = durability_json("tiny", &[row(1, 50.0, 50.0), row(4, 80.0, 200.0)]);
        assert!(json.contains("\"durability_ok\": true"));
        assert!(json.contains("\"overlap_ok\": true"));
        assert_eq!(json.matches("\"commit_ns_per_mission\":").count(), 2);
        assert_eq!(json.matches("\"commit_busy_ns_per_mission\":").count(), 2);
        // A row whose overlapped latency exceeds the sequential sum flips
        // the overlap verdict (the barrier max can never beat the sum).
        let bad = durability_json("tiny", &[row(4, 300.0, 200.0)]);
        assert!(bad.contains("\"overlap_ok\": false"));
    }

    #[test]
    fn persistence_json_carries_the_verdict() {
        let row = |shards: usize, ok: bool, power_ok: bool| PersistenceRow {
            shards,
            missions: 4,
            ops_total: 400,
            flushes: 6,
            manifest_edits: 30,
            runs_recovered: 5,
            replayed_tail: 12,
            checked_keys: 100,
            ok,
            extent_syncs: 7,
            dir_syncs: 6,
            orphans_collected: 1,
            power_ok,
        };
        let json = persistence_json("tiny", &[row(1, true, true), row(2, true, true)]);
        assert!(json.contains("\"experiment\": \"persistence\""));
        assert!(json.contains("\"persistence_ok\": true"));
        assert!(json.contains("\"power_failure_ok\": true"));
        assert_eq!(json.matches("\"runs_recovered\":").count(), 2);
        assert_eq!(json.matches("\"replayed_tail\":").count(), 2);
        assert_eq!(json.matches("\"extent_syncs\":").count(), 2);
        assert_eq!(json.matches("\"orphans_collected\":").count(), 2);
        // One failing row flips the matching top-level verdict — and only
        // that one.
        let bad = persistence_json("tiny", &[row(1, true, true), row(2, false, true)]);
        assert!(bad.contains("\"persistence_ok\": false"));
        assert!(bad.contains("\"power_failure_ok\": true"));
        let bad_power = persistence_json("tiny", &[row(1, true, false), row(2, true, true)]);
        assert!(bad_power.contains("\"persistence_ok\": true"));
        assert!(bad_power.contains("\"power_failure_ok\": false"));
        // Balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn read_path_json_carries_verdict_and_speedup() {
        let row = |variant: &'static str, hot: f64, ok: bool| ReadPathRow {
            variant,
            entries: 2000,
            ops_per_phase: 2000,
            hot_ns_per_op: hot,
            cold_ns_per_op: 2000.0,
            missing_ns_per_op: 100.0,
            cache_hits: if variant == "cached" { 1500 } else { 0 },
            cache_misses: if variant == "cached" { 500 } else { 0 },
            cache_hit_ratio: if variant == "cached" { 0.75 } else { 0.0 },
            fds_opened: 0,
            buffer_grows: 0,
            hot_device_reads: 0,
            missing_device_reads: 0,
            missing_probes: 0,
            ok,
        };
        let json = read_path_json(
            "tiny",
            &[row("cached", 400.0, true), row("uncached", 1600.0, true)],
        );
        assert!(json.contains("\"experiment\": \"read_path\""));
        assert!(json.contains("\"read_path_ok\": true"));
        assert!(json.contains("\"speedup_hot_vs_uncached\": 4.00"));
        assert_eq!(json.matches("\"hot_ns_per_op\":").count(), 2);
        assert_eq!(json.matches("\"missing_probes\":").count(), 2);
        assert_eq!(json.matches("\"fds_opened\":").count(), 2);
        // One failing row flips the top-level verdict.
        let bad = read_path_json(
            "tiny",
            &[row("cached", 400.0, true), row("uncached", 1600.0, false)],
        );
        assert!(bad.contains("\"read_path_ok\": false"));
        // Balanced braces/brackets, no trailing comma before the close.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn compaction_json_carries_verdict_and_speedup() {
        let row = |variant: &'static str, p99: u64, ok: bool| CompactionRow {
            variant,
            ops: 4000,
            p50_ns: 900,
            p99_ns: p99,
            max_ns: p99 * 3,
            flushes: 60,
            bg_compactions: if variant == "background" { 12 } else { 0 },
            stall_ns: if variant == "background" { 5000 } else { 0 },
            pending_compaction_bytes: 0,
            equivalence_checks: 1200,
            ok,
        };
        let json = compaction_json(
            "tiny",
            &[row("inline", 80_000, true), row("background", 20_000, true)],
        );
        assert!(json.contains("\"experiment\": \"compaction\""));
        assert!(json.contains("\"compaction_ok\": true"));
        assert!(json.contains("\"p99_speedup_vs_inline\": 4.00"));
        assert_eq!(json.matches("\"p99_ns\":").count(), 2);
        assert_eq!(json.matches("\"bg_compactions\":").count(), 2);
        assert_eq!(json.matches("\"equivalence_checks\":").count(), 2);
        // One failing row flips the top-level verdict.
        let bad = compaction_json(
            "tiny",
            &[
                row("inline", 80_000, true),
                row("background", 90_000, false),
            ],
        );
        assert!(bad.contains("\"compaction_ok\": false"));
        // Balanced braces/brackets, no trailing comma before the close.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn serve_json_carries_all_verdict_legs() {
        let row = |clients: usize, mean_batch: f64, ok: bool| ServeRow {
            clients,
            shards: 4,
            ops_total: 3200,
            acked_writes: 1500,
            stalls: 3,
            throughput_kops: 120.5,
            p50_ns: 8_000,
            p99_ns: 90_000,
            p999_ns: 400_000,
            max_ns: 900_000,
            mean_batch,
            ryw_checks: 300,
            ryw_violations: 0,
            final_mismatches: 0,
            client_errors: 0,
            ok,
        };
        let v = ServeVerdict {
            rows: vec![row(1, 1.0, true), row(16, 2.4, true)],
            crash_acked: 220,
            crash_ok: true,
            admission_rejections: 57,
            admission_ok: true,
            ok: true,
        };
        let json = serve_json("tiny", &v);
        assert!(json.contains("\"experiment\": \"serve\""));
        assert!(json.contains("\"serve_ok\": true"));
        assert!(json.contains("\"crash_ok\": true"));
        assert!(json.contains("\"admission_ok\": true"));
        assert!(json.contains("\"admission_rejections\": 57"));
        // The tail percentiles the issue pins are named in every row.
        assert_eq!(json.matches("\"p999_ns\":").count(), 2);
        assert_eq!(json.matches("\"mean_batch\":").count(), 2);
        assert_eq!(json.matches("\"ryw_violations\":").count(), 2);
        // A failed leg flips only the top-level verdict it feeds.
        let bad = ServeVerdict {
            crash_ok: false,
            ok: false,
            ..v
        };
        let bad_json = serve_json("tiny", &bad);
        assert!(bad_json.contains("\"serve_ok\": false"));
        assert!(bad_json.contains("\"crash_ok\": false"));
        assert!(bad_json.contains("\"admission_ok\": true"));
        // Balanced braces/brackets, no trailing comma before the close.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn tuning_json_carries_all_verdict_legs() {
        use crate::tuning::{MitigationRow, TuningRow, TuningVerdict};
        let row = |workload: &'static str, strategy: &'static str, tail: f64| TuningRow {
            workload,
            strategy,
            shards: 4,
            missions: 24,
            ops_total: 4800,
            tail_ns_per_op: tail,
            tuned_missions: 12,
            final_k1: vec![1, 1, 9, 1],
            distinct_policies: if strategy == "per_shard" { 2 } else { 1 },
        };
        let v = TuningVerdict {
            rows: vec![
                row("uniform", "global", 1000.0),
                row("uniform", "per_shard", 1020.0),
                row("skewed", "global", 1500.0),
                row("skewed", "per_shard", 1400.0),
            ],
            mitigation: vec![
                MitigationRow {
                    balanced: false,
                    mean_imbalance: 3.4,
                    peak_imbalance: 3.8,
                    final_imbalance: 3.5,
                    rebalances: 0,
                    rehomed_keys: 0,
                },
                MitigationRow {
                    balanced: true,
                    mean_imbalance: 1.6,
                    peak_imbalance: 3.8,
                    final_imbalance: 1.1,
                    rebalances: 3,
                    rehomed_keys: 8,
                },
            ],
            uniform_ratio: 1.02,
            parity_ok: true,
            skew_ok: true,
            mitigation_ok: true,
            tuned_ok: true,
            ok: true,
        };
        let json = tuning_json("tiny", &v);
        assert!(json.contains("\"experiment\": \"tuning\""));
        assert!(json.contains("\"tuning_ok\": true"));
        assert!(json.contains("\"parity_ok\": true"));
        assert!(json.contains("\"skew_ok\": true"));
        assert!(json.contains("\"mitigation_ok\": true"));
        assert!(json.contains("\"uniform_ratio\": 1.0200"));
        assert!(json.contains("\"final_k1\": [1, 1, 9, 1]"));
        assert_eq!(json.matches("\"tail_ns_per_op\":").count(), 4);
        assert_eq!(json.matches("\"mean_imbalance\":").count(), 2);
        assert_eq!(json.matches("\"rebalances\":").count(), 2);
        // A failed leg flips only the verdicts it feeds.
        let bad = TuningVerdict {
            skew_ok: false,
            ok: false,
            ..v
        };
        let bad_json = tuning_json("tiny", &bad);
        assert!(bad_json.contains("\"tuning_ok\": false"));
        assert!(bad_json.contains("\"skew_ok\": false"));
        assert!(bad_json.contains("\"parity_ok\": true"));
        // Balanced braces/brackets, no trailing comma before a close.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn kv_table_aligns() {
        let out = kv_table(
            "T",
            &[("a".into(), "1".into()), ("long-key".into(), "2".into())],
        );
        assert!(out.contains("T\n"));
        assert!(out.contains("long-key"));
    }
}
