//! Read-path raw-speed experiment (beyond the paper): real wall-clock
//! cost of file-backed point lookups through the serving stack.
//!
//! `repro read_path` loads one [`FlsmTree`] per variant over a real
//! [`FileDisk`] — once served through the sharded [`BlockCache`], once
//! bare — and times three lookup populations:
//!
//! * **hot**: a small working set probed repeatedly (cache-resident
//!   after one warming pass),
//! * **cold**: a permuted sweep over every loaded key (mostly cache
//!   misses — the cache is sized well below the data),
//! * **missing**: keys beyond the tree's maximum bound, which the O(1)
//!   aggregate-bounds fast path must reject with **zero** run probes
//!   and **zero** page reads.
//!
//! Each row's verdict also pins the zero-alloc steady state of the
//! rewritten `FileDisk`: during the timed phases no new fd may be
//! opened ([`FileDisk::fds_opened`]) and the thread-local page buffer
//! may not regrow ([`FileDisk::buffer_grows`]). The per-row verdicts
//! conjoin into the top-level `read_path_ok` flag CI greps from the
//! JSON output.

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use ruskey::db::RusKeyConfig;
use ruskey::runner::ExperimentScale;
use ruskey_lsm::FlsmTree;
use ruskey_storage::{BlockCache, FileDisk, Storage};
use ruskey_workload::{bulk_load_pairs, encode_key};

/// Hot working-set size (consecutive keys, so the set spans only a few
/// pages and stays cache-resident through the hot phase).
const HOT_KEYS: u64 = 64;

/// One serving-stack variant's measurement.
#[derive(Debug, Clone)]
pub struct ReadPathRow {
    /// `"cached"` (FileDisk behind the sharded block cache) or
    /// `"uncached"` (bare FileDisk — every lookup reaches the file).
    pub variant: &'static str,
    /// Keys loaded before measuring.
    pub entries: u64,
    /// Timed lookups per phase (hot, cold, and missing each run this
    /// many).
    pub ops_per_phase: u64,
    /// Real ns per hot-key lookup.
    pub hot_ns_per_op: f64,
    /// Real ns per cold-key lookup (permuted full sweep).
    pub cold_ns_per_op: f64,
    /// Real ns per missing-key lookup (beyond every bound).
    pub missing_ns_per_op: f64,
    /// Block-cache hits over the timed phases (0 for `"uncached"`).
    pub cache_hits: u64,
    /// Block-cache misses over the timed phases (0 for `"uncached"`).
    pub cache_misses: u64,
    /// Hit ratio over the timed phases (0.0 for `"uncached"`).
    pub cache_hit_ratio: f64,
    /// File descriptors opened *during* the timed phases — the fd-cache
    /// claim: steady-state reads must not open files, so this must be 0.
    pub fds_opened: u64,
    /// Thread-local page-buffer regrows during the timed phases — the
    /// zero-alloc claim: steady-state reads must not allocate, so this
    /// must be 0.
    pub buffer_grows: u64,
    /// Device pages read during the hot phase (must be 0 for
    /// `"cached"`: a warmed hot set serves entirely from memory).
    pub hot_device_reads: u64,
    /// Device pages read during the missing phase (must be 0: the
    /// bounds fast path rejects before any I/O).
    pub missing_device_reads: u64,
    /// Run probes during the missing phase (must be 0: rejection
    /// happens above the per-run check).
    pub missing_probes: u64,
    /// All of the row's invariants held.
    pub ok: bool,
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A stride co-prime with `n`, so `i -> (i * stride) % n` permutes
/// `0..n` — the cold sweep visits every key while destroying the
/// sequential page locality a linear sweep would enjoy.
///
/// The stride sits near the golden-ratio fraction of `n`: successive
/// probes then land far apart everywhere in the key space (three-
/// distance theorem). A stride near `n/2` — the old choice — is also
/// coprime but degenerates into two interleaved *sequential* sweeps
/// (`i*s mod n` advances by a constant ±small step within each parity
/// class), whose two-page working set made the "cold" phase run almost
/// entirely from cache.
fn coprime_stride(n: u64) -> u64 {
    let mut s = (n * 618 / 1000) | 1;
    while gcd(s, n) != 1 {
        s += 2;
    }
    s
}

fn sum_probes(tree: &FlsmTree) -> u64 {
    tree.stats().levels.iter().map(|l| l.probes).sum()
}

fn run_variant(scale: &ExperimentScale, cached: bool) -> ReadPathRow {
    let variant = if cached { "cached" } else { "uncached" };
    let root =
        std::env::temp_dir().join(format!("ruskey-read-path-{}-{variant}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create read_path dir");

    let disk = FileDisk::new(&root, scale.page_size, scale.cost).expect("open FileDisk");
    // Sized well below the data so the cold sweep actually misses, but
    // comfortably above the hot working set's page footprint. The floor
    // must stay small relative to tiny-scale data (~40 pages): a cache
    // holding most of the tree turns "cold" into a second hot phase and
    // the hot-vs-cold comparison into a coin flip.
    let est_pages = (scale.load_entries * (scale.key_len + scale.value_len + 16) as u64)
        / scale.page_size as u64;
    let cache_pages = (est_pages / 8).max(8) as usize;
    let cache = cached.then(|| BlockCache::new(Arc::clone(&disk), cache_pages));
    let mut tree = match &cache {
        Some(c) => FlsmTree::try_new(RusKeyConfig::scaled_default().lsm, Arc::clone(c) as _),
        None => FlsmTree::try_new(RusKeyConfig::scaled_default().lsm, Arc::clone(&disk) as _),
    }
    .expect("valid scaled config");
    tree.bulk_load(bulk_load_pairs(
        scale.load_entries,
        scale.key_len,
        scale.value_len,
        scale.seed,
    ));

    let entries = scale.load_entries;
    let ops_per_phase = entries.max(2_000);
    let hot_base = entries / 3;
    let hot: Vec<Bytes> = (hot_base..hot_base + HOT_KEYS.min(entries))
        .map(|i| encode_key(i, scale.key_len))
        .collect();

    // Warm the hot set (outside the timed window), then freeze the
    // fd/alloc baselines: from here on the steady state must hold.
    for k in &hot {
        tree.get(k);
    }
    let cache_base = cache.as_ref().map_or((0, 0), |c| (c.hits(), c.misses()));
    let fds_base = disk.fds_opened();
    let grows_base = disk.buffer_grows();

    // The hot phase is steady-state cache-resident, so its true cost is
    // the *minimum* over repeated timed passes — a single pass can absorb
    // a scheduler preemption and spuriously lose to the cold sweep.
    let reads_before_hot = disk.metrics().pages_read;
    let mut hot_ns_per_op = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for i in 0..ops_per_phase {
            tree.get(&hot[(i % hot.len() as u64) as usize]);
        }
        hot_ns_per_op = hot_ns_per_op.min(t0.elapsed().as_nanos() as f64 / ops_per_phase as f64);
    }
    let hot_device_reads = disk.metrics().pages_read - reads_before_hot;

    let stride = coprime_stride(entries);
    let cold: Vec<Bytes> = (0..ops_per_phase)
        .map(|i| encode_key((i * stride) % entries, scale.key_len))
        .collect();
    let t0 = Instant::now();
    for k in &cold {
        tree.get(k);
    }
    let cold_ns_per_op = t0.elapsed().as_nanos() as f64 / ops_per_phase as f64;

    // Missing keys sit beyond every loaded key, so the aggregate-bounds
    // fast path must reject them without touching a run or the device.
    let missing: Vec<Bytes> = (0..HOT_KEYS)
        .map(|i| encode_key(entries + 1 + i, scale.key_len))
        .collect();
    let reads_before_missing = disk.metrics().pages_read;
    let probes_before_missing = sum_probes(&tree);
    // Min-of-3 like the hot phase: the comparison against the minimized
    // hot cost must not be skewed by noise on this side either.
    let mut missing_ns_per_op = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for i in 0..ops_per_phase {
            tree.get(&missing[(i % HOT_KEYS) as usize]);
        }
        missing_ns_per_op =
            missing_ns_per_op.min(t0.elapsed().as_nanos() as f64 / ops_per_phase as f64);
    }
    let missing_device_reads = disk.metrics().pages_read - reads_before_missing;
    let missing_probes = sum_probes(&tree) - probes_before_missing;

    let fds_opened = disk.fds_opened() - fds_base;
    let buffer_grows = disk.buffer_grows() - grows_base;
    let (cache_hits, cache_misses) = cache.as_ref().map_or((0, 0), |c| {
        (c.hits() - cache_base.0, c.misses() - cache_base.1)
    });
    let traffic = cache_hits + cache_misses;
    let cache_hit_ratio = if traffic == 0 {
        0.0
    } else {
        cache_hits as f64 / traffic as f64
    };

    let ok = fds_opened == 0
        && buffer_grows == 0
        && missing_device_reads == 0
        && missing_probes == 0
        && missing_ns_per_op <= hot_ns_per_op
        && (!cached
            || (cache_hits > 0 && hot_device_reads == 0 && hot_ns_per_op <= cold_ns_per_op));

    drop(tree);
    let _ = std::fs::remove_dir_all(&root);
    ReadPathRow {
        variant,
        entries,
        ops_per_phase,
        hot_ns_per_op,
        cold_ns_per_op,
        missing_ns_per_op,
        cache_hits,
        cache_misses,
        cache_hit_ratio,
        fds_opened,
        buffer_grows,
        hot_device_reads,
        missing_device_reads,
        missing_probes,
        ok,
    }
}

/// Runs both serving-stack variants and returns their rows — `"cached"`
/// first, `"uncached"` second, so the hot-phase speedup of the cache is
/// `rows[1].hot_ns_per_op / rows[0].hot_ns_per_op`.
pub fn read_path(scale: &ExperimentScale) -> Vec<ReadPathRow> {
    vec![run_variant(scale, true), run_variant(scale, false)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            load_entries: 2_000,
            ..ExperimentScale::tiny()
        }
    }

    #[test]
    fn cached_row_serves_hot_keys_from_memory() {
        let _serial = crate::real_time_test_guard();
        let r = run_variant(&tiny(), true);
        assert!(r.ok, "cached read-path invariants failed: {r:?}");
        assert!(r.cache_hits > 0, "hot phase must hit the cache");
        assert_eq!(r.hot_device_reads, 0, "warmed hot keys must not read");
        assert_eq!(r.fds_opened, 0, "steady-state reads must not open fds");
        assert_eq!(r.buffer_grows, 0, "steady-state reads must not allocate");
        assert_eq!(r.missing_device_reads, 0);
        assert_eq!(r.missing_probes, 0);
    }

    #[test]
    fn uncached_row_is_alloc_free_and_rejects_missing_keys() {
        let _serial = crate::real_time_test_guard();
        let r = run_variant(&tiny(), false);
        assert!(r.ok, "uncached read-path invariants failed: {r:?}");
        assert_eq!(r.cache_hits, 0);
        assert_eq!(r.cache_misses, 0);
        assert_eq!(r.cache_hit_ratio, 0.0);
        assert_eq!(r.fds_opened, 0);
        assert_eq!(r.buffer_grows, 0);
        assert_eq!(r.missing_device_reads, 0);
        assert_eq!(r.missing_probes, 0);
    }

    #[test]
    fn coprime_stride_permutes() {
        for n in [7u64, 64, 100, 2_000, 12_345] {
            let s = coprime_stride(n);
            let mut seen = vec![false; n as usize];
            for i in 0..n {
                seen[((i * s) % n) as usize] = true;
            }
            assert!(seen.iter().all(|&b| b), "stride {s} does not permute {n}");
        }
    }
}
