//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Not figures from the paper, but experiments that probe its claims:
//!
//! * **DDPG vs DQN** — §5.1.4 argues DDPG is more effective than DQN; we
//!   swap Lerp's learner and compare convergence and final latency.
//! * **Block cache** — §1.2 motivates black-box tuning partly because
//!   caches defeat white-box formulas; we measure how a page cache shifts
//!   the optimal policy.
//! * **Device cost model** — §1.2 cites Zhu et al.: on fast devices CPU
//!   (Bloom hashing) can dominate I/O; we sweep cost models and report how
//!   the white-box optimum moves.
//! * **Reward mix α** — the weight between level-local and end-to-end
//!   latency in Lerp's reward (§5.1.3).

use std::sync::Arc;

use ruskey::db::{RusKey, RusKeyConfig};
use ruskey::dqn_lerp::DqnLerp;
use ruskey::lerp::{Lerp, LerpConfig, PropagationScheme};
use ruskey::runner::{converged_mean_latency, run_static, ExperimentScale};
use ruskey::tuner::{FixedPolicy, Tuner};
use ruskey_analysis::cost::{optimal_k_int, CostParams};
use ruskey_lsm::bloom::fpr_for_bits;
use ruskey_storage::{BlockCache, CostModel, SimulatedDisk, Storage};
use ruskey_workload::{bulk_load_pairs, MissionStream, OpGenerator, OpMix};

/// Result row shared by the ablations.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Tail mean latency (ms/op).
    pub tail_latency_ms: f64,
    /// Mission index at convergence (if converged).
    pub converged_at: Option<usize>,
    /// Final Level-1 policy.
    pub final_k1: u32,
}

/// DDPG vs DQN as Lerp's inner learner, per workload mix.
///
/// RL outcomes are seed-sensitive at this scale, so each learner is run
/// with several seeds and the row reports the mean tail latency, the
/// number of converged runs, and the median converged policy.
pub fn ablation_learner(scale: &ExperimentScale) -> Vec<(String, Vec<AblationRow>)> {
    const SEEDS: [u64; 3] = [11, 42, 1309];
    let mixes = [
        ("read-heavy", OpMix::read_heavy()),
        ("write-heavy", OpMix::write_heavy()),
        ("balanced", OpMix::balanced()),
    ];
    mixes
        .iter()
        .map(|(wl, mix)| {
            let spec = scale.spec().with_mix(*mix);
            let mut rows = Vec::new();
            for learner in ["DDPG (paper)", "DQN"] {
                let mut latencies = Vec::new();
                let mut converged_missions = Vec::new();
                let mut final_ks = Vec::new();
                for &seed in &SEEDS {
                    let tuner: Box<dyn Tuner> = match learner {
                        "DDPG (paper)" => Box::new(Lerp::new(LerpConfig {
                            seed,
                            ..LerpConfig::paper_default(PropagationScheme::Uniform)
                        })),
                        _ => Box::new(DqnLerp::new(seed)),
                    };
                    let records =
                        run_static(RusKeyConfig::scaled_default(), scale, tuner, spec.clone());
                    latencies.push(converged_mean_latency(&records, 0.3));
                    if let Some(m) = records.iter().position(|r| r.converged) {
                        converged_missions.push(m);
                    }
                    final_ks.push(records.last().map_or(1, |r| r.policy_l1));
                }
                final_ks.sort_unstable();
                rows.push(AblationRow {
                    label: format!(
                        "{learner} ({}/{} seeds converged)",
                        converged_missions.len(),
                        SEEDS.len()
                    ),
                    tail_latency_ms: latencies.iter().sum::<f64>() / latencies.len() as f64,
                    converged_at: converged_missions.iter().min().copied(),
                    final_k1: final_ks[final_ks.len() / 2],
                });
            }
            (wl.to_string(), rows)
        })
        .collect()
}

/// Effect of an LRU block cache on the read/write trade-off: the same
/// fixed policies measured with and without a cache.
pub fn ablation_cache(scale: &ExperimentScale) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for (label, cache_pages) in [("no-cache", 0usize), ("cache-1k-pages", 1024)] {
        for k in [1u32, 5, 10] {
            let base = SimulatedDisk::new(scale.page_size, scale.cost);
            let storage: Arc<dyn Storage> = if cache_pages > 0 {
                BlockCache::new(base, cache_pages)
            } else {
                base
            };
            let mut db = RusKey::with_tuner(
                RusKeyConfig::scaled_default(),
                storage,
                Box::new(FixedPolicy::new(k)),
            );
            db.bulk_load(bulk_load_pairs(
                scale.load_entries,
                scale.key_len,
                scale.value_len,
                scale.seed,
            ));
            let spec = scale.spec().with_mix(OpMix::balanced());
            let mut missions =
                MissionStream::new(OpGenerator::new(spec, scale.seed + 1), scale.mission_size);
            let mut latencies = Vec::new();
            for _ in 0..scale.missions {
                let report = db.run_mission(&missions.next_mission());
                latencies.push(report.ns_per_op() / 1e6);
            }
            rows.push(AblationRow {
                label: format!("{label}/K={k}"),
                tail_latency_ms: crate::tail_mean(&latencies, 1.0 / 3.0),
                converged_at: None,
                final_k1: k,
            });
        }
    }
    rows
}

/// How the white-box optimal policy moves across device cost models — the
/// Zhu-et-al. CPU-dominance point from §1.2.
pub fn ablation_cost_model() -> Vec<(String, u32, u32, u32)> {
    let fpr = fpr_for_bits(8.0);
    [
        ("NVMe", CostModel::NVME),
        ("SATA-SSD", CostModel::SATA_SSD),
        ("CPU-bound", CostModel::CPU_BOUND),
    ]
    .iter()
    .map(|(label, cm)| {
        let k_for = |gamma: f64| {
            let p = CostParams {
                size_ratio: 10.0,
                entry_bytes: 143.0,
                page_bytes: 4096.0,
                read_io_ns: cm.read_page_ns as f64,
                write_io_ns: cm.write_page_ns as f64,
                cpu_probe_ns: cm.cpu_probe_ns as f64,
                cpu_merge_ns: cm.cpu_merge_per_key_ns as f64,
                gamma,
            };
            optimal_k_int(&p, fpr, 10)
        };
        (label.to_string(), k_for(0.9), k_for(0.5), k_for(0.1))
    })
    .collect()
}

/// Reward mix α sweep: how strongly the level-local latency is weighted in
/// Lerp's reward (§5.1.3; the paper uses 1/2, this reproduction 0.85 —
/// see EXPERIMENTS.md).
pub fn ablation_alpha(scale: &ExperimentScale) -> Vec<AblationRow> {
    [0.25, 0.5, 0.85, 1.0]
        .iter()
        .map(|&alpha| {
            let mut cfg = LerpConfig::paper_default(PropagationScheme::Uniform);
            cfg.alpha = alpha;
            cfg.seed = scale.seed;
            let spec = scale.spec().with_mix(OpMix::write_heavy());
            let records = run_static(
                RusKeyConfig::scaled_default(),
                scale,
                Box::new(Lerp::new(cfg)),
                spec,
            );
            AblationRow {
                label: format!("alpha={alpha}"),
                tail_latency_ms: converged_mean_latency(&records, 0.3),
                converged_at: records.iter().position(|r| r.converged),
                final_k1: records.last().map_or(1, |r| r.policy_l1),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_sweep_shapes() {
        let rows = ablation_cost_model();
        assert_eq!(rows.len(), 3);
        for (label, k_read, k_bal, k_write) in &rows {
            assert!(!label.is_empty());
            // More reads -> more aggressive compaction (never the reverse).
            assert!(
                k_read <= k_bal && k_bal <= k_write,
                "{label}: {k_read} {k_bal} {k_write}"
            );
        }
    }

    #[test]
    fn cache_ablation_runs_tiny() {
        let _serial = crate::real_time_test_guard();
        let scale = ExperimentScale {
            load_entries: 1500,
            mission_size: 100,
            missions: 4,
            ..ExperimentScale::tiny()
        };
        let rows = ablation_cache(&scale);
        assert_eq!(rows.len(), 6);
        for r in rows {
            assert!(r.tail_latency_ms > 0.0, "{}", r.label);
        }
    }
}
