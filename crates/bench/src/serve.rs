//! Concurrent-serving experiment (beyond the paper): the
//! [`ServingFrontend`](ruskey::frontend::ServingFrontend) under a
//! closed-loop multi-client YCSB-style workload.
//!
//! `repro serve` drives a durable 4-shard store with K ∈ {1, 4, 16}
//! closed-loop clients (each issues one request, waits for the reply,
//! issues the next) over disjoint key ranges, reporting real-time
//! throughput and p50/p99/p999 request latency. The verdict legs CI
//! greps as `serve_ok`:
//!
//! * **read-your-writes** — every client periodically rereads its own
//!   last acknowledged write mid-flight and the final store state
//!   matches every client's shadow model (zero violations);
//! * **cross-client group commit** — at 16 clients ≫ 4 shards the mean
//!   writes-per-commit-leg exceeds 1: concurrent clients' writes
//!   coalesced into shared fsyncs (at 1 client it cannot exceed 1);
//! * **crash durability** — a [`CrashPoint`] armed on one shard fires
//!   mid-serve; every write acknowledged before the crash must survive
//!   [`ShardedRusKey::recover`];
//! * **admission control** — a tight token bucket under hammering
//!   clients must reject (backpressure observed) while every
//!   *acknowledged* write stays durable and every *rejected* write
//!   stays unexecuted — a rejection never drops an acknowledged op.

use std::collections::HashMap;
use std::thread;
use std::time::Instant;

use bytes::Bytes;
use ruskey::db::RusKeyConfig;
use ruskey::frontend::{ServingClient, ServingConfig, ServingError};
use ruskey::runner::ExperimentScale;
use ruskey::sharded::{DurabilityConfig, ShardedRusKey};
use ruskey::tuner::NoOpTuner;
use ruskey_lsm::CrashPoint;
use ruskey_workload::{bulk_load_pairs, client_scripts, encode_key, OpMix, Operation};

use crate::percentile::{max_ns, percentile_ns};

/// One client-count configuration's serving measurement.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Closed-loop client threads.
    pub clients: usize,
    /// Shards (= shard workers serving).
    pub shards: usize,
    /// Requests admitted (client ops + mid-flight read-your-writes
    /// rereads).
    pub ops_total: u64,
    /// Writes acknowledged after a group-commit leg.
    pub acked_writes: u64,
    /// Times a client blocked on a full shard queue (queue-depth
    /// watermark backpressure).
    pub stalls: u64,
    /// Real throughput over the serving window (kops/s).
    pub throughput_kops: f64,
    /// Median request latency (real ns, measured at the client).
    pub p50_ns: u64,
    /// 99th-percentile request latency (real ns).
    pub p99_ns: u64,
    /// 99.9th-percentile request latency (real ns).
    pub p999_ns: u64,
    /// Slowest request (real ns).
    pub max_ns: u64,
    /// Mean writes per commit leg — cross-client group-commit
    /// coalescing; > 1 means concurrent clients shared fsyncs.
    pub mean_batch: f64,
    /// Mid-flight read-your-writes rereads performed.
    pub ryw_checks: u64,
    /// Rereads that saw anything but the client's own last write.
    pub ryw_violations: u64,
    /// Final-state keys that diverged from the clients' shadow models.
    pub final_mismatches: u64,
    /// Client requests that failed (should be zero without faults).
    pub client_errors: u64,
    /// Row verdict: zero violations, mismatches, and errors, and writes
    /// actually acknowledged.
    pub ok: bool,
}

/// The whole experiment: per-concurrency rows plus the crash-durability
/// and admission-control legs.
#[derive(Debug, Clone)]
pub struct ServeVerdict {
    /// One row per client count (same shard count throughout).
    pub rows: Vec<ServeRow>,
    /// Writes acknowledged before the mid-serve crash fired.
    pub crash_acked: u64,
    /// The crash leg held: the crash fired mid-serve and every
    /// acknowledged write survived recovery.
    pub crash_ok: bool,
    /// Requests the token bucket rejected in the admission leg.
    pub admission_rejections: u64,
    /// The admission leg held: rejections observed, every acknowledged
    /// write present, every rejected write absent.
    pub admission_ok: bool,
    /// The headline verdict CI greps: every row ok, coalescing observed
    /// at clients ≫ shards, crash and admission legs ok.
    pub ok: bool,
}

/// What one closed-loop client brought home.
struct ClientOutcome {
    latencies: Vec<u64>,
    /// The client's shadow model: key → expected final value (`None`
    /// after a delete). Disjoint key ranges make the union over clients
    /// a model of the whole store.
    shadow: HashMap<Bytes, Option<Bytes>>,
    ryw_checks: u64,
    ryw_violations: u64,
    errors: u64,
}

/// Runs one client's script against the frontend, closed-loop.
fn run_client(client: &ServingClient, script: &[Operation]) -> ClientOutcome {
    let mut out = ClientOutcome {
        latencies: Vec::with_capacity(script.len()),
        shadow: HashMap::new(),
        ryw_checks: 0,
        ryw_violations: 0,
        errors: 0,
    };
    let mut last_write: Option<Bytes> = None;
    for (i, op) in script.iter().enumerate() {
        let t0 = Instant::now();
        match op {
            Operation::Get { key } => {
                if client.get(key).is_err() {
                    out.errors += 1;
                }
            }
            Operation::Put { key, value } => {
                if client.put(key.clone(), value.clone()).is_ok() {
                    out.shadow.insert(key.clone(), Some(value.clone()));
                    last_write = Some(key.clone());
                } else {
                    out.errors += 1;
                }
            }
            Operation::Delete { key } => {
                if client.delete(key.clone()).is_ok() {
                    out.shadow.insert(key.clone(), None);
                    last_write = Some(key.clone());
                } else {
                    out.errors += 1;
                }
            }
            Operation::Scan { start, end, limit } => {
                if client.scan(start, end, *limit).is_err() {
                    out.errors += 1;
                }
            }
        }
        out.latencies.push(t0.elapsed().as_nanos() as u64);
        // Mid-flight read-your-writes: every 8th op, reread this
        // client's last acknowledged write — FIFO per-shard queues must
        // make it visible no matter what the other clients are doing.
        if i % 8 == 7 {
            if let Some(key) = &last_write {
                out.ryw_checks += 1;
                match client.get(key) {
                    Ok(v) => {
                        let expected = out.shadow.get(key).expect("shadowed write");
                        if v.as_deref() != expected.as_deref() {
                            out.ryw_violations += 1;
                        }
                    }
                    Err(_) => out.errors += 1,
                }
            }
        }
    }
    out
}

/// Runs one client-count configuration against a fresh durable store.
fn run_row(scale: &ExperimentScale, clients: usize, shards: usize) -> ServeRow {
    let dir = std::env::temp_dir().join(format!(
        "ruskey-serve-{}-{clients}c{shards}s",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let durability = DurabilityConfig::group_commit(&dir);
    let mut db = ShardedRusKey::try_with_tuner_durable(
        RusKeyConfig::scaled_default(),
        shards,
        scale.disk(),
        Box::new(NoOpTuner),
        &durability,
    )
    .expect("open durable store");
    db.bulk_load(bulk_load_pairs(
        scale.load_entries,
        scale.key_len,
        scale.value_len,
        scale.seed,
    ));
    let spec = scale.spec().with_mix(OpMix {
        lookup: 0.45,
        update: 0.45,
        delete: 0.05,
        scan: 0.05,
    });
    let scripts = client_scripts(
        &spec,
        clients,
        scale.mission_size,
        scale.seed.wrapping_add(7),
    );

    let frontend = db.serve(ServingConfig::default()).expect("start serving");
    let t0 = Instant::now();
    let outcomes: Vec<ClientOutcome> = thread::scope(|s| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                let client = frontend.client();
                s.spawn(move || run_client(&client, script))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    let metrics = db.finish_serving(frontend).expect("finish serving");

    // Final-state equivalence: the store (now back under direct control)
    // must match the union of the clients' shadow models.
    let mut final_mismatches = 0u64;
    for o in &outcomes {
        for (key, expected) in &o.shadow {
            if db.get(key).as_deref() != expected.as_deref() {
                final_mismatches += 1;
            }
        }
    }
    let mut latencies: Vec<u64> = outcomes.iter().flat_map(|o| o.latencies.clone()).collect();
    latencies.sort_unstable();
    let ryw_checks = outcomes.iter().map(|o| o.ryw_checks).sum();
    let ryw_violations = outcomes.iter().map(|o| o.ryw_violations).sum();
    let client_errors = outcomes.iter().map(|o| o.errors).sum();
    let _ = std::fs::remove_dir_all(&dir);
    let ok = ryw_violations == 0
        && final_mismatches == 0
        && client_errors == 0
        && metrics.acked_writes > 0;
    ServeRow {
        clients,
        shards,
        ops_total: metrics.requests(),
        acked_writes: metrics.acked_writes,
        stalls: metrics.stalls,
        throughput_kops: metrics.requests() as f64 / wall_s / 1e3,
        p50_ns: percentile_ns(&latencies, 0.50),
        p99_ns: percentile_ns(&latencies, 0.99),
        p999_ns: percentile_ns(&latencies, 0.999),
        max_ns: max_ns(&latencies),
        mean_batch: metrics.mean_batch_writes(),
        ryw_checks,
        ryw_violations,
        final_mismatches,
        client_errors,
        ok,
    }
}

/// The crash-durability leg: arm a WAL crash on shard 0, serve writes
/// from concurrent clients, and verify every *acknowledged* write
/// survives recovery. Returns `(acked_writes, ok)`.
fn crash_leg(scale: &ExperimentScale) -> (u64, bool) {
    const SHARDS: usize = 2;
    const CLIENTS: usize = 4;
    const WRITES_PER_CLIENT: u64 = 80;
    let dir = std::env::temp_dir().join(format!("ruskey-serve-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durability = DurabilityConfig::group_commit(&dir);
    let cfg = RusKeyConfig::scaled_default();
    let mut db = ShardedRusKey::try_with_tuner_durable(
        cfg.clone(),
        SHARDS,
        scale.disk(),
        Box::new(NoOpTuner),
        &durability,
    )
    .expect("open durable store");
    // Fire after 24 more shard-0 appends: mid-serve, well before the
    // clients run out of writes (shard 0 owns roughly half of them).
    db.shard_mut(0)
        .wal_mut()
        .expect("durable shard has a WAL")
        .arm_crash(CrashPoint::PostAppend, 24);

    let frontend = db
        .serve(ServingConfig {
            batch_ops: 8,
            ..ServingConfig::default()
        })
        .expect("start serving");
    let acked: Vec<(Bytes, Bytes)> = thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let client = frontend.client();
                s.spawn(move || {
                    let mut acked = Vec::new();
                    for i in 0..WRITES_PER_CLIENT {
                        let key = encode_key(c as u64 * 100_000 + i, 16);
                        let value = Bytes::from(format!("serve-crash-{c}-{i}"));
                        // Crashed/Stopped errors are the expected fate of
                        // shard-0 writes after the crash fires; only an
                        // Ok reply is an acknowledgement.
                        if client.put(key.clone(), value.clone()).is_ok() {
                            acked.push((key, value));
                        }
                    }
                    acked
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("crash-leg client panicked"))
            .collect()
    });
    let _ = db.finish_serving(frontend).expect("finish serving");
    let mut ok = db.crashed();
    drop(db);

    let mut rec =
        ShardedRusKey::recover(cfg, SHARDS, scale.disk(), Box::new(NoOpTuner), &durability)
            .expect("recover after mid-serve crash");
    ok &= !acked.is_empty();
    for (key, value) in &acked {
        ok &= rec.get(key).as_deref() == Some(value.as_ref());
    }
    let _ = std::fs::remove_dir_all(&dir);
    (acked.len() as u64, ok)
}

/// The admission-control leg: a tight token bucket under hammering
/// clients must reject requests, acknowledged writes must all land, and
/// rejected writes must never have executed. Returns
/// `(rejections, ok)`.
fn admission_leg(scale: &ExperimentScale) -> (u64, bool) {
    const SHARDS: usize = 2;
    const CLIENTS: usize = 4;
    const WRITES_PER_CLIENT: u64 = 200;
    let mut db = ShardedRusKey::untuned(RusKeyConfig::scaled_default(), SHARDS, scale.disk());
    let frontend = db
        .serve(ServingConfig {
            rate_limit_per_sec: 500,
            burst: 8,
            ..ServingConfig::default()
        })
        .expect("start serving");
    let (acked, rejected): (Vec<Bytes>, Vec<Bytes>) = thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let client = frontend.client();
                s.spawn(move || {
                    let mut acked = Vec::new();
                    let mut rejected = Vec::new();
                    for i in 0..WRITES_PER_CLIENT {
                        let key = encode_key(c as u64 * 100_000 + i, 16);
                        match client.put(key.clone(), Bytes::from_static(b"admitted")) {
                            Ok(()) => acked.push(key),
                            Err(ServingError::Rejected { .. }) => rejected.push(key),
                            Err(_) => {}
                        }
                    }
                    (acked, rejected)
                })
            })
            .collect();
        let mut all_acked = Vec::new();
        let mut all_rejected = Vec::new();
        for h in handles {
            let (a, r) = h.join().expect("admission-leg client panicked");
            all_acked.extend(a);
            all_rejected.extend(r);
        }
        (all_acked, all_rejected)
    });
    let metrics = db.finish_serving(frontend).expect("finish serving");
    let mut ok = !rejected.is_empty() && !acked.is_empty();
    ok &= metrics.rejections == rejected.len() as u64;
    // An acknowledged op is never dropped; a rejected op never executed.
    for key in &acked {
        ok &= db.get(key).is_some();
    }
    for key in &rejected {
        ok &= db.get(key).is_none();
    }
    (rejected.len() as u64, ok)
}

/// Runs the whole serving experiment: K ∈ {1, 4, 16} clients over a
/// 4-shard durable store, plus the crash-durability and
/// admission-control legs.
pub fn serve(scale: &ExperimentScale) -> ServeVerdict {
    const SHARDS: usize = 4;
    let rows: Vec<ServeRow> = [1usize, 4, 16]
        .iter()
        .map(|&clients| run_row(scale, clients, SHARDS))
        .collect();
    let (crash_acked, crash_ok) = crash_leg(scale);
    let (admission_rejections, admission_ok) = admission_leg(scale);
    // Cross-client coalescing: at clients ≫ shards the mean commit batch
    // must exceed a single write — fsync latency under concurrent
    // closed-loop clients forms multi-write batches.
    let coalesced = rows
        .iter()
        .filter(|r| r.clients > r.shards)
        .all(|r| r.mean_batch > 1.0);
    let ok = rows.iter().all(|r| r.ok) && coalesced && crash_ok && admission_ok;
    ServeVerdict {
        rows,
        crash_acked,
        crash_ok,
        admission_rejections,
        admission_ok,
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            load_entries: 1200,
            mission_size: 150,
            missions: 3,
            ..ExperimentScale::tiny()
        }
    }

    #[test]
    fn serve_verdict_holds_at_tiny_scale() {
        let _serial = crate::real_time_test_guard();
        let v = serve(&tiny());
        assert!(v.crash_ok, "acknowledged writes must survive the crash");
        assert!(v.admission_ok, "admission leg must hold");
        assert!(v.admission_rejections > 0, "bucket must reject");
        assert!(v.crash_acked > 0);
        for r in &v.rows {
            assert!(r.ok, "row at {} clients failed", r.clients);
            assert_eq!(r.ryw_violations, 0);
            assert_eq!(r.final_mismatches, 0);
            assert!(r.p999_ns >= r.p99_ns && r.p99_ns >= r.p50_ns);
        }
        let crowded = v.rows.iter().find(|r| r.clients == 16).unwrap();
        assert!(
            crowded.mean_batch > 1.0,
            "16 clients over 4 shards must coalesce writes (got {})",
            crowded.mean_batch
        );
        assert!(v.ok, "serve_ok must hold");
    }
}
