//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `figN`/`tableN` function runs the corresponding experiment at a
//! configurable scale and returns structured results; the `repro` binary
//! prints them as aligned tables/CSV, and the Criterion benches execute
//! reduced versions of the same code paths. See EXPERIMENTS.md for the
//! paper-vs-measured record.

#![warn(missing_docs)]

pub mod ablations;
pub mod compaction;
pub mod durability;
pub mod experiments;
pub mod output;
pub mod persistence;
pub mod read_path;
pub mod scaling;

pub use ablations::*;
pub use compaction::*;
pub use durability::*;
pub use experiments::*;
pub use output::*;
pub use persistence::*;
pub use read_path::*;
pub use scaling::*;
