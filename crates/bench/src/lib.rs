//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `figN`/`tableN` function runs the corresponding experiment at a
//! configurable scale and returns structured results; the `repro` binary
//! prints them as aligned tables/CSV, and the Criterion benches execute
//! reduced versions of the same code paths. See EXPERIMENTS.md for the
//! paper-vs-measured record.

#![warn(missing_docs)]

pub mod ablations;
pub mod compaction;
pub mod durability;
pub mod experiments;
pub mod output;
pub mod percentile;
pub mod persistence;
pub mod read_path;
pub mod scaling;
pub mod serve;
pub mod tuning;

/// Serializes the unit tests that measure *real* time or spawn client
/// threads (read-path latency ordering, the serving experiment): run
/// concurrently in one test process they perturb each other's wall-clock
/// readings. Poisoning is ignored — a panicked holder already failed its
/// own test.
#[cfg(test)]
pub(crate) static REAL_TIME_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
pub(crate) fn real_time_test_guard() -> std::sync::MutexGuard<'static, ()> {
    REAL_TIME_TEST_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

pub use ablations::*;
pub use compaction::*;
pub use durability::*;
pub use experiments::*;
pub use output::*;
pub use percentile::*;
pub use persistence::*;
pub use read_path::*;
pub use scaling::*;
pub use serve::*;
pub use tuning::*;
