//! Shard-count scaling experiment (beyond the paper): throughput of the
//! sharded engine core versus number of shards on a mixed workload.
//!
//! This is the repo's performance trajectory anchor: `repro shard_scaling`
//! prints the table and writes it as JSON so successive PRs can compare
//! wall-clock throughput of the parallel engine.

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use ruskey::db::RusKeyConfig;
use ruskey::runner::ExperimentScale;
use ruskey::sharded::{PersistenceConfig, ShardedRusKey};
use ruskey::tuner::NoOpTuner;
use ruskey_workload::{bulk_load_pairs, encode_key, OpGenerator, OpMix, Operation};

/// One shard count's measurement.
#[derive(Debug, Clone)]
pub struct ShardScalingRow {
    /// Storage backend the row ran on: `"simulated"` (one shared
    /// in-memory device) or `"file"` (one real `FileDisk` directory per
    /// shard — independent file handles, so the wall-clock column shows
    /// real I/O scaling instead of a serialized device).
    pub backend: &'static str,
    /// Number of shards.
    pub shards: usize,
    /// Missions executed.
    pub missions: usize,
    /// Total operations executed.
    pub ops_total: u64,
    /// Wall-clock seconds spent executing missions.
    pub wall_s: f64,
    /// Wall-clock throughput in kops/s.
    pub kops_per_s: f64,
    /// Mean virtual **wall** time per operation (ns): per mission, the
    /// max over the shard time domains' deltas — the simulator's
    /// deterministic latency metric.
    pub virtual_wall_ns_per_op: f64,
    /// Mean virtual **device-busy** time per operation (ns): per mission,
    /// the sum over the shard time domains' deltas — the total virtual
    /// work placed on the shared device.
    pub virtual_busy_ns_per_op: f64,
    /// Mean real wall-clock time per mission (µs) — the spawn-amortization
    /// column: with the persistent worker pool this carries no per-mission
    /// thread spawn/teardown, only dispatch and execution.
    pub real_us_per_mission: f64,
    /// Real wall-clock ns per point lookup over a post-mission sample
    /// sweep — the read-path raw-speed column this PR trajectory tracks:
    /// on the file backend it reflects the fd cache, positional reads,
    /// and block cache directly.
    pub real_get_ns_per_op: f64,
    /// Block-cache hit ratio over the missions (0.0 on the simulated
    /// backend, which serves without a cache).
    pub cache_hit_ratio: f64,
    /// Maximum distinct OS worker threads observed in one mission.
    pub parallelism: usize,
}

/// Times a stride sample of point lookups against the live store,
/// returning real ns per get.
fn timed_get_sweep(db: &mut ShardedRusKey, scale: &ExperimentScale) -> f64 {
    let sample: Vec<Bytes> = (0..scale.load_entries)
        .step_by((scale.load_entries / 512).max(1) as usize)
        .map(|i| encode_key(i, scale.key_len))
        .collect();
    let t0 = Instant::now();
    for k in &sample {
        db.get(k);
    }
    t0.elapsed().as_nanos() as f64 / sample.len() as f64
}

/// Runs the balanced mixed workload at each shard count and measures
/// wall-clock throughput plus virtual cost. Workload generation happens
/// up front so only engine time is measured.
pub fn shard_scaling(scale: &ExperimentScale, shard_counts: &[usize]) -> Vec<ShardScalingRow> {
    shard_counts
        .iter()
        .map(|&n| {
            let disk = scale.disk();
            let mut db =
                ShardedRusKey::untuned(RusKeyConfig::scaled_default(), n, Arc::clone(&disk));
            db.bulk_load(bulk_load_pairs(
                scale.load_entries,
                scale.key_len,
                scale.value_len,
                scale.seed,
            ));
            let spec = scale.spec().with_mix(OpMix::balanced());
            let mut g = OpGenerator::new(spec, scale.seed.wrapping_add(1));
            let missions: Vec<Vec<Operation>> = (0..scale.missions)
                .map(|_| g.take_ops(scale.mission_size))
                .collect();

            let mut ops_total = 0u64;
            let mut wall_ns = 0u64;
            let mut busy_ns = 0u64;
            let mut real_ns = 0u64;
            let mut parallelism = 0usize;
            let t0 = Instant::now();
            for ops in &missions {
                let device_ns_before = disk.clock().now_ns();
                let report = db.run_mission(ops);
                // Attribution invariants, checked on every mission so the
                // CI smoke run fails loudly instead of skewing benchmark
                // JSON. The shared device clock receives every charge any
                // shard domain makes, so the mission's device-busy time
                // (sum of the per-domain deltas) must equal the device
                // clock's own delta exactly — a broken per-shard mirroring
                // (double-charged or dropped work) breaks this equality.
                let device_delta = disk.clock().now_ns() - device_ns_before;
                assert_eq!(
                    report.device_busy_ns, device_delta,
                    "sum of shard-domain deltas diverged from the device \
                     clock delta at {n} shards"
                );
                // And wall (max over domains) can never exceed busy (sum).
                assert!(
                    report.end_to_end_ns <= report.device_busy_ns,
                    "wall {} ns exceeds device-busy {} ns at {n} shards",
                    report.end_to_end_ns,
                    report.device_busy_ns,
                );
                ops_total += report.ops;
                wall_ns += report.end_to_end_ns;
                busy_ns += report.device_busy_ns;
                real_ns += report.real_process_ns;
                parallelism = parallelism.max(db.last_parallelism());
            }
            let wall_s = t0.elapsed().as_secs_f64();
            let real_get_ns_per_op = timed_get_sweep(&mut db, scale);
            ShardScalingRow {
                backend: "simulated",
                shards: n,
                missions: scale.missions,
                ops_total,
                wall_s,
                kops_per_s: ops_total as f64 / wall_s.max(1e-9) / 1e3,
                virtual_wall_ns_per_op: wall_ns as f64 / ops_total.max(1) as f64,
                virtual_busy_ns_per_op: busy_ns as f64 / ops_total.max(1) as f64,
                real_us_per_mission: real_ns as f64 / scale.missions.max(1) as f64 / 1e3,
                real_get_ns_per_op,
                // The simulated backend serves without a cache, keeping
                // its virtual accounting bit-identical across PRs.
                cache_hit_ratio: 0.0,
                parallelism,
            }
        })
        .collect()
}

/// The `FileDisk` variant of [`shard_scaling`]: a fully persistent store
/// with one real-file directory (independent file handles + manifest +
/// WAL) per shard. Shards never serialize against each other on a shared
/// device handle, so `real_us_per_mission` shows genuine wall-time
/// scaling on the real-file path — the column this experiment exists for.
/// Virtual accounting still applies (per-shard `FileDisk` clocks are
/// per-shard time domains), so wall ≤ busy is asserted per mission.
pub fn shard_scaling_filedisk(
    scale: &ExperimentScale,
    shard_counts: &[usize],
) -> Vec<ShardScalingRow> {
    shard_counts
        .iter()
        .map(|&n| {
            let root = std::env::temp_dir().join(format!(
                "ruskey-scaling-file-{}-{n}shards",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&root);
            let mut pcfg = PersistenceConfig::new(&root);
            pcfg.page_size = scale.page_size;
            pcfg.cost = scale.cost;
            let mut db = ShardedRusKey::try_with_tuner_persistent(
                RusKeyConfig::scaled_default(),
                n,
                Box::new(NoOpTuner),
                &pcfg,
            )
            .expect("open persistent store");
            db.bulk_load(bulk_load_pairs(
                scale.load_entries,
                scale.key_len,
                scale.value_len,
                scale.seed,
            ));
            let spec = scale.spec().with_mix(OpMix::balanced());
            let mut g = OpGenerator::new(spec, scale.seed.wrapping_add(1));
            let missions: Vec<Vec<Operation>> = (0..scale.missions)
                .map(|_| g.take_ops(scale.mission_size))
                .collect();

            let mut ops_total = 0u64;
            let mut wall_ns = 0u64;
            let mut busy_ns = 0u64;
            let mut real_ns = 0u64;
            let mut cache_hits = 0u64;
            let mut cache_misses = 0u64;
            let mut parallelism = 0usize;
            let t0 = Instant::now();
            for ops in &missions {
                let report = db.run_mission(ops);
                assert!(
                    report.end_to_end_ns <= report.device_busy_ns,
                    "wall {} ns exceeds device-busy {} ns at {n} file-backed shards",
                    report.end_to_end_ns,
                    report.device_busy_ns,
                );
                ops_total += report.ops;
                wall_ns += report.end_to_end_ns;
                busy_ns += report.device_busy_ns;
                real_ns += report.real_process_ns;
                cache_hits += report.cache_hits;
                cache_misses += report.cache_misses;
                parallelism = parallelism.max(db.last_parallelism());
            }
            let wall_s = t0.elapsed().as_secs_f64();
            let real_get_ns_per_op = timed_get_sweep(&mut db, scale);
            drop(db);
            let _ = std::fs::remove_dir_all(&root);
            ShardScalingRow {
                backend: "file",
                shards: n,
                missions: scale.missions,
                ops_total,
                wall_s,
                kops_per_s: ops_total as f64 / wall_s.max(1e-9) / 1e3,
                virtual_wall_ns_per_op: wall_ns as f64 / ops_total.max(1) as f64,
                virtual_busy_ns_per_op: busy_ns as f64 / ops_total.max(1) as f64,
                real_us_per_mission: real_ns as f64 / scale.missions.max(1) as f64 / 1e3,
                real_get_ns_per_op,
                cache_hit_ratio: {
                    let traffic = cache_hits + cache_misses;
                    if traffic == 0 {
                        0.0
                    } else {
                        cache_hits as f64 / traffic as f64
                    }
                },
                parallelism,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rows_cover_every_shard_count() {
        let _serial = crate::real_time_test_guard();
        let scale = ExperimentScale {
            load_entries: 1500,
            mission_size: 150,
            missions: 6,
            ..ExperimentScale::tiny()
        };
        let rows = shard_scaling(&scale, &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].shards, 1);
        assert_eq!(rows[0].parallelism, 1);
        assert_eq!(rows[1].shards, 2);
        assert_eq!(
            rows[1].parallelism, 2,
            "two shards must use two worker threads"
        );
        // Same workload at every shard count.
        assert_eq!(rows[0].ops_total, rows[1].ops_total);
        assert!(rows
            .iter()
            .all(|r| r.ops_total == (scale.missions * scale.mission_size) as u64));
        assert!(rows
            .iter()
            .all(|r| r.kops_per_s > 0.0 && r.virtual_wall_ns_per_op > 0.0));
        assert!(
            rows.iter().all(|r| r.real_us_per_mission > 0.0),
            "spawn-amortization column must be populated"
        );
        assert!(
            rows.iter().all(|r| r.real_get_ns_per_op > 0.0),
            "read-path column must be populated"
        );
        assert!(
            rows.iter().all(|r| r.cache_hit_ratio == 0.0),
            "the simulated backend serves without a cache"
        );
        // Wall never exceeds busy; they coincide at one shard.
        for r in &rows {
            assert!(r.virtual_wall_ns_per_op <= r.virtual_busy_ns_per_op + 1e-9);
        }
        assert!(
            (rows[0].virtual_wall_ns_per_op - rows[0].virtual_busy_ns_per_op).abs() < 1e-9,
            "one shard: wall and busy compositions must agree"
        );
        assert!(rows.iter().all(|r| r.backend == "simulated"));
    }

    #[test]
    fn filedisk_rows_exercise_per_shard_handles() {
        let _serial = crate::real_time_test_guard();
        let scale = ExperimentScale {
            load_entries: 800,
            mission_size: 80,
            missions: 3,
            page_size: 512,
            ..ExperimentScale::tiny()
        };
        let rows = shard_scaling_filedisk(&scale, &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.backend == "file"));
        assert_eq!(rows[0].parallelism, 1);
        assert_eq!(
            rows[1].parallelism, 2,
            "two file-backed shards must use two worker threads"
        );
        // Same workload at every shard count, real wall time populated.
        assert_eq!(rows[0].ops_total, rows[1].ops_total);
        assert!(rows.iter().all(|r| r.real_us_per_mission > 0.0));
        assert!(rows.iter().all(|r| r.real_get_ns_per_op > 0.0));
        assert!(
            rows.iter().all(|r| r.cache_hit_ratio > 0.0),
            "file-backed shards serve through the block cache by default"
        );
        for r in &rows {
            assert!(r.virtual_wall_ns_per_op <= r.virtual_busy_ns_per_op + 1e-9);
        }
    }
}
