//! `repro` — regenerates every table and figure of the RusKey paper.
//!
//! ```text
//! repro <experiment> [--scale small|full] [--csv DIR] [--json PATH]
//!
//! experiments:
//!   table2  fig6  fig7  table3  fig8  fig9  fig10  fig11  fig12  fig13
//!   bruteforce  shard_scaling  durability  persistence  read_path
//!   compaction  serve  tuning  all  ablations  lab
//! ```
//!
//! Results print as aligned text tables; `--csv DIR` additionally writes
//! the per-mission series as CSV files for plotting. The `shard_scaling`
//! experiment (also part of `all`) writes its rows as JSON — to `--json
//! PATH` when given, else to `shard_scaling.json` — so the engine's
//! throughput trajectory is machine-comparable across PRs.

use std::io::Write;

use ruskey::runner::ExperimentScale;
use ruskey_bench::*;

struct Args {
    experiment: String,
    scale: ExperimentScale,
    csv_dir: Option<String>,
    json_path: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut scale = repro_scale();
    let mut csv_dir = None;
    let mut json_path = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => {
                i += 1;
                json_path = argv.get(i).cloned();
            }
            "--scale" => {
                i += 1;
                scale = match argv.get(i).map(String::as_str) {
                    Some("full") => full_scale(),
                    Some("small") | None => repro_scale(),
                    Some("tiny") => ExperimentScale::tiny(),
                    Some(other) => {
                        eprintln!("unknown scale '{other}', using small");
                        repro_scale()
                    }
                };
            }
            "--csv" => {
                i += 1;
                csv_dir = argv.get(i).cloned();
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => eprintln!("ignoring unknown flag {other}"),
        }
        i += 1;
    }
    Args {
        experiment,
        scale,
        csv_dir,
        json_path,
    }
}

/// The default reproduction scale (a few minutes for `all`).
fn repro_scale() -> ExperimentScale {
    ExperimentScale {
        load_entries: 50_000,
        mission_size: 1000,
        missions: 300,
        ..ExperimentScale::small()
    }
}

/// A larger scale closer to the paper's proportions (tens of minutes).
fn full_scale() -> ExperimentScale {
    ExperimentScale {
        load_entries: 200_000,
        mission_size: 2000,
        missions: 600,
        ..ExperimentScale::small()
    }
}

fn write_csv(dir: &Option<String>, name: &str, content: &str) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/{name}.csv");
        let mut f = std::fs::File::create(&path).expect("create csv");
        f.write_all(content.as_bytes()).expect("write csv");
        println!("  [csv] {path}");
    }
}

fn run_table2(scale: &ExperimentScale) {
    println!("== Table 2: transition costs and delays ==");
    println!("(analytic case study: T=10, B=4096, E=1024, C=1024000, f=0.01, K=5->4, x=gamma=1/2)");
    println!(
        "{:<12}{:>16}{:>26}{:>26}",
        "strategy", "analytic I/Os", "measured immediate pages", "measured additional pages"
    );
    for row in table2(scale) {
        println!(
            "{:<12}{:>16.2}{:>26}{:>26}",
            row.strategy,
            row.analytic_ios,
            row.measured_immediate_pages,
            row.measured_additional_pages
        );
    }
    println!();
}

fn run_comparisons(name: &str, comparisons: &[Comparison], csv: &Option<String>) {
    println!("== {name} ==");
    for c in comparisons {
        print!("{}", comparison_summary(c, 0.4));
        write_csv(
            csv,
            &format!("{name}_{}", c.workload),
            &series_csv(&c.series),
        );
        // Policy trace of RusKey (the paper's top subplots).
        if let Some(rk) = c.series.iter().find(|s| s.method == "RusKey") {
            let trace: Vec<u32> = rk
                .records
                .iter()
                .step_by((rk.records.len() / 20).max(1))
                .map(|r| r.policy_l1)
                .collect();
            println!("  RusKey K(L1) trace: {trace:?}");
        }
    }
    println!();
}

fn run_fig7_table3(scale: &ExperimentScale, csv: &Option<String>) {
    println!("== Fig 7: dynamic workload (5 sessions) + Table 3 ranking ==");
    let series = fig7(scale);
    write_csv(csv, "fig7", &series_csv(&series));
    if let Some(rk) = series.iter().find(|s| s.method == "RusKey") {
        let trace: Vec<(usize, u32)> = rk
            .records
            .iter()
            .step_by((rk.records.len() / 25).max(1))
            .map(|r| (r.session, r.policy_l1))
            .collect();
        println!("  RusKey (session, K(L1)) trace: {trace:?}");
    }
    let table = ranking_from_series(&series, FIG7_SESSIONS.len());
    println!("{}", ranking_table(&table, &FIG7_SESSIONS));
    println!();
}

fn run_fig9(scale: &ExperimentScale) {
    println!("== Fig 9: per-level policies vs Lazy-Leveling (Monkey, balanced) ==");
    for r in fig9(scale) {
        println!(
            "  {:<16} end-to-end {:.4} ms/op  policies {:?}",
            r.method, r.end_to_end_ms_per_op, r.policies
        );
        let lv: Vec<String> = r
            .per_level_ms_per_op
            .iter()
            .enumerate()
            .map(|(i, v)| format!("L{}={:.4}", i + 1, v))
            .collect();
        println!("    per-level ms/op: {}", lv.join("  "));
    }
    println!();
}

fn run_fig10(scale: &ExperimentScale, csv: &Option<String>) {
    println!("== Fig 10: transition methods micro-benchmark (K=1 -> K=10 at midpoint) ==");
    let series = fig10(scale);
    write_csv(csv, "fig10", &series_csv(&series));
    let half = scale.missions / 2;
    println!(
        "{:<12}{:>22}{:>22}{:>20}{:>16}",
        "strategy",
        "peak write lat (s)",
        "mean write after (s)",
        "mean read after (s)",
        "total (s)"
    );
    for s in &series {
        let after: Vec<_> = s.records.iter().filter(|r| r.mission >= half).collect();
        let peak = after.iter().map(|r| r.write_latency_s).fold(0.0, f64::max);
        let mw = after.iter().map(|r| r.write_latency_s).sum::<f64>() / after.len() as f64;
        let mr = after.iter().map(|r| r.read_latency_s).sum::<f64>() / after.len() as f64;
        let total: f64 = s
            .records
            .iter()
            .map(|r| r.write_latency_s + r.read_latency_s)
            .sum();
        println!(
            "{:<12}{:>22.4}{:>22.4}{:>20.4}{:>16.2}",
            s.method, peak, mw, mr, total
        );
    }
    println!("(paper: end-to-end 51s greedy / 44s lazy / 40s flexible; shapes should match)");
    println!();
}

fn run_fig12(scale: &ExperimentScale, csv: &Option<String>) {
    println!("== Fig 12: greedy threshold heuristics vs RusKey ==");
    let series = fig12(scale);
    write_csv(csv, "fig12", &series_csv(&series));
    let table = ranking_from_series(&series, FIG7_SESSIONS.len());
    println!("{}", ranking_table(&table, &FIG7_SESSIONS));
    println!();
}

fn run_fig13(scale: &ExperimentScale) {
    println!("== Fig 13: model update time vs LSM time per mission ==");
    println!(
        "{:<16}{:>18}{:>16}{:>18}{:>12}{:>20}",
        "workload",
        "LSM virtual (s)",
        "LSM real (s)",
        "model real (s)",
        "model/LSM",
        "@50k-op missions"
    );
    for r in fig13(scale) {
        println!(
            "{:<16}{:>18.4}{:>16.4}{:>18.6}{:>11.2}%{:>19.3}%",
            r.label,
            r.lsm_virtual_s,
            r.lsm_real_s,
            r.model_real_s,
            100.0 * r.ratio_measured(),
            100.0 * r.ratio_at_paper_scale(),
        );
    }
    println!(
        "(the model update is a constant per mission; at the paper's 50 000-op missions its share"
    );
    println!(" drops to the last column — the paper reports <= 1%)");
    println!();
}

fn run_ablations(scale: &ExperimentScale) {
    println!("== Ablation: DDPG vs DQN as Lerp's learner ==");
    for (workload, rows) in ablation_learner(scale) {
        println!("  {workload}:");
        for r in rows {
            println!(
                "    {:<14} tail {:.4} ms/op, converged at {:<8} final K(L1)={}",
                r.label,
                r.tail_latency_ms,
                r.converged_at.map_or("never".into(), |m| m.to_string()),
                r.final_k1
            );
        }
    }
    println!();
    println!("== Ablation: block cache vs fixed policies (balanced workload) ==");
    for r in ablation_cache(scale) {
        println!("  {:<22} {:.4} ms/op", r.label, r.tail_latency_ms);
    }
    println!();
    println!("== Ablation: white-box K* across device cost models ==");
    println!(
        "  {:<12}{:>14}{:>14}{:>14}",
        "device", "K*(γ=0.9)", "K*(γ=0.5)", "K*(γ=0.1)"
    );
    for (label, kr, kb, kw) in ablation_cost_model() {
        println!("  {label:<12}{kr:>14}{kb:>14}{kw:>14}");
    }
    println!();
    println!("== Ablation: reward mix α (write-heavy workload) ==");
    for r in ablation_alpha(scale) {
        println!(
            "  {:<14} tail {:.4} ms/op, converged at {:<8} final K(L1)={}",
            r.label,
            r.tail_latency_ms,
            r.converged_at.map_or("never".into(), |m| m.to_string()),
            r.final_k1
        );
    }
    println!();
}

fn print_scaling_rows(rows: &[ShardScalingRow]) {
    println!(
        "{:<12}{:<8}{:>12}{:>14}{:>20}{:>20}{:>16}{:>14}{:>11}{:>10}",
        "backend",
        "shards",
        "wall (s)",
        "kops/s",
        "v-wall ns/op (max)",
        "v-busy ns/op (sum)",
        "real µs/mission",
        "get ns/op",
        "hit ratio",
        "threads"
    );
    for r in rows {
        println!(
            "{:<12}{:<8}{:>12.3}{:>14.1}{:>20.1}{:>20.1}{:>16.1}{:>14.1}{:>11.4}{:>10}",
            r.backend,
            r.shards,
            r.wall_s,
            r.kops_per_s,
            r.virtual_wall_ns_per_op,
            r.virtual_busy_ns_per_op,
            r.real_us_per_mission,
            r.real_get_ns_per_op,
            r.cache_hit_ratio,
            r.parallelism
        );
    }
}

fn run_shard_scaling(scale: &ExperimentScale, scale_label: &str, json_path: &Option<String>) {
    println!("== Shard scaling: throughput vs shard count (balanced workload) ==");
    let mut rows = shard_scaling(scale, &[1, 2, 4, 8]);
    // The real-file variant: one FileDisk directory (independent file
    // handles + manifest + WAL) per shard, so real wall time scales with
    // the shard count instead of serializing on one device handle.
    rows.extend(shard_scaling_filedisk(scale, &[1, 2, 4]));
    print_scaling_rows(&rows);
    let path = json_path
        .clone()
        .unwrap_or_else(|| "shard_scaling.json".to_string());
    let json = shard_scaling_json(scale_label, &rows);
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json] {path}"),
        Err(e) => eprintln!("  [json] could not write {path}: {e}"),
    }
    println!();
}

fn run_persistence(scale: &ExperimentScale, scale_label: &str, json_path: &Option<String>) {
    println!("== Persistence: manifest + on-disk run recovery over FileDisk ==");
    let rows = persistence(scale, &[1, 2, 4]);
    println!(
        "{:<8}{:>12}{:>10}{:>16}{:>16}{:>15}{:>14}{:>8}{:>10}{:>10}{:>9}{:>10}",
        "shards",
        "ops",
        "flushes",
        "manifest edits",
        "runs recovered",
        "replayed tail",
        "checked keys",
        "ok",
        "ext sync",
        "dir sync",
        "orphans",
        "power ok"
    );
    for r in &rows {
        println!(
            "{:<8}{:>12}{:>10}{:>16}{:>16}{:>15}{:>14}{:>8}{:>10}{:>10}{:>9}{:>10}",
            r.shards,
            r.ops_total,
            r.flushes,
            r.manifest_edits,
            r.runs_recovered,
            r.replayed_tail,
            r.checked_keys,
            r.ok,
            r.extent_syncs,
            r.dir_syncs,
            r.orphans_collected,
            r.power_ok
        );
    }
    let path = json_path
        .clone()
        .unwrap_or_else(|| "persistence.json".to_string());
    let json = persistence_json(scale_label, &rows);
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json] {path}"),
        Err(e) => eprintln!("  [json] could not write {path}: {e}"),
    }
    println!();
}

fn run_durability(scale: &ExperimentScale, scale_label: &str, json_path: &Option<String>) {
    println!("== Durability: WAL + cross-shard group commit ==");
    let rows = durability(scale, &[1, 2, 4]);
    println!(
        "{:<8}{:>12}{:>14}{:>12}{:>12}{:>12}{:>22}{:>22}{:>8}",
        "shards",
        "acked ops",
        "synced ops",
        "appends",
        "fsyncs",
        "batch",
        "commit ns (max)",
        "commit ns (seq sum)",
        "ok"
    );
    for r in &rows {
        println!(
            "{:<8}{:>12}{:>14}{:>12}{:>12}{:>12.1}{:>22.1}{:>22.1}{:>8}",
            r.shards,
            r.acknowledged_ops,
            r.synced_ops,
            r.wal_appends,
            r.wal_syncs,
            r.mean_batch,
            r.commit_ns_per_mission,
            r.commit_busy_ns_per_mission,
            r.ok
        );
    }
    let path = json_path
        .clone()
        .unwrap_or_else(|| "durability.json".to_string());
    let json = durability_json(scale_label, &rows);
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json] {path}"),
        Err(e) => eprintln!("  [json] could not write {path}: {e}"),
    }
    println!();
}

fn run_read_path(scale: &ExperimentScale, scale_label: &str, json_path: &Option<String>) {
    println!("== Read path: real ns/op through cache + FileDisk + bound fast paths ==");
    let rows = read_path(scale);
    println!(
        "{:<10}{:>10}{:>14}{:>14}{:>16}{:>12}{:>12}{:>11}{:>8}{:>8}{:>8}",
        "variant",
        "entries",
        "hot ns/op",
        "cold ns/op",
        "missing ns/op",
        "hits",
        "misses",
        "hit ratio",
        "fds",
        "grows",
        "ok"
    );
    for r in &rows {
        println!(
            "{:<10}{:>10}{:>14.1}{:>14.1}{:>16.1}{:>12}{:>12}{:>11.4}{:>8}{:>8}{:>8}",
            r.variant,
            r.entries,
            r.hot_ns_per_op,
            r.cold_ns_per_op,
            r.missing_ns_per_op,
            r.cache_hits,
            r.cache_misses,
            r.cache_hit_ratio,
            r.fds_opened,
            r.buffer_grows,
            r.ok
        );
    }
    let path = json_path
        .clone()
        .unwrap_or_else(|| "read_path.json".to_string());
    let json = read_path_json(scale_label, &rows);
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json] {path}"),
        Err(e) => eprintln!("  [json] could not write {path}: {e}"),
    }
    println!();
}

fn run_compaction(scale: &ExperimentScale, scale_label: &str, json_path: &Option<String>) {
    println!("== Compaction: per-op virtual latency, structural work inline vs background ==");
    let rows = compaction(scale);
    println!(
        "{:<12}{:>10}{:>12}{:>12}{:>14}{:>10}{:>10}{:>14}{:>14}{:>10}{:>8}",
        "variant",
        "ops",
        "p50 ns",
        "p99 ns",
        "max ns",
        "flushes",
        "bg steps",
        "stall ns",
        "pending B",
        "checks",
        "ok"
    );
    for r in &rows {
        println!(
            "{:<12}{:>10}{:>12}{:>12}{:>14}{:>10}{:>10}{:>14}{:>14}{:>10}{:>8}",
            r.variant,
            r.ops,
            r.p50_ns,
            r.p99_ns,
            r.max_ns,
            r.flushes,
            r.bg_compactions,
            r.stall_ns,
            r.pending_compaction_bytes,
            r.equivalence_checks,
            r.ok
        );
    }
    let path = json_path
        .clone()
        .unwrap_or_else(|| "compaction.json".to_string());
    let json = compaction_json(scale_label, &rows);
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json] {path}"),
        Err(e) => eprintln!("  [json] could not write {path}: {e}"),
    }
    println!();
}

fn run_serve(scale: &ExperimentScale, scale_label: &str, json_path: &Option<String>) {
    println!("== Serving: concurrent closed-loop clients over the shard workers ==");
    let v = serve(scale);
    println!(
        "{:<9}{:<8}{:>10}{:>10}{:>8}{:>12}{:>12}{:>12}{:>12}{:>8}{:>8}{:>8}",
        "clients",
        "shards",
        "ops",
        "acked",
        "stalls",
        "kops/s",
        "p50 ns",
        "p99 ns",
        "p999 ns",
        "batch",
        "ryw",
        "ok"
    );
    for r in &v.rows {
        println!(
            "{:<9}{:<8}{:>10}{:>10}{:>8}{:>12.1}{:>12}{:>12}{:>12}{:>8.2}{:>8}{:>8}",
            r.clients,
            r.shards,
            r.ops_total,
            r.acked_writes,
            r.stalls,
            r.throughput_kops,
            r.p50_ns,
            r.p99_ns,
            r.p999_ns,
            r.mean_batch,
            r.ryw_checks,
            r.ok
        );
    }
    println!(
        "  crash leg: acked={} ok={}   admission leg: rejections={} ok={}   serve_ok={}",
        v.crash_acked, v.crash_ok, v.admission_rejections, v.admission_ok, v.ok
    );
    let path = json_path
        .clone()
        .unwrap_or_else(|| "serve.json".to_string());
    let json = serve_json(scale_label, &v);
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json] {path}"),
        Err(e) => eprintln!("  [json] could not write {path}: {e}"),
    }
    println!();
}

fn run_tuning(scale: &ExperimentScale, scale_label: &str, json_path: &Option<String>) {
    println!("== Tuning: per-shard vs global Lerp + hot-shard mitigation ==");
    let v = tuning(scale);
    println!(
        "{:<10}{:<11}{:<8}{:>10}{:>12}{:>18}{:>10}{:>18}{:>10}",
        "workload",
        "strategy",
        "shards",
        "missions",
        "ops",
        "tail ns/op",
        "tuned",
        "final K(L1)",
        "distinct"
    );
    for r in &v.rows {
        let k1: Vec<String> = r.final_k1.iter().map(|k| k.to_string()).collect();
        println!(
            "{:<10}{:<11}{:<8}{:>10}{:>12}{:>18.1}{:>10}{:>18}{:>10}",
            r.workload,
            r.strategy,
            r.shards,
            r.missions,
            r.ops_total,
            r.tail_ns_per_op,
            r.tuned_missions,
            format!("[{}]", k1.join(",")),
            r.distinct_policies
        );
    }
    println!(
        "{:<12}{:>16}{:>16}{:>16}{:>14}{:>12}",
        "mitigation", "mean imbal", "peak imbal", "final imbal", "rebalances", "rehomed"
    );
    for r in &v.mitigation {
        println!(
            "{:<12}{:>16.3}{:>16.3}{:>16.3}{:>14}{:>12}",
            if r.balanced { "armed" } else { "disarmed" },
            r.mean_imbalance,
            r.peak_imbalance,
            r.final_imbalance,
            r.rebalances,
            r.rehomed_keys
        );
    }
    println!(
        "  parity_ok={} (uniform ratio {:.3})   skew_ok={}   mitigation_ok={}   tuned_ok={}   tuning_ok={}",
        v.parity_ok, v.uniform_ratio, v.skew_ok, v.mitigation_ok, v.tuned_ok, v.ok
    );
    let path = json_path
        .clone()
        .unwrap_or_else(|| "tuning.json".to_string());
    let json = tuning_json(scale_label, &v);
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json] {path}"),
        Err(e) => eprintln!("  [json] could not write {path}: {e}"),
    }
    println!();
}

fn run_bruteforce(scale: &ExperimentScale) {
    println!("== Brute-force learning comparison (write-heavy workload) ==");
    for r in bruteforce(scale) {
        println!(
            "  {:<36} converged: {:<5} at mission {:<8} tail latency {:.4} ms/op, model time {:.3}s",
            r.method,
            r.converged,
            r.converged_at.map_or("never".into(), |m| m.to_string()),
            r.tail_latency_ms,
            r.model_update_s
        );
    }
    println!();
}

/// Development aid: runs RusKey alone on one static workload, printing the
/// policy trace and latency every 10 missions. Not part of the paper.
fn run_lab(scale: &ExperimentScale) {
    use ruskey::lerp::{Lerp, LerpConfig, PropagationScheme};
    use ruskey::runner::run_static;
    use ruskey_workload::OpMix;
    for (label, mix) in [
        ("write-heavy", OpMix::write_heavy()),
        ("read-heavy", OpMix::read_heavy()),
        ("balanced", OpMix::balanced()),
    ] {
        let spec = scale.spec().with_mix(mix);
        let mut cfg = LerpConfig::paper_default(PropagationScheme::Uniform);
        cfg.seed = scale.seed.wrapping_mul(31).wrapping_add(7);
        let records = run_static(
            ruskey::db::RusKeyConfig::scaled_default(),
            scale,
            Box::new(Lerp::new(cfg)),
            spec,
        );
        println!("lab {label}: mission, K(L1), latency(ms/op), converged");
        for r in records.iter().step_by(10) {
            println!(
                "  {:>4}  K={:<3} {:>8.4}  {}",
                r.mission, r.policy_l1, r.latency_ms_per_op, r.converged
            );
        }
    }
}

fn main() {
    let args = parse_args();
    let scale = &args.scale;
    let csv = &args.csv_dir;
    println!(
        "RusKey reproduction harness | load={} entries, mission={} ops, missions={}\n",
        scale.load_entries, scale.mission_size, scale.missions
    );
    let t0 = std::time::Instant::now();
    let want = |name: &str| args.experiment == name || args.experiment == "all";

    if want("table2") {
        run_table2(scale);
    }
    if want("fig6") {
        run_comparisons("fig6_static_uniform", &fig6(scale), csv);
    }
    if want("fig7") || want("table3") {
        run_fig7_table3(scale, csv);
    }
    if want("fig8") {
        run_comparisons("fig8_static_monkey", &fig8(scale), csv);
    }
    if want("fig9") {
        run_fig9(scale);
    }
    if want("fig10") {
        run_fig10(scale, csv);
    }
    if want("fig11") {
        run_comparisons("fig11_ycsb", &fig11_abc(scale), csv);
        let range = fig11_range(scale);
        run_comparisons("fig11d_range", std::slice::from_ref(&range), csv);
    }
    if want("fig12") {
        run_fig12(scale, csv);
    }
    if want("fig13") {
        run_fig13(scale);
    }
    if want("bruteforce") {
        run_bruteforce(scale);
    }
    if want("shard_scaling")
        || want("durability")
        || want("persistence")
        || want("read_path")
        || want("compaction")
        || want("serve")
        || want("tuning")
    {
        let label = match scale.load_entries {
            n if n >= 200_000 => "full",
            n if n <= 2_000 => "tiny",
            _ => "small",
        };
        if want("shard_scaling") {
            run_shard_scaling(scale, label, &args.json_path);
        }
        if want("durability") {
            // Under `all` the shard-scaling run already claimed --json;
            // durability falls back to its default file name instead of
            // overwriting that output.
            let json = if args.experiment == "durability" {
                &args.json_path
            } else {
                &None
            };
            run_durability(scale, label, json);
        }
        if want("persistence") {
            let json = if args.experiment == "persistence" {
                &args.json_path
            } else {
                &None
            };
            run_persistence(scale, label, json);
        }
        if want("read_path") {
            let json = if args.experiment == "read_path" {
                &args.json_path
            } else {
                &None
            };
            run_read_path(scale, label, json);
        }
        if want("compaction") {
            let json = if args.experiment == "compaction" {
                &args.json_path
            } else {
                &None
            };
            run_compaction(scale, label, json);
        }
        if want("serve") {
            let json = if args.experiment == "serve" {
                &args.json_path
            } else {
                &None
            };
            run_serve(scale, label, json);
        }
        if want("tuning") {
            let json = if args.experiment == "tuning" {
                &args.json_path
            } else {
                &None
            };
            run_tuning(scale, label, json);
        }
    }
    if args.experiment == "ablations" {
        run_ablations(scale);
    }
    if args.experiment == "lab" {
        run_lab(scale);
    }
    println!("done in {:.1}s", t0.elapsed().as_secs_f64());
}
